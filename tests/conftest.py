"""Shared fixtures and hypothesis strategies for the test suite."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import strategies as st

from repro.core.flow import Flow
from repro.core.instance import Instance
from repro.core.switch import Switch

# Certification fixtures (certify / certify_instance / certify_violations):
# re-exported so every suite can route schedules, reports, runs, streams,
# and instances through the repro.verify checkers (see tests/README.md).
from tests.verify_harness import (  # noqa: F401
    certify,
    certify_instance,
    certify_violations,
)


# ---------------------------------------------------------------------------
# Plain fixtures
# ---------------------------------------------------------------------------


@pytest.fixture
def unit_switch_4() -> Switch:
    """A 4x4 unit-capacity switch."""
    return Switch.create(4)


@pytest.fixture
def small_instance(unit_switch_4: Switch) -> Instance:
    """Six unit flows with a collision on output 0 and staggered releases."""
    flows = [
        Flow(0, 0, 1, 0),
        Flow(1, 0, 1, 0),
        Flow(2, 0, 1, 0),
        Flow(0, 1, 1, 1),
        Flow(3, 2, 1, 1),
        Flow(2, 3, 1, 2),
    ]
    return Instance.create(unit_switch_4, flows)


@pytest.fixture
def rng() -> np.random.Generator:
    """Deterministic RNG for non-hypothesis randomized tests."""
    return np.random.default_rng(12345)


# ---------------------------------------------------------------------------
# Hypothesis strategies
# ---------------------------------------------------------------------------


@st.composite
def unit_instances(
    draw,
    max_ports: int = 4,
    max_flows: int = 8,
    max_release: int = 3,
) -> Instance:
    """Random unit-demand, unit-capacity instances (small)."""
    m = draw(st.integers(1, max_ports))
    n = draw(st.integers(0, max_flows))
    flows = [
        Flow(
            draw(st.integers(0, m - 1)),
            draw(st.integers(0, m - 1)),
            1,
            draw(st.integers(0, max_release)),
        )
        for _ in range(n)
    ]
    return Instance.create(Switch.create(m), flows)


@st.composite
def capacitated_instances(
    draw,
    max_ports: int = 3,
    max_flows: int = 6,
    max_capacity: int = 3,
    max_release: int = 3,
) -> Instance:
    """Random instances with general capacities and demands."""
    m = draw(st.integers(1, max_ports))
    mp = draw(st.integers(1, max_ports))
    in_caps = [draw(st.integers(1, max_capacity)) for _ in range(m)]
    out_caps = [draw(st.integers(1, max_capacity)) for _ in range(mp)]
    switch = Switch.create(m, mp, in_caps, out_caps)
    n = draw(st.integers(0, max_flows))
    flows = []
    for _ in range(n):
        src = draw(st.integers(0, m - 1))
        dst = draw(st.integers(0, mp - 1))
        kappa = min(in_caps[src], out_caps[dst])
        flows.append(
            Flow(
                src,
                dst,
                draw(st.integers(1, kappa)),
                draw(st.integers(0, max_release)),
            )
        )
    return Instance.create(switch, flows)


@st.composite
def bipartite_edge_lists(
    draw,
    max_side: int = 5,
    max_edges: int = 12,
):
    """Random bipartite multigraph data: (n_left, n_right, edges)."""
    n_left = draw(st.integers(1, max_side))
    n_right = draw(st.integers(1, max_side))
    n_edges = draw(st.integers(0, max_edges))
    edges = [
        (
            draw(st.integers(0, n_left - 1)),
            draw(st.integers(0, n_right - 1)),
        )
        for _ in range(n_edges)
    ]
    return n_left, n_right, edges
