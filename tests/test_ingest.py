"""Tests for CSV coflow-trace ingestion (repro.scenarios.ingest)."""

import numpy as np
import pytest

from repro.online.policies import make_policy
from repro.online.simulator import simulate_stream
from repro.scenarios import build_instance, load_csv_trace, rows_to_stream
from repro.scenarios.ingest import example_trace_rows, write_example_trace
from repro.workloads.trace import TraceFormatError


def _write(tmp_path, text, name="trace.csv"):
    path = tmp_path / name
    path.write_text(text)
    return path


GOOD = """arrival_time,src,dst,bytes
0.0,0,3,1000
0.4,1,3,2000
1.2,2,0,500
3.0,0,1,4000
"""


class TestLoadCsvTrace:
    def test_basic_quantization(self, tmp_path):
        path = _write(tmp_path, GOOD)
        stream = load_csv_trace(path)
        inst = stream.materialize()
        # floor(arrival / 1.0): rounds 0, 0, 1, 3
        assert inst.releases().tolist() == [0, 0, 1, 3]
        assert inst.num_flows == 4
        # default: unit demands, ports from max id + 1
        assert (inst.demands() == 1).all()
        assert inst.switch.num_inputs == 4
        assert stream.rounds == 4

    def test_round_length_scales_releases(self, tmp_path):
        path = _write(tmp_path, GOOD)
        inst = load_csv_trace(path, round_length=0.5).materialize()
        assert inst.releases().tolist() == [0, 0, 2, 6]

    def test_bytes_per_unit_sets_demands_and_capacity(self, tmp_path):
        path = _write(tmp_path, GOOD)
        stream = load_csv_trace(path, bytes_per_unit=1000)
        inst = stream.materialize()
        # ceil(bytes/1000): 1, 2, 1, 4; capacity defaults to max demand
        assert inst.demands().tolist() == [1, 2, 1, 4]
        assert inst.switch.input_capacity(0) == 4

    def test_within_round_order_is_stable(self, tmp_path):
        # Two same-round flows listed out of arrival_time order keep
        # their file order (quantization is the only reordering key).
        path = _write(
            tmp_path,
            "arrival_time,src,dst,bytes\n0.9,1,2,10\n0.1,2,1,10\n",
        )
        inst = load_csv_trace(path).materialize()
        assert [(f.src, f.dst) for f in inst.flows] == [(1, 2), (2, 1)]

    def test_explicit_num_ports_too_small(self, tmp_path):
        path = _write(tmp_path, GOOD)
        with pytest.raises(TraceFormatError, match="port id out of range"):
            load_csv_trace(path, num_ports=2)

    def test_explicit_capacity_too_small(self, tmp_path):
        path = _write(tmp_path, GOOD)
        with pytest.raises(TraceFormatError, match="exceeds capacity"):
            load_csv_trace(path, bytes_per_unit=1000, capacity=2)

    def test_missing_file_raises_oserror(self, tmp_path):
        with pytest.raises(OSError):
            load_csv_trace(tmp_path / "nope.csv")


class TestMalformedInput:
    def test_empty_file(self, tmp_path):
        path = _write(tmp_path, "")
        with pytest.raises(TraceFormatError, match="empty trace"):
            load_csv_trace(path)

    def test_bad_header(self, tmp_path):
        path = _write(tmp_path, "time,from,to,size\n0,0,1,10\n")
        with pytest.raises(TraceFormatError, match="bad header"):
            load_csv_trace(path)

    def test_wrong_field_count(self, tmp_path):
        path = _write(tmp_path, "arrival_time,src,dst,bytes\n0,0,1\n")
        with pytest.raises(TraceFormatError, match="line 2"):
            load_csv_trace(path)

    @pytest.mark.parametrize(
        "row,field",
        [
            ("x,0,1,10", "arrival_time"),
            ("-1,0,1,10", "arrival_time"),
            ("0,a,1,10", "src"),
            ("0,-2,1,10", "src"),
            ("0,0,b,10", "dst"),
            ("0,0,1,0", "bytes"),
            ("0,0,1,ten", "bytes"),
        ],
    )
    def test_bad_values_name_the_field(self, tmp_path, row, field):
        path = _write(tmp_path, f"arrival_time,src,dst,bytes\n{row}\n")
        with pytest.raises(TraceFormatError) as err:
            load_csv_trace(path)
        message = str(err.value)
        assert f"'{field}'" in message
        assert str(path) in message
        assert "line 2" in message


class TestRowsToStream:
    def test_empty_rows(self):
        stream = rows_to_stream([])
        assert stream.rounds == 0
        assert stream.materialize().num_flows == 0

    def test_bad_round_length(self):
        with pytest.raises(ValueError, match="round_length"):
            rows_to_stream([(0.0, 0, 1, 10)], round_length=0)

    def test_stream_is_simulatable(self):
        stream = rows_to_stream(example_trace_rows(num_ports=6, flows=30))
        res = simulate_stream(stream, make_policy("MaxWeight"))
        assert res.metrics.num_flows == 30


class TestExampleTrace:
    def test_write_and_reload_round_trip(self, tmp_path):
        path = tmp_path / "sample.csv"
        write_example_trace(path, num_ports=6, flows=25, seed=3)
        inst = load_csv_trace(path).materialize()
        direct = rows_to_stream(
            example_trace_rows(num_ports=6, flows=25, seed=3),
            origin=str(path),
        ).materialize()
        assert inst.digest() == direct.digest()
        assert inst.num_flows == 25

    def test_trace_replay_scenario_accepts_path(self, tmp_path):
        path = tmp_path / "sample.csv"
        write_example_trace(path, num_ports=6, flows=25, seed=3)
        inst = build_instance(f"trace-replay:path={path}")
        assert inst.num_flows == 25

    def test_trace_replay_builtin_sample(self):
        inst = build_instance("trace-replay", seed=0)
        assert inst.num_flows > 0

    def test_trace_replay_honors_spec_pins_on_file(self, tmp_path):
        path = tmp_path / "sample.csv"
        write_example_trace(path, num_ports=6, flows=25, seed=3)
        inst = build_instance(
            f"trace-replay:path={path},ports=32,capacity=4"
        )
        assert inst.switch.num_inputs == 32
        assert inst.switch.input_capacity(0) == 4

    def test_trace_replay_pinned_ports_too_small(self, tmp_path):
        path = tmp_path / "sample.csv"
        write_example_trace(path, num_ports=6, flows=25, seed=3)
        with pytest.raises(TraceFormatError, match="port id out of range"):
            build_instance(f"trace-replay:path={path},ports=2")

    def test_trace_replay_builtin_honors_pins(self):
        inst = build_instance("trace-replay:ports=5,capacity=3", seed=0)
        assert inst.switch.num_inputs == 5
        assert inst.switch.input_capacity(0) == 3

    def test_trace_replay_sweepable_without_horizon(self):
        """The stream is bounded by the trace, so scenario sweeps accept
        it with no explicit horizon."""
        from repro.api import Runner
        from repro.experiments.config import smoke_config

        cells = Runner(
            smoke_config(trials=1), compute_lp_bounds=False
        ).run_scenarios(["trace-replay"], solvers=["FIFO"])
        (cell,) = cells.values()
        assert cell.num_flows_mean > 0
