"""Tests for FS-ART iterative rounding (Lemma 3.3)."""

import math

import numpy as np
import pytest
from hypothesis import given, settings

from repro.art.iterative_rounding import iterative_rounding
from repro.art.pseudo_schedule import PseudoSchedule, _max_subarray
from repro.core.flow import Flow
from repro.core.instance import Instance
from repro.core.switch import Switch
from repro.workloads.synthetic import poisson_uniform_workload
from tests.conftest import unit_instances


class TestPseudoScheduleType:
    def _pseudo(self):
        inst = Instance.create(
            Switch.create(2), [Flow(0, 0, 1, 0), Flow(0, 1, 1, 0)]
        )
        return PseudoSchedule(inst, np.array([0, 1]))

    def test_respects_releases(self):
        assert self._pseudo().respects_releases()

    def test_total_response(self):
        assert self._pseudo().total_response() == 1 + 2

    def test_shape_checked(self):
        inst = Instance.create(Switch.create(2), [Flow(0, 0)])
        with pytest.raises(ValueError):
            PseudoSchedule(inst, np.array([0, 1]))

    def test_port_loads(self):
        loads = self._pseudo().port_loads()
        assert loads[("in", 0)].tolist() == [1, 1]
        assert loads[("out", 1)].tolist() == [0, 1]

    def test_max_window_overload_overloaded(self):
        inst = Instance.create(
            Switch.create(2), [Flow(0, 0), Flow(0, 1), Flow(0, 0)]
        )
        ps = PseudoSchedule(inst, np.array([0, 0, 0]))  # 3 on input 0
        assert ps.max_window_overload() == pytest.approx(3.0)

    def test_max_subarray(self):
        assert _max_subarray(np.array([-1.0, 2.0, 3.0, -5.0, 1.0])) == 5.0
        assert _max_subarray(np.array([-2.0, -1.0])) == -1.0


class TestIterativeRounding:
    def test_rejects_non_unit_demands(self):
        sw = Switch.create(1, 1, 2)
        inst = Instance.create(sw, [Flow(0, 0, demand=2)])
        with pytest.raises(ValueError, match="unit-demand"):
            iterative_rounding(inst)

    def test_empty_instance(self):
        ps = iterative_rounding(Instance.create(Switch.create(1), []))
        assert ps.assignment.size == 0

    def test_single_flow_scheduled_at_release(self):
        inst = Instance.create(Switch.create(2), [Flow(0, 1, 1, 2)])
        ps = iterative_rounding(inst)
        assert ps.assignment.tolist() == [2]

    @given(unit_instances(max_ports=3, max_flows=6))
    @settings(max_examples=20, deadline=None)
    def test_lemma33_properties(self, inst):
        """Property 1 (integral), releases respected, cost <= LP(0) opt
        within tolerance, and no fallback fires on small instances."""
        ps = iterative_rounding(inst)
        if inst.num_flows == 0:
            return
        assert (ps.assignment >= 0).all()
        assert ps.respects_releases()
        assert ps.fallback_fixes == 0
        # Property 2: rounded cost never exceeds the LP(0) optimum.
        assert ps.lp_cost <= ps.lp0_optimum + 1e-6

    def test_congested_instance_overload_logarithmic(self):
        """Property 3 shape check: window overload stays O(log n) on a
        congested random instance."""
        inst = poisson_uniform_workload(6, 8, 6, seed=42)
        ps = iterative_rounding(inst)
        n = inst.num_flows
        # Generous constant; the point is it is far below n / ports.
        assert ps.max_window_overload() <= 10 * math.log2(n + 2) + 10
        assert ps.iterations <= 2 * math.log2(n) + 21

    def test_iterations_logarithmic(self):
        inst = poisson_uniform_workload(5, 6, 5, seed=7)
        ps = iterative_rounding(inst)
        assert ps.iterations <= 2 * int(math.log2(inst.num_flows) + 1) + 20
