"""Integration tests for ``repro.obs`` across the real execution paths.

The claims the observability layer makes — span sums reconcile with the
sweep timer, trace IDs survive multiprocessing executors and the
service worker path, and a fixed-seed sweep's span log is byte-stable
modulo timestamps — are only meaningful end-to-end, so these tests run
real (tiny) sweeps, a real threaded service, and the real file-backed
job queue.
"""

from __future__ import annotations

import json

import pytest

from repro.api.store import ResultStore, canonical_key
from repro.experiments.config import ExperimentConfig
from repro.experiments.harness import run_sweep
from repro.obs import parse_metric, read_spans, validate_span
from repro.obs.metrics import get_registry
from repro.service import (
    BrokerConfig,
    Job,
    JobQueue,
    ServiceClient,
    ServiceThread,
    execute_job,
)
from repro.workloads.synthetic import poisson_uniform_workload


def tiny_config(**overrides) -> ExperimentConfig:
    base = dict(
        num_ports=6,
        load_ratios=(0.5,),
        generation_rounds=(3,),
        trials=2,
        lp_round_limit=3,
        seed=99,
    )
    base.update(overrides)
    return ExperimentConfig(**base)


def stripped(spans):
    """Span records minus the volatile wall-clock fields."""
    out = []
    for s in spans:
        s = dict(s)
        s.pop("start"), s.pop("end"), s.pop("dur")
        out.append(s)
    return out


# ---------------------------------------------------------------------------
# Traced sweeps
# ---------------------------------------------------------------------------


class TestTracedSweep:
    def test_serial_sweep_spans_reconcile_with_timer(self, tmp_path):
        trace = tmp_path / "sweep.jsonl"
        sweep = run_sweep(tiny_config(), trace=str(trace))
        spans = read_spans(str(trace))
        assert spans, "traced sweep wrote no spans"
        for s in spans:
            assert validate_span(s) == []
        # Exactly one trace, deterministic from the config.
        assert len({s["trace"] for s in spans}) == 1
        # Per-phase span sums equal the sweep timer totals exactly: the
        # timer->span bridge closes each span with the very delta it
        # added to the timer, and file order is add order.
        sums = {}
        for s in spans:
            if s["name"] in sweep.timer.totals:
                sums[s["name"]] = sums.get(s["name"], 0.0) + s["dur"]
        assert sums, "no timer-bridged spans found"
        for name, total in sums.items():
            assert total == sweep.timer.totals[name], name

    def test_span_parents_all_recorded(self, tmp_path):
        trace = tmp_path / "sweep.jsonl"
        run_sweep(tiny_config(), trace=str(trace))
        spans = read_spans(str(trace))
        ids = {s["span"] for s in spans}
        for s in spans:
            if s["parent"] is not None:
                assert s["parent"] in ids, (
                    f"span {s['span']} has unrecorded parent {s['parent']}"
                )

    def test_multiprocessing_sweep_propagates_one_trace(self, tmp_path):
        trace = tmp_path / "mp.jsonl"
        config = tiny_config()
        sweep = run_sweep(config, jobs=2, trace=str(trace))
        spans = read_spans(str(trace))
        assert spans
        for s in spans:
            assert validate_span(s) == []
        # One trace ID across the process boundary...
        assert len({s["trace"] for s in spans}) == 1
        # ...with the worker-side spans grafted under recorded parents.
        ids = {s["span"] for s in spans}
        for s in spans:
            if s["parent"] is not None:
                assert s["parent"] in ids
        # The sweep still produced the same cells.
        assert set(sweep.cells) == set(run_sweep(config).cells)

    def test_fixed_seed_span_log_is_stable_modulo_timestamps(self, tmp_path):
        # LP bounds cache in-process, which would legitimately change
        # the second run's work; policies alone are cache-free.
        config = tiny_config()
        a, b = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        run_sweep(config, compute_lp_bounds=False, trace=str(a))
        run_sweep(config, compute_lp_bounds=False, trace=str(b))
        assert stripped(read_spans(str(a))) == stripped(read_spans(str(b)))

    def test_traced_sweep_populates_shared_registry(self, tmp_path):
        run_sweep(tiny_config(), trace=str(tmp_path / "t.jsonl"))
        text = get_registry().render()
        assert parse_metric(text, "repro_simulate_seconds_count") is not None


# ---------------------------------------------------------------------------
# Service worker path (the --join carrier)
# ---------------------------------------------------------------------------


class TestJobTraceCarrier:
    def test_execute_job_ships_spans_in_outcome(self, tmp_path):
        store = ResultStore(str(tmp_path / "cache"))
        instance = poisson_uniform_workload(4, 3.0, 3, seed=1)
        job = Job(
            key=canonical_key("Greedy", instance.digest(), {}),
            solver="Greedy",
            instance=instance.to_dict(),
            trace={"trace_id": "a" * 16, "span_id": "0"},
        )
        outcome = execute_job(job, store)
        assert outcome["ok"]
        spans = outcome["spans"]
        assert spans, "traced job shipped no spans"
        for s in spans:
            assert validate_span(s) == []
            assert s["trace"] == "a" * 16
        names = {s["name"] for s in spans}
        assert "job" in names
        job_span = next(s for s in spans if s["name"] == "job")
        assert job_span["span"] == "0.job"
        assert job_span["parent"] == "0"

    def test_job_trace_survives_queue_roundtrip(self, tmp_path):
        queue = JobQueue(str(tmp_path / "queue"))
        instance = poisson_uniform_workload(4, 3.0, 3, seed=2)
        job = Job(
            key=canonical_key("Greedy", instance.digest(), {}),
            solver="Greedy",
            instance=instance.to_dict(),
            trace={"trace_id": "b" * 16, "span_id": "0"},
        )
        assert queue.enqueue(job)
        claimed = queue.claim(job.key, owner="test-worker")
        assert claimed is not None
        assert claimed.trace == {"trace_id": "b" * 16, "span_id": "0"}

    def test_malformed_carrier_runs_untraced(self, tmp_path):
        store = ResultStore(str(tmp_path / "cache"))
        instance = poisson_uniform_workload(4, 3.0, 3, seed=3)
        job = Job(
            key=canonical_key("Greedy", instance.digest(), {}),
            solver="Greedy",
            instance=instance.to_dict(),
            trace={"bogus": True},
        )
        outcome = execute_job(job, store)
        assert outcome["ok"]
        assert "spans" not in outcome


# ---------------------------------------------------------------------------
# Service end-to-end
# ---------------------------------------------------------------------------


class TestTracedService:
    def test_trace_id_echo_and_span_log(self, tmp_path):
        trace_path = tmp_path / "service.jsonl"
        with ServiceThread(
            str(tmp_path / "cache"),
            workers=1,
            worker_mode="thread",
            trace=str(trace_path),
            config=BrokerConfig(
                queue_depth=8, solver_cap=4, default_timeout=30.0,
                retry_after=0.25, poll_interval=0.005,
            ),
        ) as service:
            client = ServiceClient(service.address, timeout=60.0)
            instance = poisson_uniform_workload(4, 3.0, 3, seed=7)
            response = client.solve(
                "Greedy", instance=instance, trace="c" * 16
            )
            assert response.ok
            assert response.trace_id == "c" * 16
            # An untagged request still runs under a broker-minted trace.
            other = client.solve(
                "Greedy", instance=poisson_uniform_workload(4, 3.0, 3, seed=8)
            )
            assert other.ok and other.trace_id
            # The unified registry backs GET /metrics.
            text = client.metrics()
            assert parse_metric(
                text, "repro_solve_requests_total"
            ) is not None
        spans = read_spans(str(trace_path))
        assert spans, "traced service wrote no spans"
        for s in spans:
            assert validate_span(s) == []
        by_trace = {}
        for s in spans:
            by_trace.setdefault(s["trace"], set()).add(s["name"])
        assert "c" * 16 in by_trace
        assert "request" in by_trace["c" * 16]
        # The worker-side job span landed in the same trace.
        assert "job" in by_trace["c" * 16]
