"""Tests for the AMRT online algorithm (Lemma 5.3)."""

import pytest
from hypothesis import given, settings

from repro.core.flow import Flow
from repro.core.instance import Instance
from repro.core.schedule import validate_schedule
from repro.core.switch import Switch
from repro.mrt.algorithm import solve_mrt
from repro.online.amrt import run_amrt
from repro.workloads.synthetic import poisson_uniform_workload
from tests.conftest import unit_instances


class TestAMRTBasics:
    def test_empty(self):
        res = run_amrt(Instance.create(Switch.create(1), []))
        assert res.batches == 0

    def test_single_flow(self):
        inst = Instance.create(Switch.create(2), [Flow(0, 1)])
        res = run_amrt(inst)
        assert res.metrics.max_response >= 1
        assert res.batches == 1

    def test_all_flows_scheduled_after_release(self):
        inst = poisson_uniform_workload(4, 3, 5, seed=1)
        res = run_amrt(inst)
        assert (res.schedule.assignment >= inst.releases()).all()

    def test_guess_monotone_and_converges(self):
        inst = poisson_uniform_workload(6, 6, 6, seed=2)
        res = run_amrt(inst)
        off = solve_mrt(inst)
        # The guess never exceeds the offline optimum bound (it stops
        # growing once feasible), modulo the +1 probing step.
        assert res.final_rho <= off.rho + 1

    def test_max_rho_guard(self):
        inst = Instance.create(
            Switch.create(2), [Flow(0, 0), Flow(0, 1), Flow(0, 0, 1, 1)]
        )
        with pytest.raises(RuntimeError, match="converge"):
            run_amrt(inst, max_rho=1)


class TestLemma53Guarantees:
    @given(unit_instances(max_ports=4, max_flows=8))
    @settings(max_examples=20, deadline=None)
    def test_capacity_usage_bound(self, inst):
        """Port usage <= 2 (c_p + 2 d_max - 1)."""
        if inst.num_flows == 0:
            return
        res = run_amrt(inst)
        d_max = inst.max_demand
        assert 1 + res.max_port_usage <= 2 * (1 + 2 * d_max - 1)
        validate_schedule(
            res.schedule,
            inst.switch.augmented(additive=res.max_port_usage),
        )

    @given(unit_instances(max_ports=4, max_flows=8))
    @settings(max_examples=15, deadline=None)
    def test_two_x_bound_at_steady_rho(self, inst):
        """With the guess warmed up to rho*, max response <= 2 rho*
        (the Lemma 5.3 competitive guarantee after ramp-up)."""
        if inst.num_flows == 0:
            return
        rho_star = solve_mrt(inst).rho
        res = run_amrt(inst, initial_rho=rho_star)
        assert res.metrics.max_response <= 2 * rho_star

    def test_batches_overlap_at_most_two(self):
        """Per-round load never exceeds two batches' worth."""
        inst = poisson_uniform_workload(4, 4, 6, seed=9)
        res = run_amrt(inst)
        d_max = inst.max_demand
        per_batch = 1 + 2 * d_max - 1  # unit caps
        assert 1 + res.max_port_usage <= 2 * per_batch
