"""Tests for the solve service (``repro.service``).

Covers the wire protocol, the metrics registry, the filesystem work
queue, worker execution, and — through a real threaded server fixture —
the end-to-end behaviours the subsystem exists for: digest-coalescing
(N identical concurrent requests, exactly one solve), admission control
with ``Retry-After``, structured timeout errors, ``/metrics``
observability, and multi-pool work stealing with zero duplicate solves.
"""

from __future__ import annotations

import json
import threading
import time
from pathlib import Path

import pytest

from repro.api.store import ResultStore, canonical_key, live_records
from repro.core.instance import Instance
from repro.service import (
    BrokerConfig,
    Job,
    JobQueue,
    ProtocolError,
    ServiceClient,
    ServiceError,
    ServiceMetrics,
    ServiceThread,
    SolveRequest,
    SolveResponse,
    WorkerPool,
    error_response,
    execute_job,
    parse_metric,
    worker_loop,
)
from repro.workloads.synthetic import poisson_uniform_workload


def small_instance(seed: int = 0) -> Instance:
    """A tiny (fast-to-solve) distinct-per-seed instance."""
    return poisson_uniform_workload(4, 3.0, 3, seed=seed)


def shard_line_count(cache_dir) -> int:
    """Total records ever appended across every store shard.

    The duplicate-solve detector: every solve appends exactly one line
    to its worker's shard, so N unique jobs solved exactly once leave
    exactly N lines — a duplicate solve leaves N+1 even though the
    last-writer-wins *index* would hide it.
    """
    return sum(
        len([ln for ln in path.read_text().splitlines() if ln.strip()])
        for path in Path(cache_dir).glob("results-*.jsonl")
    )


# ---------------------------------------------------------------------------
# Protocol
# ---------------------------------------------------------------------------


class TestProtocol:
    def test_request_roundtrip(self):
        request = SolveRequest(
            solver="Greedy",
            instance=small_instance().to_dict(),
            params={"x": 1},
            verify=True,
            timeout=5.0,
        )
        again = SolveRequest.from_dict(request.to_dict())
        assert again == request

    def test_scenario_request_roundtrip(self):
        request = SolveRequest(solver="FS-MRT", scenario="hotspot:ports=8",
                               seed=3)
        assert SolveRequest.from_dict(request.to_dict()) == request

    @pytest.mark.parametrize(
        "body,code",
        [
            ({"solver": "Greedy"}, "bad-request"),  # no instance/scenario
            ({"scenario": "hotspot"}, "bad-request"),  # no solver
            ({"solver": "G", "scenario": "h", "instance": {}},
             "bad-request"),  # both sources
            ({"solver": "G", "scenario": "h", "bogus": 1}, "bad-request"),
            ({"solver": "G", "scenario": "h", "seed": "x"}, "bad-request"),
            ({"solver": "G", "scenario": "h", "timeout": -1}, "bad-request"),
            ({"solver": "G", "scenario": "h", "schema_version": 99},
             "unsupported-version"),
        ],
    )
    def test_request_validation(self, body, code):
        with pytest.raises(ProtocolError) as excinfo:
            SolveRequest.from_dict(body)
        assert excinfo.value.code == code

    def test_response_roundtrip_and_error(self):
        response = error_response("queue-full", "busy", retry_after=2.5)
        again = SolveResponse.from_dict(response.to_dict())
        assert not again.ok
        assert again.error.code == "queue-full"
        assert again.error.retry_after == 2.5
        with pytest.raises(ValueError):
            again.solve_report()


# ---------------------------------------------------------------------------
# Metrics
# ---------------------------------------------------------------------------


class TestMetrics:
    def test_counter_gauge_histogram_render_parse(self):
        m = ServiceMetrics()
        m.counter("a_total", help="a", solver="G")
        m.counter("a_total", solver="G")
        m.gauge("depth", 3, help="d")
        m.observe("lat_seconds", 0.03, help="l", endpoint="solve")
        text = m.render()
        assert "# TYPE a_total counter" in text
        assert parse_metric(text, "a_total", solver="G") == 2
        assert parse_metric(text, "depth") == 3
        assert parse_metric(text, "lat_seconds_count", endpoint="solve") == 1
        # 0.03 lands in every bucket with bound >= 0.05
        assert parse_metric(text, "lat_seconds_bucket", le="0.05") == 1
        assert parse_metric(text, "lat_seconds_bucket", le="0.005") == 0
        assert parse_metric(text, "lat_seconds_bucket", le="+Inf") == 1
        assert parse_metric(text, "nope") is None

    def test_label_escaping(self):
        m = ServiceMetrics()
        m.counter("e_total", kind='we"ird\nname')
        text = m.render()
        assert '\\"' in text and "\\n" in text
        assert parse_metric(text, "e_total", kind='we"ird\nname') == 1

    def test_value_reads_back(self):
        m = ServiceMetrics()
        m.counter("c_total", amount=4)
        assert m.value("c_total") == 4
        assert m.value("untouched") == 0.0


# ---------------------------------------------------------------------------
# Work queue
# ---------------------------------------------------------------------------


def _job(key="k1", seed=0, solver="Greedy", verify=False) -> Job:
    return Job(
        key=key,
        solver=solver,
        instance=small_instance(seed).to_dict(),
        verify=verify,
    )


class TestJobQueue:
    def test_enqueue_claim_complete_lifecycle(self, tmp_path):
        queue = JobQueue(tmp_path)
        assert queue.enqueue(_job())
        assert queue.pending_keys() == ["k1"]
        # Second broker enqueueing the same key is a no-op.
        assert not queue.enqueue(_job())
        job = queue.claim("k1", "me")
        assert job is not None and job.solver == "Greedy"
        # The claim is exclusive: a racing worker loses.
        assert queue.claim("k1", "other") is None
        queue.complete("k1", {"ok": True, "key": "k1"})
        assert queue.pending_keys() == []
        assert queue.done_keys() == ["k1"]
        # Done markers are read non-destructively, then discarded.
        assert queue.read_done("k1")["ok"] is True
        assert queue.read_done("k1")["ok"] is True
        queue.discard_done("k1")
        assert queue.read_done("k1") is None
        # A done marker also blocks re-enqueueing until consumed.
        queue.enqueue(_job())
        assert queue.pending_keys() == ["k1"]

    def test_concurrent_claims_exactly_one_winner(self, tmp_path):
        queue = JobQueue(tmp_path)
        queue.enqueue(_job())
        wins = []
        barrier = threading.Barrier(8)

        def racer(i):
            barrier.wait()
            if queue.claim("k1", f"w{i}") is not None:
                wins.append(i)

        threads = [threading.Thread(target=racer, args=(i,)) for i in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(wins) == 1

    def test_stale_claim_broken_fresh_claim_kept(self, tmp_path):
        queue = JobQueue(tmp_path)
        queue.enqueue(_job())
        assert queue.claim("k1", "crashed") is not None
        # Fresh claim survives a scan.
        assert queue.claim("k1", "thief", stale_after=600) is None
        # Backdate the claim beyond the staleness bound; the first
        # attempt breaks it, the next wins it.
        claim = queue.dir / "k1.claim"
        import os

        old = time.time() - 10_000
        os.utime(claim, (old, old))
        assert queue.claim("k1", "thief", stale_after=600) is None
        job = queue.claim("k1", "thief", stale_after=600)
        assert job is not None

    def test_claim_on_vanished_job_releases(self, tmp_path):
        queue = JobQueue(tmp_path)
        queue.enqueue(_job())
        (queue.dir / "k1.job").unlink()
        assert queue.claim("k1", "me") is None
        # The claim was released, not wedged.
        assert not (queue.dir / "k1.claim").exists()

    def test_sweep_done(self, tmp_path):
        queue = JobQueue(tmp_path)
        queue.enqueue(_job())
        queue.claim("k1", "me")
        queue.complete("k1", {"ok": True})
        assert queue.sweep_done(older_than=9_999) == 0
        assert queue.sweep_done(older_than=-1) == 1
        assert queue.done_keys() == []

    def test_job_schema_version_rejected(self):
        data = _job().to_dict()
        data["schema_version"] = 99
        with pytest.raises(ValueError, match="schema_version"):
            Job.from_dict(data)


# ---------------------------------------------------------------------------
# Workers
# ---------------------------------------------------------------------------


class TestWorkers:
    def test_execute_job_stores_and_reports(self, tmp_path):
        inst = small_instance(1)
        key = canonical_key("Greedy", inst.digest(), {})
        store = ResultStore(tmp_path)
        outcome = execute_job(_job(key=key, seed=1, verify=True), store)
        store.close()
        assert outcome["ok"] and outcome["certified"]
        assert outcome["key"] == key
        assert outcome["timings"]["solve"] > 0
        # The stored record is the sweep-identical stripped payload.
        fresh = ResultStore(tmp_path)
        record = fresh.get("Greedy", inst.digest(), {})
        assert record == outcome["report"]
        assert "timings" not in record or not record["timings"]
        fresh.close()

    def test_execute_job_failure_is_structured(self, tmp_path):
        store = ResultStore(tmp_path)
        bad = Job(
            key="bad", solver="NoSuchSolver",
            instance=small_instance().to_dict(),
        )
        outcome = execute_job(bad, store)
        store.close()
        assert not outcome["ok"]
        assert outcome["error"]["code"] == "solver-error"
        assert "NoSuchSolver" in outcome["error"]["message"]

    def test_worker_loop_drains_and_stops(self, tmp_path):
        queue = JobQueue(tmp_path)
        keys = []
        for i in range(4):
            inst = small_instance(i)
            key = canonical_key("Greedy", inst.digest(), {})
            queue.enqueue(Job(key=key, solver="Greedy",
                              instance=inst.to_dict()))
            keys.append(key)
        stop = threading.Event()
        done = threading.Thread(
            target=lambda: (time.sleep(0.05), stop.set())
        )

        seen = []
        counts = {}

        def spin():
            counts["n"] = worker_loop(
                str(tmp_path), stop, poll_interval=0.01,
                on_job=seen.append,
            )

        worker = threading.Thread(target=spin)
        worker.start()
        deadline = time.time() + 20
        while queue.pending_keys() and time.time() < deadline:
            time.sleep(0.01)
        done.start()
        stop.set()
        worker.join(20)
        done.join()
        assert counts["n"] == 4
        assert sorted(j.key for j in seen) == sorted(keys)
        assert sorted(queue.done_keys()) == sorted(keys)
        for key in keys:
            assert queue.read_done(key)["ok"] is True

    def test_two_pools_drain_50_jobs_zero_duplicates(self, tmp_path):
        """Acceptance: two pools over one cache dir, 50 jobs, 50 solves."""
        queue = JobQueue(tmp_path)
        keys = set()
        for i in range(50):
            inst = small_instance(i)
            key = canonical_key("Greedy", inst.digest(), {})
            queue.enqueue(Job(key=key, solver="Greedy",
                              instance=inst.to_dict()))
            keys.add(key)
        assert len(keys) == 50  # distinct seeds -> distinct digests
        pool_a = WorkerPool(tmp_path, 2, mode="thread", poll_interval=0.005)
        pool_b = WorkerPool(tmp_path, 2, mode="thread", poll_interval=0.005)
        with pool_a, pool_b:
            deadline = time.time() + 60
            while queue.pending_keys() and time.time() < deadline:
                time.sleep(0.02)
        assert queue.pending_keys() == []
        live = live_records(tmp_path)
        assert set(live) == keys
        # Zero duplicate solves: exactly one shard line per job, ever.
        assert shard_line_count(tmp_path) == 50


# ---------------------------------------------------------------------------
# End-to-end service (threaded server fixture)
# ---------------------------------------------------------------------------


@pytest.fixture
def service(tmp_path):
    """A live service: thread workers, tight polling, short timeouts."""
    with ServiceThread(
        str(tmp_path / "cache"),
        workers=2,
        worker_mode="thread",
        config=BrokerConfig(
            queue_depth=8, solver_cap=4, default_timeout=30.0,
            retry_after=0.25, poll_interval=0.005,
        ),
    ) as thread:
        yield thread


class TestServiceEndToEnd:
    def test_roundtrip_solve_cache_and_result(self, service):
        client = ServiceClient(service.address, timeout=60.0)
        inst = small_instance(2)
        first = client.solve("Greedy", instance=inst, verify=True)
        assert first.ok and first.source == "solved" and first.certified
        assert first.digest == inst.digest()
        report = first.solve_report()
        assert report.solver == "Greedy"
        assert report.metrics is not None
        # Identical resubmission is answered from the store.
        second = client.solve("Greedy", instance=inst)
        assert second.source == "cache"
        # GET /result finds it by content address...
        fetched = client.result(inst.digest(), "Greedy")
        assert fetched.ok and fetched.report == first.report
        # ...and 404s cleanly for an unknown address.
        with pytest.raises(ServiceError) as excinfo:
            client.result("0" * 64, "Greedy")
        assert excinfo.value.code == "not-found"
        assert excinfo.value.status == 404

    def test_scenario_request_solved_server_side(self, service):
        client = ServiceClient(service.address, timeout=60.0)
        response = client.solve(
            "Greedy", scenario="hotspot:ports=8,mean=4,horizon=6", seed=5
        )
        assert response.ok
        from repro.scenarios import build_instance

        assert response.digest == build_instance(
            "hotspot:ports=8,mean=4,horizon=6", seed=5
        ).digest()

    def test_unknown_solver_rejected(self, service):
        client = ServiceClient(service.address, timeout=60.0)
        with pytest.raises(ServiceError) as excinfo:
            client.solve("NoSuchSolver", instance=small_instance())
        assert excinfo.value.code == "unknown-solver"
        assert excinfo.value.status == 400

    def test_healthz(self, service):
        payload = ServiceClient(service.address, timeout=60.0).healthz()
        assert payload["status"] == "ok"

    def test_coalescing_16_identical_requests_one_solve(self, service):
        """Acceptance: 16 concurrent identical-digest requests, 1 solve."""
        client = ServiceClient(service.address, timeout=60.0)
        inst = small_instance(33)
        results = [None] * 16
        barrier = threading.Barrier(16)

        def submit(i):
            barrier.wait()
            results[i] = client.solve("Greedy", instance=inst, timeout=30)

        threads = [
            threading.Thread(target=submit, args=(i,)) for i in range(16)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert all(r is not None and r.ok for r in results)
        reports = {json.dumps(r.report, sort_keys=True) for r in results}
        assert len(reports) == 1  # every waiter saw the same record
        # Exactly one solve hit the store...
        cache_dir = service.service.broker.cache_dir
        assert shard_line_count(cache_dir) == 1
        # ...and the coalesce counter proves 15 requests attached.
        text = client.metrics()
        assert parse_metric(text, "repro_coalesced_total") == 15
        assert parse_metric(
            text, "repro_solved_total", solver="Greedy"
        ) == 1
        sources = sorted(r.source for r in results)
        assert sources.count("coalesced") == 15
        assert sources.count("solved") == 1

    def test_metrics_endpoint_nonzero_after_traffic(self, service):
        client = ServiceClient(service.address, timeout=60.0)
        client.solve("Greedy", instance=small_instance(8))
        client.solve("Greedy", instance=small_instance(8))
        text = client.metrics()
        assert parse_metric(
            text, "repro_http_requests_total", endpoint="solve",
            status="200",
        ) == 2
        assert parse_metric(text, "repro_cache_hits_total") == 1
        assert parse_metric(text, "repro_solved_total", solver="Greedy") == 1
        assert parse_metric(
            text, "repro_request_seconds_count", endpoint="solve"
        ) == 2
        assert (
            parse_metric(text, "repro_solve_seconds_count", solver="Greedy")
            == 1
        )


class TestAdmissionAndTimeouts:
    """Against a worker-less service, so jobs stay queued forever."""

    @pytest.fixture
    def stalled(self, tmp_path):
        with ServiceThread(
            str(tmp_path / "cache"),
            workers=0,
            config=BrokerConfig(
                queue_depth=2, solver_cap=1, default_timeout=30.0,
                retry_after=1.5, poll_interval=0.005,
            ),
        ) as thread:
            yield thread

    def test_timeout_is_structured_and_leaves_work_running(self, stalled):
        client = ServiceClient(stalled.address, timeout=60.0)
        inst = small_instance(40)
        with pytest.raises(ServiceError) as excinfo:
            client.solve("Greedy", instance=inst, timeout=0.1)
        assert excinfo.value.code == "timeout"
        assert excinfo.value.status == 504
        # The job is still queued (the solve was not cancelled)...
        queue = JobQueue(stalled.service.broker.cache_dir)
        assert len(queue.pending_keys()) == 1
        # ...so a late-joining worker finishes it and the result serves.
        pool = WorkerPool(
            stalled.service.broker.cache_dir, 1, mode="thread",
            poll_interval=0.005,
        )
        with pool:
            response = client.solve("Greedy", instance=inst, timeout=30)
        assert response.ok and response.source in ("cache", "solved")

    def test_solver_cap_rejects_with_retry_after(self, stalled):
        client = ServiceClient(stalled.address, timeout=60.0)
        results = {}

        def bg(i):
            try:
                client.solve("Greedy", instance=small_instance(50 + i),
                             timeout=1.2)
            except ServiceError as exc:
                results[i] = exc

        # First request occupies the solver's single slot...
        t0 = threading.Thread(target=bg, args=(0,))
        t0.start()
        deadline = time.time() + 10
        while not stalled.service.broker.pending and time.time() < deadline:
            time.sleep(0.005)
        # ...so a different-digest request for the same solver bounces.
        with pytest.raises(ServiceError) as excinfo:
            client.solve("Greedy", instance=small_instance(60))
        assert excinfo.value.code == "solver-busy"
        assert excinfo.value.status == 429
        assert excinfo.value.retry_after == 1.5
        t0.join()
        assert results[0].code == "timeout"

    def test_queue_depth_rejects_queue_full(self, tmp_path):
        with ServiceThread(
            str(tmp_path / "cache"),
            workers=0,
            config=BrokerConfig(
                queue_depth=1, solver_cap=8, default_timeout=30.0,
                retry_after=0.5, poll_interval=0.005,
            ),
        ) as thread:
            client = ServiceClient(thread.address, timeout=60.0)

            def bg():
                try:
                    client.solve("Greedy", instance=small_instance(70),
                                 timeout=1.2)
                except ServiceError:
                    pass

            t0 = threading.Thread(target=bg)
            t0.start()
            deadline = time.time() + 10
            broker = thread.service.broker
            while not broker.pending and time.time() < deadline:
                time.sleep(0.005)
            with pytest.raises(ServiceError) as excinfo:
                client.solve("FIFO", instance=small_instance(71))
            assert excinfo.value.code == "queue-full"
            assert excinfo.value.status == 429
            assert excinfo.value.retry_after == 0.5
            rejected = parse_metric(
                client.metrics(), "repro_rejected_total", reason="queue-full"
            )
            assert rejected == 1
            t0.join()

    def test_client_retries_honour_retry_after(self, tmp_path):
        """A retrying client eventually lands once capacity frees up."""
        with ServiceThread(
            str(tmp_path / "cache"),
            workers=1,
            worker_mode="thread",
            config=BrokerConfig(
                queue_depth=1, solver_cap=8, default_timeout=30.0,
                retry_after=0.1, poll_interval=0.005,
            ),
        ) as thread:
            client = ServiceClient(thread.address, timeout=60.0)
            threads = [
                threading.Thread(
                    target=client.solve,
                    args=("Greedy",),
                    kwargs=dict(
                        instance=small_instance(80 + i),
                        timeout=30,
                        retries=100,
                    ),
                )
                for i in range(3)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            live = live_records(thread.service.broker.cache_dir)
            assert len(live) == 3
