"""Tests for the warm LP-bound oracle subsystem (repro.lp.bounds)."""

import pytest
from hypothesis import HealthCheck, given, settings

from repro.art.lp_relaxation import art_lp_lower_bound
from repro.core.greedy import greedy_earliest_fit
from repro.core.instance import Instance
from repro.core.metrics import max_response_time
from repro.core.switch import Switch
from repro.lp.bounds import (
    LPBoundOracle,
    art_lower_bound,
    cache_stats,
    clear_bound_caches,
    mrt_lower_bound,
)
from repro.mrt.algorithm import fractional_mrt_lower_bound
from repro.mrt.lp_relaxation import is_fractionally_feasible
from repro.mrt.time_constrained import from_response_bound
from repro.utils.timing import Timer
from repro.workloads.synthetic import poisson_uniform_workload
from tests.conftest import capacitated_instances, unit_instances


@pytest.fixture(autouse=True)
def fresh_caches():
    clear_bound_caches()
    yield
    clear_bound_caches()


@pytest.fixture(scope="module")
def instance():
    return poisson_uniform_workload(6, 5.0, 4, seed=3)


class TestLPBoundOracle:
    def test_single_build_many_queries(self, instance):
        rho_upper = max_response_time(greedy_earliest_fit(instance))
        oracle = LPBoundOracle(instance, rho_cap=rho_upper)
        for rho in range(1, rho_upper + 1):
            oracle.is_feasible(rho)
        assert oracle.builds == 1
        assert oracle.solves == rho_upper

    def test_feasibility_matches_cold_build(self, instance):
        rho_upper = max_response_time(greedy_earliest_fit(instance))
        oracle = LPBoundOracle(instance, rho_cap=rho_upper)
        for rho in range(1, rho_upper + 1):
            assert oracle.is_feasible(rho) == is_fractionally_feasible(
                from_response_bound(instance, rho)
            )

    def test_queries_are_memoised(self, instance):
        oracle = LPBoundOracle(instance)
        first = oracle.is_feasible(2)
        solves = oracle.solves
        assert oracle.is_feasible(2) == first
        assert oracle.solves == solves

    def test_greedy_cap_is_premarked_feasible(self, instance):
        oracle = LPBoundOracle(instance)
        assert oracle.is_feasible(oracle.rho_cap)
        assert oracle.solves == 0  # certified by the greedy schedule

    def test_lower_bound_matches_legacy_search(self, instance):
        assert LPBoundOracle(instance).lower_bound() == (
            fractional_mrt_lower_bound(instance)
        )

    def test_out_of_range_rho_rejected(self, instance):
        oracle = LPBoundOracle(instance, rho_cap=3)
        with pytest.raises(ValueError, match="exceeds"):
            oracle.is_feasible(4)
        with pytest.raises(ValueError, match="positive"):
            oracle.is_feasible(0)

    def test_empty_instance(self):
        empty = Instance.create(Switch.create(2), [])
        oracle = LPBoundOracle(empty)
        assert oracle.lower_bound() == 0
        assert oracle.is_feasible(1)
        assert oracle.builds == 0

    def test_timer_counts_build_and_solves(self, instance):
        timer = Timer()
        oracle = LPBoundOracle(instance, timer=timer)
        oracle.lower_bound()
        assert timer.counts["lp_bound_build"] == 1
        assert timer.counts.get("lp_bound_solve", 0) == oracle.solves

    # The autouse cache-reset fixture is function-scoped; the oracle under
    # test is constructed fresh per example, so per-example reset is moot.
    @given(unit_instances(max_ports=3, max_flows=6))
    @settings(
        max_examples=25,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    def test_property_matches_fresh_builds(self, inst):
        if inst.num_flows == 0:
            assert LPBoundOracle(inst).lower_bound() == 0
            return
        rho_upper = max_response_time(greedy_earliest_fit(inst))
        oracle = LPBoundOracle(inst, rho_cap=rho_upper)
        for rho in range(1, rho_upper + 1):
            assert oracle.is_feasible(rho) == is_fractionally_feasible(
                from_response_bound(inst, rho)
            )
        assert oracle.builds == 1

    @given(capacitated_instances(max_ports=3, max_flows=5))
    @settings(
        max_examples=25,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    def test_property_lower_bound_equals_legacy(self, inst):
        assert LPBoundOracle(inst).lower_bound() == (
            fractional_mrt_lower_bound(inst)
        )


class TestDigestMemo:
    def test_mrt_cache_hit(self, instance):
        cold = mrt_lower_bound(instance)
        before = cache_stats()
        warm = mrt_lower_bound(instance)
        after = cache_stats()
        assert warm == cold
        assert after["hits"] == before["hits"] + 1

    def test_art_cache_hit_and_value(self, instance):
        horizon = instance.compact_horizon_bound()
        value = art_lower_bound(instance, horizon=horizon)
        assert value == art_lp_lower_bound(instance, horizon=horizon)
        before = cache_stats()
        assert art_lower_bound(instance, horizon=horizon) == value
        assert cache_stats()["hits"] == before["hits"] + 1

    def test_distinct_params_distinct_entries(self, instance):
        art_lower_bound(instance, horizon=instance.compact_horizon_bound())
        art_lower_bound(instance, horizon=instance.horizon_bound())
        assert cache_stats()["art_entries"] == 2

    def test_clear_resets(self, instance):
        mrt_lower_bound(instance)
        clear_bound_caches()
        stats = cache_stats()
        assert stats == {
            "hits": 0, "misses": 0, "mrt_entries": 0, "art_entries": 0,
        }

    def test_empty_instance_bounds(self):
        empty = Instance.create(Switch.create(2), [])
        assert mrt_lower_bound(empty) == 0
        assert art_lower_bound(empty) == 0.0

    def test_digest_distinguishes_instances(self):
        a = poisson_uniform_workload(4, 3.0, 3, seed=1)
        b = poisson_uniform_workload(4, 3.0, 3, seed=2)
        assert a.digest() != b.digest()
        # Same content => same digest, regardless of construction path.
        clone = Instance.from_dict(a.to_dict())
        assert clone.digest() == a.digest()

    def test_cache_served_without_lp_work(self, instance):
        mrt_lower_bound(instance)
        timer = Timer()
        mrt_lower_bound(instance, timer=timer)
        assert timer.counts.get("lp_bound_build", 0) == 0
        assert timer.counts.get("lp_bound_solve", 0) == 0

    def test_memo_is_thread_safe(self):
        # Concurrent lookups/insertions with a tiny CACHE_LIMIT force the
        # check-then-mutate races the cache lock exists to prevent.
        import threading

        from repro.lp import bounds as bounds_module

        instances = [
            poisson_uniform_workload(3, 2.0, 2, seed=s) for s in range(6)
        ]
        expected = {i: mrt_lower_bound(inst) for i, inst in enumerate(instances)}
        clear_bound_caches()
        old_limit, bounds_module.CACHE_LIMIT = bounds_module.CACHE_LIMIT, 2
        failures = []

        def worker():
            for _ in range(20):
                for i, inst in enumerate(instances):
                    try:
                        if mrt_lower_bound(inst) != expected[i]:
                            failures.append(i)
                    except Exception as exc:  # KeyError under the old race
                        failures.append(exc)

        try:
            threads = [threading.Thread(target=worker) for _ in range(4)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        finally:
            bounds_module.CACHE_LIMIT = old_limit
        assert failures == []
