"""Unit tests for repro.core.metrics."""

import numpy as np
from hypothesis import given

from repro.core.flow import Flow
from repro.core.greedy import greedy_earliest_fit
from repro.core.instance import Instance
from repro.core.metrics import (
    ScheduleMetrics,
    average_response_time,
    max_response_time,
    response_times,
    total_response_time,
)
from repro.core.schedule import Schedule
from repro.core.switch import Switch
from tests.conftest import capacitated_instances


def _sched(inst, rounds):
    return Schedule.from_mapping(inst, dict(enumerate(rounds)))


class TestResponseTimes:
    def test_immediate_schedule_has_response_one(self):
        inst = Instance.create(Switch.create(2), [Flow(0, 1, 1, 3)])
        s = _sched(inst, [3])
        assert response_times(s).tolist() == [1]

    def test_delay_adds_to_response(self):
        inst = Instance.create(Switch.create(2), [Flow(0, 1, 1, 2)])
        s = _sched(inst, [5])
        assert response_times(s).tolist() == [4]

    def test_total_and_average(self, small_instance):
        s = _sched(small_instance, [0, 1, 2, 1, 1, 2])
        rts = response_times(s)
        assert total_response_time(s) == int(rts.sum())
        assert average_response_time(s) == rts.mean()

    def test_max_response(self, small_instance):
        s = _sched(small_instance, [0, 1, 4, 1, 1, 2])
        assert max_response_time(s) == 5

    def test_empty_instance_metrics(self):
        inst = Instance.create(Switch.create(2), [])
        s = Schedule(inst, np.zeros(0, dtype=np.int64))
        assert total_response_time(s) == 0
        assert average_response_time(s) == 0.0
        assert max_response_time(s) == 0


class TestScheduleMetrics:
    def test_of_summary(self, small_instance):
        s = _sched(small_instance, [0, 1, 2, 1, 1, 3])
        m = ScheduleMetrics.of(s)
        assert m.num_flows == 6
        assert m.total_response == total_response_time(s)
        assert m.max_response == max_response_time(s)
        assert m.makespan == s.makespan()
        assert m.max_augmentation == 0

    @given(capacitated_instances())
    def test_response_at_least_one_per_flow(self, inst):
        schedule = greedy_earliest_fit(inst)
        if inst.num_flows:
            assert (response_times(schedule) >= 1).all()
            assert total_response_time(schedule) >= inst.num_flows

    @given(capacitated_instances())
    def test_avg_le_max(self, inst):
        schedule = greedy_earliest_fit(inst)
        assert average_response_time(schedule) <= max_response_time(schedule)
