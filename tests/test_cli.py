"""Tests for the ``python -m repro`` command-line interface."""

import json
import subprocess
import sys

import pytest

from repro.__main__ import build_parser, main


@pytest.fixture
def trace(tmp_path):
    path = tmp_path / "trace.json"
    assert (
        main(
            [
                "generate",
                str(path),
                "--ports",
                "5",
                "--mean",
                "4",
                "--rounds",
                "3",
                "--seed",
                "7",
            ]
        )
        == 0
    )
    return path


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_fig_flags(self):
        args = build_parser().parse_args(["fig6", "--quick", "--no-lp"])
        assert args.quick and args.no_lp and not args.paper_scale

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])


class TestCommands:
    def test_generate_writes_trace(self, trace):
        data = json.loads(trace.read_text())
        assert data["switch"]["num_inputs"] == 5
        assert len(data["flows"]) > 0

    def test_simulate(self, trace, capsys):
        assert main(["simulate", str(trace), "--policy", "MaxCard"]) == 0
        out = capsys.readouterr().out
        assert "MaxCard" in out
        assert "avg_rt" in out

    def test_solve_mrt_with_output(self, trace, tmp_path, capsys):
        out_path = tmp_path / "sched.json"
        assert main(["solve-mrt", str(trace), "--out", str(out_path)]) == 0
        assert "rho*" in capsys.readouterr().out
        payload = json.loads(out_path.read_text())
        assert "assignment" in payload
        assert payload["metrics"]["num_flows"] == len(payload["assignment"])

    def test_solve_art(self, trace, capsys):
        assert main(["solve-art", str(trace), "-c", "2"]) == 0
        out = capsys.readouterr().out
        assert "capacity blowup" in out
        assert "1+c = 3x" in out

    def test_probe_open_problem(self, capsys):
        assert (
            main(
                [
                    "probe-open-problem",
                    "--ports",
                    "3",
                    "--rounds",
                    "4",
                    "--trials",
                    "2",
                ]
            )
            == 0
        )
        assert "worst observed constant" in capsys.readouterr().out

    def test_fig6_quick_no_lp(self, capsys):
        assert main(["fig6", "--quick", "--no-lp"]) == 0
        assert "Figure 6 panel" in capsys.readouterr().out

    def test_list_solvers(self, capsys):
        assert main(["list-solvers"]) == 0
        out = capsys.readouterr().out
        for name in ("FS-ART", "FS-MRT", "MaxWeight", "SEBF", "Greedy"):
            assert name in out
        for kind in ("offline:", "online:", "coflow:"):
            assert kind in out

    def test_solve_generic(self, trace, tmp_path, capsys):
        out_path = tmp_path / "greedy.json"
        assert (
            main(["solve", str(trace), "--solver", "Greedy",
                  "--out", str(out_path)])
            == 0
        )
        out = capsys.readouterr().out
        assert "solver Greedy (offline)" in out
        payload = json.loads(out_path.read_text())
        assert payload["metrics"]["num_flows"] == len(payload["assignment"])

    def test_solve_with_params(self, trace, capsys):
        assert (
            main(["solve", str(trace), "--solver", "TimeConstrained",
                  "-p", "rho=8"])
            == 0
        )
        out = capsys.readouterr().out
        assert "solver TimeConstrained (offline)" in out
        assert "feasible = True" in out

    def test_solve_unknown_solver(self, trace):
        with pytest.raises(SystemExit, match="unknown solver"):
            main(["solve", str(trace), "--solver", "NoSuch"])

    def test_solve_bad_param_syntax(self, trace):
        with pytest.raises(SystemExit):
            main(["solve", str(trace), "-p", "noequalsign"])

    def test_solve_kind_mismatch_exits_cleanly(self, trace):
        with pytest.raises(SystemExit, match="CoflowInstance"):
            main(["solve", str(trace), "--solver", "SEBF"])

    def test_solve_bad_param_name_exits_cleanly(self, trace):
        with pytest.raises(SystemExit, match="bogus"):
            main(["solve", str(trace), "--solver", "Greedy", "-p", "bogus=1"])

    def test_missing_trace_exits_cleanly(self, tmp_path):
        missing = str(tmp_path / "nope.json")
        for argv in (["solve", missing], ["simulate", missing],
                     ["solve-mrt", missing]):
            with pytest.raises(SystemExit, match="No such file"):
                main(argv)

    def test_simulate_unknown_policy_exits_cleanly(self, trace):
        with pytest.raises(SystemExit, match="unknown solver"):
            main(["simulate", str(trace), "--policy", "NoSuch"])

    def test_simulate_non_online_solver_exits_cleanly(self, trace):
        with pytest.raises(SystemExit, match="expected 'online'"):
            main(["simulate", str(trace), "--policy", "SEBF"])

    def test_solve_param_named_kind_reaches_solver(self, trace):
        # -p names must never bind _run_on_trace's own arguments.
        with pytest.raises(SystemExit, match="kind"):
            main(["solve", str(trace), "--solver", "Greedy",
                  "-p", "kind=coflow"])

    def test_solve_infeasible_exits_1_without_out(self, trace, capsys):
        assert (
            main(["solve", str(trace), "--solver", "TimeConstrained",
                  "-p", "rho=1"])
            == 1
        )
        assert "infeasible" in capsys.readouterr().out

    def test_fig_jobs_flag_parses(self):
        args = build_parser().parse_args(["fig7", "--quick", "--jobs", "2"])
        assert args.jobs == 2

    def test_fig_batch_flags_parse(self):
        args = build_parser().parse_args(
            ["fig6", "--quick", "--batch-trials", "4"]
        )
        assert args.batch_trials == 4 and not args.no_batch
        args = build_parser().parse_args(["fig7", "--quick", "--no-batch"])
        assert args.no_batch and args.batch_trials is None

    def test_fig_batch_trials_must_be_positive(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["fig6", "--quick", "--batch-trials", "0"]
            )

    def test_fig6_no_batch_renders_identically(self, capsys):
        assert main(["fig6", "--quick", "--no-lp"]) == 0
        batched = capsys.readouterr().out
        assert main(["fig6", "--quick", "--no-lp", "--no-batch"]) == 0
        assert capsys.readouterr().out == batched
        assert main(
            ["fig6", "--quick", "--no-lp", "--batch-trials", "2"]
        ) == 0
        assert capsys.readouterr().out == batched

    def test_fig_cache_flags_parse(self):
        args = build_parser().parse_args(
            ["fig7", "--quick", "--cache-dir", "/tmp/c", "--resume"]
        )
        assert args.cache_dir == "/tmp/c" and args.resume and not args.no_cache

    def test_fig_cache_flags_require_dir(self):
        for flag in ("--resume", "--no-cache"):
            with pytest.raises(SystemExit, match="require --cache-dir"):
                main(["fig7", "--quick", flag])

    def test_fig_resume_no_cache_exclusive(self):
        with pytest.raises(SystemExit, match="mutually exclusive"):
            main(["fig7", "--quick", "--cache-dir", "/tmp/c",
                  "--resume", "--no-cache"])

    def test_fig7_cache_dir_roundtrip(self, tmp_path, capsys):
        from repro.lp.bounds import clear_bound_caches

        cache = str(tmp_path / "cache")
        assert main(["fig7", "--quick", "--cache-dir", cache]) == 0
        first = capsys.readouterr().out
        clear_bound_caches()
        assert main(["fig7", "--quick", "--cache-dir", cache]) == 0
        second = capsys.readouterr().out
        assert first == second  # cache-warm rerun renders identically
        assert list((tmp_path / "cache").glob("results-*.jsonl"))

    def test_solve_scenario(self, capsys):
        assert (
            main(["solve", "--scenario", "hotspot:ports=8,mean=4,horizon=5",
                  "--solver", "MaxCard"])
            == 0
        )
        out = capsys.readouterr().out
        assert "solver MaxCard (online)" in out

    def test_solve_scenario_seed_changes_instance(self, capsys):
        outs = []
        for seed in ("1", "2"):
            assert (
                main(["solve", "--scenario",
                      "paper-default:ports=8,mean=4,horizon=5",
                      "--seed", seed, "--solver", "Greedy"])
                == 0
            )
            outs.append(capsys.readouterr().out)
        assert outs[0] != outs[1]

    def test_solve_rejects_trace_and_scenario(self, trace):
        with pytest.raises(SystemExit, match="exactly one"):
            main(["solve", str(trace), "--scenario", "paper-default"])

    def test_solve_rejects_neither(self):
        with pytest.raises(SystemExit, match="exactly one"):
            main(["solve"])

    def test_solve_unknown_scenario_exits_cleanly(self):
        with pytest.raises(SystemExit, match="unknown scenario"):
            main(["solve", "--scenario", "frobnicate"])

    def test_solve_bad_scenario_param_exits_cleanly(self):
        with pytest.raises(SystemExit, match="unknown parameter"):
            main(["solve", "--scenario", "paper-default:typo=1"])

    def test_scenarios_list(self, capsys):
        assert main(["scenarios", "list"]) == 0
        out = capsys.readouterr().out
        for name in ("paper-default", "hotspot", "incast", "trace-replay",
                     "onoff-bursty", "diurnal", "heavy-tailed",
                     "permutation"):
            assert name in out
        assert "defaults:" in out

    def test_scenarios_list_json(self, capsys):
        assert main(["scenarios", "list", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        names = [entry["name"] for entry in payload]
        assert "paper-default" in names and names == sorted(names)
        by_name = {e["name"]: e for e in payload}
        assert by_name["hotspot"]["params"]["zipf_exponent"] == 1.2
        assert by_name["trace-replay"]["horizon"] is None

    def test_list_solvers_json(self, capsys):
        assert main(["list-solvers", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert set(payload) == {"offline", "online", "coflow"}
        online = {entry["name"] for entry in payload["online"]}
        assert {"MaxCard", "MaxWeight", "AMRT"} <= online
        assert all("summary" in e for k in payload for e in payload[k])

    def test_generate_rejects_poisson_flags_with_scenario(self, tmp_path):
        with pytest.raises(SystemExit, match="ports=32,horizon=20"):
            main(["generate", str(tmp_path / "t.json"),
                  "--scenario", "hotspot", "--ports", "48"])

    def test_generate_scenario_trace_round_trips(self, tmp_path, capsys):
        out = tmp_path / "scenario.json"
        assert (
            main(["generate", str(out), "--scenario",
                  "permutation:ports=6,horizon=4", "--seed", "3"])
            == 0
        )
        assert "wrote" in capsys.readouterr().out
        assert main(["solve", str(out), "--solver", "Greedy"]) == 0

    def test_module_invocation(self, trace):
        result = subprocess.run(
            [sys.executable, "-m", "repro", "simulate", str(trace)],
            capture_output=True,
            text=True,
            timeout=300,
        )
        assert result.returncode == 0
        assert "MaxWeight" in result.stdout


class TestObsCommands:
    def test_fig6_trace_writes_span_log_and_table(self, tmp_path, capsys):
        from repro.obs import read_spans, validate_span

        log = tmp_path / "sweep.jsonl"
        assert main(["fig6", "--quick", "--no-lp", "--trace", str(log)]) == 0
        out = capsys.readouterr().out
        assert "span log written" in out
        assert "%wall" in out  # per-phase attribution table
        spans = read_spans(str(log))
        assert spans
        for s in spans:
            assert validate_span(s) == []

    def test_trace_export_and_report(self, tmp_path, capsys):
        from repro.obs import JsonlSink, Tracer

        log = tmp_path / "spans.jsonl"
        tracer = Tracer(sink=JsonlSink(str(log)))
        with tracer.span("alpha"):
            with tracer.span("beta"):
                pass
        tracer.finish()

        chrome = tmp_path / "spans.trace.json"
        assert main(["trace", "export", str(log), str(chrome)]) == 0
        assert "trace events" in capsys.readouterr().out
        payload = json.loads(chrome.read_text())
        names = {e.get("name") for e in payload["traceEvents"]}
        assert {"alpha", "beta"} <= names

        assert main(["trace", "report", str(log)]) == 0
        out = capsys.readouterr().out
        assert "alpha" in out and "%wall" in out

    def test_fig6_profile_without_trace_still_samples(self, capsys):
        # --profile alone must see open spans: the CLI supplies an
        # in-memory tracer so the sampler has something to attribute to.
        assert main(["fig6", "--quick", "--no-lp", "--profile"]) == 0
        assert "samples total" in capsys.readouterr().out


class TestVerifyCommand:
    def test_verify_trace_cross_checks(self, trace, capsys):
        assert main(["verify", str(trace), "--solvers", "Greedy,FS-MRT"]) == 0
        assert "certified" in capsys.readouterr().out

    def test_verify_scenario_with_metamorphic(self, capsys):
        assert (
            main(["verify", "--scenario", "hotspot:ports=5,mean=2,horizon=4",
                  "--solvers", "Greedy", "--metamorphic"])
            == 0
        )
        assert "certified" in capsys.readouterr().out

    def test_verify_report_round_trip(self, trace, tmp_path, capsys):
        report_path = tmp_path / "report.json"
        assert (
            main(["solve", str(trace), "--solver", "FS-MRT",
                  "--report-out", str(report_path)])
            == 0
        )
        assert "full report written" in capsys.readouterr().out
        assert main(["verify", "--report", str(report_path)]) == 0

    def test_verify_corrupted_report_exits_1(self, trace, tmp_path, capsys):
        report_path = tmp_path / "report.json"
        main(["solve", str(trace), "--solver", "Greedy",
              "--report-out", str(report_path)])
        capsys.readouterr()
        data = json.loads(report_path.read_text())
        data["lower_bounds"] = {"lp_total_response": 1e9}
        report_path.write_text(json.dumps(data))
        assert main(["verify", "--report", str(report_path)]) == 1
        assert "bound-above-objective" in capsys.readouterr().out

    def test_verify_type_corrupted_report_exits_1(self, trace, tmp_path,
                                                  capsys):
        # A hand-edited report with a non-numeric bound must yield a
        # structured malformed-bound violation, not a traceback.
        report_path = tmp_path / "report.json"
        main(["solve", str(trace), "--solver", "Greedy",
              "--report-out", str(report_path)])
        capsys.readouterr()
        data = json.loads(report_path.read_text())
        data["lower_bounds"] = {"rho_star": "oops"}
        report_path.write_text(json.dumps(data))
        assert main(["verify", "--report", str(report_path)]) == 1
        assert "malformed-bound" in capsys.readouterr().out

    def test_verify_infeasible_report_certifies(self, trace, tmp_path,
                                                capsys):
        # A legitimate infeasibility certificate (TimeConstrained with a
        # hopeless rho) is a well-formed report, not a verification
        # failure: solve exits 1, verify exits 0.
        report_path = tmp_path / "infeasible.json"
        assert (
            main(["solve", str(trace), "--solver", "TimeConstrained",
                  "-p", "rho=1", "--report-out", str(report_path)])
            == 1
        )
        capsys.readouterr()
        assert main(["verify", "--report", str(report_path)]) == 0
        assert "certified" in capsys.readouterr().out

    def test_verify_cache_dir_skips_superseded_records(self, tmp_path,
                                                       capsys):
        # Last-writer-wins: a corrupt record superseded by a refreshed
        # shard can never be served again, so the verifier must certify
        # the store clean (and count only live records).
        import os

        record = {
            "solver": "Greedy", "kind": "offline",
            "metrics": {
                "num_flows": 2, "total_response": 4,
                "average_response": 2.0, "max_response": 3,
                "makespan": 3, "max_augmentation": 0,
            },
            "schedule": None, "lower_bounds": {}, "timings": {},
            "params": {}, "extras": {},
        }
        broken = json.loads(json.dumps(record))
        broken["metrics"]["average_response"] = 9.0
        cache = tmp_path / "cache"
        cache.mkdir()
        old = cache / "results-1-old.jsonl"
        new = cache / "results-2-new.jsonl"
        old.write_text(json.dumps({"key": "k", "report": broken}) + "\n")
        new.write_text(json.dumps({"key": "k", "report": record}) + "\n")
        os.utime(old, ns=(1, 1))  # force the ordering the store uses
        assert main(["verify", "--cache-dir", str(cache)]) == 0
        assert "certified" in capsys.readouterr().out

    def test_verify_json_output(self, trace, capsys):
        assert main(["verify", str(trace), "--solvers", "Greedy",
                     "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["violations"] == []
        assert payload["checks"]

    def test_verify_requires_exactly_one_source(self, trace, tmp_path):
        with pytest.raises(SystemExit, match="exactly one"):
            main(["verify"])
        with pytest.raises(SystemExit, match="exactly one"):
            main(["verify", str(trace), "--cache-dir", str(tmp_path)])

    def test_verify_rejects_stray_flags_in_replay_modes(self, trace,
                                                        tmp_path):
        # --metamorphic/--solvers only apply when an instance is built;
        # silently ignoring them would claim certification for checks
        # that never ran.
        report_path = tmp_path / "r.json"
        main(["solve", str(trace), "--solver", "Greedy",
              "--report-out", str(report_path)])
        with pytest.raises(SystemExit, match="--metamorphic applies"):
            main(["verify", "--report", str(report_path), "--metamorphic"])
        with pytest.raises(SystemExit, match="--solvers applies"):
            main(["verify", "--cache-dir", str(tmp_path),
                  "--solvers", "Greedy"])

    def test_verify_unknown_solver_exits_cleanly(self, trace):
        with pytest.raises(SystemExit, match="unknown solver"):
            main(["verify", str(trace), "--solvers", "NoSuchSolver"])

    def test_verify_empty_cache_dir_exits_cleanly(self, tmp_path):
        with pytest.raises(SystemExit, match="no result shards"):
            main(["verify", "--cache-dir", str(tmp_path)])

    def test_verify_all_torn_shards_exits_cleanly(self, tmp_path):
        # Shards present but zero readable records: a clear error beats
        # "0 violation(s) (0 check(s))".
        (tmp_path / "results-1-x.jsonl").write_text('{"torn...')
        with pytest.raises(SystemExit, match="no readable records"):
            main(["verify", "--cache-dir", str(tmp_path)])

    def test_verify_unreadable_report_exits_cleanly(self, tmp_path):
        bad = tmp_path / "nope.json"
        with pytest.raises(SystemExit, match="cannot load report"):
            main(["verify", "--report", str(bad)])

    def test_fig_verify_flag_parses(self):
        args = build_parser().parse_args(["fig6", "--quick", "--verify"])
        assert args.verify


class TestServiceCommands:
    def test_serve_requires_exactly_one_dir(self, tmp_path):
        with pytest.raises(SystemExit, match="exactly one"):
            main(["serve"])
        with pytest.raises(SystemExit, match="exactly one"):
            main(["serve", "--cache-dir", str(tmp_path),
                  "--join", str(tmp_path)])

    def test_submit_requires_exactly_one_source(self, trace):
        with pytest.raises(SystemExit, match="exactly one"):
            main(["submit"])
        with pytest.raises(SystemExit, match="exactly one"):
            main(["submit", str(trace), "--scenario", "hotspot"])

    def test_serve_join_drains_queue_until_sigterm(self, tmp_path, capsys):
        """Worker-only mode: enqueue one job, run ``serve --join`` in the
        main thread, SIGTERM it from a watcher once the job completes."""
        import os
        import signal
        import threading
        import time

        from repro.api.store import canonical_key, live_records
        from repro.service import Job, JobQueue
        from repro.workloads.synthetic import poisson_uniform_workload

        cache = tmp_path / "cache"
        cache.mkdir()
        instance = poisson_uniform_workload(4, 3.0, 3, seed=11)
        key = canonical_key("Greedy", instance.digest(), {})
        queue = JobQueue(cache)
        assert queue.enqueue(
            Job(key=key, solver="Greedy", instance=instance.to_dict())
        )

        def stop_when_done():
            deadline = time.monotonic() + 60
            while time.monotonic() < deadline and not queue.done_keys():
                time.sleep(0.05)
            os.kill(os.getpid(), signal.SIGTERM)

        watcher = threading.Thread(target=stop_when_done)
        old = {
            sig: signal.getsignal(sig)
            for sig in (signal.SIGINT, signal.SIGTERM)
        }
        watcher.start()
        try:
            rc = main(["serve", "--join", str(cache), "--workers", "1"])
        finally:
            watcher.join()
            for sig, handler in old.items():
                signal.signal(sig, handler)
        assert rc == 0
        out = capsys.readouterr().out
        assert "joined work queue" in out
        assert "workers drained; stopped cleanly" in out
        records = live_records(str(cache))
        assert list(records) == [key]

    def test_serve_full_service_drains_on_sigterm(self, tmp_path, capsys):
        """Full mode: drive a solve through a live ``repro serve`` from a
        helper thread, then SIGTERM the (main-thread) event loop."""
        import os
        import signal
        import socket
        import threading
        import time

        from repro.service import ServiceClient

        sock = socket.socket()
        sock.bind(("127.0.0.1", 0))
        port = sock.getsockname()[1]
        sock.close()
        outcome = {}

        def drive():
            client = ServiceClient(f"http://127.0.0.1:{port}", timeout=60)
            deadline = time.monotonic() + 60
            while time.monotonic() < deadline:
                try:
                    client.healthz()
                    break
                except Exception:
                    time.sleep(0.05)
            try:
                outcome["response"] = client.solve(
                    "Greedy",
                    scenario="hotspot:ports=8,mean=4,horizon=6",
                    seed=5,
                )
            finally:
                os.kill(os.getpid(), signal.SIGTERM)

        driver = threading.Thread(target=drive)
        driver.start()
        try:
            rc = main([
                "serve", "--cache-dir", str(tmp_path / "cache"),
                "--port", str(port), "--workers", "1",
            ])
        finally:
            driver.join()
        assert rc == 0
        assert outcome["response"].source == "solved"
        out = capsys.readouterr().out
        assert "solve service on" in out
        assert "draining..." in out
        assert "stopped cleanly" in out

    def test_submit_unreachable_service_exits_cleanly(self):
        with pytest.raises(SystemExit, match="cannot reach"):
            main(["submit", "--scenario", "hotspot:ports=8",
                  "--address", "http://127.0.0.1:1", "--http-timeout", "2"])

    def test_submit_round_trip_against_live_service(self, tmp_path, capsys):
        from repro.service import ServiceThread

        with ServiceThread(
            str(tmp_path / "cache"), workers=1, worker_mode="thread"
        ) as svc:
            rc = main([
                "submit", "--address", svc.address,
                "--scenario", "hotspot:ports=8,mean=4,horizon=6",
                "--solver", "Greedy", "--seed", "3", "--verify",
            ])
            assert rc == 0
            out = capsys.readouterr().out
            assert "via solved (certified)" in out
            # JSON mode round-trips the raw protocol response.
            rc = main([
                "submit", "--address", svc.address,
                "--scenario", "hotspot:ports=8,mean=4,horizon=6",
                "--solver", "Greedy", "--seed", "3", "--json",
            ])
            assert rc == 0
            response = json.loads(capsys.readouterr().out)
            assert response["source"] == "cache"
            assert response["report"]["solver"] == "Greedy"


class TestBenchCommand:
    def test_bench_unknown_suite_exits_cleanly(self):
        with pytest.raises(SystemExit, match="unknown suite"):
            main(["bench", "--only", "nope"])

    def test_bench_missing_dir_exits_cleanly(self):
        with pytest.raises(SystemExit, match="not found"):
            main(["bench", "--bench-dir", "no-such-dir"])

    def test_bench_writes_normalized_snapshot(self, tmp_path, capsys):
        """End-to-end on a synthetic suite (the real ones are minutes)."""
        suite = tmp_path / "bench_toy.py"
        suite.write_text(
            "import argparse, json, time\n"
            "def main(argv=None):\n"
            "    p = argparse.ArgumentParser()\n"
            "    p.add_argument('--json-out')\n"
            "    p.add_argument('--quick', action='store_true')\n"
            "    a = p.parse_args(argv)\n"
            "    t0 = time.perf_counter()\n"
            "    sum(i * i for i in range(100_000))\n"
            "    s = time.perf_counter() - t0\n"
            "    payload = {'op': {'seconds': s, 'quick': a.quick},\n"
            "               'untimed': {'count': 3}}\n"
            "    json.dump(payload, open(a.json_out, 'w'))\n"
            "    return 0\n"
            "# --json-out\n"
        )
        rc = main([
            "bench", "--quick", "--bench-dir", str(tmp_path),
            "--out-dir", str(tmp_path / "out"),
        ])
        assert rc == 0
        assert "snapshot" in capsys.readouterr().out
        snapshot = json.loads(
            (tmp_path / "out" / "BENCH_toy.json").read_text()
        )
        assert snapshot["schema_version"] == 1
        assert snapshot["suite"] == "toy"
        assert snapshot["quick"] is True
        baseline = snapshot["baseline_op"]["seconds"]
        cell = snapshot["results"]["op"]
        assert cell["quick"] is True
        assert cell["vs_baseline"] == pytest.approx(
            cell["seconds"] / baseline, rel=1e-3
        )
        # Untimed fields pass through unnormalized.
        assert snapshot["results"]["untimed"] == {"count": 3}
        # The scratch file is cleaned up.
        assert not list((tmp_path / "out").glob(".bench-raw-*"))

    def test_bench_failing_suite_exits_cleanly(self, tmp_path):
        suite = tmp_path / "bench_sad.py"
        suite.write_text(
            "# synthetic failing suite\n"
            "def main(argv=None):\n"
            "    import json, argparse\n"
            "    p = argparse.ArgumentParser()\n"
            "    p.add_argument('--json-out')\n"
            "    p.add_argument('--quick', action='store_true')\n"
            "    a = p.parse_args(argv)\n"
            "    json.dump({}, open(a.json_out, 'w'))\n"
            "    return 3\n"
            "# --json-out\n"
        )
        with pytest.raises(SystemExit, match="exit 3"):
            main(["bench", "--bench-dir", str(tmp_path),
                  "--out-dir", str(tmp_path / "out")])

    def test_committed_snapshots_are_current_schema(self):
        """The repo-root BENCH_*.json snapshots stay loadable and
        normalized (guards the committed perf history)."""
        from pathlib import Path

        root = Path(__file__).resolve().parent.parent
        snapshots = sorted(root.glob("BENCH_*.json"))
        assert snapshots, "committed BENCH_*.json snapshots are missing"
        for path in snapshots:
            data = json.loads(path.read_text())
            assert data["schema_version"] == 1, path
            assert data["baseline_op"]["seconds"] > 0, path
            text = json.dumps(data)
            assert "_vs_baseline" in text or '"vs_baseline"' in text, path

    def test_committed_sweep_snapshot_schema(self):
        """BENCH_sweep.json carries the trial-batching acceptance data:
        the Figure-6-shaped trials grid, byte-identity, the >= 5x
        headline cell, and the honest 10x-roadmap report."""
        from pathlib import Path

        root = Path(__file__).resolve().parent.parent
        data = json.loads((root / "BENCH_sweep.json").read_text())
        assert data["suite"] == "sweep"
        results = data["results"]
        cells = results["cells"]
        fifo_third = [
            c
            for c in cells.values()
            if c["policy"] == "FIFO" and abs(c["load"] - 1 / 3) < 1e-3
        ]
        assert sorted(c["trials"] for c in fifo_third) == [8, 32, 128]
        for cell in cells.values():
            assert cell["byte_identical"] is True
            assert cell["serial_vs_baseline"] > 0
            assert cell["batched_vs_baseline"] > 0
        headline = results["headline"]
        assert headline["target"] == 5.0
        assert headline["meets_target"] is True
        assert cells[headline["cell"]]["speedup"] >= 5.0
        roadmap = results["roadmap_10x"]
        assert roadmap["target"] == 10.0
        assert isinstance(roadmap["met"], bool)
        assert roadmap["best_speedup"] >= 5.0


def _write_factor_suite(bench_dir, factor_path):
    """A toy suite whose measured 'seconds' is read from a control file,
    so --check regressions can be staged deterministically."""
    bench_dir.mkdir(parents=True, exist_ok=True)
    (bench_dir / "bench_toy.py").write_text(
        "import argparse, json\n"
        "def main(argv=None):\n"
        "    p = argparse.ArgumentParser()\n"
        "    p.add_argument('--json-out')\n"
        "    p.add_argument('--quick', action='store_true')\n"
        "    a = p.parse_args(argv)\n"
        f"    factor = float(open({str(factor_path)!r}).read())\n"
        "    payload = {'op': {'seconds': 0.002 * factor}}\n"
        "    json.dump(payload, open(a.json_out, 'w'))\n"
        "    return 0\n"
        "# --json-out\n"
    )


class TestBenchCheck:
    def test_check_passes_then_flags_regression(self, tmp_path, capsys):
        factor = tmp_path / "factor.txt"
        factor.write_text("1.0")
        bench_dir = tmp_path / "benchmarks"
        _write_factor_suite(bench_dir, factor)
        out_dir = tmp_path / "out"
        base = ["bench", "--bench-dir", str(bench_dir),
                "--out-dir", str(out_dir)]
        assert main(base) == 0
        committed = (out_dir / "BENCH_toy.json").read_text()
        capsys.readouterr()

        assert main(base + ["--check"]) == 0
        assert "bench check passed" in capsys.readouterr().out

        factor.write_text("10.0")  # 10x slower than the committed ratio
        assert main(base + ["--check"]) == 1
        out = capsys.readouterr().out
        assert "REGRESSION" in out and "bench check FAILED" in out
        # The committed snapshot is never rewritten by --check.
        assert (out_dir / "BENCH_toy.json").read_text() == committed
        assert not list(out_dir.glob(".bench-raw-*"))

    def test_check_skips_suite_without_snapshot(self, tmp_path, capsys):
        factor = tmp_path / "factor.txt"
        factor.write_text("1.0")
        bench_dir = tmp_path / "benchmarks"
        _write_factor_suite(bench_dir, factor)
        out_dir = tmp_path / "out"
        base = ["bench", "--bench-dir", str(bench_dir),
                "--out-dir", str(out_dir)]
        assert main(base) == 0
        # A second, never-snapshotted suite must not fail the gate.
        (bench_dir / "bench_new.py").write_text(
            (bench_dir / "bench_toy.py").read_text()
        )
        capsys.readouterr()
        assert main(base + ["--check"]) == 0
        out = capsys.readouterr().out
        assert "'new' has no committed snapshot; skipped" in out

    def test_check_without_any_snapshot_errors(self, tmp_path):
        factor = tmp_path / "factor.txt"
        factor.write_text("1.0")
        bench_dir = tmp_path / "benchmarks"
        _write_factor_suite(bench_dir, factor)
        with pytest.raises(SystemExit, match="no committed BENCH"):
            main(["bench", "--bench-dir", str(bench_dir),
                  "--out-dir", str(tmp_path / "empty"), "--check"])

    def test_check_reruns_in_committed_quick_mode(self, tmp_path, capsys):
        """--check must re-run each suite in its committed snapshot's own
        quick mode, not the flag's — else full-mode snapshots would be
        compared against quick-mode reruns."""
        factor = tmp_path / "factor.txt"
        factor.write_text("1.0")
        bench_dir = tmp_path / "benchmarks"
        bench_dir.mkdir()
        # Marker suite: quick mode would write a wildly different value.
        (bench_dir / "bench_modal.py").write_text(
            "import argparse, json\n"
            "def main(argv=None):\n"
            "    p = argparse.ArgumentParser()\n"
            "    p.add_argument('--json-out')\n"
            "    p.add_argument('--quick', action='store_true')\n"
            "    a = p.parse_args(argv)\n"
            "    s = 0.1 if a.quick else 0.002\n"
            "    json.dump({'op': {'seconds': s}}, open(a.json_out, 'w'))\n"
            "    return 0\n"
            "# --json-out\n"
        )
        out_dir = tmp_path / "out"
        base = ["bench", "--bench-dir", str(bench_dir),
                "--out-dir", str(out_dir)]
        assert main(base) == 0  # committed in full mode
        capsys.readouterr()
        # Passing --quick alongside --check must not flip the rerun mode.
        assert main(base + ["--check", "--quick"]) == 0
        assert "bench check passed" in capsys.readouterr().out

    def test_collect_ratios_paths(self):
        from repro.bench import collect_ratios

        payload = {
            "a": {"x_vs_baseline": 2.0, "x_seconds": 0.1},
            "list": [{"vs_baseline": 1.5}, {"other": True}],
            "skip": {"vs_baseline": "not-a-number"},
        }
        assert collect_ratios(payload) == {
            "a.x_vs_baseline": 2.0,
            "list[0].vs_baseline": 1.5,
        }
