"""Tests for the ``python -m repro`` command-line interface."""

import json
import subprocess
import sys

import pytest

from repro.__main__ import build_parser, main


@pytest.fixture
def trace(tmp_path):
    path = tmp_path / "trace.json"
    assert (
        main(
            [
                "generate",
                str(path),
                "--ports",
                "5",
                "--mean",
                "4",
                "--rounds",
                "3",
                "--seed",
                "7",
            ]
        )
        == 0
    )
    return path


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_fig_flags(self):
        args = build_parser().parse_args(["fig6", "--quick", "--no-lp"])
        assert args.quick and args.no_lp and not args.paper_scale

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])


class TestCommands:
    def test_generate_writes_trace(self, trace):
        data = json.loads(trace.read_text())
        assert data["switch"]["num_inputs"] == 5
        assert len(data["flows"]) > 0

    def test_simulate(self, trace, capsys):
        assert main(["simulate", str(trace), "--policy", "MaxCard"]) == 0
        out = capsys.readouterr().out
        assert "MaxCard" in out
        assert "avg_rt" in out

    def test_solve_mrt_with_output(self, trace, tmp_path, capsys):
        out_path = tmp_path / "sched.json"
        assert main(["solve-mrt", str(trace), "--out", str(out_path)]) == 0
        assert "rho*" in capsys.readouterr().out
        payload = json.loads(out_path.read_text())
        assert "assignment" in payload
        assert payload["metrics"]["num_flows"] == len(payload["assignment"])

    def test_solve_art(self, trace, capsys):
        assert main(["solve-art", str(trace), "-c", "2"]) == 0
        out = capsys.readouterr().out
        assert "capacity blowup" in out
        assert "1+c = 3x" in out

    def test_probe_open_problem(self, capsys):
        assert (
            main(
                [
                    "probe-open-problem",
                    "--ports",
                    "3",
                    "--rounds",
                    "4",
                    "--trials",
                    "2",
                ]
            )
            == 0
        )
        assert "worst observed constant" in capsys.readouterr().out

    def test_fig6_quick_no_lp(self, capsys):
        assert main(["fig6", "--quick", "--no-lp"]) == 0
        assert "Figure 6 panel" in capsys.readouterr().out

    def test_module_invocation(self, trace):
        result = subprocess.run(
            [sys.executable, "-m", "repro", "simulate", str(trace)],
            capture_output=True,
            text=True,
            timeout=300,
        )
        assert result.returncode == 0
        assert "MaxWeight" in result.stdout
