"""Old-vs-new simulator equivalence and FlowQueue invariants.

``_reference_simulate`` is a line-for-line port of the seed repository's
``repro.online.simulator.simulate`` (waiting dict, per-round policy
``select``), with the seed's float-distance, per-call-adjacency
Hopcroft–Karp embedded for MaxCard so the reference shares no kernel code
with the rewritten stack.  The incremental engine must reproduce its
``assignment`` arrays and ``queue_history`` byte for byte on seeded
instances, for every built-in policy, on unit and capacitated switches.
"""

from collections import deque

import numpy as np
import pytest
from hypothesis import given, settings

from repro.coflow.model import random_shuffle_coflows
from repro.coflow.policies import make_coflow_policy
from repro.core.flow import Flow
from repro.core.instance import Instance
from repro.core.switch import Switch
from repro.online.policies import (
    POLICY_REGISTRY,
    MaxCardPolicy,
    OnlinePolicy,
    make_policy,
)
from repro.online.simulator import FlowQueue, simulate
from repro.utils.timing import Timer
from repro.workloads.synthetic import (
    churn_heavy_workload,
    poisson_uniform_workload,
)
from tests.conftest import capacitated_instances, unit_instances

_INF = float("inf")


def _seed_hopcroft_karp(n_left, n_right, edges):
    """The seed repo's Hopcroft–Karp (float dist, per-call adjacency)."""
    adj = [[] for _ in range(n_left)]
    for eid, (u, v) in enumerate(edges):
        adj[u].append((v, eid))
    match_left = [-1] * n_left
    match_right = [-1] * n_right
    edge_left = [-1] * n_left
    dist = [0.0] * n_left

    def bfs():
        queue = deque()
        for u in range(n_left):
            if match_left[u] == -1:
                dist[u] = 0.0
                queue.append(u)
            else:
                dist[u] = _INF
        found = False
        while queue:
            u = queue.popleft()
            for v, _eid in adj[u]:
                w = match_right[v]
                if w == -1:
                    found = True
                elif dist[w] == _INF:
                    dist[w] = dist[u] + 1
                    queue.append(w)
        return found

    def dfs(root):
        stack = [[root, 0]]
        path = []
        while stack:
            frame = stack[-1]
            u, idx = frame
            advanced = False
            while idx < len(adj[u]):
                v, eid = adj[u][idx]
                idx += 1
                frame[1] = idx
                w = match_right[v]
                if w == -1:
                    path.append((u, v, eid))
                    for pu, pv, peid in path:
                        match_left[pu] = pv
                        match_right[pv] = pu
                        edge_left[pu] = peid
                    return True
                if dist[w] == dist[u] + 1:
                    path.append((u, v, eid))
                    stack.append([w, 0])
                    advanced = True
                    break
            if not advanced:
                dist[u] = _INF
                stack.pop()
                if path:
                    path.pop()
        return False

    while bfs():
        for u in range(n_left):
            if match_left[u] == -1:
                dfs(u)
    return {u: edge_left[u] for u in range(n_left) if match_left[u] != -1}


class _SeedMaxCard(MaxCardPolicy):
    """MaxCard running on the embedded seed kernel (dict path only)."""

    def select(self, t, waiting, instance):
        if not instance.switch.is_unit_capacity:
            return self._select_packing(t, waiting, instance)
        flows = list(waiting.values())
        matching = _seed_hopcroft_karp(
            instance.switch.num_inputs,
            instance.switch.num_outputs,
            [(f.src, f.dst) for f in flows],
        )
        return [flows[eid].fid for eid in matching.values()]


def _reference_simulate(instance, policy, max_rounds=None):
    """Line-for-line port of the seed repository's simulate()."""
    n = instance.num_flows
    if n == 0:
        return np.zeros(0, dtype=np.int64), np.zeros(0, dtype=np.int64)
    if max_rounds is None:
        max_rounds = 2 * instance.horizon_bound() + 1
    by_release = instance.flows_by_release()
    assignment = np.full(n, -1, dtype=np.int64)
    waiting = {}
    scheduled_count = 0
    queue_history = []
    policy.reset(instance)
    t = 0
    while scheduled_count < n:
        if t >= max_rounds:
            raise RuntimeError("exceeded")
        for flow in by_release.get(t, ()):
            waiting[flow.fid] = flow
        queue_history.append(len(waiting))
        if waiting:
            chosen = policy.select(t, waiting, instance)
            for fid in chosen:
                assignment[fid] = t
                del waiting[fid]
            scheduled_count += len(chosen)
        t += 1
    return assignment, np.asarray(queue_history, dtype=np.int64)


def _reference_policy(name):
    if name == "MaxCard":
        return _SeedMaxCard()
    return make_policy(name)


class TestByteIdenticalToSeed:
    @pytest.mark.parametrize("name", sorted(POLICY_REGISTRY))
    def test_poisson_instance(self, name):
        inst = poisson_uniform_workload(8, 6, 15, seed=1234)
        ref_assignment, ref_history = _reference_simulate(
            inst, _reference_policy(name)
        )
        res = simulate(inst, make_policy(name))
        assert res.schedule.assignment.tolist() == ref_assignment.tolist()
        assert res.queue_history.tolist() == ref_history.tolist()

    @given(unit_instances(max_ports=4, max_flows=10))
    @settings(max_examples=25, deadline=None)
    def test_unit_property_all_policies(self, inst):
        for name in sorted(POLICY_REGISTRY):
            ref_assignment, ref_history = _reference_simulate(
                inst, _reference_policy(name)
            )
            res = simulate(inst, make_policy(name))
            assert res.schedule.assignment.tolist() == ref_assignment.tolist(), name
            assert res.queue_history.tolist() == ref_history.tolist(), name

    @given(capacitated_instances(max_flows=8))
    @settings(max_examples=25, deadline=None)
    def test_capacitated_property_all_policies(self, inst):
        for name in sorted(POLICY_REGISTRY):
            ref_assignment, ref_history = _reference_simulate(
                inst, _reference_policy(name)
            )
            res = simulate(inst, make_policy(name))
            assert res.schedule.assignment.tolist() == ref_assignment.tolist(), name
            assert res.queue_history.tolist() == ref_history.tolist(), name

    @pytest.mark.parametrize("name", ["SEBF", "CoflowFIFO"])
    def test_coflow_policies(self, name):
        cf = random_shuffle_coflows(6, 5, seed=7)
        ref_assignment, ref_history = _reference_simulate(
            cf.instance, make_coflow_policy(name, cf)
        )
        res = simulate(cf.instance, make_coflow_policy(name, cf))
        assert res.schedule.assignment.tolist() == ref_assignment.tolist()
        assert res.queue_history.tolist() == ref_history.tolist()

    def test_subclass_overriding_shared_packing_hook_is_honored(self):
        """Regression: the array fast path must disable itself when a
        subclass customizes the shared selection machinery, not just
        ``select``/``_weights``."""
        from repro.online.policies import FifoPolicy

        class LimitedFifo(FifoPolicy):
            name = "LimitedFifo"

            def _select_packing(self, t, waiting, instance):
                return super()._select_packing(t, waiting, instance)[:1]

        inst = Instance.create(
            Switch.create(4),
            [Flow(i, i, 1, 0) for i in range(4)],
        )
        res = simulate(inst, LimitedFifo())
        assert res.rounds == 4  # one flow per round, not four at once

    def test_coflow_subclass_overriding_dict_priorities_is_honored(self):
        """Regression: a co-flow subclass re-defining only the dict-path
        priorities must not silently run the parent's vectorized ones."""
        from repro.coflow.policies import CoflowSebfPolicy

        cf = random_shuffle_coflows(6, 5, seed=7)

        class ReverseSebf(CoflowSebfPolicy):
            name = "ReverseSebf"

            def _coflow_priorities(self, t, waiting):
                return {
                    cid: -p
                    for cid, p in super()._coflow_priorities(
                        t, waiting
                    ).items()
                }

        rev = ReverseSebf(cf)
        ref_assignment, _ = _reference_simulate(cf.instance, ReverseSebf(cf))
        res = simulate(cf.instance, rev)
        assert res.schedule.assignment.tolist() == ref_assignment.tolist()
        plain = simulate(cf.instance, make_coflow_policy("SEBF", cf))
        assert (
            res.schedule.assignment.tolist()
            != plain.schedule.assignment.tolist()
        )

    def test_custom_policy_uses_legacy_dict_interface(self):
        seen_waiting = []

        class HeadOnly(OnlinePolicy):
            name = "HeadOnly"

            def select(self, t, waiting, instance):
                seen_waiting.append(dict(waiting))
                return [next(iter(waiting))]

        inst = Instance.create(
            Switch.create(2), [Flow(0, 0), Flow(1, 1), Flow(0, 1)]
        )
        res = simulate(inst, HeadOnly())
        assert res.rounds == 3
        # Waiting dicts are materialized in arrival order, as the seed did.
        assert list(seen_waiting[0]) == [0, 1, 2]


class TestWarmStartMode:
    def test_warm_start_schedules_are_valid_and_counted(self):
        from repro.core.schedule import validate_schedule

        inst = poisson_uniform_workload(8, 20, 12, seed=5)
        res = simulate(inst, MaxCardPolicy(warm_start=True))
        validate_schedule(res.schedule)
        assert res.stats.get("warm_start_seeds", 0) > 0
        assert res.stats["matching_solves"] == res.rounds

    def test_warm_start_fewer_bfs_phases_on_churn_heavy_instance(self):
        # Churn-heavy: hot port pairs with deep per-pair FIFOs, so every
        # scheduled head is replaced by a parallel copy and the matched
        # pair structure survives intact round after round.  The gadget
        # (L0: r0 then r1; L1: r0 only) makes greedy first-fit start
        # suboptimally every round, so a cold solve pays an augmenting
        # phase per round that the warm start never needs.
        inst = churn_heavy_workload(gadgets=4, copies=20)
        cold = simulate(inst, MaxCardPolicy(warm_start=False))
        warm = simulate(inst, MaxCardPolicy(warm_start=True))
        assert (
            cold.schedule.assignment.tolist()
            != [] and warm.stats["bfs_phases"] < cold.stats["bfs_phases"]
        )
        # Both modes still produce maximum matchings every round, so the
        # queue drains identically.
        assert warm.rounds == cold.rounds

    def test_timer_records_matching_and_round_events(self):
        timer = Timer()
        inst = poisson_uniform_workload(4, 4, 6, seed=2)
        simulate(inst, MaxCardPolicy(), timer=timer)
        assert timer.counts.get("sim_round", 0) > 0
        assert timer.counts.get("matching_solve", 0) > 0


class TestFlowQueue:
    def _brute_pairs(self, queue):
        """Recompute the pair view from scratch for cross-checking."""
        heads = {}
        for fid in queue.alive_fids().tolist():
            key = (int(queue.srcs[fid]), int(queue.dsts[fid]))
            if key not in heads:
                heads[key] = fid
        return heads

    def test_incremental_pair_view_matches_bruteforce(self):
        rng = np.random.default_rng(0)
        n = 300
        flows = [
            Flow(int(rng.integers(0, 4)), int(rng.integers(0, 4)), 1,
                 int(rng.integers(0, 5)))
            for _ in range(n)
        ]
        inst = Instance.create(Switch.create(4), flows)
        queue = FlowQueue(inst)
        order = np.argsort(inst.releases(), kind="stable")
        queue.arrive(order[:150])
        queue.pair_adjacency()  # activate the incremental view
        alive = list(order[:150])
        pos = 150
        for step in range(40):
            # Random removals (any copies, not just heads) + arrivals.
            rng.shuffle(alive)
            kill = alive[: int(rng.integers(0, 6))]
            alive = alive[len(kill):]
            if kill:
                queue.remove(np.asarray(kill, dtype=np.int64))
            k = int(rng.integers(0, 5))
            if pos < n and k:
                batch = order[pos : pos + k]
                queue.arrive(batch)
                alive.extend(batch.tolist())
                pos += batch.size
            brute = self._brute_pairs(queue)
            adj_v, adj_f = queue.pair_adjacency()
            got = {}
            for u in range(4):
                for v, fid in zip(adj_v[u], adj_f[u]):
                    got[(u, v)] = fid
            assert got == brute, step
            # Rows stay sorted by the head's (release, fid) arrival key.
            for u in range(4):
                keys = [
                    (int(queue.releases[f]), int(f)) for f in adj_f[u]
                ]
                assert keys == sorted(keys), step
            assert queue.n_alive == len(alive)

    def test_compaction_preserves_arrival_order(self):
        inst = Instance.create(
            Switch.create(2), [Flow(0, 0, 1, 0) for _ in range(100)]
        )
        queue = FlowQueue(inst)
        queue.arrive(np.arange(100, dtype=np.int64))
        queue.remove(np.arange(0, 90, dtype=np.int64))
        assert queue.compactions >= 1
        assert queue.alive_fids().tolist() == list(range(90, 100))

    def test_port_queue_lengths_incremental(self):
        inst = Instance.create(
            Switch.create(3),
            [Flow(0, 1), Flow(0, 2), Flow(1, 1), Flow(2, 0)],
        )
        queue = FlowQueue(inst)
        queue.arrive(np.arange(4, dtype=np.int64))
        in_q, out_q = queue.port_queue_lengths()
        assert in_q.tolist() == [2, 1, 1]
        assert out_q.tolist() == [1, 2, 1]
        queue.remove(np.asarray([0], dtype=np.int64))
        in_q, out_q = queue.port_queue_lengths()
        assert in_q.tolist() == [1, 1, 1]
        assert out_q.tolist() == [1, 1, 1]
