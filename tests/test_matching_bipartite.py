"""Unit tests for the bipartite multigraph container."""

import numpy as np
import pytest

from repro.matching.bipartite import BipartiteMultigraph


class TestConstruction:
    def test_add_edge_returns_id(self):
        g = BipartiteMultigraph(2, 2)
        assert g.add_edge(0, 1) == 0
        assert g.add_edge(1, 0, payload="f") == 1
        assert g.payloads[1] == "f"
        assert g.n_edges == 2

    def test_parallel_edges_allowed(self):
        g = BipartiteMultigraph(1, 1)
        g.add_edge(0, 0)
        g.add_edge(0, 0)
        assert g.n_edges == 2
        assert g.max_degree() == 2

    def test_out_of_range_left_rejected(self):
        with pytest.raises(ValueError):
            BipartiteMultigraph(2, 2).add_edge(2, 0)

    def test_out_of_range_right_rejected(self):
        with pytest.raises(ValueError):
            BipartiteMultigraph(2, 2).add_edge(0, 2)

    def test_from_edges_with_payloads(self):
        g = BipartiteMultigraph.from_edges(2, 2, [(0, 0), (1, 1)], ["a", "b"])
        assert g.payloads == ["a", "b"]


class TestDegreesAndAdjacency:
    def _graph(self):
        g = BipartiteMultigraph(3, 2)
        for u, v in [(0, 0), (0, 1), (1, 0), (0, 0)]:
            g.add_edge(u, v)
        return g

    def test_left_degrees(self):
        assert self._graph().left_degrees().tolist() == [3, 1, 0]

    def test_right_degrees(self):
        assert self._graph().right_degrees().tolist() == [3, 1]

    def test_max_degree(self):
        assert self._graph().max_degree() == 3

    def test_max_degree_empty(self):
        assert BipartiteMultigraph(3, 3).max_degree() == 0

    def test_adjacency_left(self):
        adj = self._graph().adjacency_left()
        assert adj[0] == [0, 1, 3]
        assert adj[2] == []

    def test_adjacency_right(self):
        adj = self._graph().adjacency_right()
        assert adj[0] == [0, 2, 3]

    def test_subgraph(self):
        sub = self._graph().subgraph([1, 2])
        assert sub.n_edges == 2
        assert sub.edges == [(0, 1), (1, 0)]


class TestArrayBacking:
    def test_bulk_add_edges_matches_scalar(self):
        a = BipartiteMultigraph(3, 3)
        for u, v in [(0, 1), (2, 0), (0, 1)]:
            a.add_edge(u, v)
        b = BipartiteMultigraph(3, 3)
        b.add_edges(np.asarray([0, 2, 0]), np.asarray([1, 0, 1]))
        assert list(a.edges) == list(b.edges)
        assert a.src.tolist() == b.src.tolist()
        assert a.dst.tolist() == b.dst.tolist()

    def test_add_edges_validates_ranges(self):
        g = BipartiteMultigraph(2, 2)
        with pytest.raises(ValueError, match="left vertex"):
            g.add_edges([0, 2], [0, 0])
        with pytest.raises(ValueError, match="right vertex"):
            g.add_edges([0, 0], [0, 5])
        assert g.n_edges == 0  # failed bulk adds leave the graph untouched

    def test_from_arrays_with_payload_array(self):
        g = BipartiteMultigraph.from_arrays(
            2, 2, np.asarray([0, 1]), np.asarray([1, 0]),
            np.asarray([10, 11]),
        )
        assert g.payloads == [10, 11]

    def test_csr_matches_adjacency(self):
        g = BipartiteMultigraph.from_edges(
            3, 2, [(0, 0), (2, 1), (0, 1), (1, 0), (0, 0)]
        )
        indptr, eids = g.csr_left()
        adj = g.adjacency_left()
        for u in range(3):
            assert eids[indptr[u]:indptr[u + 1]].tolist() == adj[u]
        # CSR is in insertion order per vertex (stable sort).
        assert adj[0] == [0, 2, 4]

    def test_caches_invalidate_on_mutation(self):
        g = BipartiteMultigraph(2, 2)
        g.add_edge(0, 0)
        assert g.max_degree() == 1
        g.csr_left()
        g.add_edge(0, 1)
        assert g.max_degree() == 2
        indptr, _ = g.csr_left()
        assert indptr.tolist() == [0, 2, 2]

    def test_growth_beyond_initial_capacity(self):
        g = BipartiteMultigraph(1, 1)
        for _ in range(100):
            g.add_edge(0, 0)
        assert g.n_edges == 100
        assert g.max_degree() == 100
        assert g.src.tolist() == [0] * 100

    def test_edge_view_indexing_and_slicing(self):
        g = BipartiteMultigraph.from_edges(2, 2, [(0, 1), (1, 0), (1, 1)])
        assert g.edges[0] == (0, 1)
        assert g.edges[-1] == (1, 1)
        assert g.edges[1:] == [(1, 0), (1, 1)]
        with pytest.raises(IndexError):
            g.edges[3]
        assert len(g.edges) == 3

    def test_subgraph_accepts_ndarray_and_generator(self):
        g = BipartiteMultigraph.from_edges(
            2, 2, [(0, 0), (0, 1), (1, 1)], ["a", "b", "c"]
        )
        sub = g.subgraph(np.asarray([2, 0]))
        assert list(sub.edges) == [(1, 1), (0, 0)]
        assert sub.payloads == ["c", "a"]
        sub2 = g.subgraph(i for i in (1,))
        assert list(sub2.edges) == [(0, 1)]

    def test_src_dst_views_are_read_only(self):
        g = BipartiteMultigraph.from_edges(2, 2, [(0, 0)])
        with pytest.raises(ValueError):
            g.src[0] = 1
