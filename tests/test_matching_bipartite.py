"""Unit tests for the bipartite multigraph container."""

import pytest

from repro.matching.bipartite import BipartiteMultigraph


class TestConstruction:
    def test_add_edge_returns_id(self):
        g = BipartiteMultigraph(2, 2)
        assert g.add_edge(0, 1) == 0
        assert g.add_edge(1, 0, payload="f") == 1
        assert g.payloads[1] == "f"
        assert g.n_edges == 2

    def test_parallel_edges_allowed(self):
        g = BipartiteMultigraph(1, 1)
        g.add_edge(0, 0)
        g.add_edge(0, 0)
        assert g.n_edges == 2
        assert g.max_degree() == 2

    def test_out_of_range_left_rejected(self):
        with pytest.raises(ValueError):
            BipartiteMultigraph(2, 2).add_edge(2, 0)

    def test_out_of_range_right_rejected(self):
        with pytest.raises(ValueError):
            BipartiteMultigraph(2, 2).add_edge(0, 2)

    def test_from_edges_with_payloads(self):
        g = BipartiteMultigraph.from_edges(2, 2, [(0, 0), (1, 1)], ["a", "b"])
        assert g.payloads == ["a", "b"]


class TestDegreesAndAdjacency:
    def _graph(self):
        g = BipartiteMultigraph(3, 2)
        for u, v in [(0, 0), (0, 1), (1, 0), (0, 0)]:
            g.add_edge(u, v)
        return g

    def test_left_degrees(self):
        assert self._graph().left_degrees().tolist() == [3, 1, 0]

    def test_right_degrees(self):
        assert self._graph().right_degrees().tolist() == [3, 1]

    def test_max_degree(self):
        assert self._graph().max_degree() == 3

    def test_max_degree_empty(self):
        assert BipartiteMultigraph(3, 3).max_degree() == 0

    def test_adjacency_left(self):
        adj = self._graph().adjacency_left()
        assert adj[0] == [0, 1, 3]
        assert adj[2] == []

    def test_adjacency_right(self):
        adj = self._graph().adjacency_right()
        assert adj[0] == [0, 2, 3]

    def test_subgraph(self):
        sub = self._graph().subgraph([1, 2])
        assert sub.n_edges == 2
        assert sub.edges == [(0, 1), (1, 0)]
