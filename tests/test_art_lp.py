"""Tests for the FS-ART linear programs (LP (1)-(4) and LP (5)-(8))."""

import pytest
from hypothesis import given, settings

from repro.art.lp_relaxation import (
    BLOCK,
    art_lp_lower_bound,
    build_fractional_art_lp,
    build_interval_lp0,
)
from repro.core.flow import Flow
from repro.core.greedy import greedy_earliest_fit
from repro.core.instance import Instance
from repro.core.metrics import total_response_time
from repro.core.switch import Switch
from repro.lp.solver import solve_lp
from repro.mrt.exact import exact_min_total_response
from tests.conftest import unit_instances


class TestLPConstruction:
    def test_variables_start_at_release(self):
        inst = Instance.create(Switch.create(2), [Flow(0, 0, 1, 3)])
        lp = build_fractional_art_lp(inst, horizon=6)
        assert lp.has_var(("b", 0, 3))
        assert not lp.has_var(("b", 0, 2))
        assert lp.num_vars == 3

    def test_objective_coefficient_formula(self):
        # (t - r)/d + 1/(2 kappa) with kappa = 2.
        sw = Switch.create(1, 1, 2)
        inst = Instance.create(sw, [Flow(0, 0, demand=2, release=1)])
        lp = build_fractional_art_lp(inst, horizon=3)
        c = lp.objective_vector()
        assert c[lp.var(("b", 0, 1))] == pytest.approx(0.0 / 2 + 0.25)
        assert c[lp.var(("b", 0, 2))] == pytest.approx(1.0 / 2 + 0.25)

    def test_horizon_must_cover_releases(self):
        inst = Instance.create(Switch.create(2), [Flow(0, 0, 1, 5)])
        with pytest.raises(ValueError, match="horizon"):
            build_fractional_art_lp(inst, horizon=4)

    def test_interval_lp0_blocks(self):
        inst = Instance.create(Switch.create(1, 1), [Flow(0, 0)])
        lp = build_interval_lp0(inst, horizon=2 * BLOCK)
        blk_rows = [c for c in lp.constraints if c.name[0] == "blk"]
        # Rounds 0..7 -> blocks 0 and 1 for each side.
        assert len(blk_rows) == 4
        assert all(c.rhs == float(BLOCK) for c in blk_rows)

    def test_interval_lp0_is_relaxation_of_fractional(self):
        """LP(0)'s optimum never exceeds the per-round LP's (unit case)."""
        inst = Instance.create(
            Switch.create(2), [Flow(0, 0), Flow(0, 1), Flow(1, 0)]
        )
        tight = solve_lp(build_fractional_art_lp(inst))
        loose = solve_lp(build_interval_lp0(inst))
        assert loose.objective <= tight.objective + 1e-9


class TestLowerBound:
    def test_empty_instance(self):
        assert art_lp_lower_bound(Instance.create(Switch.create(1), [])) == 0.0

    def test_parallel_flows_bound_is_n(self):
        # n conflict-free unit flows: every response is exactly 1 and the
        # LP's Delta_e = 1/2 each... bound must be <= n and > 0.
        inst = Instance.create(
            Switch.create(3), [Flow(0, 0), Flow(1, 1), Flow(2, 2)]
        )
        lb = art_lp_lower_bound(inst)
        assert 0 < lb <= 3

    @given(unit_instances(max_ports=3, max_flows=5))
    @settings(max_examples=25, deadline=None)
    def test_lower_bounds_exact_optimum(self, inst):
        """Lemma 3.1: the LP value lower-bounds any schedule's total
        response, in particular the optimum."""
        if inst.num_flows == 0:
            return
        lb = art_lp_lower_bound(inst)
        opt = exact_min_total_response(inst)
        assert lb <= opt + 1e-6

    @given(unit_instances(max_ports=4, max_flows=6))
    @settings(max_examples=25, deadline=None)
    def test_lower_bounds_greedy(self, inst):
        if inst.num_flows == 0:
            return
        lb = art_lp_lower_bound(inst)
        assert lb <= total_response_time(greedy_earliest_fit(inst)) + 1e-6

    @given(unit_instances(max_ports=3, max_flows=5))
    @settings(max_examples=15, deadline=None)
    def test_compact_horizon_preserves_bound(self, inst):
        if inst.num_flows == 0:
            return
        full = art_lp_lower_bound(inst)
        compact = art_lp_lower_bound(
            inst, horizon=inst.compact_horizon_bound()
        )
        assert compact == pytest.approx(full, abs=1e-6)
