"""Batched-vs-serial simulation equivalence (repro.online.batch).

The contract under test: for every built-in policy,
``simulate_batch(instances, policies)`` is **byte-identical** per trial
to ``[simulate(inst, pol) for ...]`` — same assignment arrays, same
queue histories, same aggregate metrics, same engine/policy stats
(including the per-trial Hopcroft–Karp diagnostics attributed by the
stacked solve) — whether the batch runs a merged kernel or falls back
per trial.
"""

import numpy as np
import pytest

from repro.coflow.model import random_shuffle_coflows
from repro.coflow.policies import make_coflow_policy
from repro.core.flow import Flow
from repro.core.instance import Instance
from repro.core.switch import Switch
from repro.online.batch import (
    BatchFlowQueue,
    _BatchView,
    batch_kernel_name,
    simulate_batch,
)
from repro.online.policies import (
    POLICY_REGISTRY,
    FifoPolicy,
    MaxCardPolicy,
    make_policy,
)
from repro.online.simulator import simulate
from repro.utils.timing import Timer
from repro.workloads.synthetic import poisson_uniform_workload


def _unit_cell(n_trials, ports=8, mean=6, rounds=15, seed0=1000):
    return [
        poisson_uniform_workload(ports, mean, rounds, seed=seed0 + i)
        for i in range(n_trials)
    ]


def _capacitated_cell(n_trials, seed=0, n_flows=12):
    switch = Switch.create(
        4,
        input_capacities=[2, 1, 3, 2],
        output_capacities=[1, 2, 2, 3],
    )
    rng = np.random.default_rng(seed)
    instances = []
    for _ in range(n_trials):
        flows = []
        for _f in range(n_flows):
            s = int(rng.integers(0, 4))
            d = int(rng.integers(0, 4))
            kappa = switch.kappa(s, d)
            flows.append(
                Flow(s, d, int(rng.integers(1, kappa + 1)),
                     int(rng.integers(0, 6)))
            )
        instances.append(Instance.create(switch, flows))
    return instances


def _assert_equivalent(batch_results, serial_results, policy_name):
    assert len(batch_results) == len(serial_results)
    for i, (got, want) in enumerate(zip(batch_results, serial_results)):
        tag = f"{policy_name} trial {i}"
        assert (
            got.schedule.assignment.tolist()
            == want.schedule.assignment.tolist()
        ), tag
        assert got.queue_history.tolist() == want.queue_history.tolist(), tag
        assert got.rounds == want.rounds, tag
        assert got.metrics == want.metrics, tag
        assert got.stats == want.stats, tag


class TestMergedKernels:
    @pytest.mark.parametrize("name", sorted(POLICY_REGISTRY))
    def test_unit_cell_all_policies(self, name):
        instances = _unit_cell(6)
        batch = simulate_batch(
            instances, [make_policy(name) for _ in instances]
        )
        serial = [simulate(inst, make_policy(name)) for inst in instances]
        _assert_equivalent(batch, serial, name)

    @pytest.mark.parametrize("name", sorted(POLICY_REGISTRY))
    def test_high_load_unit_cell_all_policies(self, name):
        # Load 1.0: arrivals saturate the ports, so the packing kernels
        # run with capacities binding in nearly every round.
        instances = _unit_cell(5, ports=6, mean=6, rounds=12, seed0=9000)
        batch = simulate_batch(
            instances, [make_policy(name) for _ in instances]
        )
        serial = [simulate(inst, make_policy(name)) for inst in instances]
        _assert_equivalent(batch, serial, name)

    @pytest.mark.parametrize("name", sorted(POLICY_REGISTRY))
    def test_capacitated_cell_all_policies(self, name):
        instances = _capacitated_cell(5, seed=42)
        batch = simulate_batch(
            instances, [make_policy(name) for _ in instances]
        )
        serial = [simulate(inst, make_policy(name)) for inst in instances]
        _assert_equivalent(batch, serial, name)

    @pytest.mark.parametrize("name", sorted(POLICY_REGISTRY))
    def test_dense_capacitated_cell_all_policies(self, name):
        # Enough flows that port capacities bind for many consecutive
        # rounds — the vectorized capacitated pack's worst case.
        instances = _capacitated_cell(4, seed=3, n_flows=40)
        batch = simulate_batch(
            instances, [make_policy(name) for _ in instances]
        )
        serial = [simulate(inst, make_policy(name)) for inst in instances]
        _assert_equivalent(batch, serial, name)

    @pytest.mark.parametrize("name", ["SEBF", "CoflowFIFO"])
    def test_coflow_cell(self, name):
        cfs = [random_shuffle_coflows(6, 5, seed=7 + i) for i in range(4)]
        instances = [cf.instance for cf in cfs]
        policies = [make_coflow_policy(name, cf) for cf in cfs]
        assert batch_kernel_name(instances, policies) == "coflow"
        batch = simulate_batch(instances, policies)
        serial = [
            simulate(cf.instance, make_coflow_policy(name, cf)) for cf in cfs
        ]
        _assert_equivalent(batch, serial, name)

    def test_kernel_dispatch_unit(self):
        instances = _unit_cell(3)
        for name, expect in [
            ("FIFO", "fifo"),
            ("MaxCard", "maxcard"),
            ("Random", "random"),
            # Unit-capacity MinRTime/MaxWeight run per-trial Hungarian
            # solves; only their capacitated packing path batches.
            ("MinRTime", None),
            ("MaxWeight", None),
        ]:
            policies = [make_policy(name) for _ in instances]
            assert batch_kernel_name(instances, policies) == expect, name

    def test_kernel_dispatch_capacitated(self):
        instances = _capacitated_cell(3)
        for name, expect in [
            ("FIFO", "fifo"),
            ("MaxCard", "maxcard"),
            ("Random", "random"),
            ("MinRTime", "minrtime"),
            ("MaxWeight", "maxweight"),
        ]:
            policies = [make_policy(name) for _ in instances]
            assert batch_kernel_name(instances, policies) == expect, name

    def test_zero_flow_trials_interleaved(self):
        instances = _unit_cell(4)
        switch = instances[0].switch
        instances.insert(1, Instance.create(switch, []))
        policies = [make_policy("FIFO") for _ in instances]
        batch = simulate_batch(instances, policies)
        serial = [simulate(inst, make_policy("FIFO")) for inst in instances]
        _assert_equivalent(batch, serial, "FIFO")
        assert batch[1].rounds == 0
        assert batch[1].stats == {}

    def test_verify_and_timer(self):
        instances = _unit_cell(3)
        timer = Timer()
        batch = simulate_batch(
            instances,
            [make_policy("MaxCard") for _ in instances],
            timer=timer,
            verify=True,
        )
        assert timer.counts.get("sim_round", 0) > 0
        # Per-phase attribution events from the merged engine.
        assert timer.counts.get("batch_select", 0) > 0
        assert timer.counts.get("batch_match", 0) > 0
        assert all(r.stats["matching_solves"] > 0 for r in batch)
        assert all(r.stats["bfs_phases"] > 0 for r in batch)

    def test_pack_timer_events(self):
        instances = _unit_cell(3)
        timer = Timer()
        simulate_batch(
            instances, [make_policy("FIFO") for _ in instances], timer=timer
        )
        assert timer.counts.get("batch_pack", 0) > 0
        assert timer.counts.get("batch_select", 0) > 0

    def test_starvation_guard_matches_serial_message(self):
        instances = _unit_cell(3)
        with pytest.raises(RuntimeError, match="FIFO exceeded 1 rounds"):
            simulate_batch(
                instances,
                [make_policy("FIFO") for _ in instances],
                max_rounds=1,
            )

    def test_compact_pair_key_space(self):
        # Keyed by virtual ports the heads array would be quadratic in
        # the trial count; the compact remap keeps it linear.
        instances = _unit_cell(6, ports=8)
        queue = BatchFlowQueue(_BatchView(instances))
        assert queue._pair_key_count() == 6 * 8 * 8
        queue.arrive(np.arange(4, dtype=np.int64))
        adj_v, adj_f = queue.pair_adjacency()
        assert sum(len(row) for row in adj_f) == 4


class TestWarmStartMaxCard:
    def test_warm_start_maxcard_merges(self):
        instances = _unit_cell(4)
        policies = [MaxCardPolicy(warm_start=True) for _ in instances]
        assert batch_kernel_name(instances, policies) == "maxcard"
        batch = simulate_batch(instances, policies)
        serial = [
            simulate(inst, MaxCardPolicy(warm_start=True))
            for inst in instances
        ]
        _assert_equivalent(batch, serial, "MaxCard(warm)")
        # Warm seeds actually flowed into the stacked solves.
        assert any(
            r.stats.get("warm_start_seeds", 0) > 0 for r in batch
        )

    def test_warm_start_high_load(self):
        instances = _unit_cell(4, ports=6, mean=6, rounds=12, seed0=4000)
        policies = [MaxCardPolicy(warm_start=True) for _ in instances]
        batch = simulate_batch(instances, policies)
        serial = [
            simulate(inst, MaxCardPolicy(warm_start=True))
            for inst in instances
        ]
        _assert_equivalent(batch, serial, "MaxCard(warm,load1)")

    def test_mixed_warm_flags_fall_back(self):
        instances = _unit_cell(3)
        policies = [
            MaxCardPolicy(warm_start=True),
            MaxCardPolicy(warm_start=False),
            MaxCardPolicy(warm_start=True),
        ]
        assert batch_kernel_name(instances, policies) is None
        batch = simulate_batch(instances, policies)
        for inst, pol, got in zip(instances, policies, batch):
            want = simulate(inst, MaxCardPolicy(warm_start=pol.warm_start))
            assert (
                got.schedule.assignment.tolist()
                == want.schedule.assignment.tolist()
            )
            assert got.stats == want.stats


class TestFallbacks:
    def test_mismatched_inputs_rejected(self):
        instances = _unit_cell(3)
        with pytest.raises(ValueError, match="policies"):
            simulate_batch(instances, [make_policy("FIFO")])
        assert simulate_batch([], []) == []

    def test_mixed_policy_types_fall_back(self):
        instances = _unit_cell(3)
        policies = [
            make_policy("FIFO"),
            make_policy("MaxCard"),
            make_policy("FIFO"),
        ]
        assert batch_kernel_name(instances, policies) is None
        batch = simulate_batch(instances, policies)
        for inst, pol_name, got in zip(
            instances, ["FIFO", "MaxCard", "FIFO"], batch
        ):
            want = simulate(inst, make_policy(pol_name))
            assert (
                got.schedule.assignment.tolist()
                == want.schedule.assignment.tolist()
            )

    def test_subclass_falls_back(self):
        class LimitedFifo(FifoPolicy):
            name = "LimitedFifo"

            def _select_packing(self, t, waiting, instance):
                return super()._select_packing(t, waiting, instance)[:1]

        inst = Instance.create(
            Switch.create(4), [Flow(i, i, 1, 0) for i in range(4)]
        )
        instances = [inst, inst]
        policies = [LimitedFifo(), LimitedFifo()]
        assert batch_kernel_name(instances, policies) is None
        batch = simulate_batch(instances, policies)
        assert all(r.rounds == 4 for r in batch)

    def test_mismatched_switches_fall_back(self):
        a = poisson_uniform_workload(8, 6, 10, seed=1)
        b = poisson_uniform_workload(4, 3, 10, seed=2)
        policies = [make_policy("FIFO"), make_policy("FIFO")]
        assert batch_kernel_name([a, b], policies) is None
        batch = simulate_batch([a, b], policies)
        serial = [simulate(a, make_policy("FIFO")),
                  simulate(b, make_policy("FIFO"))]
        _assert_equivalent(batch, serial, "FIFO")

    def test_single_trial_falls_back(self):
        instances = _unit_cell(1)
        batch = simulate_batch(instances, [make_policy("FIFO")])
        serial = [simulate(instances[0], make_policy("FIFO"))]
        _assert_equivalent(batch, serial, "FIFO")
