"""Unit tests for repro.core.instance."""

import numpy as np
import pytest
from hypothesis import given

from repro.core.flow import Flow
from repro.core.instance import Instance
from repro.core.switch import Switch
from tests.conftest import capacitated_instances


class TestInstanceCreate:
    def test_fids_sequential(self, unit_switch_4):
        inst = Instance.create(unit_switch_4, [Flow(0, 1), Flow(2, 3)])
        assert [f.fid for f in inst.flows] == [0, 1]

    def test_src_out_of_range_rejected(self, unit_switch_4):
        with pytest.raises(ValueError, match="src port"):
            Instance.create(unit_switch_4, [Flow(4, 0)])

    def test_dst_out_of_range_rejected(self, unit_switch_4):
        with pytest.raises(ValueError, match="dst port"):
            Instance.create(unit_switch_4, [Flow(0, 4)])

    def test_demand_exceeding_kappa_rejected(self):
        sw = Switch.create(2, 2, [1, 3], [3, 3])
        with pytest.raises(ValueError, match="kappa"):
            Instance.create(sw, [Flow(0, 0, demand=2)])

    def test_empty_instance(self, unit_switch_4):
        inst = Instance.create(unit_switch_4, [])
        assert inst.num_flows == 0
        assert inst.max_demand == 0
        assert inst.max_release == 0


class TestInstanceViews:
    def test_vector_views(self, small_instance):
        assert small_instance.srcs().tolist() == [0, 1, 2, 0, 3, 2]
        assert small_instance.dsts().tolist() == [0, 0, 0, 1, 2, 3]
        assert small_instance.demands().tolist() == [1] * 6
        assert small_instance.releases().tolist() == [0, 0, 0, 1, 1, 2]

    def test_is_unit_demand(self, small_instance):
        assert small_instance.is_unit_demand

    def test_port_loads(self, small_instance):
        in_load, out_load = small_instance.port_loads()
        assert in_load.tolist() == [2, 1, 2, 1]
        assert out_load.tolist() == [3, 1, 1, 1]

    def test_flows_by_release(self, small_instance):
        groups = small_instance.flows_by_release()
        assert sorted(groups) == [0, 1, 2]
        assert len(groups[0]) == 3

    def test_horizon_bound_covers_all(self, small_instance):
        assert small_instance.horizon_bound() == 2 + 6 + 1

    def test_compact_horizon_le_horizon(self, small_instance):
        assert (
            small_instance.compact_horizon_bound()
            <= small_instance.horizon_bound()
        )

    def test_restricted_to(self, small_instance):
        sub = small_instance.restricted_to([2, 4])
        assert sub.num_flows == 2
        assert sub.flows[0].src == 2
        assert sub.flows[1].dst == 2
        assert [f.fid for f in sub.flows] == [0, 1]

    def test_shifted(self, small_instance):
        shifted = small_instance.shifted(5)
        assert shifted.releases().tolist() == [5, 5, 5, 6, 6, 7]

    def test_shifted_negative_rejected(self, small_instance):
        with pytest.raises(ValueError):
            small_instance.shifted(-1)


class TestInstanceSerialization:
    def test_round_trip_dict(self, small_instance):
        again = Instance.from_dict(small_instance.to_dict())
        assert again.num_flows == small_instance.num_flows
        assert again.flows == small_instance.flows
        assert (
            again.switch.input_capacities
            == small_instance.switch.input_capacities
        ).all()

    def test_round_trip_json_file(self, small_instance, tmp_path):
        path = tmp_path / "trace.json"
        small_instance.save_json(path)
        again = Instance.load_json(path)
        assert again.flows == small_instance.flows

    @given(capacitated_instances())
    def test_round_trip_property(self, inst):
        again = Instance.from_dict(inst.to_dict())
        assert again.flows == inst.flows
        assert again.switch.num_inputs == inst.switch.num_inputs
