"""Tests for the Theorem 3 rounding (Lemma 4.3 guarantee)."""

import numpy as np
import pytest
from hypothesis import given, settings

from repro.core.flow import Flow
from repro.core.instance import Instance
from repro.core.schedule import validate_schedule
from repro.core.switch import Switch
from repro.mrt.lp_relaxation import is_fractionally_feasible
from repro.mrt.rounding import round_time_constrained
from repro.mrt.time_constrained import (
    TimeConstrainedInstance,
    from_response_bound,
)
from tests.conftest import capacitated_instances


class TestBasicRounding:
    def test_empty_instance(self):
        inst = Instance.create(Switch.create(1), [])
        res = round_time_constrained(from_response_bound(inst.shifted(0), 1))
        assert res.feasible
        assert res.schedule.instance.num_flows == 0

    def test_trivially_schedulable(self):
        inst = Instance.create(Switch.create(2), [Flow(0, 0), Flow(1, 1)])
        res = round_time_constrained(from_response_bound(inst, 1))
        assert res.feasible
        assert res.max_violation == 0
        validate_schedule(res.schedule)

    def test_infeasible_reported(self):
        inst = Instance.create(Switch.create(2), [Flow(0, 0), Flow(0, 1)])
        res = round_time_constrained(from_response_bound(inst, 1))
        assert not res.feasible
        assert res.schedule is None

    def test_schedule_within_active_rounds(self):
        inst = Instance.create(
            Switch.create(2), [Flow(0, 0, 1, 0), Flow(0, 1, 1, 1)]
        )
        tci = from_response_bound(inst, 2)
        res = round_time_constrained(tci)
        assert res.feasible
        for fid, t in enumerate(res.schedule.assignment):
            assert int(t) in tci.active_rounds[fid]

    def test_violation_bound_with_demands(self):
        # Demand-2 flows crammed into few rounds: violation <= 2*2-1 = 3.
        sw = Switch.create(2, 2, 2)
        flows = [Flow(0, 0, 2, 0), Flow(0, 1, 2, 0), Flow(1, 0, 2, 0)]
        inst = Instance.create(sw, flows)
        tci = from_response_bound(inst, 2)
        res = round_time_constrained(tci)
        if res.feasible:
            assert res.max_violation <= 2 * inst.max_demand - 1

    def test_non_contiguous_active_rounds(self):
        inst = Instance.create(Switch.create(1, 1), [Flow(0, 0), Flow(0, 0)])
        tci = TimeConstrainedInstance(inst, ((0, 5), (0, 5)))
        res = round_time_constrained(tci)
        assert res.feasible
        assert sorted(res.schedule.assignment.tolist()) == [0, 5]


class TestTheoremThreeProperty:
    @given(capacitated_instances(max_flows=6))
    @settings(max_examples=50, deadline=None)
    def test_violation_never_exceeds_bound(self, inst):
        """The headline guarantee: violation <= 2*d_max - 1, all flows in
        their windows, feasibility iff LP feasibility."""
        if inst.num_flows == 0:
            return
        for rho in (1, 2, 4):
            tci = from_response_bound(inst, rho)
            res = round_time_constrained(tci)
            assert res.feasible == is_fractionally_feasible(tci)
            if res.feasible:
                assert res.max_violation <= 2 * inst.max_demand - 1
                assert res.fallback_drops == 0
                for fid, t in enumerate(res.schedule.assignment):
                    assert int(t) in tci.active_rounds[fid]
                validate_schedule(
                    res.schedule,
                    inst.switch.augmented(additive=2 * inst.max_demand - 1),
                )
                return  # one feasible rho suffices per example
