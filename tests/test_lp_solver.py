"""Tests for the LP backend dispatch (repro.lp.solver)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lp.model import LinearProgram, Sense
from repro.lp.result import LPStatus
from repro.lp.solver import solve_lp


def _transport_lp():
    """min x+3y st x+y >= 2, y <= 1 — optimum 4 at (1, 1)? No: (2,0) -> 2."""
    lp = LinearProgram()
    lp.add_variable("x", 1.0)
    lp.add_variable("y", 3.0)
    lp.add_constraint("demand", {"x": 1, "y": 1}, Sense.GE, 2)
    lp.add_constraint("cap", {"y": 1}, Sense.LE, 1)
    return lp


class TestBackends:
    @pytest.mark.parametrize("backend", ["simplex", "highs", "highs-ds"])
    def test_all_backends_agree(self, backend):
        res = solve_lp(_transport_lp(), backend=backend)
        assert res.status is LPStatus.OPTIMAL
        assert res.objective == pytest.approx(2.0)
        assert res.backend == backend

    def test_auto_prefers_highs(self):
        res = solve_lp(_transport_lp(), backend="auto")
        assert res.backend == "highs"

    def test_auto_with_vertex_uses_highs_ds(self):
        res = solve_lp(_transport_lp(), backend="auto", need_vertex=True)
        assert res.backend == "highs-ds"
        assert res.is_vertex

    def test_simplex_always_vertex(self):
        res = solve_lp(_transport_lp(), backend="simplex")
        assert res.is_vertex

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown backend"):
            solve_lp(_transport_lp(), backend="gurobi")

    def test_empty_model(self):
        res = solve_lp(LinearProgram())
        assert res.is_optimal
        assert res.objective == 0.0

    def test_infeasible_model(self):
        lp = LinearProgram()
        lp.add_variable("x")
        lp.add_constraint("c1", {"x": 1}, Sense.LE, 1)
        lp.add_constraint("c2", {"x": 1}, Sense.GE, 2)
        for backend in ("simplex", "highs"):
            assert solve_lp(lp, backend=backend).status is LPStatus.INFEASIBLE

    def test_unbounded_model(self):
        lp = LinearProgram()
        lp.add_variable("x", -1.0)
        assert solve_lp(lp, backend="highs").status is LPStatus.UNBOUNDED

    def test_variable_upper_bounds_respected(self):
        lp = LinearProgram()
        lp.add_variable("x", -1.0, upper=2.5)
        for backend in ("simplex", "highs"):
            res = solve_lp(lp, backend=backend)
            assert res.objective == pytest.approx(-2.5)


@st.composite
def random_models(draw):
    lp = LinearProgram()
    nv = draw(st.integers(1, 5))
    for j in range(nv):
        lp.add_variable(f"x{j}", draw(st.integers(-3, 3)))
    for i in range(draw(st.integers(1, 5))):
        coeffs = {f"x{j}": draw(st.integers(-2, 3)) for j in range(nv)}
        sense = draw(st.sampled_from([Sense.LE, Sense.GE, Sense.EQ]))
        lp.add_constraint(i, coeffs, sense, draw(st.integers(0, 6)))
    return lp


class TestBackendAgreementProperty:
    @given(random_models())
    @settings(max_examples=80, deadline=None)
    def test_simplex_agrees_with_highs(self, lp):
        ours = solve_lp(lp, backend="simplex")
        ref = solve_lp(lp, backend="highs")
        if LPStatus.OPTIMAL in (ours.status, ref.status):
            assert ours.status == ref.status
            assert ours.objective == pytest.approx(
                ref.objective, abs=1e-6, rel=1e-6
            )
