"""Differential certification tests (repro.verify.differential).

The acceptance surface of the verify subsystem: ``cross_check``
certifies every registered offline solver on several built-in
scenarios, the metamorphic harness certifies LP-bound invariance under
semantics-preserving transforms, and intentionally corrupted artifacts
produce non-empty Violation reports.
"""

from dataclasses import replace

import numpy as np
import pytest

from repro.api import get_solver, list_solvers
from repro.core.schedule import Schedule
from repro.scenarios import build_instance
from repro.verify import (
    check_lp_certificate,
    check_schedule,
    cross_check,
    metamorphic_check,
    metamorphic_transforms,
    relabel_ports,
    scale_demands,
    shuffle_flows,
)
from repro.workloads import poisson_uniform_workload

#: Small unit-demand scenario instances (FS-ART requires unit demands).
CROSS_SCENARIOS = (
    "paper-default:ports=6,mean=3,horizon=4",
    "permutation:ports=6,horizon=4",
    "hotspot:ports=6,mean=3,horizon=4",
    "incast:ports=6,horizon=6",
)


class TestCrossCheck:
    @pytest.mark.parametrize("spec", CROSS_SCENARIOS)
    def test_all_offline_solvers_certify_on_builtin_scenarios(self, spec):
        # The acceptance criterion: every registered offline solver
        # (FS-ART, FS-MRT, TimeConstrained, Greedy, plus any plugin)
        # cross-checks clean on built-in scenarios.
        inst = build_instance(spec, seed=11)
        assert inst.num_flows > 0
        result = cross_check(inst)
        assert set(result.reports) == set(list_solvers("offline"))
        assert result.ok, result.verification.render()
        # Oracle bounds were computed and are mutually consistent.
        assert result.bounds["art_total"] >= 0
        assert result.bounds["mrt_rho"] >= 1

    def test_default_solvers_skip_unmet_preconditions(self):
        # heavy-tailed draws non-unit demands; the default sweep must
        # skip FS-ART (unit-demand precondition) instead of reporting a
        # false solver-error on a healthy instance.
        inst = build_instance("heavy-tailed:ports=5,mean=3,horizon=4", seed=3)
        assert not inst.is_unit_demand
        result = cross_check(inst)
        assert result.ok, result.verification.render()
        assert "FS-ART" not in result.reports
        assert "Greedy" in result.reports

    def test_explicit_solver_overrides_precondition_skip(self):
        # Explicitly asking for FS-ART on a non-unit instance asserts
        # the precondition holds — the resulting error is surfaced.
        inst = build_instance("heavy-tailed:ports=5,mean=3,horizon=4", seed=3)
        result = cross_check(inst, solvers=["FS-ART"])
        assert {"solver-error"} == {
            v.code for v in result.verification.violations
        }

    def test_online_solvers_cross_check_too(self):
        inst = build_instance("paper-default:ports=6,mean=3,horizon=4", seed=5)
        result = cross_check(
            inst, solvers=["MaxCard", "MinRTime", "MaxWeight", "FIFO"]
        )
        assert result.ok, result.verification.render()
        for report in result.reports.values():
            assert report.metrics.max_augmentation == 0

    def test_unknown_solver_raises(self):
        inst = poisson_uniform_workload(4, 2.0, 3, seed=0)
        with pytest.raises(ValueError, match="unknown solver"):
            cross_check(inst, solvers=["NoSuchSolver"])

    def test_empty_solver_list_raises(self):
        # Zero solvers must not "certify" — the silent no-op guard.
        inst = poisson_uniform_workload(4, 2.0, 3, seed=0)
        with pytest.raises(ValueError, match="at least one solver"):
            cross_check(inst, solvers=[])

    def test_solver_exception_becomes_violation(self):
        from repro.api import register_solver, unregister_solver

        class Exploding:
            name = "Exploding"
            kind = "offline"

            def solve(self, instance, **params):
                raise RuntimeError("kaboom")

        register_solver("Exploding", Exploding)
        try:
            inst = poisson_uniform_workload(4, 2.0, 3, seed=0)
            result = cross_check(inst, solvers=["Exploding", "Greedy"])
            codes = {v.code for v in result.verification.violations}
            assert codes == {"solver-error"}
            assert "Greedy" in result.reports
        finally:
            unregister_solver("Exploding")


class TestCorruptedArtifacts:
    """Intentionally corrupted schedule/report -> non-empty report."""

    def test_corrupted_schedule_yields_violations(self):
        inst = build_instance("hotspot:ports=6,mean=3,horizon=4", seed=7)
        # Cram every flow into round 0: releases and capacities both break.
        corrupt = Schedule(inst, np.zeros(inst.num_flows, dtype=np.int64))
        report = check_schedule(corrupt)
        assert not report.ok
        assert len(report.violations) > 0
        assert {"capacity-overload"} <= {v.code for v in report.violations}

    def test_corrupted_report_yields_violations(self):
        inst = build_instance("permutation:ports=6,horizon=4", seed=7)
        honest = get_solver("Greedy").solve(inst)
        corrupt = replace(
            honest,
            lower_bounds={
                "lp_total_response": honest.metrics.total_response * 10.0
            },
        )
        report = check_lp_certificate(corrupt)
        assert not report.ok
        codes = {v.code for v in report.violations}
        assert "bound-above-objective" in codes
        assert "bound-oracle-mismatch" in codes


class TestMetamorphicTransforms:
    def test_transforms_are_sound(self):
        inst = build_instance("heavy-tailed:ports=5,mean=3,horizon=4", seed=3)
        for name, variant in metamorphic_transforms(inst, seed=1):
            assert variant.num_flows == inst.num_flows, name
            assert sorted(f.release for f in variant.flows) == sorted(
                f.release for f in inst.flows
            ), name

    def test_relabel_preserves_port_loads_multiset(self):
        inst = build_instance("hotspot:ports=6,mean=3,horizon=4", seed=9)
        variant = relabel_ports(inst, seed=2)
        a_in, a_out = inst.port_loads()
        b_in, b_out = variant.port_loads()
        assert sorted(a_in.tolist()) == sorted(b_in.tolist())
        assert sorted(a_out.tolist()) == sorted(b_out.tolist())

    def test_scale_preserves_structure(self):
        inst = build_instance("heavy-tailed:ports=5,mean=3,horizon=4", seed=3)
        variant = scale_demands(inst, factor=3)
        assert (variant.demands() == inst.demands() * 3).all()
        assert (
            variant.switch.input_capacities
            == inst.switch.input_capacities * 3
        ).all()

    def test_scale_rejects_bad_factor(self):
        inst = poisson_uniform_workload(4, 2.0, 3, seed=0)
        with pytest.raises(ValueError, match="positive int"):
            scale_demands(inst, factor=0)

    def test_shuffle_preserves_flow_multiset(self):
        inst = build_instance("incast:ports=6,horizon=6", seed=3)
        variant = shuffle_flows(inst, seed=5)
        key = lambda f: (f.src, f.dst, f.demand, f.release)  # noqa: E731
        assert sorted(map(key, variant.flows)) == sorted(map(key, inst.flows))

    def test_metamorphic_check_certifies(self):
        inst = build_instance("paper-default:ports=6,mean=3,horizon=4", seed=13)
        report = metamorphic_check(inst, solvers=("Greedy", "MaxWeight"))
        assert report.ok, report.render()
        # All three transforms ran both invariance passes.
        for t in ("relabel-ports", "scale-demands", "shuffle-flows"):
            assert f"soundness:{t}" in report.checks
            assert f"lp-invariance:{t}" in report.checks

    def test_metamorphic_skips_fs_art_on_scaled_variant(self):
        # scale-demands leaves FS-ART's unit-demand precondition behind;
        # the harness skips that (solver, variant) pair instead of
        # producing a false solver-error, while still running FS-ART on
        # the relabel/shuffle variants.
        inst = build_instance("paper-default:ports=5,mean=2,horizon=3", seed=2)
        assert inst.is_unit_demand
        report = metamorphic_check(inst, solvers=("FS-ART",))
        assert report.ok, report.render()
        assert any(c.startswith("relabel-ports/FS-ART") for c in report.checks)
        assert not any(
            c.startswith("scale-demands/FS-ART") for c in report.checks
        )

    def test_metamorphic_empty_instance_trivial(self):
        inst = poisson_uniform_workload(4, 2.0, 2, seed=1).restricted_to([])
        report = metamorphic_check(inst)
        assert report.ok
        assert report.checks == ["trivial-empty"]
