"""Tests for the online round-based simulator."""

import numpy as np
import pytest
from hypothesis import given, settings

from repro.core.flow import Flow
from repro.core.instance import Instance
from repro.core.schedule import ScheduleError, validate_schedule
from repro.core.switch import Switch
from repro.online.policies import FifoPolicy, MaxCardPolicy, OnlinePolicy
from repro.online.simulator import simulate
from tests.conftest import capacitated_instances, unit_instances


class GreedyBadPolicy(OnlinePolicy):
    """Deliberately overloads ports (for engine validation tests)."""

    name = "Bad"

    def select(self, t, waiting, instance):
        return list(waiting)


class LazyPolicy(OnlinePolicy):
    """Never schedules anything (starvation detection test)."""

    name = "Lazy"

    def select(self, t, waiting, instance):
        return []


class DoubleDipPolicy(OnlinePolicy):
    """Returns a duplicated fid."""

    name = "Dup"

    def select(self, t, waiting, instance):
        fid = next(iter(waiting))
        return [fid, fid]


class TestEngine:
    def test_empty_instance(self):
        res = simulate(Instance.create(Switch.create(1), []), MaxCardPolicy())
        assert res.rounds == 0

    def test_flows_invisible_before_release(self):
        inst = Instance.create(
            Switch.create(2), [Flow(0, 0, 1, 0), Flow(1, 1, 1, 3)]
        )
        res = simulate(inst, MaxCardPolicy())
        assert res.schedule.round_of(1) >= 3
        validate_schedule(res.schedule)

    def test_queue_history_tracks_backlog(self):
        inst = Instance.create(
            Switch.create(2), [Flow(0, 0), Flow(0, 0), Flow(0, 0)]
        )
        res = simulate(inst, FifoPolicy())
        assert res.queue_history.tolist() == [3, 2, 1]

    def test_overloading_policy_caught(self):
        inst = Instance.create(Switch.create(2), [Flow(0, 0), Flow(0, 1)])
        with pytest.raises(ScheduleError, match="overloaded"):
            simulate(inst, GreedyBadPolicy())

    def test_starving_policy_caught(self):
        inst = Instance.create(Switch.create(2), [Flow(0, 0)])
        with pytest.raises(RuntimeError, match="exceeded"):
            simulate(inst, LazyPolicy(), max_rounds=5)

    def test_duplicate_selection_caught(self):
        inst = Instance.create(Switch.create(2, 2, 2), [Flow(0, 0)])
        with pytest.raises(ScheduleError, match="twice"):
            simulate(inst, DoubleDipPolicy())

    @given(unit_instances(max_ports=4, max_flows=8))
    @settings(max_examples=40, deadline=None)
    def test_maxcard_always_valid(self, inst):
        res = simulate(inst, MaxCardPolicy())
        validate_schedule(res.schedule)

    @given(capacitated_instances())
    @settings(max_examples=40, deadline=None)
    def test_fifo_handles_general_capacities(self, inst):
        res = simulate(inst, FifoPolicy())
        validate_schedule(res.schedule)
