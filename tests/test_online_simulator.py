"""Tests for the online round-based simulator."""

import numpy as np
import pytest
from hypothesis import given, settings

from repro.core.flow import Flow
from repro.core.instance import Instance
from repro.core.schedule import ScheduleError, validate_schedule
from repro.core.switch import Switch
from repro.online.policies import FifoPolicy, MaxCardPolicy, OnlinePolicy
from repro.online.simulator import simulate
from tests.conftest import capacitated_instances, unit_instances


class GreedyBadPolicy(OnlinePolicy):
    """Deliberately overloads ports (for engine validation tests)."""

    name = "Bad"

    def select(self, t, waiting, instance):
        return list(waiting)


class LazyPolicy(OnlinePolicy):
    """Never schedules anything (starvation detection test)."""

    name = "Lazy"

    def select(self, t, waiting, instance):
        return []


class DoubleDipPolicy(OnlinePolicy):
    """Returns a duplicated fid."""

    name = "Dup"

    def select(self, t, waiting, instance):
        fid = next(iter(waiting))
        return [fid, fid]


class TestEngine:
    def test_empty_instance(self):
        res = simulate(Instance.create(Switch.create(1), []), MaxCardPolicy())
        assert res.rounds == 0

    def test_flows_invisible_before_release(self):
        inst = Instance.create(
            Switch.create(2), [Flow(0, 0, 1, 0), Flow(1, 1, 1, 3)]
        )
        res = simulate(inst, MaxCardPolicy())
        assert res.schedule.round_of(1) >= 3
        validate_schedule(res.schedule)

    def test_queue_history_tracks_backlog(self):
        inst = Instance.create(
            Switch.create(2), [Flow(0, 0), Flow(0, 0), Flow(0, 0)]
        )
        res = simulate(inst, FifoPolicy())
        assert res.queue_history.tolist() == [3, 2, 1]

    def test_overloading_policy_caught(self):
        inst = Instance.create(Switch.create(2), [Flow(0, 0), Flow(0, 1)])
        with pytest.raises(ScheduleError, match="overloaded"):
            simulate(inst, GreedyBadPolicy())

    def test_starving_policy_caught(self):
        inst = Instance.create(Switch.create(2), [Flow(0, 0)])
        with pytest.raises(RuntimeError, match="exceeded"):
            simulate(inst, LazyPolicy(), max_rounds=5)

    def test_max_rounds_is_exact(self):
        # Regression for the off-by-one `t > max_rounds` guard: the
        # policy gets exactly max_rounds rounds, not max_rounds + 1.
        inst = Instance.create(Switch.create(2), [Flow(0, 0)])
        calls = []

        class CountingLazyPolicy(OnlinePolicy):
            name = "CountingLazy"

            def select(self, t, waiting, instance):
                calls.append(t)
                return []

        with pytest.raises(RuntimeError, match="exceeded 5 rounds"):
            simulate(inst, CountingLazyPolicy(), max_rounds=5)
        assert calls == [0, 1, 2, 3, 4]

    def test_max_rounds_boundary_success_and_failure(self):
        # Three same-port unit flows need exactly 3 FIFO rounds: a cap of
        # 3 must succeed and a cap of 2 must raise.  The old `>` guard
        # silently granted the third round under max_rounds=2.
        inst = Instance.create(
            Switch.create(2), [Flow(0, 0), Flow(0, 0), Flow(0, 0)]
        )
        res = simulate(inst, FifoPolicy(), max_rounds=3)
        assert res.rounds == 3
        with pytest.raises(RuntimeError, match="exceeded 2 rounds"):
            simulate(inst, FifoPolicy(), max_rounds=2)

    def test_default_cap_allows_full_horizon(self):
        # The derived default must not shrink with the tightened guard:
        # a full-horizon FIFO run still completes without a cap.
        inst = Instance.create(
            Switch.create(2), [Flow(0, 0), Flow(0, 0), Flow(0, 0, 1, 2)]
        )
        res = simulate(inst, FifoPolicy())
        assert res.rounds <= 2 * inst.horizon_bound() + 1

    def test_duplicate_selection_caught(self):
        inst = Instance.create(Switch.create(2, 2, 2), [Flow(0, 0)])
        with pytest.raises(ScheduleError, match="twice"):
            simulate(inst, DoubleDipPolicy())

    @given(unit_instances(max_ports=4, max_flows=8))
    @settings(max_examples=40, deadline=None)
    def test_maxcard_always_valid(self, inst):
        res = simulate(inst, MaxCardPolicy())
        validate_schedule(res.schedule)

    @given(capacitated_instances())
    @settings(max_examples=40, deadline=None)
    def test_fifo_handles_general_capacities(self, inst):
        res = simulate(inst, FifoPolicy())
        validate_schedule(res.schedule)
