"""Unit tests for the certificate checkers (repro.verify.checkers).

Positive paths certify real artifacts from the library's own solvers;
negative paths corrupt schedules, reports, records, and histories and
assert the checkers name the breach (structured Violation codes, no
exceptions).
"""

from dataclasses import replace

import numpy as np
import pytest

from repro.api import SolveReport, get_solver
from repro.core.flow import Flow
from repro.core.instance import Instance
from repro.core.metrics import ScheduleMetrics
from repro.core.schedule import Schedule
from repro.core.switch import Switch
from repro.online.policies import make_policy
from repro.online.simulator import simulate, simulate_stream
from repro.scenarios import build_stream
from repro.verify import (
    VerificationError,
    VerificationReport,
    Violation,
    certify,
    check_lp_certificate,
    check_online_run,
    check_record,
    check_schedule,
    check_stream,
)
from repro.workloads import poisson_uniform_workload


@pytest.fixture
def inst():
    return poisson_uniform_workload(6, 4.0, 4, seed=3)


def codes(report):
    return {v.code for v in report.violations}


class TestViolationPlumbing:
    def test_violation_round_trip(self):
        v = Violation("capacity-overload", "port 3 over", {"port": 3})
        assert Violation.from_dict(v.to_dict()) == v

    def test_report_round_trip(self):
        r = VerificationReport("subject")
        r.ran("release")
        r.add("early-schedule", "flow 0 early", fid=0)
        back = VerificationReport.from_dict(r.to_dict())
        assert back.subject == "subject"
        assert back.checks == ["release"]
        assert codes(back) == {"early-schedule"}

    def test_verification_error_pickles(self):
        # Regression: multiprocessing Runner workers pickle a failing
        # trial's VerificationError back to the parent; the default
        # BaseException reduction would reconstruct via
        # VerificationError(rendered_string) and crash in __init__.
        import pickle

        r = VerificationReport("s")
        r.ran("x")
        r.add("some-code", "boom", fid=3)
        err = pickle.loads(pickle.dumps(VerificationError(r)))
        assert err.report.violations[0].code == "some-code"
        assert "some-code" in str(err)

    def test_raise_if_failed_carries_report(self):
        r = VerificationReport("s")
        r.ran("x")
        r.add("some-code", "boom")
        with pytest.raises(VerificationError) as err:
            r.raise_if_failed()
        assert err.value.report is r
        assert "some-code" in str(err.value)

    def test_empty_report_is_not_ok(self):
        # No checks ran: an empty violation list proves nothing.
        r = VerificationReport("s")
        assert not r.ok
        with pytest.raises(VerificationError):
            r.raise_if_failed()

    def test_merge_qualifies_violations_with_subject(self):
        # Aggregate reports must still name which record a violation
        # came from — the sub-report's subject is folded into the
        # message and context at merge time.
        inner = VerificationReport("Greedy@abc123 (results-1.jsonl)")
        inner.ran("metrics-identities")
        inner.add("metrics-identity", "avg off", average_response=9.0)
        outer = VerificationReport("store:/tmp/cache").merge(inner)
        violation = outer.violations[0]
        assert "Greedy@abc123" in violation.message
        assert violation.context["subject"].startswith("Greedy@abc123")


class TestCheckSchedule:
    def test_valid_schedule_certifies(self, inst):
        sim = simulate(inst, make_policy("MaxWeight"))
        report = check_schedule(sim.schedule, metrics=sim.metrics)
        assert report.ok
        assert report.stats["augmentation_used"] == 0

    def test_early_flow_flagged(self, inst):
        rounds = np.arange(inst.num_flows) + inst.releases()  # spread out
        schedule = Schedule(inst, np.asarray(rounds, dtype=np.int64))
        early = schedule.assignment.copy()
        late_fid = int(np.argmax(inst.releases()))
        if inst.releases()[late_fid] == 0:
            pytest.skip("workload has no late release to violate")
        early[late_fid] = 0
        report = check_schedule(Schedule(inst, early))
        assert "early-schedule" in codes(report)

    def test_overload_flagged(self):
        switch = Switch.create(2)
        inst2 = Instance.create(
            switch, [Flow(0, 0, 1, 0), Flow(0, 1, 1, 0)]
        )
        bad = Schedule(inst2, np.zeros(2, dtype=np.int64))
        report = check_schedule(bad)
        assert "capacity-overload" in codes(report)
        # The same schedule certifies once the augmentation is admitted.
        assert check_schedule(bad, max_augmentation=1).ok

    def test_claimed_augmentation_is_the_allowance(self):
        # A metrics object claiming augmentation k certifies a schedule
        # that uses exactly k extra units, and no more.
        switch = Switch.create(2)
        inst2 = Instance.create(
            switch, [Flow(0, 0, 1, 0), Flow(0, 1, 1, 0), Flow(0, 0, 1, 0)]
        )
        bad = Schedule(inst2, np.zeros(3, dtype=np.int64))  # load 3 on in-0
        honest = ScheduleMetrics.of(bad)
        assert honest.max_augmentation == 2
        assert check_schedule(bad, metrics=honest).ok
        lying = replace(honest, max_augmentation=1)
        report = check_schedule(bad, metrics=lying)
        assert "capacity-overload" in codes(report)
        assert "metrics-mismatch" in codes(report)

    def test_metrics_mismatch_flagged(self, inst):
        sim = simulate(inst, make_policy("MaxWeight"))
        lying = replace(sim.metrics, total_response=sim.metrics.total_response + 5)
        report = check_schedule(sim.schedule, metrics=lying)
        assert codes(report) == {"metrics-mismatch"}


class TestCheckLPCertificate:
    def test_fs_mrt_report_certifies(self, inst):
        report = get_solver("FS-MRT").solve(inst)
        vr = check_lp_certificate(report)
        assert vr.ok
        assert "oracle:rho_star" in vr.checks
        assert "guarantee:FS-MRT" in vr.checks

    def test_fs_art_report_certifies(self, inst):
        report = get_solver("FS-ART").solve(inst)
        vr = check_lp_certificate(report)
        assert vr.ok
        assert vr.stats["ratio:lp_total_response"] >= 0

    def test_inflated_bound_flagged(self, inst):
        report = get_solver("Greedy").solve(inst)
        lying = replace(
            report, lower_bounds={"lp_total_response": 10.0**9}
        )
        vr = check_lp_certificate(lying)
        assert {"bound-above-objective", "bound-oracle-mismatch"} <= codes(vr)

    def test_augmented_schedule_may_beat_bound(self, inst):
        # FS-MRT's augmented schedule responds within rho*; the checker
        # must not flag objective < bound for augmented reports.
        report = get_solver("FS-MRT").solve(inst)
        assert report.metrics.max_response <= report.lower_bounds["rho_star"]
        assert check_lp_certificate(report).ok

    def test_theorem3_response_violation_flagged(self, inst):
        report = get_solver("FS-MRT").solve(inst)
        lying = replace(
            report,
            lower_bounds={
                "rho_star": float(report.metrics.max_response - 1)
            },
        )
        vr = check_lp_certificate(lying)
        assert "theorem3-response" in codes(vr)

    def test_certify_dispatch_on_report(self, inst):
        report = get_solver("Greedy").solve(inst)
        assert certify(report).ok


class TestCheckRecord:
    def test_stripped_record_certifies(self, inst):
        record = replace(
            get_solver("MaxWeight").solve(inst), schedule=None, timings={}
        ).to_dict()
        assert check_record(record).ok

    def test_identity_breach_flagged(self, inst):
        record = replace(
            get_solver("MaxWeight").solve(inst), schedule=None
        ).to_dict()
        record["metrics"]["average_response"] += 0.5
        assert "metrics-identity" in codes(check_record(record))

    def test_malformed_bound_flagged(self, inst):
        record = replace(
            get_solver("Greedy").solve(inst), schedule=None
        ).to_dict()
        record["lower_bounds"] = {"rho_star": float("nan")}
        assert "malformed-bound" in codes(check_record(record))

    def test_missing_metric_fields_flagged(self, inst):
        record = replace(
            get_solver("Greedy").solve(inst), schedule=None
        ).to_dict()
        del record["metrics"]["max_response"]
        assert "malformed-metrics" in codes(check_record(record))

    def test_type_corrupted_metrics_flagged_not_crashed(self, inst):
        # Regression: a string where a number belongs must produce a
        # structured violation, not a ValueError traceback.
        record = replace(
            get_solver("Greedy").solve(inst), schedule=None
        ).to_dict()
        record["metrics"]["total_response"] = "garbage"
        assert "malformed-metrics" in codes(check_record(record))

    def test_type_corrupted_bound_flagged_not_crashed(self, inst):
        report = get_solver("FS-MRT").solve(inst)
        lying = replace(report, lower_bounds={"rho_star": "oops"})
        vr = check_lp_certificate(lying)
        assert "malformed-bound" in codes(vr)
        assert lying.certificates() == {}  # non-numeric: not a certificate

    def test_non_mapping_record_flagged_not_crashed(self):
        # Regression: a null/garbage payload must yield a structured
        # violation from the checker, not an AttributeError.
        assert "malformed-record" in codes(check_record(None))
        bad = {"solver": "Greedy", "kind": "offline",
               "metrics": "garbage", "lower_bounds": {}}
        assert "malformed-record" in codes(check_record(bad))

    def test_null_report_shard_line_is_garbage_to_store_and_verifier(
        self, tmp_path
    ):
        # A {"report": null} line is unreadable by every consumer, so
        # the shared shard reader treats it like a torn line: the store
        # misses on it and the CLI verifier does not traceback.
        import json

        from repro.api.store import ResultStore, live_records

        shard = tmp_path / "results-1-x.jsonl"
        shard.write_text(json.dumps({"key": "k1", "report": None}) + "\n")
        assert len(ResultStore(tmp_path)) == 0
        assert live_records(tmp_path) == {}

    def test_zero_flow_record_with_nonzero_responses_flagged(self):
        # Regression: num_flows=0 forces every response quantity to 0;
        # a corrupted record claiming n=0 alongside nonzero totals used
        # to skip all per-flow identity checks and certify clean.
        record = SolveReport(
            solver="Greedy", kind="offline",
            metrics=ScheduleMetrics(
                num_flows=0, total_response=100,
                average_response=0.0, max_response=50,
                makespan=7, max_augmentation=0,
            ),
        ).to_dict()
        assert "metrics-identity" in codes(check_record(record))
        empty = SolveReport(
            solver="Greedy", kind="offline",
            metrics=ScheduleMetrics(
                num_flows=0, total_response=0, average_response=0.0,
                max_response=0, makespan=0, max_augmentation=0,
            ),
        ).to_dict()
        assert check_record(empty).ok

    def test_integer_bound_inversion_not_masked_by_tolerance(self):
        # Regression: rho* and max response are exact integers, so an
        # off-by-one inversion on a huge objective must be flagged —
        # a relative tolerance would absorb it beyond ~1e6.
        record = SolveReport(
            solver="MaxWeight", kind="online",
            metrics=ScheduleMetrics(
                num_flows=10, total_response=30_000_000,
                average_response=3_000_000.0, max_response=2_000_000,
                makespan=2_000_000, max_augmentation=0,
            ),
            lower_bounds={"rho_star": 2_000_001.0},
        ).to_dict()
        assert "bound-above-objective" in codes(check_record(record))
        record = SolveReport(
            solver="lp:art_avg",
            kind="bound",
            metrics=None,
            lower_bounds={"lp_total_response": 12.5},
        ).to_dict()
        assert check_record(record).ok

    def test_poisoned_metrics_none_record_flagged(self):
        # Regression: a metrics=None offline record (what run_trial
        # rejects as a poisoned store entry) must not certify clean.
        record = SolveReport(
            solver="Greedy", kind="offline", metrics=None
        ).to_dict()
        assert "missing-metrics" in codes(check_record(record))

    def test_infeasibility_certificate_record_certifies(self):
        # extras["feasible"] == False is a legitimate schedule-less
        # outcome (Time-Constrained infeasibility certificate).
        record = SolveReport(
            solver="TimeConstrained", kind="offline", metrics=None,
            extras={"feasible": False},
        ).to_dict()
        assert check_record(record).ok


class TestCheckOnlineRun:
    def test_simulation_certifies(self, inst):
        for name in ("MaxCard", "MinRTime", "FIFO"):
            sim = simulate(inst, make_policy(name))
            assert check_online_run(sim).ok

    def test_corrupt_history_flagged(self, inst):
        sim = simulate(inst, make_policy("MaxCard"))
        bad = replace(sim, queue_history=sim.queue_history + 1)
        assert "queue-accounting" in codes(check_online_run(bad))

    def test_overloaded_run_flagged_despite_consistent_metrics(self):
        # Regression: a buggy policy that overloads a port produces a
        # SimulationResult whose *recomputed* metrics honestly report
        # max_augmentation=1 — internally consistent, still infeasible.
        # The online checker must pin the allowance to zero, not trust
        # the result's own augmentation claim.
        from repro.online.simulator import SimulationResult

        switch = Switch.create(2)
        inst2 = Instance.create(
            switch, [Flow(0, 0, 1, 0), Flow(0, 1, 1, 0)]
        )
        schedule = Schedule(inst2, np.zeros(2, dtype=np.int64))
        metrics = ScheduleMetrics.of(schedule)
        assert metrics.max_augmentation == 1  # honest but infeasible
        bad = SimulationResult(
            schedule, metrics, rounds=1,
            queue_history=np.asarray([2], dtype=np.int64),
        )
        vr = check_online_run(bad)
        assert {"capacity-overload", "online-augmentation"} <= codes(vr)

    def test_corrupt_rounds_flagged(self, inst):
        sim = simulate(inst, make_policy("MaxCard"))
        bad = replace(sim, rounds=sim.rounds + 1)
        vr = check_online_run(bad)
        assert "round-accounting" in codes(vr)

    def test_stream_result_certifies(self):
        stream = build_stream("hotspot:ports=6,mean=3,horizon=5", seed=2)
        res = simulate_stream(
            stream,
            make_policy("MaxWeight"),
            record_schedule=True,
            record_queue_history=True,
        )
        vr = check_online_run(res, instance=stream.materialize())
        assert vr.ok
        assert "queue-accounting" in vr.checks

    def test_mismatched_instance_reported_not_raised(self):
        # Regression: certifying a stream run against the *wrong*
        # materialization (shorter prefix) must report a violation, not
        # crash inside the Schedule constructor.
        stream = build_stream("hotspot:ports=6,mean=3,horizon=5", seed=2)
        res = simulate_stream(
            stream, make_policy("MaxWeight"), record_schedule=True
        )
        wrong = stream.take(4).materialize()
        if wrong.num_flows == res.metrics.num_flows:
            pytest.skip("prefix draw has no round-5 arrivals")
        vr = check_online_run(res, instance=wrong)
        assert "instance-mismatch" in codes(vr)

    def test_stream_augmentation_claim_flagged(self):
        stream = build_stream("hotspot:ports=6,mean=3,horizon=5", seed=2)
        res = simulate_stream(stream, make_policy("MaxWeight"))
        bad = replace(res, metrics=replace(res.metrics, max_augmentation=1))
        assert "stream-augmentation" in codes(check_online_run(bad))

    def test_simulate_verify_flag(self, inst):
        sim = simulate(inst, make_policy("MaxWeight"), verify=True)
        assert sim.metrics.num_flows == inst.num_flows

    def test_simulate_stream_verify_flag(self):
        stream = build_stream("paper-default:ports=6,mean=3,horizon=4", seed=1)
        res = simulate_stream(
            stream, make_policy("FIFO"), record_schedule=True, verify=True
        )
        assert res.metrics.num_flows >= 0

    def test_simulate_stream_verify_needs_recorded_schedule(self):
        # Without the assignment, the stream checks would only re-derive
        # the engine's own accumulators — reject the tautology up front.
        stream = build_stream("paper-default:ports=6,mean=3,horizon=4", seed=1)
        with pytest.raises(ValueError, match="record_schedule=True"):
            simulate_stream(stream, make_policy("FIFO"), verify=True)


class TestCheckStream:
    def test_builtin_scenarios_certify(self):
        stream = build_stream("onoff-bursty:ports=6,horizon=6", seed=4)
        report = check_stream(stream)
        assert report.ok
        assert report.stats["prefix_digest"] == stream.prefix_digest()

    def test_nondeterministic_stream_flagged(self):
        import itertools

        from repro.scenarios.stream import ArrivalStream, make_batch

        switch = Switch.create(4)
        counter = itertools.count()  # shared state: differs per iteration

        def factory():
            k = next(counter) % 3 + 1
            yield make_batch([0] * k, list(range(k)))

        stream = ArrivalStream(switch, factory, rounds=1, label="racy")
        report = check_stream(stream)
        assert "nondeterministic-stream" in codes(report)

    def test_out_of_range_batch_flagged(self):
        from repro.scenarios.stream import ArrivalStream, make_batch

        switch = Switch.create(2)

        def factory():
            yield make_batch([5], [0])

        stream = ArrivalStream(switch, factory, rounds=1, label="bad-ports")
        assert "batch-port-range" in codes(check_stream(stream))

    def test_unbounded_stream_needs_rounds(self):
        from repro.scenarios.stream import ArrivalStream, make_batch

        switch = Switch.create(2)

        def factory():
            while True:
                yield make_batch([0], [0])

        stream = ArrivalStream(switch, factory, rounds=None, label="inf")
        assert "unbounded-stream" in codes(check_stream(stream))
        assert check_stream(stream, rounds=3).ok


class TestHarnessFixtures:
    def test_certify_fixture(self, certify, inst):
        sim = simulate(inst, make_policy("MaxWeight"))
        report = certify(sim)
        assert report.ok

    def test_certify_violations_fixture(self, certify_violations, inst):
        sim = simulate(inst, make_policy("MaxWeight"))
        bad = replace(sim, queue_history=sim.queue_history + 1)
        certify_violations(bad, "queue-accounting")
