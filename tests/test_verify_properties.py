"""Property-based certification across the whole scenario registry.

Seeded stdlib-``random`` property tests (no new dependencies): for
every registered scenario, draw small randomized spec variants, run
every applicable registered solver, and assert ``check_schedule`` and
``check_lp_certificate`` certify each report.  The point is breadth —
every (scenario, solver) pair goes through the certificate layer, so a
future generator or solver change that breaks a guarantee fails here
before any bespoke suite notices.
"""

import random

import pytest

from repro.api import get_solver, list_solvers
from repro.scenarios import ScenarioSpec, build_instance, list_scenarios
from repro.verify import (
    check_lp_certificate,
    check_schedule,
    check_stream,
)
from repro.scenarios import build_stream

#: Seeded variants per scenario (stdlib RNG; deterministic suite).
VARIANTS_PER_SCENARIO = 2

#: Spec shapes kept deliberately tiny so the LP-backed solvers stay fast.
_SMALL = {"num_ports": 5, "horizon": 4}

#: Per-scenario param jitter: (param, choices).  Only params every
#: scenario accepts with these names; everything else rides on defaults.
_JITTER = {
    "paper-default": [("mean", (2.0, 3.0, 4.0))],
    "hotspot": [("mean", (2.0, 3.0)), ("zipf_exponent", (1.1, 1.5))],
    "incast": [("gap", (1, 2))],
    "onoff-bursty": [("rate", (2.0, 3.0)), ("p_on", (0.2, 0.4))],
    "diurnal": [("mean", (2.0, 4.0)), ("period", (4, 8))],
    "heavy-tailed": [("mean", (2.0, 3.0)), ("alpha", (1.4, 2.0))],
    "permutation": [],
    "trace-replay": [],
}


def _spec_for(scenario: str, rng: random.Random) -> ScenarioSpec:
    params = {}
    for key, choices in _JITTER.get(scenario, []):
        params[key] = rng.choice(choices)
    fields = dict(_SMALL)
    if scenario == "trace-replay":
        # Shape-deriving: the builtin sample trace sets its own bounds;
        # only cap the horizon so the instance stays small.
        fields = {"horizon": 6}
    return ScenarioSpec(scenario, params=params, **fields)


def _solvers_for(instance):
    """Every registered switch-instance solver applicable to ``instance``.

    Offline + online kinds (coflow solvers consume CoflowInstances);
    solvers declaring ``requires_unit_demands`` (FS-ART, Theorem 1's
    unit-demand pipeline) only run where the precondition holds — the
    same flag :func:`repro.verify.differential._applicable` consults.
    """
    names = list_solvers("offline") + list_solvers("online")
    if not instance.is_unit_demand:
        names = [
            n for n in names
            if not getattr(get_solver(n), "requires_unit_demands", False)
        ]
    return names


def _assert_certified(report, instance, context: str) -> None:
    schedule_check = check_schedule(
        report.schedule, metrics=report.metrics, subject=context
    )
    assert schedule_check.ok, schedule_check.render()
    certificate = check_lp_certificate(
        report, instance=instance, subject=context
    )
    assert certificate.ok, certificate.render()


def test_registry_has_the_eight_builtin_scenarios():
    assert len(list_scenarios()) >= 8


@pytest.mark.parametrize("scenario", sorted(list_scenarios()))
def test_every_solver_certifies_on_scenario(scenario):
    rng = random.Random(f"verify-properties:{scenario}")
    for _ in range(VARIANTS_PER_SCENARIO):
        spec = _spec_for(scenario, rng)
        seed = rng.randrange(2**20)
        instance = build_instance(spec, seed=seed)
        if instance.num_flows == 0:
            continue
        for name in _solvers_for(instance):
            report = get_solver(name).solve(instance)
            context = f"{name}@{spec.label()}#seed={seed}"
            assert report.schedule is not None, context
            _assert_certified(report, instance, context)


@pytest.mark.parametrize("scenario", sorted(list_scenarios()))
def test_every_scenario_stream_certifies(scenario):
    rng = random.Random(f"verify-streams:{scenario}")
    spec = _spec_for(scenario, rng)
    stream = build_stream(spec, seed=rng.randrange(2**20))
    report = check_stream(stream, rounds=min(stream.rounds or 6, 6))
    assert report.ok, report.render()
