"""Tests for König bipartite edge coloring."""

import numpy as np
from hypothesis import given, settings

from repro.matching.bipartite import BipartiteMultigraph
from repro.matching.edge_coloring import (
    color_classes,
    edge_color_bipartite,
    is_proper_coloring,
)
from tests.conftest import bipartite_edge_lists


def _graph(n_left, n_right, edges):
    g = BipartiteMultigraph(n_left, n_right)
    for u, v in edges:
        g.add_edge(u, v)
    return g


def _reference_color(graph):
    """The seed implementation: linear first-free scan over slot lists."""
    delta = graph.max_degree()
    n_edges = graph.n_edges
    colors = np.full(n_edges, -1, dtype=np.int64)
    if n_edges == 0:
        return colors
    left_slot = [[-1] * delta for _ in range(graph.n_left)]
    right_slot = [[-1] * delta for _ in range(graph.n_right)]

    def first_free(slots):
        for c, eid in enumerate(slots):
            if eid == -1:
                return c
        raise AssertionError("degree exceeded Delta")

    def flip(start_right, alpha, beta):
        path_edges = []
        side_right = True
        vertex = start_right
        color = alpha
        while True:
            slots = right_slot[vertex] if side_right else left_slot[vertex]
            eid = slots[color]
            if eid == -1:
                break
            path_edges.append(eid)
            u2, v2 = graph.edges[eid]
            vertex = u2 if side_right else v2
            side_right = not side_right
            color = beta if color == alpha else alpha
        for eid in path_edges:
            u2, v2 = graph.edges[eid]
            c = int(colors[eid])
            left_slot[u2][c] = -1
            right_slot[v2][c] = -1
        for eid in path_edges:
            u2, v2 = graph.edges[eid]
            c = int(colors[eid])
            new_c = beta if c == alpha else alpha
            colors[eid] = new_c
            left_slot[u2][new_c] = eid
            right_slot[v2][new_c] = eid

    for eid, (u, v) in enumerate(graph.edges):
        alpha = first_free(left_slot[u])
        beta = first_free(right_slot[v])
        if left_slot[u][beta] == -1:
            colors[eid] = beta
            left_slot[u][beta] = eid
            right_slot[v][beta] = eid
            continue
        if right_slot[v][alpha] == -1:
            colors[eid] = alpha
            left_slot[u][alpha] = eid
            right_slot[v][alpha] = eid
            continue
        flip(v, alpha, beta)
        colors[eid] = alpha
        left_slot[u][alpha] = eid
        right_slot[v][alpha] = eid
    return colors


class TestKnownGraphs:
    def test_single_edge(self):
        g = _graph(1, 1, [(0, 0)])
        colors = edge_color_bipartite(g)
        assert colors.tolist() == [0]

    def test_empty_graph(self):
        assert edge_color_bipartite(_graph(2, 2, [])).size == 0

    def test_complete_bipartite_k33_needs_three(self):
        edges = [(u, v) for u in range(3) for v in range(3)]
        g = _graph(3, 3, edges)
        colors = edge_color_bipartite(g)
        assert is_proper_coloring(g, colors)
        assert len(set(colors.tolist())) == 3  # Δ = 3 exactly

    def test_parallel_edges_get_distinct_colors(self):
        g = _graph(1, 1, [(0, 0), (0, 0), (0, 0)])
        colors = edge_color_bipartite(g)
        assert sorted(colors.tolist()) == [0, 1, 2]

    def test_path_alternates_two_colors(self):
        # Path of length 4: degrees <= 2, so exactly 2 colors.
        g = _graph(3, 2, [(0, 0), (1, 0), (1, 1), (2, 1)])
        colors = edge_color_bipartite(g)
        assert is_proper_coloring(g, colors)
        assert set(colors.tolist()) <= {0, 1}

    def test_color_classes_partition(self):
        edges = [(u, v) for u in range(3) for v in range(3)]
        g = _graph(3, 3, edges)
        classes = color_classes(g, edge_color_bipartite(g))
        all_eids = sorted(e for cls in classes.values() for e in cls)
        assert all_eids == list(range(9))


class TestColoringProperties:
    @given(bipartite_edge_lists(max_side=6, max_edges=20))
    @settings(max_examples=150, deadline=None)
    def test_always_proper_with_delta_colors(self, data):
        n_left, n_right, edges = data
        g = _graph(n_left, n_right, edges)
        colors = edge_color_bipartite(g)
        if g.n_edges:
            assert is_proper_coloring(g, colors)
            # König: exactly Δ colors suffice.
            assert colors.max() + 1 <= g.max_degree()
            assert colors.min() >= 0

    @given(bipartite_edge_lists(max_side=6, max_edges=24))
    @settings(max_examples=120, deadline=None)
    def test_matches_reference_scan_implementation(self, data):
        """The heap-based lowest-free-color tracker must reproduce the
        seed's O(Δ) first-free scan edge for edge (colorings feed the
        Theorem 1 window emission, so tie-breaking is load-bearing)."""
        n_left, n_right, edges = data
        g = _graph(n_left, n_right, edges)
        fast = edge_color_bipartite(g)
        ref = _reference_color(g)
        assert fast.tolist() == ref.tolist()

    @given(bipartite_edge_lists(max_side=4, max_edges=16))
    @settings(max_examples=80, deadline=None)
    def test_is_proper_coloring_detects_violations(self, data):
        n_left, n_right, edges = data
        g = _graph(n_left, n_right, edges)
        if g.n_edges < 2:
            return
        colors = edge_color_bipartite(g)
        # Deliberately break properness when two edges share a vertex.
        for i in range(g.n_edges):
            for j in range(i + 1, g.n_edges):
                ui, vi = g.edges[i]
                uj, vj = g.edges[j]
                if ui == uj or vi == vj:
                    bad = colors.copy()
                    bad[j] = bad[i]
                    assert not is_proper_coloring(g, bad)
                    return
