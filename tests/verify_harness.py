"""Pytest certification harness over :mod:`repro.verify`.

Import-side plugin exposing ``certify``-style fixtures so any suite can
route its artifacts through the certificate checkers without
re-implementing assertions; ``tests/conftest.py`` re-exports the
fixtures, so every test file simply takes them as arguments:

``certify``
    ``certify(obj, instance=None, **kwargs)`` — dispatch any supported
    object (Schedule, SolveReport, SimulationResult,
    StreamSimulationResult, ArrivalStream, Instance, cached record
    dict) to its checker and ``pytest.fail`` with the rendered violation
    list unless it certifies.  Returns the
    :class:`~repro.verify.VerificationReport` for stats-level
    assertions.

``certify_instance``
    ``certify_instance(instance, solvers=None, **kwargs)`` — run
    :func:`repro.verify.cross_check` and fail on any violation; returns
    the :class:`~repro.verify.CrossCheckResult` so tests can inspect
    per-solver reports and oracle bounds.

``certify_violations``
    ``certify_violations(obj, *codes, **kwargs)`` — the negative-path
    helper: certify ``obj`` expecting failure, assert every given
    violation code is present, and return the report.
"""

from __future__ import annotations

import pytest

from repro.verify import certify as _certify_object
from repro.verify import cross_check as _cross_check


def _fail(report) -> None:
    pytest.fail(f"certification failed\n{report.render()}", pytrace=False)


@pytest.fixture
def certify():
    """Certify any supported object; fail the test on violations."""

    def _check(obj, *args, **kwargs):
        report = _certify_object(obj, *args, **kwargs)
        if not report.ok:
            _fail(report)
        return report

    return _check


@pytest.fixture
def certify_instance():
    """Cross-check solvers on an instance; fail the test on violations."""

    def _check(instance, solvers=None, **kwargs):
        result = _cross_check(instance, solvers=solvers, **kwargs)
        if not result.ok:
            _fail(result.verification)
        return result

    return _check


@pytest.fixture
def certify_violations():
    """Certify expecting failure; assert the named codes were found."""

    def _check(obj, *codes, **kwargs):
        report = _certify_object(obj, **kwargs)
        found = {v.code for v in report.violations}
        if not report.violations:
            pytest.fail(
                f"expected violations {sorted(codes)} but {report.subject} "
                "certified clean",
                pytrace=False,
            )
        missing = set(codes) - found
        if missing:
            pytest.fail(
                f"expected violation codes {sorted(missing)} not found; "
                f"got {sorted(found)}",
                pytrace=False,
            )
        return report

    return _check
