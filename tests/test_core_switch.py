"""Unit tests for repro.core.switch."""

import numpy as np
import pytest

from repro.core.switch import Switch


class TestSwitchCreate:
    def test_square_default(self):
        sw = Switch.create(5)
        assert sw.num_inputs == 5
        assert sw.num_outputs == 5
        assert sw.is_square
        assert sw.is_unit_capacity

    def test_rectangular(self):
        sw = Switch.create(3, 7)
        assert (sw.num_inputs, sw.num_outputs) == (3, 7)
        assert not sw.is_square

    def test_scalar_capacity_broadcast(self):
        sw = Switch.create(4, 4, 3)
        assert (sw.input_capacities == 3).all()
        assert (sw.output_capacities == 3).all()
        assert not sw.is_unit_capacity

    def test_per_port_capacities(self):
        sw = Switch.create(2, 3, [1, 2], [3, 1, 2])
        assert sw.input_capacity(1) == 2
        assert sw.output_capacity(0) == 3

    def test_output_caps_default_to_input_spec(self):
        sw = Switch.create(3, 3, 5)
        assert sw.output_capacity(2) == 5

    def test_zero_ports_rejected(self):
        with pytest.raises(ValueError):
            Switch.create(0)

    def test_zero_capacity_rejected(self):
        with pytest.raises(ValueError):
            Switch.create(2, 2, 0)

    def test_wrong_length_capacity_vector_rejected(self):
        with pytest.raises(ValueError):
            Switch.create(3, 3, [1, 2])

    def test_capacity_arrays_read_only(self):
        sw = Switch.create(2)
        with pytest.raises(ValueError):
            sw.input_capacities[0] = 5


class TestSwitchDerived:
    def test_kappa_is_min_of_endpoint_caps(self):
        sw = Switch.create(2, 2, [1, 4], [3, 2])
        assert sw.kappa(0, 0) == 1
        assert sw.kappa(1, 0) == 3
        assert sw.kappa(1, 1) == 2

    def test_augmented_factor(self):
        sw = Switch.create(2, 2, 2).augmented(factor=1.5)
        assert sw.input_capacity(0) == 3

    def test_augmented_additive(self):
        sw = Switch.create(2, 2, 1).augmented(additive=3)
        assert sw.output_capacity(1) == 4

    def test_augmented_rejects_shrink(self):
        with pytest.raises(ValueError):
            Switch.create(2).augmented(factor=0.5)

    def test_augmented_rejects_negative_additive(self):
        with pytest.raises(ValueError):
            Switch.create(2).augmented(additive=-1)

    def test_ports_iteration(self):
        sw = Switch.create(2, 3)
        ports = list(sw.ports())
        assert ports.count(("in", 0)) == 1
        assert len(ports) == 5
        assert ("out", 2) in ports
