"""Warm-start and array-entry properties of the Hopcroft–Karp kernel.

The kernel promises: whatever warm start it is given — a stale matching,
a partial matching, or garbage — the result is a *maximum* matching of
the current graph.  These tests pit cold and warm solves against a
brute-force matcher on random multigraphs and check the alternative
entry points (endpoint arrays, adjacency rows) against the graph entry.
"""

import itertools

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.matching.bipartite import BipartiteMultigraph
from repro.matching.hopcroft_karp import (
    max_cardinality_matching,
    max_cardinality_matching_adjacency,
    max_cardinality_matching_arrays,
)
from tests.conftest import bipartite_edge_lists


def _graph(n_left, n_right, edges):
    g = BipartiteMultigraph(n_left, n_right)
    for u, v in edges:
        g.add_edge(u, v)
    return g


def _brute_force_size(n_left, n_right, edges):
    best = 0
    for r in range(min(n_left, n_right, len(edges)) + 1):
        for comb in itertools.combinations(range(len(edges)), r):
            us = [edges[i][0] for i in comb]
            vs = [edges[i][1] for i in comb]
            if len(set(us)) == r and len(set(vs)) == r:
                best = max(best, r)
    return best


def _assert_valid_matching(graph, matching):
    lefts, rights = set(), set()
    for u, eid in matching.items():
        eu, ev = graph.edges[eid]
        assert eu == u, "matched edge not incident on its left vertex"
        assert u not in lefts and ev not in rights, "vertex reused"
        lefts.add(u)
        rights.add(ev)


class TestWarmStartAgainstBruteForce:
    @given(bipartite_edge_lists(max_side=3, max_edges=6), st.randoms())
    @settings(max_examples=80, deadline=None)
    def test_warm_from_partial_matching_is_maximum(self, data, rnd):
        n_left, n_right, edges = data
        g = _graph(n_left, n_right, edges)
        best = _brute_force_size(n_left, n_right, edges)
        cold = max_cardinality_matching(g)
        assert len(cold) == best
        # Seed from a random subset of the cold matching.
        keys = sorted(cold)
        subset = {u: cold[u] for u in keys if rnd.random() < 0.5}
        warm = max_cardinality_matching(g, warm_start=subset)
        _assert_valid_matching(g, warm)
        assert len(warm) == best

    @given(bipartite_edge_lists(max_side=3, max_edges=6), st.randoms())
    @settings(max_examples=60, deadline=None)
    def test_garbage_warm_start_is_ignored(self, data, rnd):
        n_left, n_right, edges = data
        g = _graph(n_left, n_right, edges)
        best = _brute_force_size(n_left, n_right, edges)
        garbage = {
            rnd.randrange(0, n_left + 3): rnd.randrange(-2, len(edges) + 4)
            for _ in range(4)
        }
        warm = max_cardinality_matching(g, warm_start=garbage)
        _assert_valid_matching(g, warm)
        assert len(warm) == best

    def test_conflicting_entries_first_left_wins(self):
        # Both left vertices claim right vertex 0; u=0 is seeded first.
        g = _graph(2, 2, [(0, 0), (1, 0)])
        warm = max_cardinality_matching(g, warm_start={0: 0, 1: 1})
        _assert_valid_matching(g, warm)
        assert len(warm) == 1

    def test_stale_edge_id_skipped(self):
        g = _graph(2, 2, [(0, 0), (1, 1)])
        # Edge id 7 does not exist; edge 1 is not incident on left 0.
        warm = max_cardinality_matching(g, warm_start={0: 7, 1: 0})
        _assert_valid_matching(g, warm)
        assert len(warm) == 2


class TestWarmStartDoesLessWork:
    def test_full_warm_start_skips_augmentation(self):
        g = _graph(3, 3, [(0, 0), (1, 1), (2, 2)])
        cold_stats, warm_stats = {}, {}
        cold = max_cardinality_matching(g, stats=cold_stats)
        max_cardinality_matching(g, warm_start=cold, stats=warm_stats)
        # A complete warm start needs exactly one (empty) BFS phase.
        assert warm_stats["bfs_phases"] == 1
        assert warm_stats.get("augmentations", 0) == 0

    def test_counters_accumulate(self):
        g = _graph(2, 2, [(0, 0), (0, 1), (1, 0)])
        stats = {}
        max_cardinality_matching(g, stats=stats)
        max_cardinality_matching(g, stats=stats)
        assert stats["bfs_phases"] >= 2


class TestAlternativeEntryPoints:
    @given(bipartite_edge_lists())
    @settings(max_examples=80, deadline=None)
    def test_arrays_entry_matches_graph_entry(self, data):
        n_left, n_right, edges = data
        g = _graph(n_left, n_right, edges)
        via_graph = max_cardinality_matching(g)
        us = np.asarray([u for u, _ in edges], dtype=np.int64)
        vs = np.asarray([v for _, v in edges], dtype=np.int64)
        via_arrays = max_cardinality_matching_arrays(n_left, n_right, us, vs)
        assert via_graph == via_arrays

    @given(bipartite_edge_lists())
    @settings(max_examples=80, deadline=None)
    def test_adjacency_entry_matches_graph_entry(self, data):
        n_left, n_right, edges = data
        g = _graph(n_left, n_right, edges)
        via_graph = max_cardinality_matching(g)
        rows_v = [[] for _ in range(n_left)]
        rows_p = [[] for _ in range(n_left)]
        for eid, (u, v) in enumerate(edges):
            rows_v[u].append(v)
            rows_p[u].append(eid)
        via_rows = max_cardinality_matching_adjacency(
            n_left, n_right, rows_v, rows_p
        )
        assert via_graph == via_rows

    def test_adjacency_pair_level_warm_start(self):
        rows_v = [[0, 1], [0]]
        rows_p = [[10, 11], [12]]
        res = max_cardinality_matching_adjacency(
            2, 2, rows_v, rows_p, warm_start={0: 0}
        )
        # Warm pair (0 -> right 0) is repaired: 0 must move to right 1 so
        # left 1 (whose only neighbor is right 0) can be matched too.
        assert res == {0: 11, 1: 12}

    def test_adjacency_warm_start_ignores_missing_pairs(self):
        rows_v = [[1]]
        rows_p = [[5]]
        res = max_cardinality_matching_adjacency(
            1, 2, rows_v, rows_p, warm_start={0: 0, 7: 1}
        )
        assert res == {0: 5}


class TestDocstringContract:
    def test_returns_left_vertex_to_edge_id(self):
        """Regression for the seed docstring that claimed an
        ``{edge_id: 1}`` return shape."""
        g = _graph(2, 2, [(0, 1), (1, 0)])
        matching = max_cardinality_matching(g)
        assert set(matching.keys()) == {0, 1}
        for u, eid in matching.items():
            assert g.edges[eid][0] == u
