"""Unit and property tests for the two-phase simplex solver."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lp.result import LPStatus
from repro.lp.simplex import simplex_solve


class TestSimplexBasics:
    def test_simple_optimum(self):
        # min -x - y  s.t.  x + y + s = 4, x + 2y + s2 = 6
        A = np.array([[1.0, 1.0, 1.0, 0.0], [1.0, 2.0, 0.0, 1.0]])
        b = np.array([4.0, 6.0])
        c = np.array([-1.0, -1.0, 0.0, 0.0])
        res = simplex_solve(A, b, c)
        assert res.status is LPStatus.OPTIMAL
        assert res.objective == pytest.approx(-4.0)

    def test_equality_only(self):
        # min x + y  s.t.  x + y = 3
        A = np.array([[1.0, 1.0]])
        b = np.array([3.0])
        c = np.array([1.0, 1.0])
        res = simplex_solve(A, b, c)
        assert res.status is LPStatus.OPTIMAL
        assert res.objective == pytest.approx(3.0)

    def test_infeasible_detected(self):
        # x = -1 with x >= 0 is infeasible.
        A = np.array([[1.0]])
        b = np.array([-1.0])
        c = np.array([1.0])
        res = simplex_solve(A, b, c)
        assert res.status is LPStatus.INFEASIBLE

    def test_unbounded_detected(self):
        # min -x  s.t.  x - s = 0 (x can grow with s).
        A = np.array([[1.0, -1.0]])
        b = np.array([0.0])
        c = np.array([-1.0, 0.0])
        res = simplex_solve(A, b, c)
        assert res.status is LPStatus.UNBOUNDED

    def test_negative_rhs_normalized(self):
        # -x = -2  <=>  x = 2.
        A = np.array([[-1.0]])
        b = np.array([-2.0])
        c = np.array([1.0])
        res = simplex_solve(A, b, c)
        assert res.status is LPStatus.OPTIMAL
        assert res.x[0] == pytest.approx(2.0)

    def test_redundant_rows_handled(self):
        # Duplicate constraint row (rank-deficient phase 1).
        A = np.array([[1.0, 1.0], [1.0, 1.0]])
        b = np.array([2.0, 2.0])
        c = np.array([1.0, 0.0])
        res = simplex_solve(A, b, c)
        assert res.status is LPStatus.OPTIMAL
        assert res.objective == pytest.approx(0.0)

    def test_degenerate_lp_terminates(self):
        # Classic degeneracy: many tight constraints at the origin.
        A = np.array(
            [[1.0, 0.0, 1.0, 0.0, 0.0],
             [0.0, 1.0, 0.0, 1.0, 0.0],
             [1.0, 1.0, 0.0, 0.0, 1.0]]
        )
        b = np.array([0.0, 0.0, 0.0])
        c = np.array([-1.0, -1.0, 0.0, 0.0, 0.0])
        res = simplex_solve(A, b, c)
        assert res.status is LPStatus.OPTIMAL
        assert res.objective == pytest.approx(0.0)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            simplex_solve(np.eye(2), np.zeros(3), np.zeros(2))

    def test_solution_is_basic(self):
        # At most rank(A) nonzeros in a basic solution.
        A = np.hstack([np.ones((1, 5))])
        b = np.array([1.0])
        c = np.array([1.0, 2.0, 3.0, 4.0, 5.0])
        res = simplex_solve(A, b, c)
        assert res.status is LPStatus.OPTIMAL
        assert (np.abs(res.x) > 1e-9).sum() <= 1


class TestStatelessness:
    """Regressions for the removed ``_UNBOUNDED_FLAG`` module global.

    The old flag was set by ``_run_simplex`` and only cleared on one
    return path of ``simplex_solve``, so an early return with the flag
    set leaked UNBOUNDED into the *next* solve (and any concurrent one).
    ``_run_simplex`` now returns an explicit status code.
    """

    UNBOUNDED_LP = (
        np.array([[1.0, -1.0]]),
        np.array([0.0]),
        np.array([-1.0, 0.0]),
    )
    BOUNDED_LP = (
        np.array([[1.0, 1.0]]),
        np.array([3.0]),
        np.array([1.0, 1.0]),
    )

    def test_module_flag_removed(self):
        from repro.lp import simplex as simplex_module

        assert not hasattr(simplex_module, "_UNBOUNDED_FLAG")

    def test_back_to_back_solves_independent(self):
        # Interleave unbounded and bounded solves: each result must be a
        # pure function of its inputs, with no carried-over state.
        for _ in range(3):
            res = simplex_solve(*self.UNBOUNDED_LP)
            assert res.status is LPStatus.UNBOUNDED
            res = simplex_solve(*self.BOUNDED_LP)
            assert res.status is LPStatus.OPTIMAL
            assert res.objective == pytest.approx(3.0)

    def test_infeasible_then_bounded(self):
        infeasible = (np.array([[1.0]]), np.array([-1.0]), np.array([1.0]))
        assert simplex_solve(*infeasible).status is LPStatus.INFEASIBLE
        assert simplex_solve(*self.BOUNDED_LP).status is LPStatus.OPTIMAL

    def test_thread_safety_mixed_solves(self):
        # With the module flag, an unbounded solve in one thread could
        # flip a concurrent bounded solve to UNBOUNDED.
        import threading

        failures = []

        def bounded_worker():
            for _ in range(50):
                res = simplex_solve(*self.BOUNDED_LP)
                if res.status is not LPStatus.OPTIMAL:
                    failures.append(res.status)

        def unbounded_worker():
            for _ in range(50):
                res = simplex_solve(*self.UNBOUNDED_LP)
                if res.status is not LPStatus.UNBOUNDED:
                    failures.append(res.status)

        threads = [threading.Thread(target=bounded_worker) for _ in range(2)]
        threads += [threading.Thread(target=unbounded_worker) for _ in range(2)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert failures == []


class TestIterationAccounting:
    """Regressions for the phase-2 iteration-budget handoff."""

    def test_phase2_with_zero_budget_still_optimal(self):
        # Phase 1 needs exactly one pivot; a zero objective makes phase 2
        # need none.  The old code handed phase 2 a budget of 0 and
        # reported ERROR even though the tableau was already optimal.
        A = np.array([[1.0, 1.0]])
        b = np.array([3.0])
        c = np.array([0.0, 0.0])
        res = simplex_solve(A, b, c, max_iterations=1)
        assert res.status is LPStatus.OPTIMAL
        assert res.iterations == 1

    def test_exhaustion_reports_true_iteration_count(self):
        # Exhaust during phase 1: the reported count is the number of
        # pivots actually performed, never a misleading constant.
        A = np.array([[1.0, 1.0, 1.0, 0.0], [1.0, 2.0, 0.0, 1.0]])
        b = np.array([4.0, 6.0])
        c = np.array([-1.0, -1.0, 0.0, 0.0])
        res = simplex_solve(A, b, c, max_iterations=1)
        assert res.status is LPStatus.ERROR
        assert res.iterations == 1

    def test_large_budget_unchanged(self):
        A = np.array([[1.0, 1.0, 1.0, 0.0], [1.0, 2.0, 0.0, 1.0]])
        b = np.array([4.0, 6.0])
        c = np.array([-1.0, -1.0, 0.0, 0.0])
        res = simplex_solve(A, b, c)
        assert res.status is LPStatus.OPTIMAL
        assert 0 < res.iterations < 100


@st.composite
def random_lps(draw):
    """Random small LPs in equality standard form."""
    m = draw(st.integers(1, 4))
    n = draw(st.integers(1, 6))
    ints = st.integers(-3, 3)
    A = np.array(
        [[draw(ints) for _ in range(n)] for _ in range(m)], dtype=float
    )
    b = np.array([draw(st.integers(0, 8)) for _ in range(m)], dtype=float)
    c = np.array([draw(st.integers(-4, 4)) for _ in range(n)], dtype=float)
    return A, b, c


class TestSimplexAgainstHiGHS:
    @given(random_lps())
    @settings(max_examples=120, deadline=None)
    def test_matches_scipy(self, lp):
        from scipy.optimize import linprog

        A, b, c = lp
        ours = simplex_solve(A, b, c)
        ref = linprog(c, A_eq=A, b_eq=b, bounds=(0, None), method="highs")
        if ours.status is LPStatus.OPTIMAL:
            assert ref.status == 0
            assert ours.objective == pytest.approx(ref.fun, abs=1e-6)
            # Solution must satisfy the constraints.
            assert np.allclose(A @ ours.x, b, atol=1e-6)
            assert (ours.x >= -1e-9).all()
        elif ours.status is LPStatus.INFEASIBLE:
            assert ref.status == 2
        elif ours.status is LPStatus.UNBOUNDED:
            # HiGHS may report 2 or 3 for empty/unbounded combinations;
            # ours proved feasibility first, so it must be 3.
            assert ref.status == 3
