"""Unit and property tests for the two-phase simplex solver."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lp.result import LPStatus
from repro.lp.simplex import simplex_solve


class TestSimplexBasics:
    def test_simple_optimum(self):
        # min -x - y  s.t.  x + y + s = 4, x + 2y + s2 = 6
        A = np.array([[1.0, 1.0, 1.0, 0.0], [1.0, 2.0, 0.0, 1.0]])
        b = np.array([4.0, 6.0])
        c = np.array([-1.0, -1.0, 0.0, 0.0])
        res = simplex_solve(A, b, c)
        assert res.status is LPStatus.OPTIMAL
        assert res.objective == pytest.approx(-4.0)

    def test_equality_only(self):
        # min x + y  s.t.  x + y = 3
        A = np.array([[1.0, 1.0]])
        b = np.array([3.0])
        c = np.array([1.0, 1.0])
        res = simplex_solve(A, b, c)
        assert res.status is LPStatus.OPTIMAL
        assert res.objective == pytest.approx(3.0)

    def test_infeasible_detected(self):
        # x = -1 with x >= 0 is infeasible.
        A = np.array([[1.0]])
        b = np.array([-1.0])
        c = np.array([1.0])
        res = simplex_solve(A, b, c)
        assert res.status is LPStatus.INFEASIBLE

    def test_unbounded_detected(self):
        # min -x  s.t.  x - s = 0 (x can grow with s).
        A = np.array([[1.0, -1.0]])
        b = np.array([0.0])
        c = np.array([-1.0, 0.0])
        res = simplex_solve(A, b, c)
        assert res.status is LPStatus.UNBOUNDED

    def test_negative_rhs_normalized(self):
        # -x = -2  <=>  x = 2.
        A = np.array([[-1.0]])
        b = np.array([-2.0])
        c = np.array([1.0])
        res = simplex_solve(A, b, c)
        assert res.status is LPStatus.OPTIMAL
        assert res.x[0] == pytest.approx(2.0)

    def test_redundant_rows_handled(self):
        # Duplicate constraint row (rank-deficient phase 1).
        A = np.array([[1.0, 1.0], [1.0, 1.0]])
        b = np.array([2.0, 2.0])
        c = np.array([1.0, 0.0])
        res = simplex_solve(A, b, c)
        assert res.status is LPStatus.OPTIMAL
        assert res.objective == pytest.approx(0.0)

    def test_degenerate_lp_terminates(self):
        # Classic degeneracy: many tight constraints at the origin.
        A = np.array(
            [[1.0, 0.0, 1.0, 0.0, 0.0],
             [0.0, 1.0, 0.0, 1.0, 0.0],
             [1.0, 1.0, 0.0, 0.0, 1.0]]
        )
        b = np.array([0.0, 0.0, 0.0])
        c = np.array([-1.0, -1.0, 0.0, 0.0, 0.0])
        res = simplex_solve(A, b, c)
        assert res.status is LPStatus.OPTIMAL
        assert res.objective == pytest.approx(0.0)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            simplex_solve(np.eye(2), np.zeros(3), np.zeros(2))

    def test_solution_is_basic(self):
        # At most rank(A) nonzeros in a basic solution.
        A = np.hstack([np.ones((1, 5))])
        b = np.array([1.0])
        c = np.array([1.0, 2.0, 3.0, 4.0, 5.0])
        res = simplex_solve(A, b, c)
        assert res.status is LPStatus.OPTIMAL
        assert (np.abs(res.x) > 1e-9).sum() <= 1


@st.composite
def random_lps(draw):
    """Random small LPs in equality standard form."""
    m = draw(st.integers(1, 4))
    n = draw(st.integers(1, 6))
    ints = st.integers(-3, 3)
    A = np.array(
        [[draw(ints) for _ in range(n)] for _ in range(m)], dtype=float
    )
    b = np.array([draw(st.integers(0, 8)) for _ in range(m)], dtype=float)
    c = np.array([draw(st.integers(-4, 4)) for _ in range(n)], dtype=float)
    return A, b, c


class TestSimplexAgainstHiGHS:
    @given(random_lps())
    @settings(max_examples=120, deadline=None)
    def test_matches_scipy(self, lp):
        from scipy.optimize import linprog

        A, b, c = lp
        ours = simplex_solve(A, b, c)
        ref = linprog(c, A_eq=A, b_eq=b, bounds=(0, None), method="highs")
        if ours.status is LPStatus.OPTIMAL:
            assert ref.status == 0
            assert ours.objective == pytest.approx(ref.fun, abs=1e-6)
            # Solution must satisfy the constraints.
            assert np.allclose(A @ ours.x, b, atol=1e-6)
            assert (ours.x >= -1e-9).all()
        elif ours.status is LPStatus.INFEASIBLE:
            assert ref.status == 2
        elif ours.status is LPStatus.UNBOUNDED:
            # HiGHS may report 2 or 3 for empty/unbounded combinations;
            # ours proved feasibility first, so it must be 3.
            assert ref.status == 3
