"""Runner-level trial batching: plan_batches / run_batch / put_many.

The kernel-level byte-identity contract lives in
``test_batch_equivalence.py``; this module covers the orchestration
layers above it — batch planning, the bulk store protocol, the
``run_batch``-vs-``run_trial`` equivalence across every registered
scenario and online policy (fallback policies included), the Runner
wiring, and the ``SweepInterrupted`` flush-and-resume promise for
batched multiprocessing sweeps.
"""

import dataclasses
import json
import os
from pathlib import Path

import pytest

from repro.api import (
    Runner,
    SweepInterrupted,
    register_solver,
    unregister_solver,
)
from repro.api.runner import (
    BatchWorkItem,
    WorkItem,
    plan_batches,
    run_batch,
    run_trial,
)
from repro.api.store import ResultStore, close_open_stores
from repro.experiments.config import ExperimentConfig
from repro.lp.bounds import clear_bound_caches
from repro.online.policies import POLICY_REGISTRY
from repro.scenarios import list_scenarios, parse_scenario


@pytest.fixture(autouse=True)
def fresh_memo():
    clear_bound_caches()
    close_open_stores()
    yield
    clear_bound_caches()
    close_open_stores()


def tiny_config(**overrides):
    base = dict(
        num_ports=6,
        load_ratios=(0.5,),
        generation_rounds=(4,),
        trials=6,
        lp_round_limit=4,
        seed=13,
    )
    base.update(overrides)
    return ExperimentConfig(**base)


def cell_items(config, solvers, trials=None, **overrides):
    """One cell's WorkItems, trial-minor, as Runner.run builds them."""
    fields = dict(
        arrival_mean=3.0,
        rounds=4,
        config=config,
        solvers=tuple(solvers),
        want_lp=False,
    )
    fields.update(overrides)
    return [
        WorkItem(trial=trial, **fields)
        for trial in range(trials or config.trials)
    ]


def result_payload(tr):
    """A TrialResult's comparable fields (timings are batch-scoped)."""
    payload = dataclasses.asdict(tr)
    payload.pop("timings")
    payload.pop("timing_counts")
    return payload


def store_lines(cache_dir) -> set:
    lines = set()
    for shard in Path(cache_dir).glob("results-*.jsonl"):
        lines.update(
            line for line in shard.read_text().splitlines() if line.strip()
        )
    return lines


class TestPlanBatches:
    def test_one_batch_per_cell_by_default(self):
        config = tiny_config(trials=4)
        items = []
        for mean in (2.0, 3.0, 4.0):
            items.extend(
                cell_items(config, ("FIFO",), arrival_mean=mean)[:4]
            )
        batches = plan_batches(items, trials=4)
        assert [len(b.items) for b in batches] == [4, 4, 4]
        # Batches never straddle a cell boundary.
        for b in batches:
            assert len({it.arrival_mean for it in b.items}) == 1
            assert [it.trial for it in b.items] == list(range(4))

    def test_batch_trials_caps_batch_size(self):
        config = tiny_config(trials=5)
        items = cell_items(config, ("FIFO",), trials=5) + [
            item
            for item in cell_items(
                config, ("FIFO",), trials=5, arrival_mean=9.0
            )
        ]
        batches = plan_batches(items, trials=5, batch_trials=3)
        assert [len(b.items) for b in batches] == [3, 2, 3, 2]
        for b in batches:
            assert len({it.arrival_mean for it in b.items}) == 1

    def test_batch_trials_one_is_item_per_batch(self):
        config = tiny_config(trials=3)
        items = cell_items(config, ("FIFO",))[:3]
        batches = plan_batches(items, trials=3, batch_trials=1)
        assert [len(b.items) for b in batches] == [1, 1, 1]

    def test_batch_trials_below_one_rejected(self):
        with pytest.raises(ValueError, match="batch_trials"):
            plan_batches([], trials=2, batch_trials=0)


class TestPutMany:
    def test_fifty_records_one_physical_append(self, tmp_path):
        store = ResultStore(tmp_path)
        records = [
            ("S", f"digest-{i}", {}, {"solver": "S", "metrics": {"i": i}})
            for i in range(50)
        ]
        assert store.put_many(records) == 50
        assert store.appends == 1
        shards = list(tmp_path.glob("results-*.jsonl"))
        assert len(shards) == 1
        assert len(shards[0].read_text().splitlines()) == 50
        store.close()
        reloaded = ResultStore(tmp_path)
        for i in range(50):
            assert reloaded.get("S", f"digest-{i}", {}) == {
                "solver": "S",
                "metrics": {"i": i},
            }

    def test_put_many_dedups_by_content(self, tmp_path):
        store = ResultStore(tmp_path)
        records = [("S", "d1", {}, {"v": 1}), ("S", "d2", {}, {"v": 2})]
        assert store.put_many(records) == 2
        # Identical records (and intra-batch duplicates) are skipped.
        assert store.put_many(records + records) == 0
        assert store.appends == 1

    def test_put_many_changed_record_wins_on_reload(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put_many([("S", "d1", {}, {"v": "old"})])
        assert store.put_many([("S", "d1", {}, {"v": "new"})]) == 1
        store.close()
        close_open_stores()
        assert ResultStore(tmp_path).get("S", "d1", {}) == {"v": "new"}

    def test_get_many_orders_and_counts_like_get(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put_many([("S", "d1", {}, {"v": 1}), ("S", "d2", {}, {"v": 2})])
        got = store.get_many(
            [("S", "d2", {}), ("S", "missing", {}), ("S", "d1", {})]
        )
        assert got == [{"v": 2}, None, {"v": 1}]
        assert store.hits == 2 and store.misses == 1


ALL_POLICIES = tuple(sorted(POLICY_REGISTRY))


class TestRunBatchEquivalence:
    @pytest.mark.parametrize("scenario", sorted(list_scenarios()))
    def test_scenario_batch_matches_serial_trials(self, scenario):
        """Satellite contract: for every registered scenario, a batched
        cell of 8 trials over every online policy (merged kernels and
        per-trial fallbacks alike) equals 8 serial ``run_trial`` calls
        byte for byte, excluding the batch-scoped timings."""
        spec = parse_scenario(f"{scenario}:ports=8,horizon=10")
        config = tiny_config(trials=8, num_ports=8)
        items = cell_items(
            config,
            ALL_POLICIES,
            arrival_mean=0.0,
            rounds=10,
            scenario=spec.to_dict(),
        )
        serial = [run_trial(item) for item in items]
        batched = run_batch(BatchWorkItem(tuple(items)))
        assert [result_payload(tr) for tr in batched] == [
            result_payload(tr) for tr in serial
        ]
        # Batch timings attach to the first result only, so sweep-level
        # timer totals never double count.
        assert batched[0].timings
        assert all(tr.timings == {} for tr in batched[1:])
        assert batched[0].timing_counts["generate"] == 8

    def test_grid_batch_matches_serial_with_lp_and_cache(self, tmp_path):
        config = tiny_config(trials=4)
        serial_items = cell_items(
            config,
            ("FIFO", "MaxWeight"),
            trials=4,
            want_lp=True,
            cache_dir=str(tmp_path / "serial"),
        )
        batch_items = [
            dataclasses.replace(item, cache_dir=str(tmp_path / "batched"))
            for item in serial_items
        ]
        serial = [run_trial(item) for item in serial_items]
        close_open_stores()
        clear_bound_caches()
        batched = run_batch(BatchWorkItem(tuple(batch_items)))
        assert [result_payload(tr) for tr in batched] == [
            result_payload(tr) for tr in serial
        ]
        assert all(tr.lp_avg is not None for tr in batched)
        # Both paths persist the same record set (as shard lines).
        assert store_lines(tmp_path / "batched") == store_lines(
            tmp_path / "serial"
        )

    def test_batch_serves_cache_hits_without_solving(self, tmp_path):
        config = tiny_config(trials=3)
        items = cell_items(
            config,
            ("FIFO",),
            trials=3,
            cache_dir=str(tmp_path),
        )
        run_batch(BatchWorkItem(tuple(items)))
        close_open_stores()
        warm = run_batch(BatchWorkItem(tuple(items)))
        assert warm[0].timing_counts.get("simulate:FIFO", 0) == 0

    def test_single_item_batch_delegates_to_run_trial(self):
        config = tiny_config(trials=1)
        item = cell_items(config, ("FIFO",), trials=1)[0]
        batched = run_batch(BatchWorkItem((item,)))
        assert [result_payload(tr) for tr in batched] == [
            result_payload(run_trial(item))
        ]


class TestRunnerBatchWiring:
    def test_batched_sweep_equals_no_batch(self):
        config = tiny_config(trials=3, load_ratios=(0.5, 1.5))
        batched = Runner(config).run()
        serial = Runner(config, no_batch=True).run()
        assert batched.cells == serial.cells

    def test_batch_trials_cap_preserves_results(self):
        config = tiny_config(trials=5, load_ratios=(0.5,))
        whole = Runner(config).run()
        capped = Runner(config, batch_trials=2).run()
        assert whole.cells == capped.cells

    def test_multiprocessing_batched_equals_serial(self):
        config = tiny_config(trials=4, load_ratios=(0.5, 1.5))
        serial = Runner(config).run()
        parallel = Runner(
            config, executor="multiprocessing", jobs=2
        ).run()
        assert serial.cells == parallel.cells

    def test_scenario_sweep_batched_equals_no_batch(self):
        config = tiny_config(trials=3)
        specs = ["paper-default:ports=8,horizon=8"]
        batched = Runner(config).run_scenarios(specs, solvers=["FIFO"])
        serial = Runner(config, no_batch=True).run_scenarios(
            specs, solvers=["FIFO"]
        )
        assert batched == serial

    def test_bad_batch_trials_rejected(self):
        with pytest.raises(ValueError, match="batch_trials"):
            Runner(tiny_config(), batch_trials=0)

    def test_timer_counts_cover_all_trials(self):
        config = tiny_config(trials=4, load_ratios=(0.5,))
        sweep = Runner(config).run(workloads=[(3.0, 3)])
        assert sweep.timer.counts["generate"] == config.trials


class _InterruptingFifo:
    """Delegates to FIFO, but while the control dir (shared with pool
    workers via the environment) is armed, every fresh solve after the
    third simulates a Ctrl-C landing mid-batch.  Marker names are
    unique per solve so concurrent pool workers count monotonically."""

    name = "test-batch-interrupt"
    kind = "online"

    def solve(self, instance):
        import uuid

        ctrl = Path(os.environ["REPRO_TEST_BATCH_CTRL"])
        if (ctrl / "armed").exists():
            if len(list(ctrl.glob("solved-*"))) >= 3:
                raise KeyboardInterrupt
            (ctrl / f"solved-{uuid.uuid4().hex}").touch()
        from repro.api import get_solver

        return get_solver("FIFO").solve(instance)


@pytest.fixture
def interrupting_solver(tmp_path, monkeypatch):
    """The armed control dir of a registered :class:`_InterruptingFifo`."""
    ctrl = tmp_path / "ctrl"
    ctrl.mkdir()
    monkeypatch.setenv("REPRO_TEST_BATCH_CTRL", str(ctrl))
    register_solver("test-batch-interrupt", _InterruptingFifo)
    try:
        yield ctrl
    finally:
        unregister_solver("test-batch-interrupt")


class TestInterruptedBatchedSweep:
    def test_run_batch_interrupt_flushes_completed_trials(
        self, tmp_path, interrupting_solver
    ):
        """A batch killed mid-cell persists exactly the trials that had
        completed before the interrupt (the SweepInterrupted promise at
        the run_batch layer, where the count is deterministic)."""
        ctrl = interrupting_solver
        config = tiny_config(trials=6)
        cache = tmp_path / "cache"
        items = cell_items(
            config, ("test-batch-interrupt",), cache_dir=str(cache)
        )
        (ctrl / "armed").touch()
        with pytest.raises(KeyboardInterrupt):
            run_batch(BatchWorkItem(tuple(items)))
        flushed = store_lines(cache)
        assert len(flushed) == 3
        for line in flushed:
            assert json.loads(line)["solver"] == "test-batch-interrupt"

        # Resuming serves the flushed trials from disk and recomputes
        # only the rest — converging to an uninterrupted run's store.
        (ctrl / "armed").unlink()
        close_open_stores()
        resumed = run_batch(BatchWorkItem(tuple(items)))
        full = tmp_path / "full"
        close_open_stores()
        uninterrupted = run_batch(
            BatchWorkItem(
                tuple(
                    dataclasses.replace(item, cache_dir=str(full))
                    for item in items
                )
            )
        )
        assert [result_payload(tr) for tr in resumed] == [
            result_payload(tr) for tr in uninterrupted
        ]
        assert store_lines(cache) == store_lines(full)

    def test_interrupted_mp_sweep_resumes_byte_identical(
        self, tmp_path, interrupting_solver
    ):
        """Regression: a batched multiprocessing sweep killed mid-flight
        surfaces as SweepInterrupted, keeps every flushed record valid,
        and resumes byte-identically to an uninterrupted sweep."""
        ctrl = interrupting_solver
        config = tiny_config(trials=6)
        cache = tmp_path / "cache"
        full = tmp_path / "full"
        run_kwargs = dict(
            solvers=["test-batch-interrupt"], workloads=[(3.0, 4)]
        )

        def runner(cache_dir, **kwargs):
            return Runner(
                config,
                compute_lp_bounds=False,
                cache_dir=str(cache_dir),
                batch_trials=3,  # two batches, so the pool really engages
                **kwargs,
            )

        (ctrl / "armed").touch()
        with pytest.raises(SweepInterrupted):
            runner(cache, executor="multiprocessing", jobs=2).run(
                **run_kwargs
            )
        (ctrl / "armed").unlink()
        close_open_stores()
        clear_bound_caches()
        resumed = runner(cache, executor="multiprocessing", jobs=2).run(
            **run_kwargs
        )
        uninterrupted = runner(full).run(**run_kwargs)
        assert resumed.cells == uninterrupted.cells
        # Every record the dying batches flushed was kept (the resumed
        # store converges to the uninterrupted one, no torn leftovers).
        assert store_lines(cache) == store_lines(full)
