"""Property tests: batched Hopcroft–Karp vs per-trial solo solves.

`max_cardinality_matching_batch` promises *byte identity* per trial
block with `max_cardinality_matching_adjacency` — not just equal
cardinality but the exact same matched edges, because the online engine
relies on identical tie-breaking to keep batched sweeps byte-identical
to serial ones.  These tests stack random per-trial instances (with
duplicate edges, empty trials, and warm starts) and compare matchings
and per-trial counters against independent solo solves.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.matching import (
    max_cardinality_matching_adjacency,
    max_cardinality_matching_batch,
)


def _random_blocks(rng, n_trials, m_left, m_right, max_edges):
    """Random stacked block-diagonal edge set.

    Returns global (us, vs) plus per-trial local edge lists.  Edges are
    concatenated per trial, so each left vertex's edges appear in
    generation order — the adjacency-order contract.
    """
    us, vs, per_trial = [], [], []
    for trial in range(n_trials):
        n_edges = int(rng.integers(0, max_edges + 1))
        lus = rng.integers(0, m_left, size=n_edges)
        lvs = rng.integers(0, m_right, size=n_edges)
        per_trial.append((lus, lvs))
        us.append(lus + trial * m_left)
        vs.append(lvs + trial * m_right)
    return (
        np.concatenate(us) if us else np.zeros(0, np.int64),
        np.concatenate(vs) if vs else np.zeros(0, np.int64),
        per_trial,
    )


def _solo_reference(per_trial, m_left, m_right, warm_local=None):
    """Run each trial through the solo adjacency kernel.

    Returns (per-trial {local_u: local_edge_idx}, per-trial stats).
    Trials with zero edges are skipped, mirroring the online engine
    (a solve is only issued for trials with alive flows).
    """
    matchings, stats_all = [], []
    for trial, (lus, lvs) in enumerate(per_trial):
        if lus.size == 0:
            matchings.append({})
            stats_all.append({})
            continue
        rows = [[] for _ in range(m_left)]
        pays = [[] for _ in range(m_left)]
        for ei, (u, v) in enumerate(zip(lus.tolist(), lvs.tolist())):
            rows[u].append(v)
            pays[u].append(ei)
        stats: dict = {}
        warm = warm_local[trial] if warm_local else None
        matchings.append(
            max_cardinality_matching_adjacency(
                m_left, m_right, rows, pays, warm_start=warm, stats=stats
            )
        )
        stats_all.append(stats)
    return matchings, stats_all


def _run_batch(us, vs, n_trials, m_left, m_right, warm=None):
    bfs = np.zeros(n_trials, dtype=np.int64)
    aug = np.zeros(n_trials, dtype=np.int64)
    edge_left = max_cardinality_matching_batch(
        n_trials * m_left,
        n_trials * m_right,
        us,
        vs,
        np.repeat(np.arange(n_trials), m_left),
        np.repeat(np.arange(n_trials), m_right),
        n_trials,
        warm_start=warm,
        bfs_phases=bfs,
        augmentations=aug,
    )
    return edge_left, bfs, aug


def _check_identical(edge_left, us, per_trial, matchings, stats_all,
                     n_trials, m_left):
    # Global edge index -> per-trial local edge index.
    edge_base = np.cumsum([0] + [lus.size for lus, _ in per_trial])
    for trial in range(n_trials):
        expected = matchings[trial]
        for lu in range(m_left):
            gu = trial * m_left + lu
            ge = int(edge_left[gu])
            if lu in expected:
                assert ge >= 0, (trial, lu)
                assert us[ge] == gu
                assert ge - edge_base[trial] == expected[lu], (trial, lu)
            else:
                assert ge == -1, (trial, lu)


@pytest.mark.parametrize("seed", range(8))
def test_random_stacks_match_solo(seed):
    rng = np.random.default_rng(seed)
    n_trials = int(rng.integers(1, 9))
    m_left = int(rng.integers(1, 9))
    m_right = int(rng.integers(1, 9))
    us, vs, per_trial = _random_blocks(rng, n_trials, m_left, m_right, 20)
    matchings, stats_all = _solo_reference(per_trial, m_left, m_right)
    edge_left, bfs, aug = _run_batch(us, vs, n_trials, m_left, m_right)
    _check_identical(
        edge_left, us, per_trial, matchings, stats_all, n_trials, m_left
    )
    for trial in range(n_trials):
        assert bfs[trial] == stats_all[trial].get("bfs_phases", 0)
        assert aug[trial] == stats_all[trial].get("augmentations", 0)


def test_empty_trials_interleaved():
    rng = np.random.default_rng(42)
    n_trials, m = 6, 5
    us, vs, per_trial = _random_blocks(rng, n_trials, m, m, 12)
    # Force trials 1 and 4 empty.
    keep = ~np.isin(np.repeat(np.arange(n_trials),
                              [lus.size for lus, _ in per_trial]), [1, 4])
    us, vs = us[keep], vs[keep]
    per_trial = [
        (np.zeros(0, np.int64), np.zeros(0, np.int64)) if t in (1, 4)
        else per_trial[t]
        for t in range(n_trials)
    ]
    matchings, stats_all = _solo_reference(per_trial, m, m)
    edge_left, bfs, aug = _run_batch(us, vs, n_trials, m, m)
    _check_identical(edge_left, us, per_trial, matchings, stats_all,
                     n_trials, m)
    # Empty trials were never entered: counters untouched.
    assert bfs[1] == bfs[4] == 0
    assert aug[1] == aug[4] == 0


def test_all_empty_returns_unmatched():
    edge_left, bfs, aug = _run_batch(
        np.zeros(0, np.int64), np.zeros(0, np.int64), 3, 4, 4
    )
    assert (edge_left == -1).all()
    assert (bfs == 0).all() and (aug == 0).all()


@pytest.mark.parametrize("seed", range(6))
def test_warm_start_matches_solo(seed):
    """Warm seeds (valid, stale, and conflicting) validate identically."""
    rng = np.random.default_rng(1000 + seed)
    n_trials = int(rng.integers(1, 6))
    m = int(rng.integers(2, 8))
    us, vs, per_trial = _random_blocks(rng, n_trials, m, m, 16)

    # Derive warm dicts from a cold solve, then corrupt some entries so
    # validation paths (missing pair, right-vertex conflict) execute.
    cold, _ = _solo_reference(per_trial, m, m)
    warm_local = []
    merged: dict = {}
    for trial in range(n_trials):
        lus, lvs = per_trial[trial]
        warm = {}
        for lu, le in cold[trial].items():
            v = int(lvs[le])
            if rng.random() < 0.3:
                v = int(rng.integers(0, m))  # maybe stale / conflicting
            warm[lu] = v
        warm_local.append(warm or None)
        for lu, v in warm.items():
            merged[trial * m + lu] = trial * m + v
    matchings, stats_all = _solo_reference(per_trial, m, m, warm_local)
    edge_left, bfs, aug = _run_batch(us, vs, n_trials, m, m,
                                     warm=merged or None)
    _check_identical(edge_left, us, per_trial, matchings, stats_all,
                     n_trials, m)
    for trial in range(n_trials):
        assert bfs[trial] == stats_all[trial].get("bfs_phases", 0)
        assert aug[trial] == stats_all[trial].get("augmentations", 0)


def test_single_trial_equals_solo_exactly():
    rng = np.random.default_rng(7)
    m = 12
    lus = rng.integers(0, m, size=40)
    lvs = rng.integers(0, m, size=40)
    rows = [[] for _ in range(m)]
    pays = [[] for _ in range(m)]
    for ei, (u, v) in enumerate(zip(lus.tolist(), lvs.tolist())):
        rows[u].append(v)
        pays[u].append(ei)
    stats: dict = {}
    solo = max_cardinality_matching_adjacency(m, m, rows, pays, stats=stats)
    edge_left, bfs, aug = _run_batch(lus, lvs, 1, m, m)
    got = {u: int(edge_left[u]) for u in range(m) if edge_left[u] >= 0}
    assert got == solo
    assert bfs[0] == stats["bfs_phases"]
    assert aug[0] == stats.get("augmentations", 0)


def test_stats_accumulators_are_optional():
    rng = np.random.default_rng(3)
    us, vs, per_trial = _random_blocks(rng, 3, 4, 4, 10)
    edge_left = max_cardinality_matching_batch(
        12, 12, us, vs,
        np.repeat(np.arange(3), 4), np.repeat(np.arange(3), 4), 3,
    )
    matchings, _ = _solo_reference(per_trial, 4, 4)
    total = sum(len(mm) for mm in matchings)
    assert int((edge_left >= 0).sum()) == total
