"""Tests for the FS-MRT solver (Theorem 3 end to end)."""

import pytest
from hypothesis import given, settings

from repro.core.flow import Flow
from repro.core.greedy import greedy_earliest_fit
from repro.core.instance import Instance
from repro.core.metrics import max_response_time
from repro.core.schedule import validate_schedule
from repro.core.switch import Switch
from repro.mrt.algorithm import (
    fractional_mrt_lower_bound,
    schedule_time_constrained,
    solve_mrt,
)
from repro.mrt.exact import exact_min_max_response
from repro.mrt.time_constrained import from_deadlines
from tests.conftest import capacitated_instances, unit_instances


class TestSolveMRT:
    def test_empty_instance(self):
        res = solve_mrt(Instance.create(Switch.create(1), []))
        assert res.rho == 0

    def test_parallel_flows_rho_one(self):
        inst = Instance.create(
            Switch.create(3), [Flow(0, 0), Flow(1, 1), Flow(2, 2)]
        )
        res = solve_mrt(inst)
        assert res.rho == 1
        assert res.max_violation == 0

    def test_conflicting_flows_rho_two(self):
        inst = Instance.create(Switch.create(2), [Flow(0, 0), Flow(0, 1)])
        res = solve_mrt(inst)
        assert res.rho == 2

    def test_incast_rho_equals_fan_in(self):
        inst = Instance.create(
            Switch.create(4), [Flow(i, 0) for i in range(4)]
        )
        res = solve_mrt(inst)
        assert res.rho == 4

    def test_invalid_rho_upper_detected(self):
        inst = Instance.create(Switch.create(2), [Flow(0, 0), Flow(0, 1)])
        with pytest.raises(RuntimeError, match="rho_upper"):
            solve_mrt(inst, rho_upper=1)

    @given(unit_instances(max_flows=7))
    @settings(max_examples=30, deadline=None)
    def test_rho_is_exactly_optimal_for_unit_demands(self, inst):
        """For unit demands the LP bound matches the exact optimum on
        these small instances, and the schedule meets it with <= 1 extra
        capacity (Remark 4.4: the tight case)."""
        if inst.num_flows == 0:
            return
        res = solve_mrt(inst)
        opt = exact_min_max_response(inst)
        assert res.rho <= opt
        assert max_response_time(res.schedule) <= res.rho
        assert res.max_violation <= 1  # 2*1 - 1

    @given(capacitated_instances(max_flows=6))
    @settings(max_examples=30, deadline=None)
    def test_general_demand_guarantees(self, inst):
        if inst.num_flows == 0:
            return
        res = solve_mrt(inst)
        greedy = greedy_earliest_fit(inst)
        assert res.rho <= max_response_time(greedy)
        assert max_response_time(res.schedule) <= res.rho
        assert res.max_violation <= 2 * inst.max_demand - 1
        validate_schedule(
            res.schedule,
            inst.switch.augmented(additive=max(res.max_violation, 0)),
        )


class TestLowerBoundAndDeadlines:
    def test_fractional_bound_matches_solver(self):
        inst = Instance.create(
            Switch.create(3), [Flow(0, 0), Flow(1, 0), Flow(2, 0)]
        )
        assert fractional_mrt_lower_bound(inst) == solve_mrt(inst).rho

    def test_fractional_bound_empty(self):
        assert fractional_mrt_lower_bound(
            Instance.create(Switch.create(1), [])
        ) == 0

    def test_deadline_model(self):
        inst = Instance.create(
            Switch.create(2), [Flow(0, 0, 1, 0), Flow(0, 1, 1, 0)]
        )
        ok = schedule_time_constrained(from_deadlines(inst, [1, 1]))
        assert ok.feasible
        bad = schedule_time_constrained(from_deadlines(inst, [0, 0]))
        assert not bad.feasible  # both need input 0 in round 0
