"""Unit tests for the LP model builder."""

import numpy as np
import pytest

from repro.lp.model import LinearProgram, Sense


class TestVariables:
    def test_add_and_lookup(self):
        lp = LinearProgram()
        idx = lp.add_variable("x", objective=2.0)
        assert lp.var("x") == idx
        assert lp.has_var("x")
        assert not lp.has_var("y")
        assert lp.num_vars == 1

    def test_duplicate_rejected(self):
        lp = LinearProgram()
        lp.add_variable("x")
        with pytest.raises(ValueError, match="duplicate"):
            lp.add_variable("x")

    def test_tuple_names(self):
        lp = LinearProgram()
        lp.add_variable(("b", 0, 3))
        assert lp.has_var(("b", 0, 3))

    def test_set_objective(self):
        lp = LinearProgram()
        lp.add_variable("x")
        lp.set_objective("x", 5.0)
        assert lp.objective_vector().tolist() == [5.0]

    def test_bounds_default(self):
        lp = LinearProgram()
        lp.add_variable("x")
        assert lp.bounds() == [(0.0, np.inf)]


class TestConstraintsAndExport:
    def _model(self):
        lp = LinearProgram()
        lp.add_variable("x", 1.0)
        lp.add_variable("y", 2.0)
        lp.add_constraint("le", {"x": 1, "y": 1}, Sense.LE, 5)
        lp.add_constraint("ge", {"x": 2}, Sense.GE, 1)
        lp.add_constraint("eq", {"y": 1}, Sense.EQ, 2)
        return lp

    def test_zero_coefficients_dropped(self):
        lp = LinearProgram()
        lp.add_variable("x")
        con = lp.add_constraint("c", {"x": 0.0}, Sense.LE, 1)
        assert con.coeffs == {}

    def test_scipy_arrays(self):
        lp = self._model()
        c, a_ub, b_ub, a_eq, b_eq = lp.to_scipy_arrays()
        assert c.tolist() == [1.0, 2.0]
        assert a_ub.shape == (2, 2)
        # GE row negated into LE form.
        assert b_ub.tolist() == [5.0, -1.0]
        assert a_ub.toarray()[1].tolist() == [-2.0, 0.0]
        assert a_eq.shape == (1, 2)
        assert b_eq.tolist() == [2.0]

    def test_dense_standard_form_slacks(self):
        lp = self._model()
        A, b, c, names = lp.to_dense_standard_form()
        # 3 rows, 2 structural + 2 slack columns (LE and GE).
        assert A.shape == (3, 4)
        assert names == ["x", "y"]
        assert A[0, 2] == 1.0  # LE slack
        assert A[1, 3] == -1.0  # GE surplus

    def test_dense_standard_form_upper_bounds_become_rows(self):
        lp = LinearProgram()
        lp.add_variable("x", 1.0, upper=3.0)
        A, b, c, _ = lp.to_dense_standard_form()
        assert A.shape == (1, 2)
        assert b.tolist() == [3.0]

    def test_dense_standard_form_rejects_nonzero_lower(self):
        lp = LinearProgram()
        lp.add_variable("x", lower=1.0)
        with pytest.raises(ValueError, match="lower bounds"):
            lp.to_dense_standard_form()

    def test_solution_by_name(self):
        lp = self._model()
        sol = lp.solution_by_name(np.array([1.5, 2.0]))
        assert sol == {"x": 1.5, "y": 2.0}


class TestBoundMutation:
    def _model(self):
        lp = LinearProgram()
        lp.add_variable("x", 1.0)
        lp.add_variable("y", 2.0)
        lp.add_constraint("c", {"x": 1.0, "y": 1.0}, Sense.LE, 4.0)
        return lp

    def test_set_bounds_by_name(self):
        lp = self._model()
        lp.set_bounds("x", 0.0, 0.0)
        assert lp.bounds()[0] == (0.0, 0.0)
        assert lp.bounds()[1] == (0.0, np.inf)

    def test_set_upper_bounds_vectorized(self):
        lp = self._model()
        lp.set_upper_bounds(np.array([5.0, np.inf]))
        assert lp.bounds() == [(0.0, 5.0), (0.0, np.inf)]
        with pytest.raises(ValueError, match="upper bounds"):
            lp.set_upper_bounds([1.0])

    def test_scipy_matrices_memoised_across_bound_changes(self):
        lp = self._model()
        _, a_ub1, b_ub1, _, _ = lp.to_scipy_arrays()
        lp.set_upper_bounds([0.0, 0.0])  # bounds don't touch the matrices
        _, a_ub2, b_ub2, _, _ = lp.to_scipy_arrays()
        assert a_ub2 is a_ub1 and b_ub2 is b_ub1

    def test_scipy_matrices_invalidated_by_structure(self):
        lp = self._model()
        _, a_ub1, _, _, _ = lp.to_scipy_arrays()
        lp.add_variable("z")
        lp.add_constraint("c2", {"z": 1.0}, Sense.LE, 1.0)
        _, a_ub2, b_ub2, _, _ = lp.to_scipy_arrays()
        assert a_ub2 is not a_ub1
        assert a_ub2.shape == (2, 3)
        assert b_ub2.tolist() == [4.0, 1.0]
