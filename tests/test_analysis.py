"""Tests for the analysis extensions (open problem probe, stability)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.open_problem import (
    _interval_degree_ok,
    probe_open_problem,
    random_degree_bounded_sequence,
)
from repro.analysis.stability import stability_report
from repro.online.policies import make_policy
from repro.workloads.synthetic import poisson_uniform_workload


class TestDegreeBoundedGeneration:
    def test_generated_sequences_verified(self):
        for seed in range(5):
            seq = random_degree_bounded_sequence(4, 6, seed=seed)
            assert seq.verified

    def test_interval_condition_checker(self):
        # deg 2 in one round violates |I|+1 = 2? sum=2 <= 2 OK; 2,2
        # consecutive: sum 4 > 3 violates.
        assert _interval_degree_ok(np.array([[2, 0, 1]]))
        assert not _interval_degree_ok(np.array([[2, 2, 0]]))
        assert _interval_degree_ok(np.array([[1, 1, 1, 1]]))
        assert not _interval_degree_ok(np.array([[1, 2, 1, 2]]))

    @given(st.integers(0, 10**6))
    @settings(max_examples=20, deadline=None)
    def test_random_sequences_satisfy_bound(self, seed):
        seq = random_degree_bounded_sequence(3, 5, seed=seed)
        assert seq.verified
        # Releases within the declared rounds.
        if seq.instance.num_flows:
            assert seq.instance.max_release < seq.num_rounds

    def test_probe_returns_constants(self):
        worst, values = probe_open_problem(
            num_ports=3, num_rounds=4, trials=4, seed=1
        )
        assert len(values) == 4
        assert worst == max(values)
        # The conjecture (and Lemma context) suggests small constants;
        # at this scale anything above 6 would be a finding.
        assert worst <= 6


class TestStability:
    def test_subcritical_load_stable(self):
        inst = poisson_uniform_workload(8, 4, 30, seed=2)  # load 0.5
        report = stability_report(inst, make_policy("MaxWeight"), 30)
        assert report.queue_growth_rate < 1.0
        assert report.policy == "MaxWeight"

    def test_supercritical_load_grows(self):
        inst = poisson_uniform_workload(8, 24, 30, seed=2)  # load 3
        report = stability_report(inst, make_policy("MaxWeight"), 30)
        # Above saturation the backlog grows ~ (load-1)*m per round.
        assert report.queue_growth_rate > 5.0
        assert report.final_drain_rounds > 0

    def test_ordering_between_regimes(self):
        low = stability_report(
            poisson_uniform_workload(6, 3, 20, seed=3),
            make_policy("MaxCard"),
            20,
        )
        high = stability_report(
            poisson_uniform_workload(6, 18, 20, seed=3),
            make_policy("MaxCard"),
            20,
        )
        assert high.peak_queue > low.peak_queue
        assert high.max_response >= low.max_response
