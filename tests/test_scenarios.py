"""Tests for the declarative scenario subsystem (repro.scenarios)."""

import json

import numpy as np
import pytest

from repro.api import Runner
from repro.core.switch import Switch
from repro.experiments.config import smoke_config
from repro.experiments.harness import run_scenario_sweep
from repro.scenarios import (
    SCENARIO_SPEC_VERSION,
    ArrivalStream,
    ScenarioSpec,
    build_instance,
    build_stream,
    get_scenario,
    list_scenarios,
    make_batch,
    merge_streams,
    parse_scenario,
    register_scenario,
    unregister_scenario,
)

ALL_SCENARIOS = (
    "diurnal",
    "heavy-tailed",
    "hotspot",
    "incast",
    "onoff-bursty",
    "paper-default",
    "permutation",
    "trace-replay",
)

#: Golden content digests: every registered scenario must generate a
#: byte-identical Instance for (ports=8, horizon=6, seed=2020), across
#: machines and runs.  A new scenario adds a row; changing an existing
#: generator's output is a breaking change and must be deliberate.
GOLDEN_DIGESTS = {
    "diurnal": "ec1e9f02bed41ed59afd3a75b017b1d243ce51d0cf185e1f224ea09d09dd50fc",
    "heavy-tailed": "bb0f16de77696c8666165fd19c41c81f77da7d760eac1211751d7547eba7c801",
    "hotspot": "499c3f3d1775864468e9d3d6b995b89d7d4d43d105ba5ac0d9fd39fcac0f9841",
    "incast": "8d2268efe71fac0fde27a5440bd72c870e70196540c002cce4f0572f5f40c279",
    "onoff-bursty": "b65ee649214ac168f9f488815a49e3a14f631c465fe22911b2215908ef56ce0e",
    "paper-default": "0e1efcc84002a83613c3179cea9efb412252b600f2f0168131f0f5377ec6faf4",
    "permutation": "eb3325f204f1d985fe15340a73f6ce22229be07117c45d292940a9a6cea493ca",
    "trace-replay": "8594eea092274436c17926955e76a23e163903bccdf99ec6a7977c0cea111a7e",
}


class TestScenarioSpec:
    def test_round_trip(self):
        spec = ScenarioSpec(
            "hotspot", num_ports=32, horizon=10,
            params={"mean": 48.0, "zipf_exponent": 1.5},
        )
        data = spec.to_dict()
        assert data["schema_version"] == SCENARIO_SPEC_VERSION
        assert ScenarioSpec.from_dict(data) == spec
        # JSON round trip too
        assert ScenarioSpec.from_dict(json.loads(json.dumps(data))) == spec

    def test_version_mismatch_rejected(self):
        data = ScenarioSpec("hotspot").to_dict()
        data["schema_version"] = 99
        with pytest.raises(ValueError, match="schema_version"):
            ScenarioSpec.from_dict(data)

    def test_missing_scenario_field(self):
        with pytest.raises(ValueError, match="scenario"):
            ScenarioSpec.from_dict({"schema_version": 1})

    def test_unknown_field_rejected(self):
        data = ScenarioSpec("hotspot").to_dict()
        data["bogus"] = 1
        with pytest.raises(ValueError, match="bogus"):
            ScenarioSpec.from_dict(data)

    def test_digest_is_content_addressed(self):
        a = ScenarioSpec("hotspot", params={"mean": 4, "zipf_exponent": 2})
        b = ScenarioSpec("hotspot", params={"zipf_exponent": 2, "mean": 4})
        assert a.digest() == b.digest()
        c = a.with_overrides(params={"mean": 5})
        assert c.digest() != a.digest()

    def test_non_scalar_param_rejected(self):
        with pytest.raises(ValueError, match="JSON scalar"):
            ScenarioSpec("x", params={"bad": [1, 2]})

    def test_bad_field_values(self):
        with pytest.raises(ValueError, match="num_ports"):
            ScenarioSpec("x", num_ports=0)
        with pytest.raises(ValueError, match="horizon"):
            ScenarioSpec("x", horizon=-1)

    def test_parse_compact_form(self):
        spec = parse_scenario("hotspot:ports=32,mean=48,zipf_exponent=1.5")
        assert spec.scenario == "hotspot"
        assert spec.num_ports == 32
        assert spec.param_dict == {"mean": 48, "zipf_exponent": 1.5}
        assert parse_scenario("paper-default").params == ()

    def test_parse_json_values(self):
        spec = parse_scenario("incast:target=null,gap=3")
        assert spec.param_dict == {"target": None, "gap": 3}
        spec = parse_scenario("trace-replay:path=some/file.csv")
        assert spec.param_dict == {"path": "some/file.csv"}

    def test_parse_bad_option(self):
        with pytest.raises(ValueError, match="key=value"):
            parse_scenario("hotspot:mean48")

    def test_label_round_trips_through_parse(self):
        spec = parse_scenario("hotspot:ports=32,mean=48")
        assert parse_scenario(spec.label()) == spec


class TestRegistry:
    def test_builtins_registered(self):
        assert list_scenarios() == sorted(ALL_SCENARIOS)

    def test_unknown_scenario(self):
        with pytest.raises(ValueError, match="unknown scenario"):
            build_stream("frobnicate")

    def test_unknown_param_rejected(self):
        with pytest.raises(ValueError, match="unknown parameter"):
            build_stream("paper-default:typo=1")

    def test_entry_summary_and_defaults(self):
        entry = get_scenario("hotspot")
        assert "Zipf" in entry.summary
        assert "zipf_exponent" in entry.defaults

    def test_spec_overrides_entry_defaults(self):
        stream = build_stream("paper-default:ports=8,horizon=5")
        assert stream.switch.num_inputs == 8
        assert stream.rounds == 5

    def test_half_shape_deriving_registration_rejected(self):
        with pytest.raises(ValueError, match="both set .*or both None"):
            register_scenario("test-half", num_ports=None, capacity=4)
        with pytest.raises(ValueError, match="both set .*or both None"):
            register_scenario("test-half", num_ports=8, capacity=None)
        assert "test-half" not in list_scenarios()

    def test_register_and_unregister(self):
        @register_scenario("test-solo", defaults={}, num_ports=4, horizon=3)
        def solo(spec, switch, params, horizon, seed):
            """One flow 0->1 per round."""
            def factory():
                while True:
                    yield make_batch([0], [1])
            return ArrivalStream(switch, factory, horizon, "test-solo")

        try:
            inst = build_instance("test-solo")
            assert inst.num_flows == 3
            with pytest.raises(ValueError, match="already registered"):
                register_scenario("test-solo")(solo)
        finally:
            unregister_scenario("test-solo")
        assert "test-solo" not in list_scenarios()


class TestGoldenDigests:
    def test_all_scenarios_covered(self):
        assert sorted(GOLDEN_DIGESTS) == list_scenarios()

    @pytest.mark.parametrize("name", ALL_SCENARIOS)
    def test_golden_digest(self, name):
        inst = build_instance(f"{name}:ports=8,horizon=6", seed=2020)
        assert inst.digest() == GOLDEN_DIGESTS[name], (
            f"scenario {name!r} generator output changed for a fixed seed"
        )

    @pytest.mark.parametrize("name", ALL_SCENARIOS)
    def test_streams_are_reiterable(self, name):
        stream = build_stream(f"{name}:ports=8,horizon=6", seed=5)
        a = stream.materialize()
        b = stream.materialize()
        assert a.digest() == b.digest()

    def test_different_seeds_differ(self):
        a = build_instance("paper-default:ports=8,horizon=6", seed=1)
        b = build_instance("paper-default:ports=8,horizon=6", seed=2)
        assert a.digest() != b.digest()


class TestTransforms:
    def _base(self):
        return build_stream("paper-default:ports=8,mean=6,horizon=10", seed=3)

    def test_take_bounds(self):
        stream = self._base().take(4)
        assert stream.rounds == 4
        assert len(list(iter(stream))) == 4

    def test_thinned_keeps_subset(self):
        base = self._base()
        thin = base.thinned(0.5, seed=1)
        n_base = base.materialize().num_flows
        n_thin = thin.materialize().num_flows
        assert 0 < n_thin < n_base
        # deterministic
        assert thin.materialize().digest() == thin.materialize().digest()

    def test_thinned_extremes(self):
        base = self._base()
        assert base.thinned(0.0).materialize().num_flows == 0
        assert (
            base.thinned(1.0).materialize().digest()
            == base.materialize().digest()
        )

    def test_scaled_integer_factor_replicates(self):
        base = self._base()
        doubled = base.scaled(2.0)
        assert doubled.materialize().num_flows == 2 * base.materialize().num_flows

    def test_scaled_fractional_factor(self):
        base = self._base()
        n = base.materialize().num_flows
        n_scaled = base.scaled(1.5, seed=9).materialize().num_flows
        assert n < n_scaled < 2 * n

    def test_merged_superposes(self):
        a = build_stream("paper-default:ports=8,mean=3,horizon=6", seed=1)
        b = build_stream("incast:ports=8,horizon=4", seed=2)
        merged = merge_streams(a, b)
        assert merged.rounds == 6
        assert (
            merged.materialize().num_flows
            == a.materialize().num_flows + b.materialize().num_flows
        )

    def test_merged_rejects_mismatched_switches(self):
        a = build_stream("paper-default:ports=8,horizon=4")
        b = build_stream("paper-default:ports=16,horizon=4")
        with pytest.raises(ValueError, match="different switches"):
            a.merged(b)

    def test_time_warped_dilates_releases(self):
        base = build_stream("permutation:ports=4,horizon=3", seed=0)
        warped = base.time_warped(3)
        assert warped.rounds == 7
        inst = warped.materialize()
        assert sorted(set(inst.releases().tolist())) == [0, 3, 6]
        assert inst.num_flows == base.materialize().num_flows

    def test_time_warped_identity(self):
        base = self._base()
        assert base.time_warped(1) is base

    def test_materialize_requires_bound(self):
        unbounded = ArrivalStream(
            Switch.create(2), lambda: iter(()), None, "x"
        )
        with pytest.raises(ValueError, match="unbounded"):
            unbounded.materialize()


class TestScenarioSweep:
    def test_runner_scenario_cells(self):
        cells = Runner(smoke_config(), compute_lp_bounds=False).run_scenarios(
            ["paper-default:ports=8,mean=4,horizon=6",
             "incast:ports=8,horizon=6"],
            solvers=["MaxWeight", "FIFO"],
        )
        assert sorted(cells) == [
            "incast:ports=8,horizon=6",
            "paper-default:ports=8,horizon=6,mean=4",
        ]
        for cell in cells.values():
            assert cell.trials == smoke_config().trials
            assert set(cell.avg_response) == {"MaxWeight", "FIFO"}
            assert cell.num_flows_mean > 0

    def test_scenario_sweep_caches_and_resumes(self, tmp_path):
        specs = ["hotspot:ports=8,mean=4,horizon=6"]
        cold = run_scenario_sweep(
            smoke_config(), specs, solvers=["MaxCard"],
            cache_dir=str(tmp_path),
        )
        warm = run_scenario_sweep(
            smoke_config(), specs, solvers=["MaxCard"],
            cache_dir=str(tmp_path),
        )
        assert cold == warm
        assert list(tmp_path.glob("results-*.jsonl"))

    def test_lp_bounds_within_limit(self):
        cells = run_scenario_sweep(
            smoke_config(), ["paper-default:ports=8,mean=3,horizon=4"],
            solvers=["MaxWeight"],
        )
        (cell,) = cells.values()
        assert cell.lp_avg_bound is not None
        assert cell.lp_max_bound is not None

    def test_duplicate_scenario_rejected(self):
        with pytest.raises(ValueError, match="duplicate scenario"):
            Runner(smoke_config()).run_scenarios(
                ["paper-default:horizon=4", "paper-default:horizon=4"]
            )

    def test_unbounded_scenario_rejected(self):
        @register_scenario("test-forever", defaults={}, num_ports=4,
                           horizon=None)
        def forever(spec, switch, params, horizon, seed):
            """One flow 0->1 per round, forever."""
            def factory():
                while True:
                    yield make_batch([0], [1])
            return ArrivalStream(switch, factory, None, "test-forever")

        try:
            with pytest.raises(ValueError, match="unbounded"):
                Runner(smoke_config()).run_scenarios(["test-forever"])
            # An explicit horizon makes the same scenario sweepable.
            cells = Runner(
                smoke_config(trials=1), compute_lp_bounds=False
            ).run_scenarios(["test-forever:horizon=3"], solvers=["FIFO"])
            assert list(cells) == ["test-forever:horizon=3"]
        finally:
            unregister_scenario("test-forever")

    def test_trials_are_seed_distinct_but_reproducible(self):
        config = smoke_config(trials=2)
        a = Runner(config, compute_lp_bounds=False).run_scenarios(
            ["paper-default:ports=8,mean=4,horizon=5"], solvers=["FIFO"]
        )
        b = Runner(config, compute_lp_bounds=False).run_scenarios(
            ["paper-default:ports=8,mean=4,horizon=5"], solvers=["FIFO"]
        )
        assert a == b

    def test_parallel_matches_serial(self):
        config = smoke_config(trials=2)
        specs = ["onoff-bursty:ports=8,horizon=5"]
        serial = Runner(config, compute_lp_bounds=False).run_scenarios(
            specs, solvers=["MaxWeight"]
        )
        parallel = Runner(
            config, jobs=2, compute_lp_bounds=False
        ).run_scenarios(specs, solvers=["MaxWeight"])
        assert serial == parallel


class TestScenarioSmoke:
    """Every registered scenario runs under one online policy (the
    in-repo mirror of CI's scenario-smoke job)."""

    @pytest.mark.parametrize("name", ALL_SCENARIOS)
    def test_smoke(self, name):
        from repro.api import get_solver

        inst = build_instance(f"{name}:ports=8,horizon=4", seed=0)
        report = get_solver("MaxWeight").solve(inst)
        assert report.metrics is not None
        assert report.metrics.num_flows == inst.num_flows
