"""Unit tests for ``repro.obs`` — spans, exporters, metrics, profiler.

Covers the span model (deterministic hierarchical IDs, ``dur``
authority, cross-process ``TraceContext``), the JSONL sink's buffering
contract, the Chrome ``trace_event`` export, the metrics registry's
Prometheus rendering (cumulative buckets over the internal
non-cumulative counts), the canonical timer-event namespace, the
timer->span bridge's exact reconciliation, and the BENCH ``*_seconds``
key check.
"""

from __future__ import annotations

import json
import pickle
import threading
import time

import pytest

from repro.bench import assert_canonical_seconds
from repro.obs import (
    BENCH_SECONDS_KEYS,
    JsonlSink,
    MetricsRegistry,
    SamplingProfiler,
    SPAN_SCHEMA_VERSION,
    TraceContext,
    Tracer,
    chrome_trace,
    current_tracer,
    export_chrome_trace,
    new_trace_id,
    observe_event,
    parse_metric,
    phase_table,
    phase_totals,
    read_spans,
    session,
    span,
    span_duration,
    timer_metric,
    validate_span,
)
from repro.obs.export import _dump_record
from repro.obs.metrics import event_observer, is_canonical_seconds_key
from repro.utils.timing import Timer


# ---------------------------------------------------------------------------
# Span identity and nesting
# ---------------------------------------------------------------------------


class TestSpans:
    def test_root_and_child_ids_are_deterministic_paths(self):
        tracer = Tracer(trace_id="t" * 16)
        a = tracer.open("outer")
        b = tracer.open("inner")
        c_rec = tracer.close(b)
        tracer.close(a)
        d = tracer.open("second_root")
        tracer.close(d)
        spans = {s["name"]: s for s in tracer.finished}
        assert spans["outer"]["span"] == "0"
        assert spans["outer"]["parent"] is None
        assert spans["inner"]["span"] == "0.1"
        assert spans["inner"]["parent"] == "0"
        assert spans["second_root"]["span"] == "1"
        assert c_rec["span"] == "0.1"

    def test_sibling_counters_increment(self):
        tracer = Tracer()
        root = tracer.open("root")
        for _ in range(3):
            tracer.close(tracer.open("child"))
        tracer.close(root)
        ids = [s["span"] for s in tracer.finished if s["name"] == "child"]
        assert ids == ["0.1", "0.2", "0.3"]

    def test_id_suffix_grafts_explicit_segment(self):
        tracer = Tracer()
        root = tracer.open("sweep")
        with tracer.span("trial", id_suffix="M8-T40-t3"):
            with tracer.span("lp"):
                pass
        tracer.close(root)
        by_name = {s["name"]: s for s in tracer.finished}
        assert by_name["trial"]["span"] == "0.M8-T40-t3"
        assert by_name["lp"]["span"] == "0.M8-T40-t3.1"

    def test_dur_is_authoritative_and_end_derived(self):
        tracer = Tracer()
        frame = tracer.open("x")
        rec = tracer.close(frame, duration=0.25)
        assert rec["dur"] == 0.25
        assert rec["end"] == rec["start"] + 0.25
        assert span_duration(rec) == 0.25

    def test_schema_version_stamped(self):
        tracer = Tracer()
        rec = tracer.close(tracer.open("x"))
        assert rec["schema"] == SPAN_SCHEMA_VERSION
        assert validate_span(rec) == []

    def test_attrs_recorded(self):
        tracer = Tracer()
        with tracer.span("solve", solver="Greedy", trials=3):
            pass
        (rec,) = tracer.finished
        assert rec["attrs"] == {"solver": "Greedy", "trials": 3}

    def test_emit_explicit_identity(self):
        tracer = Tracer(trace_id="a" * 16)
        rec = tracer.emit(
            "request", 10.0, 10.5, span_id="0", trace_id="b" * 16
        )
        assert rec["trace"] == "b" * 16
        assert rec["span"] == "0"
        assert rec["dur"] == 0.5
        assert validate_span(rec) == []

    def test_exception_path_pops_orphans(self):
        tracer = Tracer()
        outer = tracer.open("outer")
        tracer.open("orphan")  # never closed explicitly
        tracer.close(outer)
        # A fresh root must not nest under the leaked frame.
        fresh = tracer.open("fresh")
        tracer.close(fresh)
        by_name = {s["name"]: s for s in tracer.finished}
        assert by_name["fresh"]["parent"] is None

    def test_new_trace_id_seeded_is_deterministic(self):
        assert new_trace_id(seed="abc") == new_trace_id(seed="abc")
        assert new_trace_id(seed="abc") != new_trace_id(seed="abd")
        assert len(new_trace_id()) == 16


class TestTraceContext:
    def test_pickle_roundtrip(self):
        ctx = TraceContext(trace_id="f" * 16, span_id="0.M8-T40-t1")
        again = pickle.loads(pickle.dumps(ctx))
        assert again == ctx

    def test_dict_roundtrip(self):
        ctx = TraceContext(trace_id="f" * 16, span_id="0.3")
        assert TraceContext.from_dict(ctx.to_dict()) == ctx

    def test_resume_grafts_under_remote_parent(self):
        parent = Tracer(trace_id="c" * 16)
        root = parent.open("request")
        ctx = parent.context()
        assert ctx == TraceContext("c" * 16, "0")
        parent.close(root)

        child = Tracer(trace_id=ctx.trace_id)
        with child.resume(ctx):
            with child.span("job", id_suffix="job"):
                pass
        (rec,) = child.finished  # the phantom frame is never recorded
        assert rec["span"] == "0.job"
        assert rec["parent"] == "0"
        assert rec["trace"] == "c" * 16

    def test_absorb_and_drain(self):
        worker = Tracer(trace_id="d" * 16)
        worker.close(worker.open("work"))
        shipped = worker.drain()
        assert worker.finished == []
        parent = Tracer(trace_id="d" * 16)
        parent.absorb(shipped)
        assert [s["name"] for s in parent.finished] == ["work"]


class TestAmbient:
    def test_session_activates_and_restores(self):
        assert current_tracer() is None
        tracer = Tracer()
        with session(tracer) as active:
            assert active is tracer
            assert current_tracer() is tracer
            with span("ambient"):
                pass
        assert current_tracer() is None
        assert [s["name"] for s in tracer.finished] == ["ambient"]

    def test_span_is_noop_without_tracer(self):
        with span("nothing"):
            pass  # must not raise and must not record anywhere


# ---------------------------------------------------------------------------
# JSONL sink and span log round-trip
# ---------------------------------------------------------------------------


class TestJsonlSink:
    def test_roundtrip_and_validation(self, tmp_path):
        path = tmp_path / "spans.jsonl"
        tracer = Tracer(sink=JsonlSink(str(path)))
        root = tracer.open("sweep")
        with tracer.span("cell", load=0.5):
            pass
        tracer.close(root)
        tracer.finish()
        spans = read_spans(str(path))
        assert [s["name"] for s in spans] == ["cell", "sweep"]
        for s in spans:
            assert validate_span(s) == []

    def test_writes_are_buffered_until_flush(self, tmp_path):
        path = tmp_path / "buffered.jsonl"
        sink = JsonlSink(str(path), flush_every=1000)
        tracer = Tracer(sink=sink)
        tracer.close(tracer.open("x"))
        assert read_spans(str(path)) == []  # still in the buffer
        sink.flush()
        assert len(read_spans(str(path))) == 1
        tracer.finish()

    def test_flush_every_threshold_drains(self, tmp_path):
        path = tmp_path / "threshold.jsonl"
        sink = JsonlSink(str(path), flush_every=4)
        tracer = Tracer(sink=sink)
        for _ in range(4):
            tracer.close(tracer.open("e"))
        assert len(read_spans(str(path))) == 4  # crossed the threshold
        tracer.close(tracer.open("e"))
        assert len(read_spans(str(path))) == 4  # buffered again
        tracer.finish()
        assert len(read_spans(str(path))) == 5

    def test_write_after_close_is_ignored(self, tmp_path):
        path = tmp_path / "closed.jsonl"
        sink = JsonlSink(str(path))
        sink.write({"schema": 1, "attrs": {}})
        sink.close()
        sink.write({"schema": 1, "attrs": {}})  # must not raise
        sink.close()  # idempotent
        assert len(read_spans(str(path))) == 1

    @pytest.mark.parametrize(
        "record",
        [
            {
                "schema": 1, "trace": "ab" * 8, "span": "0.M8-T40-t3.1",
                "parent": "0.M8-T40-t3", "name": "batch_pack",
                "start": 1754640000.1234567, "end": 1754640000.25,
                "dur": 0.1265433, "attrs": {},
            },
            {
                "schema": 1, "trace": "ab" * 8, "span": "0", "parent": None,
                "name": "sweep", "start": 0.0, "end": 1.0, "dur": 1.0,
                "attrs": {},
            },
            {
                "schema": 1, "trace": "ab" * 8, "span": "0.1", "parent": "0",
                "name": 'odd"name\\with\nescapes',
                "start": 0.0, "end": 1.0, "dur": 1.0, "attrs": {},
            },
            {
                "schema": 1, "trace": "ab" * 8, "span": "0.1", "parent": "0",
                "name": "solve", "start": 0.0, "end": 1.0, "dur": 1.0,
                "attrs": {"solver": "Greedy", "n": 3},
            },
        ],
    )
    def test_dump_record_matches_json_dumps(self, record):
        assert _dump_record(record) == json.dumps(
            record, sort_keys=True, separators=(",", ":")
        )


# ---------------------------------------------------------------------------
# Chrome trace export and phase table
# ---------------------------------------------------------------------------


def _sample_spans():
    tracer = Tracer(trace_id="e" * 16)
    root = tracer.open("sweep")
    with tracer.span("trial", id_suffix="M4-T3-t0"):
        with tracer.span("solve"):
            pass
    with tracer.span("trial", id_suffix="M4-T3-t1"):
        pass
    tracer.close(root)
    return tracer.finished


class TestChromeTrace:
    def test_complete_events_with_relative_microseconds(self):
        spans = _sample_spans()
        doc = chrome_trace(spans)
        events = [e for e in doc["traceEvents"] if e.get("ph") == "X"]
        assert len(events) == len(spans)
        assert min(e["ts"] for e in events) == 0.0
        assert all(e["cat"] == "repro" for e in events)
        # Lanes derive from span-ID paths: each trial branch gets a row.
        names = {e["args"]["name"] for e in doc["traceEvents"]
                 if e.get("ph") == "M"}
        assert {"0.M4-T3-t0", "0.M4-T3-t1"} <= names

    def test_export_is_loadable_json(self, tmp_path):
        spans = _sample_spans()
        out = tmp_path / "trace.json"
        count = export_chrome_trace(spans, str(out))
        assert count == len(spans)
        doc = json.loads(out.read_text())
        assert doc["displayTimeUnit"] == "ms"
        assert len(doc["traceEvents"]) >= count

    def test_empty_spans(self):
        assert chrome_trace([]) == {
            "traceEvents": [], "displayTimeUnit": "ms"
        }


class TestPhaseTable:
    def test_totals_and_table(self):
        spans = _sample_spans()
        totals = phase_totals(spans)
        assert totals["trial"][0] == 2
        table = phase_table(spans)
        for name in ("sweep", "trial", "solve"):
            assert name in table
        assert "spans)" in table

    def test_limit_truncates_rows(self):
        table = phase_table(_sample_spans(), limit=1)
        assert "trial" not in table or "solve" not in table

    def test_empty(self):
        assert phase_table([]) == "(no spans)"


# ---------------------------------------------------------------------------
# Metrics registry
# ---------------------------------------------------------------------------


class TestMetricsRegistry:
    def test_counter_and_gauge_render_and_parse(self):
        reg = MetricsRegistry()
        reg.counter("repro_store_hits_total", 2.0, help="Total hits.")
        reg.gauge("repro_queue_depth", 3.0, pool="default")
        text = reg.render()
        assert "# TYPE repro_store_hits_total counter" in text
        assert parse_metric(text, "repro_store_hits_total") == 2.0
        assert parse_metric(text, "repro_queue_depth", pool="default") == 3.0

    def test_histogram_buckets_render_cumulatively(self):
        reg = MetricsRegistry()
        # Internal counts are per-bucket; the exposition must be
        # cumulative: le="0.1" includes everything under 0.1.
        reg.observe("h_seconds", 0.003, buckets=(0.01, 0.1, 1.0))
        reg.observe("h_seconds", 0.05, buckets=(0.01, 0.1, 1.0))
        reg.observe("h_seconds", 0.5, buckets=(0.01, 0.1, 1.0))
        reg.observe("h_seconds", 99.0, buckets=(0.01, 0.1, 1.0))
        text = reg.render()
        assert parse_metric(text, "h_seconds_bucket", le="0.01") == 1
        assert parse_metric(text, "h_seconds_bucket", le="0.1") == 2
        assert parse_metric(text, "h_seconds_bucket", le="1") == 3
        assert parse_metric(text, "h_seconds_bucket", le="+Inf") == 4
        assert parse_metric(text, "h_seconds_count") == 4
        assert reg.histogram_sum("h_seconds") == pytest.approx(
            0.003 + 0.05 + 0.5 + 99.0
        )

    def test_observe_event_canonical_names(self):
        reg = MetricsRegistry()
        observe_event("lp_bound_solve", 0.01, registry=reg)
        observe_event("batch_match", 0.02, registry=reg)
        observe_event("simulate:FIFO", 0.03, registry=reg)
        text = reg.render()
        assert "repro_lp_solve_seconds_bucket" in text
        assert "repro_batch_match_seconds_bucket" in text
        assert parse_metric(
            text, "repro_simulate_seconds_count", solver="FIFO"
        ) == 1

    def test_timer_metric_slugs_unknown_events(self):
        name, labels = timer_metric("weird event/name")
        assert name == "repro_weird_event_name_seconds"
        assert labels == {}

    def test_event_observer_matches_observe_event(self):
        reg = MetricsRegistry()
        obs = event_observer("batch_pack", registry=reg)
        obs(0.005)
        obs(0.010)
        observe_event("batch_pack", 0.015, registry=reg)
        text = reg.render()
        assert parse_metric(text, "repro_batch_pack_seconds_count") == 3
        assert reg.histogram_sum(
            "repro_batch_pack_seconds"
        ) == pytest.approx(0.030)

    def test_parse_metric_missing_series(self):
        assert parse_metric("", "nope_total") is None


# ---------------------------------------------------------------------------
# Timer: thread safety, round-trip, span bridge
# ---------------------------------------------------------------------------


class TestTimer:
    def test_concurrent_adds_are_exact(self):
        timer = Timer()
        threads = [
            threading.Thread(
                target=lambda: [timer.add("shared", 1.0) for _ in range(500)]
            )
            for _ in range(8)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert timer.counts["shared"] == 4000
        assert timer.totals["shared"] == 4000.0

    def test_as_dict_roundtrip(self):
        timer = Timer()
        timer.add("lp", 0.125)
        timer.add("lp", 0.25)
        timer.add("solve", 1.5)
        again = Timer.from_dict(timer.as_dict())
        assert again.totals == timer.totals
        assert again.counts == timer.counts
        assert again.mean("lp") == timer.mean("lp")

    def test_merge(self):
        a, b = Timer(), Timer()
        a.add("x", 1.0)
        b.add("x", 2.0)
        b.add("y", 3.0)
        a.merge(b.totals, b.counts)
        assert a.totals == {"x": 3.0, "y": 3.0}
        assert a.counts == {"x": 2, "y": 1}

    def test_measure_bridges_to_ambient_span_exactly(self):
        tracer = Tracer()
        timer = Timer()
        with session(tracer):
            with timer.measure("phase"):
                time.sleep(0.001)
            with timer.measure("phase"):
                pass
        spans = [s for s in tracer.finished if s["name"] == "phase"]
        assert len(spans) == 2
        # The bridge closes each span with the same perf_counter delta
        # the timer recorded — sums reconcile exactly, not approximately.
        assert sum(s["dur"] for s in spans) == timer.totals["phase"]

    def test_measure_without_tracer_records_no_span(self):
        timer = Timer()
        with timer.measure("alone"):
            pass
        assert timer.counts["alone"] == 1


# ---------------------------------------------------------------------------
# Sampling profiler
# ---------------------------------------------------------------------------


class TestSamplingProfiler:
    def test_attributes_samples_to_open_span(self):
        tracer = Tracer()
        prof = SamplingProfiler(tracer=tracer, interval=0.001)

        def busy():
            with session(tracer):
                with tracer.span("busy_phase"):
                    deadline = time.perf_counter() + 0.25
                    while time.perf_counter() < deadline:
                        sum(range(200))

        worker = threading.Thread(target=busy)
        with prof:
            worker.start()
            worker.join()
        report = prof.report()
        assert prof.total_samples > 0
        assert "busy_phase" in report

    def test_empty_report(self):
        prof = SamplingProfiler(interval=0.001)
        prof.start()
        prof.stop()
        assert isinstance(prof.report(), str)


# ---------------------------------------------------------------------------
# BENCH canonical *_seconds keys
# ---------------------------------------------------------------------------


class TestBenchSecondsKeys:
    def test_known_keys_are_canonical(self):
        for key in ("seconds", "serial_seconds", "traced_seconds"):
            assert is_canonical_seconds_key(key)
        assert not is_canonical_seconds_key("wallclock_seconds")

    def test_accepts_canonical_payload(self):
        assert_canonical_seconds(
            {
                "cells": {
                    "fifo": {
                        "serial_seconds": 1.0,
                        "batched_seconds": 0.2,
                        "batched_phase_seconds": {"batch_pack": 0.1},
                    }
                },
                "obs_overhead": {
                    "untraced_seconds": 1.0, "traced_seconds": 1.01,
                },
            },
            "sweep",
        )

    def test_rejects_unknown_seconds_key(self):
        with pytest.raises(RuntimeError) as excinfo:
            assert_canonical_seconds(
                {"cells": {"fifo": {"wallclock_seconds": 1.0}}}, "sweep"
            )
        message = str(excinfo.value)
        assert "wallclock_seconds" in message
        assert "BENCH_SECONDS_KEYS" in message

    def test_registry_covers_every_suite_key(self):
        # The committed snapshots must only use registered names.
        import pathlib

        for snapshot in pathlib.Path("benchmarks").glob("BENCH_*.json"):
            payload = json.loads(snapshot.read_text())
            assert_canonical_seconds(payload, snapshot.stem)

    def test_bench_seconds_keys_is_closed(self):
        assert "untraced_seconds" in BENCH_SECONDS_KEYS
        assert isinstance(BENCH_SECONDS_KEYS, frozenset)
