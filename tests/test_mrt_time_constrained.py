"""Tests for the Time-Constrained Flow Scheduling model and reductions."""

import pytest

from repro.core.flow import Flow
from repro.core.instance import Instance
from repro.core.switch import Switch
from repro.mrt.time_constrained import (
    TimeConstrainedInstance,
    from_deadlines,
    from_response_bound,
)


@pytest.fixture
def inst():
    return Instance.create(
        Switch.create(2),
        [Flow(0, 0, 1, 0), Flow(1, 1, 1, 2)],
    )


class TestConstruction:
    def test_valid(self, inst):
        tci = TimeConstrainedInstance(inst, ((0, 1), (2, 4)))
        assert tci.all_rounds == (0, 1, 2, 4)

    def test_wrong_count_rejected(self, inst):
        with pytest.raises(ValueError, match="one active set"):
            TimeConstrainedInstance(inst, ((0,),))

    def test_empty_set_rejected(self, inst):
        with pytest.raises(ValueError, match="empty"):
            TimeConstrainedInstance(inst, ((0,), ()))

    def test_unsorted_rejected(self, inst):
        with pytest.raises(ValueError, match="sorted"):
            TimeConstrainedInstance(inst, ((1, 0), (2,)))

    def test_duplicates_rejected(self, inst):
        with pytest.raises(ValueError, match="sorted"):
            TimeConstrainedInstance(inst, ((0, 0), (2,)))

    def test_negative_round_rejected(self, inst):
        with pytest.raises(ValueError, match="negative"):
            TimeConstrainedInstance(inst, ((-1, 0), (2,)))


class TestReductions:
    def test_from_response_bound_windows(self, inst):
        tci = from_response_bound(inst, 3)
        assert tci.active_rounds[0] == (0, 1, 2)
        assert tci.active_rounds[1] == (2, 3, 4)
        assert tci.respects_releases()

    def test_from_response_bound_rho_one(self, inst):
        tci = from_response_bound(inst, 1)
        assert tci.active_rounds == ((0,), (2,))

    def test_from_response_bound_rejects_zero(self, inst):
        with pytest.raises(ValueError):
            from_response_bound(inst, 0)

    def test_from_deadlines_inclusive(self, inst):
        tci = from_deadlines(inst, [2, 2])
        assert tci.active_rounds[0] == (0, 1, 2)
        assert tci.active_rounds[1] == (2,)

    def test_from_deadlines_before_release_rejected(self, inst):
        with pytest.raises(ValueError, match="precedes release"):
            from_deadlines(inst, [2, 1])

    def test_from_deadlines_wrong_length(self, inst):
        with pytest.raises(ValueError, match="one deadline"):
            from_deadlines(inst, [2])
