"""Tests for the streaming simulation engine (simulate_stream & friends).

The two load-bearing claims, per the subsystem's acceptance criteria:

1. **Equivalence** — on any bounded prefix, streaming simulation is
   byte-identical to materializing the same prefix and running the
   offline-fed :func:`repro.online.simulator.simulate` (same
   assignments, same queue history, same metrics) for every built-in
   policy.
2. **O(active flows) memory** — at a horizon ≥ 10× the largest
   materialized test in this suite, the engine's flow buffer peaks at a
   small multiple of the peak number of *active* flows (asserted via
   the ``peak_buffer`` / ``peak_alive`` FlowQueue stats), not at the
   total flow count.
"""

import numpy as np
import pytest

from repro.online.amrt import run_amrt, run_amrt_stream
from repro.online.policies import POLICY_REGISTRY, OnlinePolicy, make_policy
from repro.online.simulator import (
    StreamFlowQueue,
    simulate,
    simulate_stream,
)
from repro.core.schedule import ScheduleError
from repro.core.switch import Switch
from repro.scenarios import ArrivalStream, build_stream, make_batch
from repro.utils.timing import Timer

#: The largest materialized horizon used by the equivalence tests below;
#: the memory test streams ≥ 10× this.
LARGEST_MATERIALIZED_ROUNDS = 200

EQUIV_SCENARIOS = (
    "paper-default:ports=10,mean=8,horizon=40",
    "onoff-bursty:ports=10,horizon=40",
    "heavy-tailed:ports=10,horizon=30",
    "incast:ports=10,horizon=30",
    "trace-replay",
)


class TestEquivalence:
    @pytest.mark.parametrize("scenario", EQUIV_SCENARIOS)
    @pytest.mark.parametrize("policy", sorted(POLICY_REGISTRY))
    def test_stream_matches_materialized(self, scenario, policy):
        stream = build_stream(scenario, seed=7)
        inst = stream.materialize()
        offline = simulate(inst, make_policy(policy))
        streamed = simulate_stream(
            stream, make_policy(policy),
            record_schedule=True, record_queue_history=True,
        )
        assert np.array_equal(offline.schedule.assignment, streamed.assignment)
        assert np.array_equal(offline.queue_history, streamed.queue_history)
        assert offline.metrics.num_flows == streamed.metrics.num_flows
        assert offline.metrics.total_response == streamed.metrics.total_response
        assert offline.metrics.max_response == streamed.metrics.max_response
        assert offline.metrics.makespan == streamed.metrics.makespan
        assert offline.rounds == streamed.rounds

    def test_bounded_prefix_of_long_stream(self):
        """Streaming a prefix of a much longer stream matches materializing
        exactly that prefix (the acceptance criterion's framing)."""
        long_stream = build_stream(
            f"paper-default:ports=8,mean=6,horizon={LARGEST_MATERIALIZED_ROUNDS * 20}",
            seed=11,
        )
        prefix = long_stream.take(LARGEST_MATERIALIZED_ROUNDS)
        inst = prefix.materialize()
        offline = simulate(inst, make_policy("MaxCard"))
        streamed = simulate_stream(
            long_stream, make_policy("MaxCard"),
            arrival_rounds=LARGEST_MATERIALIZED_ROUNDS,
            record_schedule=True,
        )
        assert np.array_equal(offline.schedule.assignment, streamed.assignment)

    def test_legacy_dict_policy_goes_through_stream(self):
        """A subclass without the array fast path falls back to the
        dict interface and still matches its materialized run."""

        class OldestFirst(OnlinePolicy):
            name = "OldestFirst"

            def select(self, t, waiting, instance):
                in_res = instance.switch.input_capacities.copy()
                out_res = instance.switch.output_capacities.copy()
                chosen = []
                for fid, f in waiting.items():
                    if in_res[f.src] >= f.demand and out_res[f.dst] >= f.demand:
                        in_res[f.src] -= f.demand
                        out_res[f.dst] -= f.demand
                        chosen.append(fid)
                return chosen

        stream = build_stream("paper-default:ports=8,mean=5,horizon=30", seed=3)
        offline = simulate(stream.materialize(), OldestFirst())
        streamed = simulate_stream(
            stream, OldestFirst(), record_schedule=True
        )
        assert np.array_equal(offline.schedule.assignment, streamed.assignment)

    def test_timer_and_policy_stats_flow_through(self):
        stream = build_stream("paper-default:ports=8,mean=5,horizon=20", seed=0)
        timer = Timer()
        res = simulate_stream(stream, make_policy("MaxCard"), timer=timer)
        assert timer.counts["sim_round"] == res.rounds
        assert res.stats["matching_solves"] > 0
        assert res.stats["sim_rounds"] == res.rounds


class TestStreamingMemory:
    def test_peak_buffer_is_order_active_flows(self):
        """Acceptance criterion: horizon ≥ 10× the largest materialized
        test, peak flow-buffer O(active flows), measured by the queue."""
        horizon = 10 * LARGEST_MATERIALIZED_ROUNDS
        stream = build_stream(
            f"paper-default:ports=8,mean=6,horizon={horizon}", seed=1
        )
        res = simulate_stream(stream, make_policy("MaxWeight"))
        stats = res.stats
        assert res.metrics.num_flows > 10_000  # genuinely long
        assert stats["rebases"] > 0
        # The window never held more than a small multiple of the peak
        # active count (plus the fixed rebase hysteresis floor) — and is
        # far below the O(total flows) a materialized run would hold.
        bound = 8 * max(stats["peak_alive"], 64)
        assert stats["peak_buffer"] <= bound, stats
        assert stats["peak_buffer"] < res.metrics.num_flows / 10

    def test_quiet_tail_matches_materialized_rounds(self):
        """Arrival rounds that are empty after the queue drains (large
        incast gap) must not inflate rounds/queue_history relative to
        the materialized run."""
        stream = build_stream("incast:ports=10,fan_in=2,gap=10,horizon=30",
                              seed=0)
        offline = simulate(stream.materialize(), make_policy("MaxCard"))
        streamed = simulate_stream(
            stream, make_policy("MaxCard"), record_queue_history=True
        )
        assert streamed.rounds == offline.rounds
        assert np.array_equal(streamed.queue_history, offline.queue_history)
        # ...while arrival_rounds still reports the consumed tail.
        assert streamed.arrival_rounds == 30

    def test_arrival_rounds_reports_actual_consumption(self):
        """A stream that ends before the requested limit reports the
        rounds it actually supplied, not the drain rounds."""
        stream = build_stream("incast:ports=6,gap=3,horizon=7", seed=0)
        res = simulate_stream(
            stream, make_policy("FIFO"), arrival_rounds=100
        )
        assert res.arrival_rounds == 7
        assert res.rounds >= 7

    def test_unbounded_stream_requires_a_bound(self):
        switch = Switch.create(4)

        def factory():
            while True:
                yield make_batch([0], [1])

        unbounded = ArrivalStream(switch, factory, None, "forever")
        with pytest.raises(ValueError, match="unbounded"):
            simulate_stream(unbounded, make_policy("FIFO"))
        # arrival_rounds bounds it
        res = simulate_stream(
            unbounded, make_policy("FIFO"), arrival_rounds=5
        )
        assert res.metrics.num_flows == 5


class TestStreamFlowQueueInternals:
    def _queue(self):
        return StreamFlowQueue(Switch.create(4))

    def test_extend_and_rebase_preserve_alive_flows(self):
        q = self._queue()
        rng = np.random.default_rng(0)
        expected_alive = {}
        next_gfid = 0
        for t in range(400):
            k = int(rng.integers(0, 8))
            srcs = rng.integers(0, 4, size=k)
            dsts = rng.integers(0, 4, size=k)
            fids = q.extend_flows(srcs, dsts, np.ones(k, dtype=np.int64), t)
            q.arrive(fids)
            for i in range(k):
                expected_alive[next_gfid + i] = (int(srcs[i]), int(dsts[i]), t)
            next_gfid += k
            # Schedule a random half of the waiting flows.
            alive = q.alive_fids()
            if alive.size:
                pick = alive[rng.random(alive.size) < 0.5]
                if pick.size:
                    q.remove(pick)
                    for fid in pick.tolist():
                        del expected_alive[fid + q.global_offset]
        # Window contents must exactly match the surviving flows.
        got = {
            fid + q.global_offset: (
                int(q.srcs[fid]), int(q.dsts[fid]), int(q.releases[fid])
            )
            for fid in q.alive_fids().tolist()
        }
        assert got == expected_alive
        assert q.rebases > 0
        assert q.buffer_size < next_gfid  # the window actually slid

    def test_pair_view_survives_rebase(self):
        """The incremental pair view rebuilds correctly after the window
        slides (stale fids would select unknown flows)."""
        stream = build_stream("paper-default:ports=6,mean=4,horizon=2000",
                              seed=2)
        res = simulate_stream(stream, make_policy("MaxCard"))
        assert res.stats["rebases"] > 0  # the scenario exercised the slide

    def test_feasibility_still_enforced(self):
        class Overloader(OnlinePolicy):
            name = "Overloader"

            def select(self, t, waiting, instance):
                # Two flows into the same output port.
                fids = [
                    fid for fid, f in waiting.items() if f.dst == 0
                ][:2]
                return fids

        switch = Switch.create(4)

        def factory():
            yield make_batch([0, 1], [0, 0])

        stream = ArrivalStream(switch, factory, 1, "clash")
        with pytest.raises(ScheduleError, match="overloaded output"):
            simulate_stream(stream, Overloader())

    def test_batch_validation(self):
        switch = Switch.create(4)

        def bad_port():
            yield make_batch([9], [0])

        with pytest.raises(ValueError, match="src port out of range"):
            simulate_stream(
                ArrivalStream(switch, bad_port, 1, "bad"),
                make_policy("FIFO"),
            )

        def bad_demand():
            yield (np.array([0]), np.array([1]), np.array([5]))

        with pytest.raises(ValueError, match="exceeds kappa"):
            simulate_stream(
                ArrivalStream(switch, bad_demand, 1, "bad"),
                make_policy("FIFO"),
            )

    def test_empty_stream(self):
        switch = Switch.create(4)
        res = simulate_stream(
            ArrivalStream(switch, lambda: iter(()), 0, "empty"),
            make_policy("MaxWeight"),
        )
        assert res.metrics.num_flows == 0
        assert res.rounds == 0


class TestAMRTStream:
    def test_matches_materialized_amrt(self):
        stream = build_stream("paper-default:ports=8,mean=3,horizon=12",
                              seed=4)
        offline = run_amrt(stream.materialize())
        streamed = run_amrt_stream(stream)
        assert streamed.metrics.total_response == offline.metrics.total_response
        assert streamed.metrics.max_response == offline.metrics.max_response
        assert streamed.metrics.makespan == offline.metrics.makespan
        assert streamed.final_rho == offline.final_rho
        assert streamed.batches == offline.batches
        assert streamed.max_port_usage == offline.max_port_usage
        assert streamed.arrivals == offline.metrics.num_flows

    def test_unbounded_requires_arrival_rounds(self):
        switch = Switch.create(4)

        def factory():
            while True:
                yield make_batch([0], [1])

        unbounded = ArrivalStream(switch, factory, None, "forever")
        with pytest.raises(ValueError, match="unbounded"):
            run_amrt_stream(unbounded)
        res = run_amrt_stream(unbounded, arrival_rounds=4)
        assert res.arrivals == 4

    def test_empty_stream(self):
        switch = Switch.create(4)
        res = run_amrt_stream(
            ArrivalStream(switch, lambda: iter(()), 0, "empty")
        )
        assert res.arrivals == 0
        assert res.batches == 0
        assert res.metrics.num_flows == 0
