"""Tests for the on-disk result store and cache-backed sweeps."""

import dataclasses
import json

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.api.runner import Runner
from repro.api.store import (
    ResultStore,
    canonical_key,
    close_open_stores,
    open_store,
)
from repro.experiments.config import ExperimentConfig
from repro.lp.bounds import clear_bound_caches


@pytest.fixture(autouse=True)
def fresh_memo():
    # The in-process bound memo and store memo would mask disk-cache
    # misses; clear both so every test observes the on-disk store alone.
    clear_bound_caches()
    close_open_stores()
    yield
    clear_bound_caches()
    close_open_stores()


def cold_memos():
    """Force the next Runner call to reload everything from disk."""
    clear_bound_caches()
    close_open_stores()


def tiny_config(**overrides):
    base = dict(
        num_ports=5,
        load_ratios=(0.6, 1.5),
        generation_rounds=(3, 4),
        trials=2,
        lp_round_limit=4,
        seed=7,
    )
    base.update(overrides)
    return ExperimentConfig(**base)


def sweep_payload(sweep) -> bytes:
    """Canonical bytes of a sweep's cells (the figure renderers' input)."""
    cells = {
        f"{m}|{t}": dataclasses.asdict(cell)
        for (m, t), cell in sweep.cells.items()
    }
    return json.dumps(cells, sort_keys=True).encode()


def store_lines(cache_dir) -> set:
    lines = set()
    for shard in cache_dir.glob("results-*.jsonl"):
        lines.update(
            line for line in shard.read_text().splitlines() if line.strip()
        )
    return lines


class TestResultStore:
    def test_put_get_roundtrip(self, tmp_path):
        store = ResultStore(tmp_path)
        report = {"solver": "X", "metrics": {"average_response": 1.5}}
        store.put("X", "d" * 64, {"p": 1}, report)
        assert store.get("X", "d" * 64, {"p": 1}) == report
        assert store.get("X", "d" * 64, {"p": 2}) is None
        assert store.hits == 1 and store.misses == 1

    def test_persists_across_instances(self, tmp_path):
        ResultStore(tmp_path).put("X", "d" * 64, {}, {"v": 1})
        fresh = ResultStore(tmp_path)
        assert len(fresh) == 1
        assert fresh.get("X", "d" * 64, {}) == {"v": 1}

    def test_key_normalizes_param_order(self):
        assert canonical_key("s", "d", {"a": 1, "b": 2}) == canonical_key(
            "s", "d", {"b": 2, "a": 1}
        )
        assert canonical_key("s", "d", {"a": 1}) != canonical_key(
            "s", "d", {"a": 2}
        )

    def test_read_disabled_misses_but_writes(self, tmp_path):
        ResultStore(tmp_path).put("X", "d" * 64, {}, {"v": 1})
        no_read = ResultStore(tmp_path, read=False)
        assert no_read.get("X", "d" * 64, {}) is None
        no_read.put("Y", "d" * 64, {}, {"v": 2})
        assert ResultStore(tmp_path).get("Y", "d" * 64, {}) == {"v": 2}

    def test_duplicate_put_not_reappended(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put("X", "d" * 64, {}, {"v": 1})
        store.put("X", "d" * 64, {}, {"v": 1})
        store.close()
        assert len(store_lines(tmp_path)) == 1

    def test_torn_tail_line_skipped(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put("X", "d" * 64, {}, {"v": 1})
        store.close()
        shard = next(tmp_path.glob("results-*.jsonl"))
        with open(shard, "a") as fh:
            fh.write('{"key": "truncat')  # kill landed mid-write
        recovered = ResultStore(tmp_path)
        assert len(recovered) == 1
        assert recovered.get("X", "d" * 64, {}) == {"v": 1}

    def test_open_store_memoised_per_dir(self, tmp_path):
        a = open_store(tmp_path)
        assert open_store(tmp_path) is a
        assert open_store(tmp_path, read=False) is not a

    def test_no_cache_refreshes_stale_records(self, tmp_path):
        # Regression: a read-disabled (--no-cache) recompute that yields
        # a *different* record must replace the stale one, not be dropped
        # by key-level dedup against the loaded index.
        ResultStore(tmp_path).put("X", "d" * 64, {}, {"v": "stale"})
        refresher = ResultStore(tmp_path, read=False)
        refresher.put("X", "d" * 64, {}, {"v": "fixed"})
        refresher.close()
        assert ResultStore(tmp_path).get("X", "d" * 64, {}) == {"v": "fixed"}

    def test_open_store_evicts_and_closes_lru(self, tmp_path):
        from repro.api.store import OPEN_STORE_LIMIT, _OPEN_STORES

        first = open_store(tmp_path / "dir0")
        first.put("X", "d" * 64, {}, {"v": 0})  # opens the shard handle
        assert first._fh is not None
        for i in range(1, OPEN_STORE_LIMIT + 2):
            open_store(tmp_path / f"dir{i}")
        assert len(_OPEN_STORES) <= OPEN_STORE_LIMIT
        # The evicted store's handle was closed, and it self-heals on the
        # next put (records are flushed per write, so nothing is lost).
        assert first._fh is None
        first.put("Y", "d" * 64, {}, {"v": 1})
        reloaded = ResultStore(tmp_path / "dir0")
        assert reloaded.get("X", "d" * 64, {}) == {"v": 0}
        assert reloaded.get("Y", "d" * 64, {}) == {"v": 1}


class TestCachedSweeps:
    def test_second_run_serves_everything_from_disk(self, tmp_path):
        config = tiny_config()
        first = Runner(config, cache_dir=tmp_path).run()
        cold_memos()
        second = Runner(config, cache_dir=tmp_path).run()
        assert first.cells == second.cells
        # Zero LP solves and zero simulations on the warm run; only the
        # workload generation (which computes the digest keys) remains —
        # per-trial ``generate`` events plus the batched path's
        # ``batch_generate`` cell wrapper.
        for name in second.timer.counts:
            assert name in ("generate", "batch_generate"), second.timer.counts

    def test_cached_equals_uncached(self, tmp_path):
        config = tiny_config()
        plain = Runner(config).run()
        cold_memos()
        cached = Runner(config, cache_dir=tmp_path).run()
        cold_memos()
        warm = Runner(config, cache_dir=tmp_path).run()
        assert sweep_payload(plain) == sweep_payload(cached)
        assert sweep_payload(plain) == sweep_payload(warm)

    def test_resume_false_recomputes(self, tmp_path):
        config = tiny_config()
        Runner(config, cache_dir=tmp_path).run()
        cold_memos()
        recomputed = Runner(config, cache_dir=tmp_path, resume=False).run()
        assert recomputed.timer.counts.get("lp_bound_solve", 0) > 0

    def test_resume_false_bypasses_in_process_memo(self, tmp_path):
        # Regression: without clearing any memo, a resume=False rerun in
        # the same process must re-solve the LP bounds — the digest memo
        # honors the Runner's use_cache flag, mirroring the disk store.
        config = tiny_config()
        warmed = Runner(config, cache_dir=tmp_path).run()
        assert warmed.timer.counts.get("lp_bound_solve", 0) > 0
        recomputed = Runner(config, cache_dir=tmp_path, resume=False).run()
        assert recomputed.timer.counts.get("lp_bound_solve", 0) > 0

    def test_no_cache_refresh_visible_to_later_reads_in_process(
        self, tmp_path
    ):
        # Regression: read -> refresh (resume=False) -> read, all in one
        # process.  The third run must see the refreshed store, not the
        # first run's memoised pre-refresh index.
        store = open_store(tmp_path)
        store.put("X", "d" * 64, {}, {"v": "stale"})
        open_store(tmp_path, read=False).put("X", "d" * 64, {}, {"v": "fixed"})
        assert open_store(tmp_path).get("X", "d" * 64, {}) == {"v": "fixed"}

    def test_interrupted_sweep_resumes_byte_identical(self, tmp_path):
        config = tiny_config()
        full_dir = tmp_path / "full"
        part_dir = tmp_path / "interrupted"
        uninterrupted = Runner(config, cache_dir=full_dir).run()
        cold_memos()

        # Simulate a kill after the first finished cell, then resume.
        class Interrupted(Exception):
            pass

        def killer(cell):
            raise Interrupted

        with pytest.raises(Interrupted):
            Runner(config, cache_dir=part_dir).run(on_cell=killer)
        cold_memos()
        resumed = Runner(config, cache_dir=part_dir).run()

        assert sweep_payload(resumed) == sweep_payload(uninterrupted)
        # The stores themselves hold identical record sets: the resumed
        # run's store is byte-identical to the uninterrupted run's.
        assert store_lines(part_dir) == store_lines(full_dir)

    def test_infeasible_solver_result_not_persisted(self, tmp_path):
        # Regression: a rejected (metrics=None) result must not be put in
        # the store — else the poisoned record is re-served on resume and
        # the sweep keeps crashing even after the solver is fixed.
        from repro.api import SolveReport, register_solver, unregister_solver
        from repro.core.metrics import ScheduleMetrics

        config = tiny_config(generation_rounds=(3,), load_ratios=(1.0,),
                             trials=1, lp_round_limit=0)

        class Broken:
            name, kind = "test-cache-solver", "offline"

            def solve(self, instance, **params):
                return SolveReport(self.name, self.kind, metrics=None)

        class Fixed:
            name, kind = "test-cache-solver", "offline"

            def solve(self, instance, **params):
                from repro.core.greedy import greedy_earliest_fit

                schedule = greedy_earliest_fit(instance)
                return SolveReport(
                    self.name, self.kind,
                    metrics=ScheduleMetrics.of(schedule), schedule=schedule,
                )

        register_solver("test-cache-solver", Broken)
        try:
            with pytest.raises(ValueError, match="infeasible"):
                Runner(config, cache_dir=tmp_path).run(
                    solvers=["test-cache-solver"]
                )
        finally:
            unregister_solver("test-cache-solver")
        register_solver("test-cache-solver", Fixed)
        try:
            cold_memos()
            sweep = Runner(config, cache_dir=tmp_path).run(
                solvers=["test-cache-solver"]
            )
            cell = next(iter(sweep.cells.values()))
            assert cell.avg_response["test-cache-solver"] >= 1.0
        finally:
            unregister_solver("test-cache-solver")

    def test_multiprocessing_writes_and_serial_resumes(self, tmp_path):
        config = tiny_config()
        parallel = Runner(config, jobs=2, cache_dir=tmp_path).run()
        cold_memos()
        resumed = Runner(config, cache_dir=tmp_path).run()
        assert parallel.cells == resumed.cells
        assert resumed.timer.counts.get("lp_max_bound", 0) == 0

    # The memo is cleared explicitly inside the body (once per example);
    # the function-scoped autouse fixture only covers the non-given tests.
    @given(seed=st.integers(0, 2**20))
    @settings(
        max_examples=8,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    def test_property_cache_warm_resume_is_byte_identical(
        self, seed, tmp_path_factory
    ):
        """A killed-and-resumed sweep reproduces the serial run exactly."""
        cold_memos()
        config = ExperimentConfig(
            num_ports=4,
            load_ratios=(0.75,),
            generation_rounds=(2, 3),
            trials=2,
            lp_round_limit=3,
            seed=seed,
        )
        cache = tmp_path_factory.mktemp("cache")
        serial = Runner(config).run()
        cold_memos()

        class Interrupted(Exception):
            pass

        def killer(cell):
            raise Interrupted

        with pytest.raises(Interrupted):
            Runner(config, cache_dir=cache).run(on_cell=killer)
        cold_memos()
        resumed = Runner(config, cache_dir=cache).run()
        assert sweep_payload(resumed) == sweep_payload(serial)
