"""Test package marker.

Makes ``tests`` importable as a package regardless of entry point: the
suite's cross-module imports (``from tests.conftest import ...``,
``from tests.verify_harness import ...``) resolve under both
``python -m pytest`` (CWD on sys.path) and the bare ``pytest`` console
script (which only inserts the package's *parent* — the repo root —
because this file exists).
"""
