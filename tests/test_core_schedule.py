"""Unit tests for repro.core.schedule."""

import numpy as np
import pytest
from hypothesis import given

from repro.core.flow import Flow
from repro.core.greedy import greedy_earliest_fit
from repro.core.instance import Instance
from repro.core.schedule import (
    Schedule,
    ScheduleError,
    is_valid_schedule,
    validate_schedule,
)
from repro.core.switch import Switch
from tests.conftest import capacitated_instances


def _sched(inst, rounds):
    return Schedule.from_mapping(inst, dict(enumerate(rounds)))


class TestScheduleConstruction:
    def test_from_mapping(self, small_instance):
        s = _sched(small_instance, [0, 1, 2, 1, 1, 2])
        assert s.round_of(2) == 2

    def test_missing_flow_rejected(self, small_instance):
        with pytest.raises(ScheduleError, match="missing"):
            Schedule.from_mapping(small_instance, {0: 0})

    def test_unknown_fid_rejected(self, small_instance):
        with pytest.raises(ScheduleError, match="unknown fid"):
            Schedule.from_mapping(small_instance, {99: 0})

    def test_wrong_shape_rejected(self, small_instance):
        with pytest.raises(ScheduleError):
            Schedule(small_instance, np.zeros(3, dtype=np.int64))

    def test_assignment_read_only(self, small_instance):
        s = _sched(small_instance, [0, 1, 2, 1, 1, 2])
        with pytest.raises(ValueError):
            s.assignment[0] = 5


class TestScheduleAccessors:
    def test_completion_times_are_round_plus_one(self, small_instance):
        s = _sched(small_instance, [0, 1, 2, 1, 1, 2])
        assert s.completion_times().tolist() == [1, 2, 3, 2, 2, 3]

    def test_makespan(self, small_instance):
        s = _sched(small_instance, [0, 1, 5, 1, 1, 2])
        assert s.makespan() == 6

    def test_rounds_used(self, small_instance):
        s = _sched(small_instance, [0, 1, 2, 1, 1, 2])
        buckets = s.rounds_used()
        assert buckets[1] == [1, 3, 4]

    def test_port_round_loads_shape(self, small_instance):
        s = _sched(small_instance, [0, 1, 2, 1, 1, 2])
        in_loads, out_loads = s.port_round_loads()
        assert in_loads.shape == (4, 3)
        assert out_loads[0].tolist() == [1, 1, 1]  # output 0 each round

    def test_max_augmentation_zero_for_valid(self, small_instance):
        s = _sched(small_instance, [0, 1, 2, 1, 1, 3])
        assert s.max_augmentation() == 0

    def test_max_augmentation_counts_excess(self, small_instance):
        s = _sched(small_instance, [0, 0, 0, 1, 1, 2])  # 3 flows into out 0
        assert s.max_augmentation() == 2

    def test_negative_round_rejected(self, small_instance):
        # Regression: a leftover -1 "unscheduled" marker used to wrap
        # into the last round of the load matrices, so an incomplete
        # schedule could report max_augmentation() == 0 and look
        # capacity-feasible.  Construction now rejects it.
        rounds = np.array([0, 1, 2, 1, 1, -1], dtype=np.int64)
        with pytest.raises(ScheduleError, match="negative round"):
            Schedule(small_instance, rounds)

    def test_zero_augmentation_is_capacity_only(self, small_instance):
        # Pin the 0-vs-feasible contract: max_augmentation() == 0 means
        # capacity-feasible, NOT fully valid — fid 3 (released at round
        # 1) runs early here without overloading any port.
        s = _sched(small_instance, [1, 2, 3, 0, 1, 2])
        assert s.max_augmentation() == 0
        assert not is_valid_schedule(s)
        # The conjunction in the docstring: zero augmentation plus no
        # early flows iff fully valid.
        ok = _sched(small_instance, [0, 1, 2, 1, 1, 3])
        assert ok.max_augmentation() == 0 and is_valid_schedule(ok)


class TestValidation:
    def test_valid_schedule_passes(self, small_instance):
        validate_schedule(_sched(small_instance, [0, 1, 2, 1, 1, 3]))

    def test_early_scheduling_rejected(self, small_instance):
        s = _sched(small_instance, [0, 1, 2, 0, 1, 2])  # fid 3 released at 1
        with pytest.raises(ScheduleError, match="before its release"):
            validate_schedule(s)

    def test_port_overload_rejected(self, small_instance):
        s = _sched(small_instance, [0, 0, 1, 1, 1, 2])
        with pytest.raises(ScheduleError, match="overloaded"):
            validate_schedule(s)

    def test_augmented_capacity_accepts_overload(self, small_instance):
        s = _sched(small_instance, [0, 0, 1, 1, 1, 2])
        validate_schedule(
            s, small_instance.switch.augmented(additive=1)
        )

    def test_is_valid_schedule_boolean(self, small_instance):
        assert is_valid_schedule(_sched(small_instance, [0, 1, 2, 1, 1, 3]))
        assert not is_valid_schedule(_sched(small_instance, [0, 0, 0, 1, 1, 2]))

    def test_capacity_switch_port_count_mismatch(self, small_instance):
        s = _sched(small_instance, [0, 1, 2, 1, 1, 2])
        with pytest.raises(ScheduleError, match="port counts"):
            validate_schedule(s, Switch.create(5))


class TestGreedyProducesValidSchedules:
    @given(capacitated_instances())
    def test_greedy_always_valid(self, inst):
        schedule = greedy_earliest_fit(inst)
        validate_schedule(schedule)

    @given(capacitated_instances())
    def test_greedy_respects_custom_order(self, inst):
        order = list(reversed(range(inst.num_flows)))
        schedule = greedy_earliest_fit(inst, order=order)
        validate_schedule(schedule)

    def test_greedy_key_and_order_mutually_exclusive(self, small_instance):
        with pytest.raises(ValueError):
            greedy_earliest_fit(
                small_instance, order=[0, 1, 2, 3, 4, 5], key=lambda f: f.fid
            )

    def test_greedy_key_sorting(self, small_instance):
        schedule = greedy_earliest_fit(
            small_instance, key=lambda f: (-f.release, f.fid)
        )
        validate_schedule(schedule)
