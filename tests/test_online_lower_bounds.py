"""Tests for the Figure 4 adversarial constructions (Lemmas 5.1, 5.2)."""

import pytest

from repro.core.metrics import max_response_time
from repro.core.schedule import validate_schedule
from repro.mrt.exact import exact_min_max_response
from repro.online.lower_bounds import (
    adaptive_figure4a_ratio,
    adaptive_figure4b_max_response,
    figure4a_instance,
    figure4b_instance,
    figure4b_optimal_max_response,
    figure4b_policy_max_response,
)
from repro.online.policies import make_policy
from repro.online.simulator import simulate


class TestFigure4a:
    def test_instance_shape(self):
        inst = figure4a_instance(T=5, M=20)
        # 2 solid per round for T rounds + (M - T) dashed.
        assert inst.num_flows == 2 * 5 + 15
        assert inst.switch.num_inputs == 2
        assert inst.max_release == 19

    def test_m_must_exceed_t(self):
        with pytest.raises(ValueError):
            figure4a_instance(T=5, M=5)

    def test_bad_target_rejected(self):
        with pytest.raises(ValueError):
            figure4a_instance(T=5, M=10, congested_output=2)

    @pytest.mark.parametrize("policy", ["MaxCard", "MaxWeight", "MinRTime"])
    def test_adaptive_ratio_grows_with_m(self, policy):
        """Lemma 5.1: the ratio diverges as M grows (checked at two
        scales)."""
        _, _, small = adaptive_figure4a_ratio(make_policy(policy), T=8, M=40)
        _, _, large = adaptive_figure4a_ratio(make_policy(policy), T=8, M=400)
        assert large > small
        assert large > 2.0  # already unambiguous at this scale


class TestFigure4b:
    def test_instance_shape(self):
        inst = figure4b_instance()
        assert inst.num_flows == 6
        assert inst.switch.num_inputs == 3
        assert inst.switch.num_outputs == 4

    def test_opt_is_two(self):
        # The paper's explicit optimal schedule achieves 2; verify with
        # the exact solver.
        assert exact_min_max_response(figure4b_instance()) == 2
        assert figure4b_optimal_max_response() == 2

    @pytest.mark.parametrize(
        "policy", ["MaxCard", "MinRTime", "MaxWeight", "FIFO"]
    )
    def test_adaptive_adversary_forces_three(self, policy):
        """Lemma 5.2: every deterministic policy is forced to >= 3."""
        assert adaptive_figure4b_max_response(make_policy(policy)) >= 3

    def test_fixed_instance_policies_at_least_opt(self):
        for policy in ("MaxCard", "MinRTime", "MaxWeight"):
            got = figure4b_policy_max_response(make_policy(policy))
            assert got >= figure4b_optimal_max_response()

    def test_simulation_valid_on_construction(self):
        res = simulate(figure4b_instance(), make_policy("MaxCard"))
        validate_schedule(res.schedule)
