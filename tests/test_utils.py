"""Unit tests for repro.utils."""

import numpy as np
import pytest

from repro.utils.rng import derive_seed, make_rng, spawn_rngs
from repro.utils.timing import Timer
from repro.utils.validation import (
    check_in,
    check_nonnegative_int,
    check_positive_int,
    check_probability,
)


class TestRng:
    def test_make_rng_from_int_is_deterministic(self):
        assert make_rng(5).integers(0, 100) == make_rng(5).integers(0, 100)

    def test_make_rng_passthrough(self):
        gen = np.random.default_rng(0)
        assert make_rng(gen) is gen

    def test_make_rng_none(self):
        assert isinstance(make_rng(None), np.random.Generator)

    def test_spawn_rngs_count_and_independence(self):
        streams = spawn_rngs(1, 3)
        assert len(streams) == 3
        draws = {s.integers(0, 10**9) for s in streams}
        assert len(draws) == 3  # overwhelmingly likely distinct

    def test_spawn_rngs_negative_rejected(self):
        with pytest.raises(ValueError):
            spawn_rngs(1, -1)

    def test_derive_seed_deterministic(self):
        assert derive_seed(1, 2, 3) == derive_seed(1, 2, 3)
        assert derive_seed(1, 2, 3) != derive_seed(1, 3, 2)

    def test_derive_seed_none_passthrough(self):
        assert derive_seed(None, 1) is None


class TestValidation:
    def test_check_positive_int_accepts(self):
        assert check_positive_int(3, "x") == 3

    def test_check_positive_int_rejects_zero(self):
        with pytest.raises(ValueError):
            check_positive_int(0, "x")

    def test_check_positive_int_rejects_float(self):
        with pytest.raises(TypeError):
            check_positive_int(1.0, "x")

    def test_check_positive_int_rejects_bool(self):
        with pytest.raises(TypeError):
            check_positive_int(True, "x")

    def test_check_nonnegative_int_accepts_zero(self):
        assert check_nonnegative_int(0, "x") == 0

    def test_check_nonnegative_int_rejects_negative(self):
        with pytest.raises(ValueError):
            check_nonnegative_int(-1, "x")

    def test_check_probability_bounds(self):
        assert check_probability(0.5, "p") == 0.5
        with pytest.raises(ValueError):
            check_probability(1.5, "p")
        with pytest.raises(TypeError):
            check_probability("a", "p")

    def test_check_in(self):
        assert check_in("a", ("a", "b"), "x") == "a"
        with pytest.raises(ValueError):
            check_in("c", ("a", "b"), "x")


class TestTimer:
    def test_measure_accumulates(self):
        timer = Timer()
        with timer.measure("phase"):
            pass
        with timer.measure("phase"):
            pass
        assert timer.counts["phase"] == 2
        assert timer.totals["phase"] >= 0.0

    def test_mean_of_unknown_is_zero(self):
        assert Timer().mean("nope") == 0.0

    def test_add_direct(self):
        timer = Timer()
        timer.add("x", 1.5)
        timer.add("x", 0.5)
        assert timer.mean("x") == 1.0

    def test_report_contains_names(self):
        timer = Timer()
        timer.add("alpha", 1.0)
        assert "alpha" in timer.report()
