"""Smoke tests: every example script runs to completion."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def _run(script: str, *args: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, str(EXAMPLES / script), *args],
        capture_output=True,
        text=True,
        timeout=600,
    )


@pytest.mark.parametrize(
    "script,args,expect",
    [
        ("quickstart.py", (), "Offline FS-MRT"),
        (
            "datacenter_traffic.py",
            ("--ports", "8", "--rounds", "5"),
            "LP bound",
        ),
        ("deadline_scheduling.py", (), "tightness"),
        ("hardness_demo.py", (), "4/3 gap"),
        ("coflow_shuffle.py", (), "best average co-flow response"),
        (
            "scenario_zoo.py",
            ("--ports", "6", "--horizon", "6"),
            "CSV trace replay",
        ),
        ("service_client.py", (), "service drained and stopped"),
        ("trace_sweep.py", (), "traced sweep complete"),
    ],
)
def test_example_runs(script, args, expect):
    result = _run(script, *args)
    assert result.returncode == 0, result.stderr
    assert expect in result.stdout


def test_online_vs_offline_runs():
    result = _run("online_vs_offline.py")
    assert result.returncode == 0, result.stderr
    assert "AMRT" in result.stdout


def test_reproduce_figures_quick():
    result = _run("reproduce_figures.py", "--quick")
    assert result.returncode == 0, result.stderr
    assert "Figure 6 panel" in result.stdout
    assert "Figure 7 panel" in result.stdout
