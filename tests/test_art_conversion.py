"""Tests for the Theorem 1 pseudo-schedule -> schedule conversion."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.art.conversion import default_window, pseudo_to_schedule
from repro.art.iterative_rounding import iterative_rounding
from repro.art.pseudo_schedule import PseudoSchedule
from repro.core.flow import Flow
from repro.core.instance import Instance
from repro.core.schedule import validate_schedule
from repro.core.switch import Switch
from tests.conftest import unit_instances


class TestDefaultWindow:
    def test_grows_with_n(self):
        assert default_window(2, 1) == 1
        assert default_window(1024, 1) == 10
        assert default_window(1024, 5) == 2

    def test_rejects_bad_c(self):
        with pytest.raises(ValueError):
            default_window(10, 0)


class TestConversion:
    def test_empty(self):
        inst = Instance.create(Switch.create(1), [])
        ps = PseudoSchedule(inst, np.zeros(0, dtype=np.int64))
        res = pseudo_to_schedule(ps)
        assert res.schedule.instance.num_flows == 0

    def test_schedules_strictly_after_pseudo_round(self):
        inst = Instance.create(
            Switch.create(2), [Flow(0, 0), Flow(1, 1), Flow(0, 1, 1, 1)]
        )
        ps = iterative_rounding(inst)
        res = pseudo_to_schedule(ps, c=1, window=2)
        assert (res.schedule.assignment > ps.assignment).all()

    def test_overloaded_pseudo_schedule_repaired(self):
        # Pseudo-schedule with 3 flows on one port in one round.
        inst = Instance.create(
            Switch.create(3), [Flow(0, 0), Flow(1, 0), Flow(2, 0)]
        )
        ps = PseudoSchedule(inst, np.array([0, 0, 0]))
        res = pseudo_to_schedule(ps, c=1, window=2)
        # Emitted over window 1 (rounds 2..3), ceil(3/2)=2 per round.
        validate_schedule(
            res.schedule,
            inst.switch.augmented(factor=res.capacity_factor),
        )
        assert res.max_delta == 3
        assert res.capacity_factor == 2

    def test_capacity_factor_bound(self):
        """Per construction, per-round load <= ceil(delta/h) * c_p."""
        inst = Instance.create(
            Switch.create(2), [Flow(0, 0) for _ in range(4)]
        )
        ps = PseudoSchedule(inst, np.array([0, 0, 1, 1]))
        res = pseudo_to_schedule(ps, window=2)
        assert res.capacity_factor <= -(-res.max_delta // res.window)

    def test_general_capacities_b_matching_path(self):
        sw = Switch.create(2, 2, 2)
        flows = [Flow(0, 0), Flow(0, 0), Flow(0, 1), Flow(1, 0)]
        inst = Instance.create(sw, flows)
        ps = PseudoSchedule(inst, np.array([0, 0, 0, 0]))
        res = pseudo_to_schedule(ps, window=1)
        validate_schedule(
            res.schedule, sw.augmented(factor=res.capacity_factor)
        )

    def test_invalid_window_rejected(self):
        inst = Instance.create(Switch.create(2), [Flow(0, 0)])
        ps = PseudoSchedule(inst, np.array([0]))
        with pytest.raises(ValueError):
            pseudo_to_schedule(ps, window=0)

    @given(unit_instances(max_ports=3, max_flows=6), st.integers(1, 3))
    @settings(max_examples=30, deadline=None)
    def test_end_to_end_validity_property(self, inst, c):
        """Theorem 1 pipeline: always yields a valid schedule under the
        achieved capacity factor, respecting all releases."""
        ps = iterative_rounding(inst)
        res = pseudo_to_schedule(ps, c=c)
        validate_schedule(
            res.schedule, inst.switch.augmented(factor=res.capacity_factor)
        )
        assert res.extra_delay <= 2 * res.window + res.max_delta
