"""Tests for the online heuristics (MaxCard / MinRTime / MaxWeight / FIFO)."""

import numpy as np
import pytest
from hypothesis import given, settings

from repro.core.flow import Flow
from repro.core.instance import Instance
from repro.core.metrics import max_response_time
from repro.core.schedule import validate_schedule
from repro.core.switch import Switch
from repro.online.policies import (
    POLICY_REGISTRY,
    MaxCardPolicy,
    MaxWeightPolicy,
    MinRTimePolicy,
    make_policy,
)
from repro.online.simulator import simulate
from tests.conftest import capacitated_instances, unit_instances


class TestRegistry:
    def test_all_registered(self):
        assert set(POLICY_REGISTRY) == {
            "MaxCard",
            "MinRTime",
            "MaxWeight",
            "FIFO",
            "Random",
        }

    def test_make_policy(self):
        assert make_policy("MaxCard").name == "MaxCard"

    def test_unknown_policy(self):
        with pytest.raises(ValueError, match="unknown policy"):
            make_policy("SRPT")


class TestMaxCard:
    def test_extracts_maximum_matching(self):
        # 3 compatible flows in one round: all scheduled immediately.
        inst = Instance.create(
            Switch.create(3), [Flow(0, 0), Flow(1, 1), Flow(2, 2)]
        )
        res = simulate(inst, MaxCardPolicy())
        assert res.rounds == 1

    def test_keeps_ports_busy(self):
        # MaxCard prefers 2 flows over 1 even if one is older.
        inst = Instance.create(
            Switch.create(2),
            [Flow(0, 0, 1, 0), Flow(0, 1, 1, 0), Flow(1, 0, 1, 0)],
        )
        res = simulate(inst, MaxCardPolicy())
        # Round 0 can schedule 2 ((0,1) and (1,0)); round 1 the last.
        assert res.rounds == 2


class TestMinRTime:
    def test_prioritizes_oldest(self):
        # An old flow and a fresh one compete for output 0.
        inst = Instance.create(
            Switch.create(2),
            [Flow(0, 0, 1, 0), Flow(1, 0, 1, 2)],
        )
        res = simulate(inst, MinRTimePolicy())
        # Old flow (fid 0) conflicts with nothing until t=2; by then it
        # is scheduled, so no collision ever happens.
        assert res.schedule.round_of(0) == 0

    def test_age_weights_break_ties_toward_waiting(self):
        # Two flows on input 0 at t=0 (one gets delayed), plus a stream
        # of fresh competitors on the same output from other inputs.
        flows = [Flow(0, 0, 1, 0), Flow(0, 1, 1, 0), Flow(1, 1, 1, 1)]
        inst = Instance.create(Switch.create(2), flows)
        res = simulate(inst, MinRTimePolicy())
        validate_schedule(res.schedule)
        # The leftover from round 0 must not starve behind the fresh one.
        assert max_response_time(res.schedule) <= 3


class TestMaxWeight:
    def test_prefers_long_queues(self):
        # Output 0 has a 3-deep queue, output 1 a 1-deep queue; input 3
        # could serve either — MaxWeight picks the long-queue side.
        flows = [
            Flow(0, 0), Flow(1, 0), Flow(2, 0),  # queue on output 0
            Flow(3, 0), Flow(3, 1),              # input 3's choice
        ]
        inst = Instance.create(Switch.create(4, 2), flows)
        policy = MaxWeightPolicy()
        waiting = {f.fid: f for f in inst.flows}
        chosen = policy.select(0, waiting, inst)
        # Round 0 matching must include an edge into output 0 with the
        # heaviest combined queues; verify feasibility + nonempty.
        assert chosen
        srcs = [inst.flows[f].src for f in chosen]
        assert len(set(srcs)) == len(srcs)


class TestRandomPolicy:
    def test_deterministic_across_runs(self):
        from repro.online.policies import RandomPolicy
        from repro.workloads.synthetic import poisson_uniform_workload

        inst = poisson_uniform_workload(5, 4, 4, seed=8)
        a = simulate(inst, RandomPolicy(seed=3))
        b = simulate(inst, RandomPolicy(seed=3))
        assert a.schedule.assignment.tolist() == b.schedule.assignment.tolist()

    def test_different_seeds_can_differ(self):
        from repro.online.policies import RandomPolicy
        from repro.workloads.synthetic import poisson_uniform_workload

        inst = poisson_uniform_workload(5, 10, 6, seed=8)
        a = simulate(inst, RandomPolicy(seed=1))
        b = simulate(inst, RandomPolicy(seed=2))
        # Not guaranteed per-instance, but at this density collisions in
        # every round are overwhelmingly unlikely.
        assert (
            a.schedule.assignment.tolist() != b.schedule.assignment.tolist()
        )

    def test_selection_is_maximal(self):
        """Random packing never leaves both ports of a waiting flow idle."""
        from repro.online.policies import RandomPolicy

        inst = Instance.create(
            Switch.create(2), [Flow(0, 0), Flow(1, 1), Flow(0, 1), Flow(1, 0)]
        )
        res = simulate(inst, RandomPolicy(seed=0))
        assert res.rounds == 2  # 4 flows on 2 disjoint pairs


class TestAllPoliciesProduceValidSchedules:
    @pytest.mark.parametrize("name", sorted(POLICY_REGISTRY))
    def test_on_fixed_instance(self, name):
        inst = Instance.create(
            Switch.create(3),
            [Flow(i % 3, (i * 2) % 3, 1, i % 4) for i in range(9)],
        )
        res = simulate(inst, make_policy(name))
        validate_schedule(res.schedule)

    @given(unit_instances(max_ports=4, max_flows=8))
    @settings(max_examples=25, deadline=None)
    def test_unit_property(self, inst):
        for name in POLICY_REGISTRY:
            res = simulate(inst, make_policy(name))
            validate_schedule(res.schedule)

    @given(capacitated_instances(max_flows=6))
    @settings(max_examples=25, deadline=None)
    def test_general_capacity_property(self, inst):
        for name in POLICY_REGISTRY:
            res = simulate(inst, make_policy(name))
            validate_schedule(res.schedule)

    def test_work_conservation_unit_case(self):
        """No policy leaves a schedulable flow waiting while its ports
        are idle (matching policies are maximal)."""
        inst = Instance.create(
            Switch.create(2), [Flow(0, 0), Flow(1, 1), Flow(0, 1), Flow(1, 0)]
        )
        for name in ("MaxCard", "MinRTime", "MaxWeight"):
            res = simulate(inst, make_policy(name))
            # 4 flows, 2 disjoint pairs -> exactly 2 rounds.
            assert res.rounds == 2, name
