"""Tests for König minimum vertex cover (matching certificates)."""

from hypothesis import given, settings

from repro.matching.bipartite import BipartiteMultigraph
from repro.matching.vertex_cover import (
    certify_maximum_matching,
    is_vertex_cover,
    minimum_vertex_cover,
)
from tests.conftest import bipartite_edge_lists


def _graph(n_left, n_right, edges):
    g = BipartiteMultigraph(n_left, n_right)
    for u, v in edges:
        g.add_edge(u, v)
    return g


class TestKnownGraphs:
    def test_empty_graph(self):
        cover, matching = minimum_vertex_cover(_graph(3, 3, []))
        assert cover == set()
        assert matching == {}

    def test_single_edge(self):
        cover, matching = minimum_vertex_cover(_graph(1, 1, [(0, 0)]))
        assert len(cover) == 1 == len(matching)

    def test_star_covered_by_center(self):
        g = _graph(1, 5, [(0, j) for j in range(5)])
        cover, matching = minimum_vertex_cover(g)
        assert cover == {("L", 0)}
        assert len(matching) == 1

    def test_k33(self):
        g = _graph(3, 3, [(u, v) for u in range(3) for v in range(3)])
        cover, matching = minimum_vertex_cover(g)
        assert len(cover) == 3 == len(matching)
        assert is_vertex_cover(g, cover)

    def test_path(self):
        # L0-R0-L1-R1: max matching 2, cover 2.
        g = _graph(2, 2, [(0, 0), (1, 0), (1, 1)])
        cover, matching = minimum_vertex_cover(g)
        assert len(cover) == len(matching) == 2
        assert is_vertex_cover(g, cover)

    def test_is_vertex_cover_detects_gap(self):
        g = _graph(2, 2, [(0, 0), (1, 1)])
        assert not is_vertex_cover(g, {("L", 0)})


class TestKoenigProperty:
    @given(bipartite_edge_lists(max_side=6, max_edges=18))
    @settings(max_examples=150, deadline=None)
    def test_cover_size_equals_matching_size(self, data):
        """König's theorem as a self-certificate for Hopcroft-Karp."""
        n_left, n_right, edges = data
        g = _graph(n_left, n_right, edges)
        cover, matching = minimum_vertex_cover(g)
        assert is_vertex_cover(g, cover)
        assert len(cover) == len(matching)
        assert certify_maximum_matching(g)
