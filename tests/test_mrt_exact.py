"""Tests for the exact brute-force solvers (test oracles)."""

from hypothesis import given, settings

from repro.core.flow import Flow
from repro.core.greedy import greedy_earliest_fit
from repro.core.instance import Instance
from repro.core.metrics import max_response_time, total_response_time
from repro.core.schedule import validate_schedule
from repro.core.switch import Switch
from repro.mrt.exact import (
    exact_min_max_response,
    exact_min_total_response,
    exact_time_constrained_schedule,
)
from repro.mrt.time_constrained import TimeConstrainedInstance, from_response_bound
from tests.conftest import unit_instances


class TestExactTimeConstrained:
    def test_finds_schedule(self):
        inst = Instance.create(Switch.create(2), [Flow(0, 0), Flow(0, 1)])
        sched = exact_time_constrained_schedule(from_response_bound(inst, 2))
        assert sched is not None
        validate_schedule(sched)

    def test_detects_infeasible(self):
        inst = Instance.create(Switch.create(2), [Flow(0, 0), Flow(0, 1)])
        assert exact_time_constrained_schedule(from_response_bound(inst, 1)) is None

    def test_respects_noncontiguous_windows(self):
        inst = Instance.create(Switch.create(1, 1), [Flow(0, 0), Flow(0, 0)])
        tci = TimeConstrainedInstance(inst, ((3, 7), (3, 7)))
        sched = exact_time_constrained_schedule(tci)
        assert sorted(sched.assignment.tolist()) == [3, 7]

    def test_empty(self):
        inst = Instance.create(Switch.create(1), [])
        tci = TimeConstrainedInstance(inst, ())
        assert exact_time_constrained_schedule(tci) is not None


class TestExactOptima:
    def test_min_max_response_known(self):
        inst = Instance.create(
            Switch.create(3), [Flow(i, 0) for i in range(3)]
        )
        assert exact_min_max_response(inst) == 3

    def test_min_total_response_known(self):
        # Incast of 3: responses 1+2+3 = 6.
        inst = Instance.create(
            Switch.create(3), [Flow(i, 0) for i in range(3)]
        )
        assert exact_min_total_response(inst) == 6

    def test_release_gaps_dont_inflate(self):
        inst = Instance.create(
            Switch.create(2), [Flow(0, 0, 1, 0), Flow(1, 1, 1, 5)]
        )
        assert exact_min_max_response(inst) == 1
        assert exact_min_total_response(inst) == 2

    @given(unit_instances(max_ports=3, max_flows=5))
    @settings(max_examples=30, deadline=None)
    def test_exact_bounds_greedy(self, inst):
        if inst.num_flows == 0:
            return
        greedy = greedy_earliest_fit(inst)
        assert exact_min_max_response(inst) <= max_response_time(greedy)
        assert exact_min_total_response(inst) <= total_response_time(greedy)

    @given(unit_instances(max_ports=3, max_flows=5))
    @settings(max_examples=20, deadline=None)
    def test_total_response_at_least_n(self, inst):
        assert exact_min_total_response(inst) >= inst.num_flows
