"""Unit tests for repro.core.flow."""

import pytest

from repro.core.flow import Flow


class TestFlowConstruction:
    def test_basic_fields(self):
        f = Flow(1, 2, 3, 4)
        assert (f.src, f.dst, f.demand, f.release) == (1, 2, 3, 4)
        assert f.fid == -1

    def test_defaults_unit_demand_release_zero(self):
        f = Flow(0, 0)
        assert f.demand == 1
        assert f.release == 0
        assert f.is_unit

    def test_non_unit_demand_flag(self):
        assert not Flow(0, 0, demand=2).is_unit

    def test_negative_src_rejected(self):
        with pytest.raises(ValueError):
            Flow(-1, 0)

    def test_negative_dst_rejected(self):
        with pytest.raises(ValueError):
            Flow(0, -1)

    def test_zero_demand_rejected(self):
        with pytest.raises(ValueError):
            Flow(0, 0, demand=0)

    def test_negative_release_rejected(self):
        with pytest.raises(ValueError):
            Flow(0, 0, release=-1)

    def test_non_integer_demand_rejected(self):
        with pytest.raises(TypeError):
            Flow(0, 0, demand=1.5)

    def test_bool_demand_rejected(self):
        with pytest.raises(TypeError):
            Flow(0, 0, demand=True)


class TestFlowTransforms:
    def test_with_fid(self):
        f = Flow(0, 1).with_fid(7)
        assert f.fid == 7
        assert (f.src, f.dst) == (0, 1)

    def test_with_release(self):
        f = Flow(0, 1, 2, 3, fid=5).with_release(9)
        assert f.release == 9
        assert f.fid == 5
        assert f.demand == 2

    def test_frozen(self):
        f = Flow(0, 1)
        with pytest.raises(AttributeError):
            f.src = 3

    def test_equality_and_hash(self):
        assert Flow(0, 1, 1, 0, 2) == Flow(0, 1, 1, 0, 2)
        assert hash(Flow(0, 1)) == hash(Flow(0, 1))
        assert Flow(0, 1) != Flow(1, 0)

    def test_ordering_defined(self):
        assert sorted([Flow(1, 0), Flow(0, 1)])[0].src == 0
