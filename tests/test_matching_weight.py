"""Tests for maximum-weight bipartite matching."""

import itertools

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.matching.weight_matching import (
    matching_weight,
    max_weight_matching,
    solve_dense_assignment,
)
from tests.conftest import bipartite_edge_lists


class TestDenseAssignment:
    def test_identity_cheapest(self):
        cost = np.array([[0.0, 9.0], [9.0, 0.0]])
        assert solve_dense_assignment(cost).tolist() == [0, 1]

    def test_rectangular(self):
        cost = np.array([[5.0, 1.0, 9.0]])
        assert solve_dense_assignment(cost).tolist() == [1]

    def test_rows_gt_cols_rejected(self):
        with pytest.raises(ValueError):
            solve_dense_assignment(np.zeros((3, 2)))

    @given(
        st.integers(1, 5),
        st.integers(1, 5),
        st.integers(0, 10**6),
    )
    @settings(max_examples=80, deadline=None)
    def test_matches_scipy(self, n, extra, seed):
        from scipy.optimize import linear_sum_assignment

        m = n + extra - 1
        if n > m:
            n, m = m, n
        rng = np.random.default_rng(seed)
        cost = rng.integers(0, 20, size=(n, m)).astype(float)
        ours = solve_dense_assignment(cost)
        rows, cols = linear_sum_assignment(cost)
        assert cost[np.arange(n), ours].sum() == pytest.approx(
            cost[rows, cols].sum()
        )
        assert len(set(ours.tolist())) == n  # distinct columns


class TestMaxWeightMatching:
    def test_prefers_heavy_edge(self):
        got = max_weight_matching(2, 2, [(0, 0), (0, 1), (1, 0)], [1, 10, 10])
        assert matching_weight(got, [1, 10, 10]) == 20

    def test_zero_weight_edges_unmatched(self):
        got = max_weight_matching(1, 1, [(0, 0)], [0.0])
        assert got == {}

    def test_parallel_edges_heaviest_wins(self):
        got = max_weight_matching(1, 1, [(0, 0), (0, 0)], [1.0, 5.0])
        assert got == {0: 1}

    def test_empty_inputs(self):
        assert max_weight_matching(0, 3, [], []) == {}
        assert max_weight_matching(3, 3, [], []) == {}

    def test_negative_weight_rejected(self):
        with pytest.raises(ValueError):
            max_weight_matching(1, 1, [(0, 0)], [-1.0])

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            max_weight_matching(1, 1, [(0, 0)], [])

    def test_out_of_range_edge_rejected(self):
        with pytest.raises(ValueError):
            max_weight_matching(1, 1, [(0, 1)], [1.0])

    def test_left_larger_than_right(self):
        got = max_weight_matching(
            3, 1, [(0, 0), (1, 0), (2, 0)], [1.0, 5.0, 3.0]
        )
        assert matching_weight(got, [1.0, 5.0, 3.0]) == 5.0

    @given(bipartite_edge_lists(max_side=4, max_edges=8), st.data())
    @settings(max_examples=100, deadline=None)
    def test_optimal_vs_bruteforce(self, data, draw):
        n_left, n_right, edges = data
        weights = [
            float(draw.draw(st.integers(0, 9))) for _ in range(len(edges))
        ]
        got = max_weight_matching(n_left, n_right, edges, weights)
        got_weight = matching_weight(got, weights)
        # Structure: a valid matching.
        lefts = set()
        rights = set()
        for u, eid in got.items():
            eu, ev = edges[eid]
            assert eu == u
            assert u not in lefts and ev not in rights
            lefts.add(u)
            rights.add(ev)
        # Optimality by exhaustive search.
        best = 0.0
        for r in range(min(n_left, n_right, len(edges)) + 1):
            for comb in itertools.combinations(range(len(edges)), r):
                us = [edges[i][0] for i in comb]
                vs = [edges[i][1] for i in comb]
                if len(set(us)) == r and len(set(vs)) == r:
                    best = max(best, sum(weights[i] for i in comb))
        assert got_weight == pytest.approx(best)
