"""Cross-module integration tests: the full pipelines against each other.

These are the "does the whole paper hang together" checks:
LP bounds <= exact optima <= algorithm outputs <= greedy, across all
pipelines on shared instances.
"""

import pytest
from hypothesis import given, settings

from repro import (
    greedy_earliest_fit,
    make_policy,
    max_response_time,
    poisson_uniform_workload,
    run_amrt,
    simulate,
    solve_art,
    solve_mrt,
    total_response_time,
    validate_schedule,
)
from repro.art.lp_relaxation import art_lp_lower_bound
from repro.mrt.algorithm import fractional_mrt_lower_bound
from repro.mrt.exact import exact_min_max_response, exact_min_total_response
from tests.conftest import unit_instances


class TestBoundChains:
    """The fundamental inequality chains on random instances."""

    @given(unit_instances(max_ports=3, max_flows=5))
    @settings(max_examples=15, deadline=None)
    def test_art_chain(self, inst):
        """LP(1-4) <= OPT <= heuristics and greedy (total response)."""
        if inst.num_flows == 0:
            return
        lb = art_lp_lower_bound(inst)
        opt = exact_min_total_response(inst)
        assert lb <= opt + 1e-6
        for name in ("MaxCard", "MinRTime", "MaxWeight"):
            sim = simulate(inst, make_policy(name))
            assert opt <= total_response_time(sim.schedule)
        assert opt <= total_response_time(greedy_earliest_fit(inst))

    @given(unit_instances(max_ports=3, max_flows=5))
    @settings(max_examples=15, deadline=None)
    def test_mrt_chain(self, inst):
        """LP(19-21) rho* <= OPT <= heuristics (max response)."""
        if inst.num_flows == 0:
            return
        rho_lp = fractional_mrt_lower_bound(inst)
        opt = exact_min_max_response(inst)
        assert rho_lp <= opt
        for name in ("MaxCard", "MinRTime", "MaxWeight"):
            sim = simulate(inst, make_policy(name))
            assert opt <= max_response_time(sim.schedule)


class TestEndToEndOnWorkloads:
    def test_full_stack_on_poisson(self):
        inst = poisson_uniform_workload(6, 5, 5, seed=321)
        # Online heuristics.
        sims = {
            name: simulate(inst, make_policy(name))
            for name in ("MaxCard", "MinRTime", "MaxWeight")
        }
        for sim in sims.values():
            validate_schedule(sim.schedule)
        # Offline MRT.
        mrt = solve_mrt(inst)
        assert max_response_time(mrt.schedule) <= mrt.rho
        for sim in sims.values():
            assert mrt.rho <= sim.metrics.max_response
        # Offline ART.
        art = solve_art(inst, c=1)
        validate_schedule(
            art.schedule,
            inst.switch.augmented(factor=art.conversion.capacity_factor),
        )
        assert art.lower_bound <= min(
            sim.metrics.total_response for sim in sims.values()
        ) + 1e-6
        # AMRT online.
        amrt = run_amrt(inst)
        assert 1 + amrt.max_port_usage <= 2 * (1 + 2 * inst.max_demand - 1)

    def test_same_instance_reproducible_across_runs(self):
        a = poisson_uniform_workload(8, 6, 4, seed=11)
        b = poisson_uniform_workload(8, 6, 4, seed=11)
        sa = simulate(a, make_policy("MaxWeight"))
        sb = simulate(b, make_policy("MaxWeight"))
        assert sa.schedule.assignment.tolist() == sb.schedule.assignment.tolist()

    def test_offline_beats_online_on_max_response(self):
        """The offline LP bound is never above any online policy."""
        for seed in (1, 2, 3):
            inst = poisson_uniform_workload(5, 6, 4, seed=seed)
            rho = fractional_mrt_lower_bound(inst)
            for name in ("MaxCard", "MinRTime", "MaxWeight"):
                sim = simulate(inst, make_policy(name))
                assert rho <= sim.metrics.max_response


class TestVerifiedCacheRoundTrip:
    """cache -> resume -> verify: the full persistence + certification loop."""

    def test_cold_warm_and_cli_verify_agree(self, tmp_path):
        import dataclasses

        from repro.__main__ import main
        from repro.api.runner import Runner
        from repro.api.store import close_open_stores
        from repro.experiments.config import smoke_config

        cache = str(tmp_path / "cache")

        def cells_of(sweep):
            return {
                key: dataclasses.asdict(cell)
                for key, cell in sweep.cells.items()
            }

        # Cold run with per-trial certification enabled.
        cold = Runner(smoke_config(), cache_dir=cache, verify=True).run()
        # Warm run: force a true disk round-trip, still certified (the
        # record-level checks replay the stored metrics and bounds).
        close_open_stores()
        warm = Runner(smoke_config(), cache_dir=cache, verify=True).run()
        assert cells_of(cold) == cells_of(warm)
        # The CLI replays the same store through the record checkers.
        assert main(["verify", "--cache-dir", cache]) == 0

    def test_corrupted_store_fails_cli_verify(self, tmp_path, capsys):
        import json

        from repro.__main__ import main
        from repro.api.runner import Runner
        from repro.experiments.config import smoke_config

        cache = tmp_path / "cache"
        Runner(smoke_config(), cache_dir=str(cache)).run()
        shard = sorted(cache.glob("results-*.jsonl"))[0]
        lines = shard.read_text().splitlines()
        corrupted = []
        poisoned = False
        for line in lines:
            entry = json.loads(line)
            metrics = entry["report"].get("metrics")
            if not poisoned and metrics is not None:
                metrics["average_response"] += 1.0  # break avg*n == total
                poisoned = True
            corrupted.append(json.dumps(entry))
        assert poisoned
        shard.write_text("\n".join(corrupted) + "\n")
        assert main(["verify", "--cache-dir", str(cache)]) == 1
        out = capsys.readouterr().out
        violation_line = next(
            line for line in out.splitlines() if "metrics-identity" in line
        )
        # Triage output names the offending record and its shard.
        assert "results-" in violation_line


class TestScenarioStreamMaterializeEquivalence:
    """scenario -> stream -> materialize, certified through the checkers."""

    @pytest.mark.parametrize(
        "spec", ["hotspot:ports=6,mean=3,horizon=5",
                 "onoff-bursty:ports=6,horizon=6"]
    )
    def test_stream_equals_materialized_and_both_certify(
        self, spec, certify
    ):
        from repro.online.simulator import simulate_stream
        from repro.scenarios import build_stream

        stream = build_stream(spec, seed=9)
        inst = stream.materialize()
        if inst.num_flows == 0:
            pytest.skip("empty draw")
        offline = simulate(inst, make_policy("MaxWeight"), verify=True)
        online = simulate_stream(
            stream,
            make_policy("MaxWeight"),
            record_schedule=True,
            record_queue_history=True,
            verify=True,
        )
        # Byte-identical selections, certified on both sides.
        assert (
            online.assignment.tolist()
            == offline.schedule.assignment.tolist()
        )
        assert online.metrics == offline.metrics
        certify(offline)
        report = certify(online, inst)
        assert "queue-accounting" in report.checks
