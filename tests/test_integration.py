"""Cross-module integration tests: the full pipelines against each other.

These are the "does the whole paper hang together" checks:
LP bounds <= exact optima <= algorithm outputs <= greedy, across all
pipelines on shared instances.
"""

import pytest
from hypothesis import given, settings

from repro import (
    greedy_earliest_fit,
    make_policy,
    max_response_time,
    poisson_uniform_workload,
    run_amrt,
    simulate,
    solve_art,
    solve_mrt,
    total_response_time,
    validate_schedule,
)
from repro.art.lp_relaxation import art_lp_lower_bound
from repro.mrt.algorithm import fractional_mrt_lower_bound
from repro.mrt.exact import exact_min_max_response, exact_min_total_response
from tests.conftest import unit_instances


class TestBoundChains:
    """The fundamental inequality chains on random instances."""

    @given(unit_instances(max_ports=3, max_flows=5))
    @settings(max_examples=15, deadline=None)
    def test_art_chain(self, inst):
        """LP(1-4) <= OPT <= heuristics and greedy (total response)."""
        if inst.num_flows == 0:
            return
        lb = art_lp_lower_bound(inst)
        opt = exact_min_total_response(inst)
        assert lb <= opt + 1e-6
        for name in ("MaxCard", "MinRTime", "MaxWeight"):
            sim = simulate(inst, make_policy(name))
            assert opt <= total_response_time(sim.schedule)
        assert opt <= total_response_time(greedy_earliest_fit(inst))

    @given(unit_instances(max_ports=3, max_flows=5))
    @settings(max_examples=15, deadline=None)
    def test_mrt_chain(self, inst):
        """LP(19-21) rho* <= OPT <= heuristics (max response)."""
        if inst.num_flows == 0:
            return
        rho_lp = fractional_mrt_lower_bound(inst)
        opt = exact_min_max_response(inst)
        assert rho_lp <= opt
        for name in ("MaxCard", "MinRTime", "MaxWeight"):
            sim = simulate(inst, make_policy(name))
            assert opt <= max_response_time(sim.schedule)


class TestEndToEndOnWorkloads:
    def test_full_stack_on_poisson(self):
        inst = poisson_uniform_workload(6, 5, 5, seed=321)
        # Online heuristics.
        sims = {
            name: simulate(inst, make_policy(name))
            for name in ("MaxCard", "MinRTime", "MaxWeight")
        }
        for sim in sims.values():
            validate_schedule(sim.schedule)
        # Offline MRT.
        mrt = solve_mrt(inst)
        assert max_response_time(mrt.schedule) <= mrt.rho
        for sim in sims.values():
            assert mrt.rho <= sim.metrics.max_response
        # Offline ART.
        art = solve_art(inst, c=1)
        validate_schedule(
            art.schedule,
            inst.switch.augmented(factor=art.conversion.capacity_factor),
        )
        assert art.lower_bound <= min(
            sim.metrics.total_response for sim in sims.values()
        ) + 1e-6
        # AMRT online.
        amrt = run_amrt(inst)
        assert 1 + amrt.max_port_usage <= 2 * (1 + 2 * inst.max_demand - 1)

    def test_same_instance_reproducible_across_runs(self):
        a = poisson_uniform_workload(8, 6, 4, seed=11)
        b = poisson_uniform_workload(8, 6, 4, seed=11)
        sa = simulate(a, make_policy("MaxWeight"))
        sb = simulate(b, make_policy("MaxWeight"))
        assert sa.schedule.assignment.tolist() == sb.schedule.assignment.tolist()

    def test_offline_beats_online_on_max_response(self):
        """The offline LP bound is never above any online policy."""
        for seed in (1, 2, 3):
            inst = poisson_uniform_workload(5, 6, 4, seed=seed)
            rho = fractional_mrt_lower_bound(inst)
            for name in ("MaxCard", "MinRTime", "MaxWeight"):
                sim = simulate(inst, make_policy(name))
                assert rho <= sim.metrics.max_response
