"""Cross-cutting property tests tying the pipelines together.

Each test here checks an invariant that spans at least two subsystems —
the kind of relationship a downstream user would rely on when composing
the library's pieces.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.art.lp_relaxation import art_lp_lower_bound
from repro.core.flow import Flow
from repro.core.instance import Instance
from repro.core.metrics import max_response_time, response_times
from repro.core.switch import Switch
from repro.matching.bipartite import BipartiteMultigraph
from repro.matching.bvn import decompose_into_matchings
from repro.matching.hopcroft_karp import maximum_matching_size
from repro.matching.vertex_cover import minimum_vertex_cover
from repro.mrt.algorithm import fractional_mrt_lower_bound, solve_mrt
from repro.mrt.time_constrained import from_response_bound
from repro.online.policies import make_policy
from repro.online.simulator import simulate
from tests.conftest import bipartite_edge_lists, unit_instances


class TestMatchingTriangle:
    """Matching size == cover size >= number of BvN classes' largest."""

    @given(bipartite_edge_lists(max_side=5, max_edges=14))
    @settings(max_examples=60, deadline=None)
    def test_bvn_class_sizes_bounded_by_matching(self, data):
        n_left, n_right, edges = data
        g = BipartiteMultigraph(n_left, n_right)
        for u, v in edges:
            g.add_edge(u, v)
        matchings = decompose_into_matchings(g)
        mm = maximum_matching_size(g)
        cover, _ = minimum_vertex_cover(g)
        assert len(cover) == mm
        for cls in matchings:
            assert len(cls) <= mm  # every class is a matching

    @given(bipartite_edge_lists(max_side=5, max_edges=14))
    @settings(max_examples=40, deadline=None)
    def test_bvn_classes_at_least_edges_over_matching(self, data):
        """Pigeonhole: need >= E / mm classes."""
        n_left, n_right, edges = data
        g = BipartiteMultigraph(n_left, n_right)
        for u, v in edges:
            g.add_edge(u, v)
        if not edges:
            return
        matchings = decompose_into_matchings(g)
        mm = maximum_matching_size(g)
        assert len(matchings) >= -(-g.n_edges // max(mm, 1))


class TestSchedulingMonotonicity:
    @given(unit_instances(max_ports=3, max_flows=5), st.integers(0, 3))
    @settings(max_examples=20, deadline=None)
    def test_adding_a_flow_never_lowers_lp_bound(self, inst, port):
        if inst.num_flows == 0:
            return
        m = inst.switch.num_inputs
        bigger = Instance.create(
            inst.switch,
            list(inst.flows) + [Flow(port % m, (port + 1) % m, 1, 0)],
        )
        assert (
            art_lp_lower_bound(bigger) >= art_lp_lower_bound(inst) - 1e-9
        )

    @given(unit_instances(max_ports=3, max_flows=6))
    @settings(max_examples=20, deadline=None)
    def test_delaying_releases_never_helps_mrt(self, inst):
        """Shifting all releases back uniformly cannot change rho*."""
        if inst.num_flows == 0:
            return
        base = fractional_mrt_lower_bound(inst)
        shifted = fractional_mrt_lower_bound(inst.shifted(3))
        assert shifted == base

    @given(unit_instances(max_ports=3, max_flows=5))
    @settings(max_examples=15, deadline=None)
    def test_capacity_augmentation_weakly_improves_mrt(self, inst):
        if inst.num_flows == 0:
            return
        base = fractional_mrt_lower_bound(inst)
        doubled = Instance.create(
            inst.switch.augmented(factor=2.0),
            [Flow(f.src, f.dst, f.demand, f.release) for f in inst.flows],
        )
        assert fractional_mrt_lower_bound(doubled) <= base


class TestScheduleResponseConsistency:
    @given(unit_instances(max_ports=4, max_flows=7))
    @settings(max_examples=20, deadline=None)
    def test_policy_max_response_bounds_every_flow(self, inst):
        if inst.num_flows == 0:
            return
        sim = simulate(inst, make_policy("MinRTime"))
        rho = max_response_time(sim.schedule)
        assert (response_times(sim.schedule) <= rho).all()
        # The induced time-constrained instance at rho is feasible by
        # construction: the policy's own schedule witnesses it.
        tci = from_response_bound(inst, rho)
        for fid, t in enumerate(sim.schedule.assignment):
            assert int(t) in tci.active_rounds[fid]

    @given(unit_instances(max_ports=3, max_flows=5))
    @settings(max_examples=10, deadline=None)
    def test_mrt_solver_idempotent(self, inst):
        if inst.num_flows == 0:
            return
        a = solve_mrt(inst)
        b = solve_mrt(inst)
        assert a.rho == b.rho
        assert a.schedule.assignment.tolist() == b.schedule.assignment.tolist()
