"""Tests for Hopcroft–Karp maximum-cardinality matching."""

import itertools

import networkx as nx
from hypothesis import given, settings

from repro.matching.bipartite import BipartiteMultigraph
from repro.matching.hopcroft_karp import (
    max_cardinality_matching,
    maximum_matching_size,
)
from tests.conftest import bipartite_edge_lists


def _graph(n_left, n_right, edges):
    g = BipartiteMultigraph(n_left, n_right)
    for u, v in edges:
        g.add_edge(u, v)
    return g


def _is_matching(graph, matching):
    lefts, rights = set(), set()
    for u, eid in matching.items():
        eu, ev = graph.edges[eid]
        assert eu == u
        assert u not in lefts and ev not in rights
        lefts.add(u)
        rights.add(ev)
    return True


class TestKnownGraphs:
    def test_perfect_matching_on_cycle(self):
        g = _graph(3, 3, [(0, 0), (0, 1), (1, 1), (1, 2), (2, 2), (2, 0)])
        assert maximum_matching_size(g) == 3

    def test_star_matches_one(self):
        g = _graph(1, 4, [(0, j) for j in range(4)])
        assert maximum_matching_size(g) == 1

    def test_empty_graph(self):
        assert maximum_matching_size(_graph(3, 3, [])) == 0

    def test_parallel_edges_count_once(self):
        g = _graph(1, 1, [(0, 0), (0, 0), (0, 0)])
        assert maximum_matching_size(g) == 1

    def test_koenig_example(self):
        # Bipartite graph whose max matching is limited by a vertex cover.
        edges = [(0, 0), (1, 0), (2, 0), (0, 1), (0, 2)]
        assert maximum_matching_size(_graph(3, 3, edges)) == 2

    def test_matching_structure_valid(self):
        g = _graph(4, 4, [(i, (i + 1) % 4) for i in range(4)] + [(0, 0)])
        matching = max_cardinality_matching(g)
        _is_matching(g, matching)


class TestAgainstReferences:
    @given(bipartite_edge_lists())
    @settings(max_examples=150, deadline=None)
    def test_size_matches_networkx(self, data):
        n_left, n_right, edges = data
        g = _graph(n_left, n_right, edges)
        matching = max_cardinality_matching(g)
        _is_matching(g, matching)

        G = nx.Graph()
        G.add_nodes_from((("L", u) for u in range(n_left)))
        G.add_nodes_from((("R", v) for v in range(n_right)))
        G.add_edges_from((("L", u), ("R", v)) for u, v in edges)
        ref = nx.bipartite.maximum_matching(
            G, top_nodes=[("L", u) for u in range(n_left)]
        )
        assert len(matching) == len(ref) // 2

    @given(bipartite_edge_lists(max_side=3, max_edges=6))
    @settings(max_examples=60, deadline=None)
    def test_size_matches_bruteforce(self, data):
        n_left, n_right, edges = data
        g = _graph(n_left, n_right, edges)
        got = maximum_matching_size(g)
        best = 0
        for r in range(min(n_left, n_right, len(edges)) + 1):
            for comb in itertools.combinations(range(len(edges)), r):
                us = [edges[i][0] for i in comb]
                vs = [edges[i][1] for i in comb]
                if len(set(us)) == r and len(set(vs)) == r:
                    best = max(best, r)
        assert got == best
