"""Tests for workload generators and trace replay."""

import numpy as np
import pytest

from repro.core.flow import Flow
from repro.core.instance import Instance
from repro.core.switch import Switch
from repro.utils.rng import make_rng
from repro.workloads.synthetic import (
    hotspot_workload,
    incast_workload,
    permutation_workload,
    poisson_uniform_workload,
    poisson_uniform_workload_batch,
)
from repro.workloads.trace import (
    TRACE_SCHEMA_VERSION,
    TraceFormatError,
    load_trace,
    save_trace,
)


class TestPoissonUniform:
    def test_deterministic_with_seed(self):
        a = poisson_uniform_workload(10, 5, 4, seed=1)
        b = poisson_uniform_workload(10, 5, 4, seed=1)
        assert a.flows == b.flows

    def test_mean_arrivals_close_to_m(self):
        inst = poisson_uniform_workload(20, 12, 200, seed=3)
        assert inst.num_flows / 200 == pytest.approx(12, rel=0.15)

    def test_releases_within_generation_window(self):
        inst = poisson_uniform_workload(5, 3, 7, seed=0)
        assert inst.max_release <= 6
        assert (inst.releases() >= 0).all()

    def test_ports_in_range(self):
        inst = poisson_uniform_workload(5, 10, 3, seed=0)
        assert inst.srcs().max() < 5
        assert inst.dsts().max() < 5

    def test_capacity_and_demand(self):
        inst = poisson_uniform_workload(4, 2, 2, seed=0, capacity=3, demand=2)
        assert inst.switch.input_capacity(0) == 3
        assert (inst.demands() == 2).all()

    def test_invalid_mean_rejected(self):
        with pytest.raises(ValueError):
            poisson_uniform_workload(4, 0, 2)


def _per_round_reference(num_ports, mean, rounds, seed, capacity=1,
                         demand=1):
    """The historical generator: per-round ``rng.integers`` draws and
    per-flow ``Flow`` construction.  The single-block fast path must
    reproduce it draw-for-draw."""
    m = num_ports
    rng = make_rng(seed)
    switch = Switch.create(m, m, capacity)
    flows = []
    counts = rng.poisson(mean, size=rounds)
    for t in range(rounds):
        k = int(counts[t])
        srcs = rng.integers(0, m, size=k)
        dsts = rng.integers(0, m, size=k)
        for i in range(k):
            flows.append(Flow(int(srcs[i]), int(dsts[i]), demand, t))
    return Instance.create(switch, flows)


class TestAmortizedGeneration:
    """Single-block generation and ``Instance.from_arrays`` must be
    byte-identical to the per-round / per-flow reference path — digests
    are cache keys, so any drift silently invalidates stored sweeps."""

    @pytest.mark.parametrize("seed", [0, 1, 12345])
    @pytest.mark.parametrize("ports,mean,rounds", [
        (7, 3.0, 10), (24, 8.0, 15), (150, 50.0, 5),
    ])
    def test_single_block_matches_per_round_reference(
        self, ports, mean, rounds, seed
    ):
        ref = _per_round_reference(ports, mean, rounds, seed)
        got = poisson_uniform_workload(ports, mean, rounds, seed=seed)
        assert got.flows == ref.flows
        assert got.digest() == ref.digest()
        assert got.to_dict() == ref.to_dict()

    def test_capacity_demand_round_trip(self):
        ref = _per_round_reference(6, 4.0, 8, seed=9, capacity=3, demand=2)
        got = poisson_uniform_workload(6, 4.0, 8, seed=9, capacity=3,
                                       demand=2)
        assert got.flows == ref.flows
        assert got.digest() == ref.digest()

    def test_batch_matches_serial_per_seed(self):
        seeds = [11, 22, 33, 44]
        batch = poisson_uniform_workload_batch(16, 6.0, 12, seeds=seeds)
        for inst, seed in zip(batch, seeds):
            solo = poisson_uniform_workload(16, 6.0, 12, seed=seed)
            assert inst.flows == solo.flows
            assert inst.digest() == solo.digest()
        # One validated switch shared across the cell.
        assert all(inst.switch is batch[0].switch for inst in batch)

    def test_batch_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            poisson_uniform_workload_batch(4, 0, 2, seeds=[1])
        with pytest.raises(ValueError):
            poisson_uniform_workload_batch(0, 1.0, 2, seeds=[1])

    def test_from_arrays_flows_equal_create(self):
        sw = Switch.create(4, 4, 2)
        got = Instance.from_arrays(
            sw,
            np.array([0, 1, 3]),
            np.array([2, 2, 0]),
            np.array([2, 1, 1]),
            np.array([0, 1, 5]),
        )
        want = Instance.create(
            sw, [Flow(0, 2, 2, 0), Flow(1, 2, 1, 1), Flow(3, 0, 1, 5)]
        )
        assert got.flows == want.flows
        assert got.digest() == want.digest()
        vecs = got._vectors()
        for a, b in zip(vecs, want._vectors()):
            assert np.array_equal(a, b)
            assert not a.flags.writeable

    def test_from_arrays_validation_messages_match_create(self):
        sw = Switch.create(4, 4, 2)
        z = np.zeros(3, np.int64)
        cases = [
            # (arrays, equivalent flow list or flow-level error)
            ((np.array([0, 9, 0]), z, z + 1, z),
             "flow 1: src port 9 out of range (switch has 4 inputs)"),
            ((z, np.array([0, 0, 7]), z + 1, z),
             "flow 2: dst port 7 out of range (switch has 4 outputs)"),
            ((z, z, np.array([1, 3, 1]), z),
             "flow 1: demand 3 exceeds kappa_e = min(c_0, c_0) = 2"),
            ((np.array([0, -1, 0]), z, z + 1, z),
             "src must be >= 0, got -1"),
            ((z, z, np.array([1, 0, 1]), z),
             "demand must be >= 1, got 0"),
            ((z, z, z + 1, np.array([0, 0, -2])),
             "release must be >= 0, got -2"),
        ]
        for arrays, message in cases:
            with pytest.raises(ValueError, match=None) as exc:
                Instance.from_arrays(sw, *arrays)
            assert str(exc.value) == message

    def test_from_arrays_length_mismatch(self):
        sw = Switch.create(4)
        with pytest.raises(ValueError, match="equal length"):
            Instance.from_arrays(
                sw, np.zeros(2, np.int64), np.zeros(3, np.int64),
                np.ones(2, np.int64), np.zeros(2, np.int64),
            )

    def test_from_arrays_empty(self):
        sw = Switch.create(3)
        empty = np.zeros(0, np.int64)
        got = Instance.from_arrays(sw, empty, empty, empty, empty)
        assert got.num_flows == 0
        assert got.digest() == Instance.create(sw, []).digest()


class TestOtherGenerators:
    def test_hotspot_skews_destinations(self):
        inst = hotspot_workload(10, 20, 40, zipf_exponent=2.0, seed=1)
        counts = np.bincount(inst.dsts(), minlength=10)
        # Hottest port sees far more than the uniform share.
        assert counts.max() > 2 * inst.num_flows / 10

    def test_hotspot_rejects_bad_exponent(self):
        with pytest.raises(ValueError):
            hotspot_workload(5, 5, 5, zipf_exponent=0.0)

    def test_permutation_one_flow_per_input_per_round(self):
        inst = permutation_workload(6, 4, seed=2)
        assert inst.num_flows == 24
        for t, group in inst.flows_by_release().items():
            srcs = [f.src for f in group]
            dsts = [f.dst for f in group]
            assert sorted(srcs) == list(range(6))
            assert sorted(dsts) == list(range(6))

    def test_incast_converges_on_target(self):
        inst = incast_workload(8, fan_in=5, num_bursts=3, gap=2, seed=0, target=4)
        assert (inst.dsts() == 4).all()
        assert inst.num_flows == 15
        assert set(inst.releases().tolist()) == {0, 2, 4}

    def test_incast_distinct_sources_per_burst(self):
        inst = incast_workload(8, fan_in=8, num_bursts=1, seed=0)
        assert sorted(f.src for f in inst.flows) == list(range(8))

    def test_incast_fan_in_bounds(self):
        with pytest.raises(ValueError):
            incast_workload(4, fan_in=5, num_bursts=1)


class TestTrace:
    def test_round_trip(self, tmp_path):
        inst = poisson_uniform_workload(6, 4, 3, seed=5)
        path = tmp_path / "trace.json"
        save_trace(inst, path)
        again = load_trace(path)
        assert again.flows == inst.flows
        assert again.switch.num_inputs == 6

    def test_save_stamps_schema_version(self, tmp_path):
        import json

        inst = poisson_uniform_workload(4, 2, 2, seed=0)
        path = tmp_path / "trace.json"
        save_trace(inst, path)
        data = json.loads(path.read_text())
        assert data["schema_version"] == TRACE_SCHEMA_VERSION
        # The stamp lives in the file only: digests are unchanged.
        assert load_trace(path).digest() == inst.digest()

    def test_legacy_unstamped_trace_loads(self, tmp_path):
        inst = poisson_uniform_workload(4, 2, 2, seed=0)
        path = tmp_path / "legacy.json"
        inst.save_json(path)  # pre-versioning writer
        assert load_trace(path).flows == inst.flows

    def test_version_mismatch_names_path(self, tmp_path):
        import json

        inst = poisson_uniform_workload(4, 2, 2, seed=0)
        data = inst.to_dict()
        data["schema_version"] = 99
        path = tmp_path / "future.json"
        path.write_text(json.dumps(data))
        with pytest.raises(TraceFormatError, match="schema_version 99"):
            load_trace(path)
        with pytest.raises(TraceFormatError, match=str(path)):
            load_trace(path)

    def test_invalid_json_names_path(self, tmp_path):
        path = tmp_path / "garbled.json"
        path.write_text("{not json")
        with pytest.raises(TraceFormatError, match="not valid JSON"):
            load_trace(path)
        with pytest.raises(TraceFormatError, match=str(path)):
            load_trace(path)

    def test_missing_field_named(self, tmp_path):
        import json

        inst = poisson_uniform_workload(4, 2, 2, seed=0)
        data = inst.to_dict()
        del data["switch"]["num_inputs"]
        path = tmp_path / "partial.json"
        path.write_text(json.dumps(data))
        with pytest.raises(TraceFormatError, match="'num_inputs'"):
            load_trace(path)

    def test_non_object_payload(self, tmp_path):
        path = tmp_path / "list.json"
        path.write_text("[1, 2, 3]")
        with pytest.raises(TraceFormatError, match="JSON object"):
            load_trace(path)

    def test_trace_format_error_is_value_error(self):
        assert issubclass(TraceFormatError, ValueError)
