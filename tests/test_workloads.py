"""Tests for workload generators and trace replay."""

import numpy as np
import pytest

from repro.workloads.synthetic import (
    hotspot_workload,
    incast_workload,
    permutation_workload,
    poisson_uniform_workload,
)
from repro.workloads.trace import (
    TRACE_SCHEMA_VERSION,
    TraceFormatError,
    load_trace,
    save_trace,
)


class TestPoissonUniform:
    def test_deterministic_with_seed(self):
        a = poisson_uniform_workload(10, 5, 4, seed=1)
        b = poisson_uniform_workload(10, 5, 4, seed=1)
        assert a.flows == b.flows

    def test_mean_arrivals_close_to_m(self):
        inst = poisson_uniform_workload(20, 12, 200, seed=3)
        assert inst.num_flows / 200 == pytest.approx(12, rel=0.15)

    def test_releases_within_generation_window(self):
        inst = poisson_uniform_workload(5, 3, 7, seed=0)
        assert inst.max_release <= 6
        assert (inst.releases() >= 0).all()

    def test_ports_in_range(self):
        inst = poisson_uniform_workload(5, 10, 3, seed=0)
        assert inst.srcs().max() < 5
        assert inst.dsts().max() < 5

    def test_capacity_and_demand(self):
        inst = poisson_uniform_workload(4, 2, 2, seed=0, capacity=3, demand=2)
        assert inst.switch.input_capacity(0) == 3
        assert (inst.demands() == 2).all()

    def test_invalid_mean_rejected(self):
        with pytest.raises(ValueError):
            poisson_uniform_workload(4, 0, 2)


class TestOtherGenerators:
    def test_hotspot_skews_destinations(self):
        inst = hotspot_workload(10, 20, 40, zipf_exponent=2.0, seed=1)
        counts = np.bincount(inst.dsts(), minlength=10)
        # Hottest port sees far more than the uniform share.
        assert counts.max() > 2 * inst.num_flows / 10

    def test_hotspot_rejects_bad_exponent(self):
        with pytest.raises(ValueError):
            hotspot_workload(5, 5, 5, zipf_exponent=0.0)

    def test_permutation_one_flow_per_input_per_round(self):
        inst = permutation_workload(6, 4, seed=2)
        assert inst.num_flows == 24
        for t, group in inst.flows_by_release().items():
            srcs = [f.src for f in group]
            dsts = [f.dst for f in group]
            assert sorted(srcs) == list(range(6))
            assert sorted(dsts) == list(range(6))

    def test_incast_converges_on_target(self):
        inst = incast_workload(8, fan_in=5, num_bursts=3, gap=2, seed=0, target=4)
        assert (inst.dsts() == 4).all()
        assert inst.num_flows == 15
        assert set(inst.releases().tolist()) == {0, 2, 4}

    def test_incast_distinct_sources_per_burst(self):
        inst = incast_workload(8, fan_in=8, num_bursts=1, seed=0)
        assert sorted(f.src for f in inst.flows) == list(range(8))

    def test_incast_fan_in_bounds(self):
        with pytest.raises(ValueError):
            incast_workload(4, fan_in=5, num_bursts=1)


class TestTrace:
    def test_round_trip(self, tmp_path):
        inst = poisson_uniform_workload(6, 4, 3, seed=5)
        path = tmp_path / "trace.json"
        save_trace(inst, path)
        again = load_trace(path)
        assert again.flows == inst.flows
        assert again.switch.num_inputs == 6

    def test_save_stamps_schema_version(self, tmp_path):
        import json

        inst = poisson_uniform_workload(4, 2, 2, seed=0)
        path = tmp_path / "trace.json"
        save_trace(inst, path)
        data = json.loads(path.read_text())
        assert data["schema_version"] == TRACE_SCHEMA_VERSION
        # The stamp lives in the file only: digests are unchanged.
        assert load_trace(path).digest() == inst.digest()

    def test_legacy_unstamped_trace_loads(self, tmp_path):
        inst = poisson_uniform_workload(4, 2, 2, seed=0)
        path = tmp_path / "legacy.json"
        inst.save_json(path)  # pre-versioning writer
        assert load_trace(path).flows == inst.flows

    def test_version_mismatch_names_path(self, tmp_path):
        import json

        inst = poisson_uniform_workload(4, 2, 2, seed=0)
        data = inst.to_dict()
        data["schema_version"] = 99
        path = tmp_path / "future.json"
        path.write_text(json.dumps(data))
        with pytest.raises(TraceFormatError, match="schema_version 99"):
            load_trace(path)
        with pytest.raises(TraceFormatError, match=str(path)):
            load_trace(path)

    def test_invalid_json_names_path(self, tmp_path):
        path = tmp_path / "garbled.json"
        path.write_text("{not json")
        with pytest.raises(TraceFormatError, match="not valid JSON"):
            load_trace(path)
        with pytest.raises(TraceFormatError, match=str(path)):
            load_trace(path)

    def test_missing_field_named(self, tmp_path):
        import json

        inst = poisson_uniform_workload(4, 2, 2, seed=0)
        data = inst.to_dict()
        del data["switch"]["num_inputs"]
        path = tmp_path / "partial.json"
        path.write_text(json.dumps(data))
        with pytest.raises(TraceFormatError, match="'num_inputs'"):
            load_trace(path)

    def test_non_object_payload(self, tmp_path):
        path = tmp_path / "list.json"
        path.write_text("[1, 2, 3]")
        with pytest.raises(TraceFormatError, match="JSON object"):
            load_trace(path)

    def test_trace_format_error_is_value_error(self):
        assert issubclass(TraceFormatError, ValueError)
