"""Tests for Birkhoff rate-matrix decomposition (Remark 3.2)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.flow import Flow
from repro.core.instance import Instance
from repro.core.switch import Switch
from repro.lp.solver import solve_lp
from repro.matching.birkhoff import (
    birkhoff_decomposition,
    rates_from_lp_solution,
    reconstruct,
)


class TestKnownMatrices:
    def test_permutation_matrix_single_term(self):
        P = np.eye(3)
        terms = birkhoff_decomposition(P)
        assert len(terms) == 1
        weight, matching = terms[0]
        assert weight == pytest.approx(1.0)
        assert sorted(matching) == [(0, 0), (1, 1), (2, 2)]

    def test_uniform_doubly_stochastic(self):
        R = np.full((3, 3), 1 / 3)
        terms = birkhoff_decomposition(R)
        assert sum(w for w, _ in terms) == pytest.approx(1.0)
        assert np.allclose(reconstruct((3, 3), terms), R)
        for _, matching in terms:
            assert len(matching) == 3

    def test_zero_matrix(self):
        assert birkhoff_decomposition(np.zeros((2, 4))) == []

    def test_substochastic_partial_matchings(self):
        R = np.array([[0.5, 0.0], [0.0, 0.0]])
        terms = birkhoff_decomposition(R)
        assert sum(w for w, _ in terms) == pytest.approx(0.5)
        assert np.allclose(reconstruct((2, 2), terms), R)

    def test_rectangular(self):
        R = np.array([[0.4, 0.6, 0.0], [0.0, 0.4, 0.3]])
        terms = birkhoff_decomposition(R)
        assert np.allclose(reconstruct((2, 3), terms), R)

    def test_negative_rejected(self):
        with pytest.raises(ValueError, match="nonnegative"):
            birkhoff_decomposition(np.array([[-0.1]]))

    def test_superstochastic_rejected(self):
        with pytest.raises(ValueError, match="substochastic"):
            birkhoff_decomposition(np.array([[0.7, 0.7]]))


@st.composite
def substochastic(draw):
    m = draw(st.integers(1, 4))
    mp = draw(st.integers(1, 4))
    cells = [
        [draw(st.integers(0, 4)) for _ in range(mp)] for _ in range(m)
    ]
    R = np.asarray(cells, dtype=np.float64)
    denom = max(R.sum(axis=1).max(), R.sum(axis=0).max(), 1.0)
    return R / denom * draw(st.floats(0.2, 1.0))


class TestDecompositionProperties:
    @given(substochastic())
    @settings(max_examples=80, deadline=None)
    def test_reconstruction_and_convexity(self, R):
        terms = birkhoff_decomposition(R)
        assert np.allclose(reconstruct(R.shape, terms), R, atol=1e-6)
        assert sum(w for w, _ in terms) <= 1.0 + 1e-6
        for weight, matching in terms:
            assert weight > 0
            us = [u for u, _ in matching]
            vs = [v for _, v in matching]
            assert len(set(us)) == len(us)
            assert len(set(vs)) == len(vs)


class TestFromLP:
    def test_lp_round_rates_decompose(self):
        """End-to-end Remark 3.2: LP (1)-(4) round rates are
        substochastic and BvN-decomposable."""
        from repro.art.lp_relaxation import build_fractional_art_lp

        inst = Instance.create(
            Switch.create(3),
            [Flow(0, 0), Flow(1, 0), Flow(2, 0), Flow(0, 1), Flow(1, 2)],
        )
        lp = build_fractional_art_lp(inst)
        res = solve_lp(lp)
        values = lp.solution_by_name(res.x)
        for t in range(3):
            R = rates_from_lp_solution(values, 3, 3, t, inst.flows)
            assert (R.sum(axis=0) <= 1 + 1e-7).all()
            assert (R.sum(axis=1) <= 1 + 1e-7).all()
            terms = birkhoff_decomposition(R)
            assert np.allclose(reconstruct((3, 3), terms), R, atol=1e-6)
