"""Tests for the co-flow extension."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.coflow.metrics import (
    CoflowMetrics,
    coflow_completion_times,
    coflow_response_times,
)
from repro.coflow.model import Coflow, CoflowInstance, random_shuffle_coflows
from repro.coflow.policies import make_coflow_policy
from repro.coflow.simulator import simulate_coflows
from repro.core.schedule import Schedule, validate_schedule
from repro.core.switch import Switch
from repro.online.policies import make_policy


def _two_coflow_instance():
    switch = Switch.create(3)
    return CoflowInstance.create(
        switch,
        [
            Coflow(((0, 0, 1), (1, 1, 1)), release=0),
            Coflow(((0, 1, 1), (2, 2, 1)), release=1),
        ],
    )


class TestModel:
    def test_empty_coflow_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            Coflow(())

    def test_flattening_assigns_owners(self):
        cf = _two_coflow_instance()
        assert cf.instance.num_flows == 4
        assert cf.coflow_of.tolist() == [0, 0, 1, 1]
        assert cf.instance.flows[2].release == 1

    def test_bottleneck(self):
        switch = Switch.create(3)
        c = Coflow(((0, 0, 1), (0, 1, 1), (1, 1, 1)))
        # Input 0 carries 2 units; output 1 carries 2 units.
        assert c.bottleneck(switch) == 2.0

    def test_bottleneck_respects_capacity(self):
        switch = Switch.create(3, 3, 2)
        c = Coflow(((0, 0, 2), (0, 1, 2)))
        assert c.bottleneck(switch) == 2.0  # 4 units / capacity 2

    def test_total_demand(self):
        assert Coflow(((0, 0, 2), (1, 1, 3))).total_demand == 5

    def test_random_shuffle_generator(self):
        cf = random_shuffle_coflows(8, 5, width_range=(2, 3), seed=0)
        assert cf.num_coflows == 5
        assert cf.releases().tolist() == [0, 2, 4, 6, 8]
        for coflow in cf.coflows:
            srcs = {m[0] for m in coflow.members}
            dsts = {m[1] for m in coflow.members}
            assert 2 <= len(srcs) <= 3
            assert len(coflow.members) == len(srcs) * len(dsts)

    def test_shuffle_generator_bounds_checked(self):
        with pytest.raises(ValueError):
            random_shuffle_coflows(4, 2, width_range=(3, 9))


class TestMetrics:
    def test_completion_is_last_member(self):
        cf = _two_coflow_instance()
        schedule = Schedule(cf.instance, np.array([0, 2, 1, 1]))
        assert coflow_completion_times(cf, schedule).tolist() == [3, 2]
        assert coflow_response_times(cf, schedule).tolist() == [3, 1]

    def test_metrics_summary(self):
        cf = _two_coflow_instance()
        schedule = Schedule(cf.instance, np.array([0, 2, 1, 1]))
        m = CoflowMetrics.of(cf, schedule)
        assert m.num_coflows == 2
        assert m.average_response == 2.0
        assert m.max_response == 3

    def test_empty(self):
        switch = Switch.create(2)
        cf = CoflowInstance.create(switch, [])
        schedule = Schedule(cf.instance, np.zeros(0, dtype=np.int64))
        assert CoflowMetrics.of(cf, schedule).num_coflows == 0


class TestPolicies:
    def test_unknown_policy(self):
        cf = _two_coflow_instance()
        with pytest.raises(ValueError, match="unknown coflow policy"):
            make_coflow_policy("Varys", cf)

    @pytest.mark.parametrize("name", ["SEBF", "CoflowFIFO"])
    def test_schedules_valid(self, name):
        cf = random_shuffle_coflows(6, 4, width_range=(2, 3), seed=1)
        res = simulate_coflows(cf, make_coflow_policy(name, cf))
        validate_schedule(res.schedule)

    def test_oblivious_policy_compatible(self):
        cf = random_shuffle_coflows(6, 4, width_range=(2, 3), seed=2)
        res = simulate_coflows(cf, make_policy("MaxCard"))
        validate_schedule(res.schedule)

    def test_sebf_prioritizes_small_coflow(self):
        # A 1-flow coflow and a 4-flow coflow share ports; SEBF should
        # finish the small one first.
        switch = Switch.create(2)
        cf = CoflowInstance.create(
            switch,
            [
                Coflow(((0, 0, 1), (0, 1, 1), (1, 0, 1), (1, 1, 1))),
                Coflow(((0, 0, 1),)),
            ],
        )
        res = simulate_coflows(cf, make_coflow_policy("SEBF", cf))
        responses = coflow_response_times(cf, res.schedule)
        assert responses[1] <= responses[0]

    @given(st.integers(0, 10**6))
    @settings(max_examples=15, deadline=None)
    def test_sebf_beats_oblivious_on_average_usually(self, seed):
        """Shape check: across random shuffles, SEBF's average co-flow
        response is never drastically worse than MaxCard's."""
        cf = random_shuffle_coflows(8, 5, width_range=(2, 4), seed=seed)
        sebf = simulate_coflows(cf, make_coflow_policy("SEBF", cf))
        oblivious = simulate_coflows(cf, make_policy("MaxCard"))
        assert (
            sebf.coflow_metrics.average_response
            <= oblivious.coflow_metrics.average_response * 1.5 + 2
        )
