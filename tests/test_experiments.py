"""Tests for the experiment harness and figure renderers."""

import os

import pytest

from repro.experiments.config import (
    ExperimentConfig,
    PAPER_LOAD_RATIOS,
    default_config,
    paper_scale_config,
    resolve_config,
    smoke_config,
)
from repro.experiments.fig6 import fig6_series, render_fig6
from repro.experiments.fig7 import fig7_series, render_fig7
from repro.experiments.harness import run_sweep
from repro.experiments.tables import render_series_table


@pytest.fixture(scope="module")
def tiny_sweep():
    config = ExperimentConfig(
        num_ports=6,
        load_ratios=(0.5, 2.0),
        generation_rounds=(3, 5),
        trials=2,
        lp_round_limit=3,
        seed=99,
    )
    return run_sweep(config)


class TestConfig:
    def test_paper_ratios(self):
        assert PAPER_LOAD_RATIOS == (1 / 3, 2 / 3, 1.0, 2.0, 4.0)

    def test_paper_scale_matches_paper(self):
        cfg = paper_scale_config()
        assert cfg.num_ports == 150
        assert cfg.arrival_means() == [50, 100, 150, 300, 600]
        assert cfg.trials == 10
        assert cfg.lp_round_limit == 20

    def test_default_is_laptop_scale(self):
        assert default_config().num_ports == 24

    def test_resolve_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_PAPER_SCALE", "1")
        assert resolve_config().num_ports == 150
        monkeypatch.setenv("REPRO_PAPER_SCALE", "")
        assert resolve_config().num_ports == 24

    def test_overrides(self):
        assert smoke_config(trials=7).trials == 7


class TestSweep:
    def test_all_cells_present(self, tiny_sweep):
        assert len(tiny_sweep.cells) == 4
        cell = tiny_sweep.cell(3.0, 5)
        assert cell.rounds == 5

    def test_policies_measured(self, tiny_sweep):
        cell = tiny_sweep.cell(3.0, 3)
        for policy in tiny_sweep.config.policies:
            assert cell.avg_response[policy] >= 1.0
            assert cell.max_response[policy] >= 1.0
            assert (
                cell.avg_response[policy] <= cell.max_response[policy]
            )

    def test_lp_bounds_only_within_limit(self, tiny_sweep):
        assert tiny_sweep.cell(3.0, 3).lp_avg_bound is not None
        assert tiny_sweep.cell(3.0, 5).lp_avg_bound is None

    def test_lp_bounds_below_heuristics(self, tiny_sweep):
        cell = tiny_sweep.cell(12.0, 3)
        for policy in tiny_sweep.config.policies:
            assert cell.lp_avg_bound <= cell.avg_response[policy] + 1e-9
            assert cell.lp_max_bound <= cell.max_response[policy] + 1e-9

    def test_timer_recorded(self, tiny_sweep):
        assert "simulate:MaxCard" in tiny_sweep.timer.totals


class TestRendering:
    def test_series_extraction(self, tiny_sweep):
        xs, series = fig6_series(tiny_sweep, 3.0)
        assert xs == [3, 5]
        assert set(series) == {"MaxCard", "MinRTime", "MaxWeight", "LP"}
        assert series["LP"][1] is None

    def test_fig7_series(self, tiny_sweep):
        xs, series = fig7_series(tiny_sweep, 12.0)
        assert len(series["MinRTime"]) == 2

    def test_render_fig6_contains_panels(self, tiny_sweep):
        text = render_fig6(tiny_sweep)
        assert text.count("Figure 6 panel") == 2
        assert "MaxWeight" in text

    def test_render_fig7(self, tiny_sweep):
        text = render_fig7(tiny_sweep)
        assert "maximum response time" in text

    def test_render_table_handles_none(self):
        text = render_series_table(
            "t", "T", [1, 2], {"A": [1.0, None]}
        )
        assert "-" in text
