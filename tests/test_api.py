"""Tests for the unified solver API (repro.api)."""

import json

import pytest

from repro.api import (
    Runner,
    SOLVER_KINDS,
    Solver,
    SolveReport,
    get_solver,
    list_solvers,
    make_executor,
    register_solver,
    unregister_solver,
)
from repro.api.executors import MultiprocessingExecutor, SerialExecutor
from repro.coflow.model import random_shuffle_coflows
from repro.core.metrics import ScheduleMetrics
from repro.experiments.config import ExperimentConfig
from repro.experiments.harness import format_bound, run_sweep
from repro.workloads.synthetic import poisson_uniform_workload


@pytest.fixture(scope="module")
def small_instance():
    return poisson_uniform_workload(5, 4.0, 3, seed=11)


@pytest.fixture(scope="module")
def small_coflows():
    return random_shuffle_coflows(6, 3, width_range=(2, 3), seed=4)


class TestRegistry:
    def test_builtins_registered(self):
        names = list_solvers()
        for expected in (
            "FS-ART", "FS-MRT", "TimeConstrained", "Greedy", "AMRT",
            "MaxCard", "MinRTime", "MaxWeight", "FIFO", "Random",
            "SEBF", "CoflowFIFO",
        ):
            assert expected in names

    def test_list_by_kind_partitions(self):
        by_kind = [set(list_solvers(kind)) for kind in SOLVER_KINDS]
        union = set().union(*by_kind)
        assert union == set(list_solvers())
        for i, a in enumerate(by_kind):
            for b in by_kind[i + 1:]:
                assert not (a & b)

    def test_unknown_kind_raises(self):
        with pytest.raises(ValueError, match="unknown kind"):
            list_solvers("quantum")

    def test_get_solver_implements_protocol(self):
        solver = get_solver("MaxWeight")
        assert isinstance(solver, Solver)
        assert solver.name == "MaxWeight"
        assert solver.kind == "online"

    def test_unknown_solver_raises_with_available(self):
        with pytest.raises(ValueError, match="FS-ART"):
            get_solver("NoSuchSolver")

    def test_register_get_unregister_roundtrip(self):
        @register_solver("test-dummy")
        class DummySolver:
            name = "test-dummy"
            kind = "offline"

            def solve(self, instance, **params):
                return SolveReport(self.name, self.kind, metrics=None)

        try:
            assert "test-dummy" in list_solvers()
            assert get_solver("test-dummy").solve(None).solver == "test-dummy"
        finally:
            unregister_solver("test-dummy")
        assert "test-dummy" not in list_solvers()

    def test_duplicate_name_raises(self):
        with pytest.raises(ValueError, match="already registered"):
            register_solver("FS-ART", lambda: None)

    def test_builtin_collision_before_first_access(self):
        # Registering a builtin name must fail at the registration site
        # even when the plugin registers before any registry read, and
        # must leave the registry fully usable afterwards.
        with pytest.raises(ValueError, match="already registered"):
            register_solver("MaxWeight", lambda: None)
        assert "FS-ART" in list_solvers()
        assert get_solver("MaxWeight").kind == "online"

    def test_fresh_instance_per_get(self):
        assert get_solver("Random") is not get_solver("Random")


class TestSolveReport:
    def test_json_roundtrip_online(self, small_instance):
        report = get_solver("MaxWeight").solve(small_instance)
        data = json.loads(json.dumps(report.to_dict()))
        clone = SolveReport.from_dict(data)
        assert clone.to_dict() == report.to_dict()
        assert clone.metrics == report.metrics
        assert (clone.schedule.assignment == report.schedule.assignment).all()
        assert clone.schedule.instance.num_flows == small_instance.num_flows

    def test_json_roundtrip_offline(self, small_instance):
        report = get_solver("FS-MRT").solve(small_instance)
        data = json.loads(json.dumps(report.to_dict()))
        clone = SolveReport.from_dict(data)
        assert clone.to_dict() == report.to_dict()
        assert clone.lower_bounds["rho_star"] == report.extras["rho"]

    def test_infeasible_report_roundtrip(self):
        report = SolveReport("x", "offline", metrics=None,
                             extras={"feasible": False})
        clone = SolveReport.from_dict(json.loads(json.dumps(report.to_dict())))
        assert clone.metrics is None and clone.schedule is None
        assert not clone.feasible

    def test_metrics_to_from_dict(self, small_instance):
        metrics = get_solver("Greedy").solve(small_instance).metrics
        assert ScheduleMetrics.from_dict(metrics.to_dict()) == metrics
        assert json.dumps(metrics.to_dict())  # JSON-serializable


class TestAdapters:
    #: Extra params needed by solvers that cannot run bare.
    PARAMS = {"TimeConstrained": {"rho": 12}}

    @pytest.mark.parametrize(
        "name",
        ["FS-ART", "FS-MRT", "TimeConstrained", "Greedy", "AMRT",
         "MaxCard", "MinRTime", "MaxWeight", "FIFO", "Random"],
    )
    def test_every_flow_solver_reachable(self, name, small_instance):
        report = get_solver(name).solve(
            small_instance, **self.PARAMS.get(name, {})
        )
        assert isinstance(report, SolveReport)
        assert report.solver == name
        assert report.kind in SOLVER_KINDS
        assert report.metrics.num_flows == small_instance.num_flows
        assert report.metrics.max_response >= 1
        assert "total" in report.timings

    @pytest.mark.parametrize("name", ["SEBF", "CoflowFIFO"])
    def test_coflow_solvers_reachable(self, name, small_coflows):
        report = get_solver(name).solve(small_coflows)
        assert report.kind == "coflow"
        assert report.metrics.num_flows == small_coflows.instance.num_flows
        cm = report.extras["coflow_metrics"]
        assert cm["num_coflows"] == small_coflows.num_coflows
        assert cm["average_response"] >= 1.0

    def test_coflow_solver_rejects_plain_instance(self, small_instance):
        with pytest.raises(TypeError, match="CoflowInstance"):
            get_solver("SEBF").solve(small_instance)

    def test_matches_legacy_entry_points(self, small_instance):
        from repro.mrt.algorithm import solve_mrt
        from repro.online.policies import make_policy
        from repro.online.simulator import simulate

        report = get_solver("FS-MRT").solve(small_instance)
        legacy = solve_mrt(small_instance)
        assert report.extras["rho"] == legacy.rho
        assert report.extras["max_violation"] == legacy.max_violation

        report = get_solver("MinRTime").solve(small_instance)
        legacy = simulate(small_instance, make_policy("MinRTime"))
        assert report.metrics == legacy.metrics

    def test_time_constrained_defaults_to_feasible_bound(self, small_instance):
        # With neither rho nor deadlines, the adapter falls back to the
        # always-feasible response bound horizon_bound() (and records it).
        report = get_solver("TimeConstrained").solve(small_instance)
        assert report.feasible
        assert report.params["rho"] == small_instance.horizon_bound()
        with pytest.raises(ValueError, match="at most one"):
            get_solver("TimeConstrained").solve(
                small_instance, rho=5,
                deadlines=[20] * small_instance.num_flows,
            )

    def test_time_constrained_instance_rejects_params(self, small_instance):
        from repro.mrt.time_constrained import from_response_bound

        tci = from_response_bound(small_instance, 20)
        with pytest.raises(ValueError, match="already carries"):
            get_solver("TimeConstrained").solve(tci, rho=5)


class TestExecutors:
    def test_make_executor_specs(self):
        assert isinstance(make_executor("serial"), SerialExecutor)
        assert isinstance(make_executor("multiprocessing"),
                          MultiprocessingExecutor)
        # jobs > 1 upgrades the default to a pool.
        assert isinstance(make_executor("serial", jobs=2),
                          MultiprocessingExecutor)
        custom = SerialExecutor()
        assert make_executor(custom) is custom
        with pytest.raises(ValueError, match="unknown executor"):
            make_executor("gpu")

    def test_order_preserved(self):
        items = list(range(17))
        assert SerialExecutor().map(_square, items) == [i * i for i in items]
        pool = MultiprocessingExecutor(jobs=3, chunk_size=2)
        assert pool.map(_square, items) == [i * i for i in items]

    def test_bad_jobs_rejected(self):
        for bad in (0, -1):
            with pytest.raises(ValueError, match="jobs"):
                MultiprocessingExecutor(jobs=bad)
            with pytest.raises(ValueError, match="jobs"):
                make_executor("serial", jobs=bad)
        # None means "auto" (all CPUs).
        assert MultiprocessingExecutor().jobs >= 1

    def test_executor_instance_rejects_jobs(self):
        with pytest.raises(ValueError, match="configure"):
            make_executor(SerialExecutor(), jobs=4)

    def test_worker_keyboard_interrupt_surfaces(self, tmp_path):
        """Regression: a KeyboardInterrupt inside a pool worker used to
        be swallowed (``multiprocessing.Pool`` only ships ``Exception``
        results back), hanging the parent ``map`` forever.  It must
        surface as ``SweepInterrupted`` — still a ``KeyboardInterrupt``
        for outer Ctrl-C handling — with completed items' records
        flushed to their shards."""
        from repro.api import SweepInterrupted

        pool = MultiprocessingExecutor(jobs=2, chunk_size=1)
        items = [(str(tmp_path), i) for i in range(8)]
        with pytest.raises(SweepInterrupted) as excinfo:
            pool.map(_put_or_interrupt, items)
        assert isinstance(excinfo.value, KeyboardInterrupt)
        assert "rerun" in str(excinfo.value)
        # Every non-interrupting item's record survived the interrupt.
        from repro.api.store import live_records

        live = live_records(tmp_path)
        digests = {entry["instance"] for entry in live.values()}
        assert digests == {f"digest-{i}" for i in range(8) if i != 5}

    def test_worker_keyboard_interrupt_surfaces_from_imap(self, tmp_path):
        from repro.api import SweepInterrupted

        pool = MultiprocessingExecutor(jobs=2, chunk_size=1)
        items = [(str(tmp_path), i) for i in range(8)]
        with pytest.raises(SweepInterrupted):
            list(pool.imap(_put_or_interrupt, items))

    def test_infeasible_solver_in_sweep_raises_clearly(self, runner_config):
        from repro.api import SolveReport, register_solver, unregister_solver
        from repro.api.runner import Runner

        class AlwaysInfeasible:
            name, kind = "test-infeasible", "offline"

            def solve(self, instance, **params):
                return SolveReport(self.name, self.kind, metrics=None)

        register_solver("test-infeasible", AlwaysInfeasible)
        try:
            with pytest.raises(ValueError, match="test-infeasible"):
                Runner(runner_config).run(solvers=["test-infeasible"])
        finally:
            unregister_solver("test-infeasible")


def _square(x):
    return x * x


def _put_or_interrupt(item):
    """Pool-worker body for the interrupt regression tests: persists a
    record per item, except item 5, which simulates a Ctrl-C landing in
    the worker mid-sweep."""
    cache_dir, idx = item
    if idx == 5:
        raise KeyboardInterrupt
    from repro.api.store import open_store

    store = open_store(cache_dir)
    store.put("T", f"digest-{idx}", {}, {"solver": "T", "idx": idx})
    return idx


@pytest.fixture(scope="module")
def runner_config():
    return ExperimentConfig(
        num_ports=6,
        load_ratios=(0.5, 2.0),
        generation_rounds=(3, 5),
        trials=2,
        lp_round_limit=3,
        seed=99,
    )


class TestRunner:
    def test_serial_and_multiprocessing_identical(self, runner_config):
        serial = Runner(runner_config).run()
        parallel = Runner(
            runner_config, executor="multiprocessing", jobs=2
        ).run()
        assert serial.cells.keys() == parallel.cells.keys()
        for key in serial.cells:
            assert serial.cells[key] == parallel.cells[key]

    def test_run_sweep_jobs_flag_identical(self, runner_config):
        serial = run_sweep(runner_config, compute_lp_bounds=False)
        parallel = run_sweep(runner_config, compute_lp_bounds=False, jobs=2)
        assert serial.cells == parallel.cells

    def test_streams_cells_in_grid_order(self, runner_config):
        seen = []
        runner = Runner(runner_config, compute_lp_bounds=False)
        runner.run(on_cell=seen.append)
        assert [(c.arrival_mean, c.rounds) for c in seen] == runner.cell_grid()

    def test_offline_solvers_in_sweep(self, runner_config):
        sweep = Runner(runner_config, compute_lp_bounds=False).run(
            solvers=["Greedy", "FIFO"], workloads=[(3.0, 3)]
        )
        cell = sweep.cell(3.0, 3)
        assert set(cell.avg_response) == {"Greedy", "FIFO"}
        assert cell.avg_response["Greedy"] >= 1.0

    def test_unknown_solver_fails_fast(self, runner_config):
        with pytest.raises(ValueError, match="unknown solver"):
            Runner(runner_config).run(solvers=["NoSuch"])

    def test_timer_merged_from_workers(self, runner_config):
        sweep = Runner(runner_config, jobs=2).run(workloads=[(3.0, 3)])
        assert "generate" in sweep.timer.totals
        assert sweep.timer.counts["generate"] == runner_config.trials


class TestVerboseFormatting:
    def test_zero_bound_is_printed_not_dashed(self):
        assert format_bound(0.0, 2) == "0.00"
        assert format_bound(None, 2) == "-"
        assert format_bound(3.14159, 1) == "3.1"

    def test_cell_line_includes_zero_bounds(self):
        from repro.experiments.harness import CellResult, format_cell_line

        cell = CellResult(
            arrival_mean=3.0, rounds=4, trials=1, num_flows_mean=5.0,
            avg_response={"FIFO": 1.5}, max_response={"FIFO": 2.0},
            avg_response_std={"FIFO": 0.0}, max_response_std={"FIFO": 0.0},
            lp_avg_bound=0.0, lp_max_bound=None,
        )
        line = format_cell_line(cell, ["FIFO"])
        assert "LPavg=0.00" in line
        assert "LPmax=-" in line
