"""Tests for the end-to-end FS-ART solver (Theorem 1)."""

import pytest
from hypothesis import given, settings

from repro.art.algorithm import solve_art
from repro.core.flow import Flow
from repro.core.instance import Instance
from repro.core.metrics import total_response_time
from repro.core.schedule import validate_schedule
from repro.core.switch import Switch
from repro.mrt.exact import exact_min_total_response
from tests.conftest import unit_instances


class TestSolveART:
    def test_rejects_bad_c(self):
        inst = Instance.create(Switch.create(2), [Flow(0, 0)])
        with pytest.raises(ValueError):
            solve_art(inst, c=0)

    def test_single_flow(self):
        inst = Instance.create(Switch.create(2), [Flow(0, 1)])
        res = solve_art(inst, c=1)
        assert res.total_response >= 1
        assert res.lower_bound <= res.total_response

    def test_lower_bound_skippable(self):
        inst = Instance.create(Switch.create(2), [Flow(0, 1)])
        res = solve_art(inst, c=1, compute_lower_bound=False)
        assert res.lower_bound is None
        assert res.approximation_ratio is None

    def test_approximation_ratio(self):
        inst = Instance.create(
            Switch.create(2), [Flow(0, 0), Flow(1, 1), Flow(0, 1, 1, 1)]
        )
        res = solve_art(inst, c=2)
        assert res.approximation_ratio == pytest.approx(
            res.total_response / res.lower_bound
        )

    @given(unit_instances(max_ports=3, max_flows=6))
    @settings(max_examples=15, deadline=None)
    def test_schedule_valid_under_blowup(self, inst):
        if inst.num_flows == 0:
            return
        res = solve_art(inst, c=1)
        validate_schedule(
            res.schedule,
            inst.switch.augmented(factor=res.conversion.capacity_factor),
        )
        assert res.total_response == total_response_time(res.schedule)
        assert res.lower_bound <= res.total_response + 1e-6

    @given(unit_instances(max_ports=3, max_flows=5))
    @settings(max_examples=10, deadline=None)
    def test_lower_bound_below_exact_optimum(self, inst):
        if inst.num_flows == 0:
            return
        res = solve_art(inst, c=1)
        assert res.lower_bound <= exact_min_total_response(inst) + 1e-6

    def test_larger_c_reduces_window(self):
        inst = Instance.create(
            Switch.create(4),
            [Flow(i % 4, (i + 1) % 4, 1, i % 3) for i in range(12)],
        )
        res1 = solve_art(inst, c=1, compute_lower_bound=False)
        res4 = solve_art(inst, c=4, compute_lower_bound=False)
        assert res4.conversion.window <= res1.conversion.window
