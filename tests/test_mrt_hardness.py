"""Tests for the Theorem 2 reduction (RTT -> FS-MRT)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mrt.exact import exact_min_max_response, exact_time_constrained_schedule
from repro.mrt.hardness import (
    HOURS,
    RTTInstance,
    decode_schedule_to_timetable,
    enumerate_small_rtt_instances,
    reduce_rtt_to_fsmrt,
    solve_rtt_bruteforce,
    verify_timetable,
)
from repro.mrt.time_constrained import from_response_bound


def _feasible_rtt():
    return RTTInstance(
        availability=(frozenset({1, 2}), frozenset({1, 3})),
        classes=((0, 1), (1, 2)),
        num_classes=3,
    )


def _infeasible_rtt():
    # Three teachers, all restricted to hours {1,2}, all fighting over
    # classes {0,1}: 6 lessons into 4 (class, hour) slots.
    return RTTInstance(
        availability=(frozenset({1, 2}),) * 3,
        classes=((0, 1),) * 3,
        num_classes=2,
    )


class TestRTTModel:
    def test_validation_sizes(self):
        with pytest.raises(ValueError, match=r"\|g\(i\)\|"):
            RTTInstance((frozenset({1, 2}),), ((0, 1, 2),), 3)

    def test_validation_availability_small(self):
        with pytest.raises(ValueError, match=">= 2"):
            RTTInstance((frozenset({1}),), ((0,),), 1)

    def test_validation_duplicate_classes(self):
        with pytest.raises(ValueError, match="duplicate"):
            RTTInstance((frozenset({1, 2}),), ((0, 0),), 2)

    def test_validation_class_range(self):
        with pytest.raises(ValueError, match="out of range"):
            RTTInstance((frozenset({1, 2}),), ((0, 5),), 2)

    def test_bruteforce_feasible(self):
        timetable = solve_rtt_bruteforce(_feasible_rtt())
        assert timetable is not None
        assert verify_timetable(_feasible_rtt(), timetable)

    def test_bruteforce_infeasible(self):
        assert solve_rtt_bruteforce(_infeasible_rtt()) is None

    def test_verify_rejects_wrong_hour(self):
        rtt = _feasible_rtt()
        timetable = solve_rtt_bruteforce(rtt)
        (i, j) = next(iter(timetable))
        bad = dict(timetable)
        bad[(i, j)] = next(h for h in HOURS if h not in rtt.availability[i])
        assert not verify_timetable(rtt, bad)

    def test_verify_rejects_missing_pair(self):
        rtt = _feasible_rtt()
        timetable = solve_rtt_bruteforce(rtt)
        timetable.popitem()
        assert not verify_timetable(rtt, timetable)


class TestReduction:
    def test_reduction_structure(self):
        art = reduce_rtt_to_fsmrt(_feasible_rtt())
        assert art.rho == 3
        inst = art.instance
        assert inst.switch.is_unit_capacity
        # 4 real flows + 3 blockers per output (3 outputs used: 0,1,2) +
        # gadgets for both teachers ({1,2} and {1,3}).
        assert len(art.real_flow) == 4
        assert inst.num_flows == 4 + 3 * 3 + 2 * 4

    def test_feasible_side(self):
        art = reduce_rtt_to_fsmrt(_feasible_rtt())
        sched = exact_time_constrained_schedule(
            from_response_bound(art.instance, art.rho)
        )
        assert sched is not None
        decoded = decode_schedule_to_timetable(
            art, {fid: int(t) for fid, t in enumerate(sched.assignment)}
        )
        assert verify_timetable(_feasible_rtt(), decoded)

    def test_infeasible_side_forces_gap(self):
        art = reduce_rtt_to_fsmrt(_infeasible_rtt())
        assert (
            exact_time_constrained_schedule(
                from_response_bound(art.instance, 3)
            )
            is None
        )
        # The 4/3 gap: optimum is at least 4.
        assert exact_min_max_response(art.instance) >= 4

    @given(st.integers(0, 10**6))
    @settings(max_examples=25, deadline=None)
    def test_reduction_agrees_with_bruteforce(self, seed):
        """Soundness + completeness on random small RTT instances."""
        import numpy as np

        rng = np.random.default_rng(seed)
        instances = enumerate_small_rtt_instances(2, 3)
        rtt = instances[int(rng.integers(0, len(instances)))]
        art = reduce_rtt_to_fsmrt(rtt)
        mrt_ok = (
            exact_time_constrained_schedule(
                from_response_bound(art.instance, art.rho)
            )
            is not None
        )
        rtt_ok = solve_rtt_bruteforce(rtt) is not None
        assert mrt_ok == rtt_ok

    def test_enumeration_counts(self):
        # 1 teacher, 2 classes: availabilities {12},{13},{23} with 2
        # ordered class choices each, plus {123} with 2 permutations of
        # both classes... g(i) must have size |T_i|.
        instances = enumerate_small_rtt_instances(1, 2)
        sizes = {len(inst.availability[0]) for inst in instances}
        # |T|=3 would need 3 distinct classes out of 2 -> impossible, so
        # only |T|=2 instances exist: 3 hour-sets x P(2,2)=2 orders = 6.
        assert sizes == {2}
        assert len(instances) == 6
        # With 3 classes the |T|=3 pattern appears: P(3,3)=6 orders.
        bigger = enumerate_small_rtt_instances(1, 3)
        assert {len(i.availability[0]) for i in bigger} == {2, 3}
        assert len(bigger) == 3 * 6 + 1 * 6
