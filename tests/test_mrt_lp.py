"""Tests for LP (19)-(21), the Time-Constrained relaxation."""

import pytest
from hypothesis import given, settings

from repro.core.flow import Flow
from repro.core.instance import Instance
from repro.core.switch import Switch
from repro.mrt.exact import exact_time_constrained_schedule
from repro.mrt.lp_relaxation import (
    build_time_constrained_lp,
    is_fractionally_feasible,
    solve_fractional,
)
from repro.mrt.time_constrained import (
    TimeConstrainedInstance,
    from_response_bound,
)
from tests.conftest import capacitated_instances


class TestLPConstruction:
    def test_variable_per_active_round(self):
        inst = Instance.create(Switch.create(2), [Flow(0, 0), Flow(1, 1)])
        tci = TimeConstrainedInstance(inst, ((0, 2), (1,)))
        lp = build_time_constrained_lp(tci)
        assert lp.num_vars == 3
        assert lp.has_var(("x", 0, 2))
        assert not lp.has_var(("x", 0, 1))

    def test_capacity_rows_only_where_touched(self):
        inst = Instance.create(Switch.create(2), [Flow(0, 0)])
        tci = TimeConstrainedInstance(inst, ((0, 1),))
        lp = build_time_constrained_lp(tci)
        cap_rows = [c for c in lp.constraints if c.name[0] == "cap"]
        # (in,0,0),(in,0,1),(out,0,0),(out,0,1) and nothing for port 1.
        assert len(cap_rows) == 4

    def test_demand_coefficients(self):
        sw = Switch.create(1, 1, 3)
        inst = Instance.create(sw, [Flow(0, 0, demand=2)])
        tci = TimeConstrainedInstance(inst, ((0,),))
        lp = build_time_constrained_lp(tci)
        cap = next(c for c in lp.constraints if c.name[0] == "cap")
        assert list(cap.coeffs.values()) == [2.0]
        assert cap.rhs == 3.0


class TestFeasibility:
    def test_single_round_conflict_infeasible(self):
        inst = Instance.create(
            Switch.create(2), [Flow(0, 0), Flow(0, 1)]
        )  # same input twice
        assert not is_fractionally_feasible(from_response_bound(inst, 1))
        assert is_fractionally_feasible(from_response_bound(inst, 2))

    def test_fractional_split_feasible_where_integral_not(self):
        # Three unit flows on one port with 2 rounds: LP can split
        # 1.5 per round only if capacity allows; with cap 1 it cannot.
        inst = Instance.create(
            Switch.create(1, 3), [Flow(0, 0), Flow(0, 1), Flow(0, 2)]
        )
        assert not is_fractionally_feasible(from_response_bound(inst, 2))
        assert is_fractionally_feasible(from_response_bound(inst, 3))

    def test_solve_fractional_returns_solution(self):
        inst = Instance.create(Switch.create(2), [Flow(0, 0), Flow(1, 1)])
        res = solve_fractional(from_response_bound(inst, 1))
        assert res.is_optimal
        assert res.x is not None

    @given(capacitated_instances(max_flows=5))
    @settings(max_examples=40, deadline=None)
    def test_lp_is_relaxation_of_integral(self, inst):
        """Integral schedulability implies LP feasibility for every rho."""
        if inst.num_flows == 0:
            return
        for rho in (1, 2, 4):
            tci = from_response_bound(inst, rho)
            if exact_time_constrained_schedule(tci) is not None:
                assert is_fractionally_feasible(tci)

    @given(capacitated_instances(max_flows=5))
    @settings(max_examples=30, deadline=None)
    def test_feasibility_monotone_in_rho(self, inst):
        if inst.num_flows == 0:
            return
        feasible_seen = False
        for rho in (1, 2, 3, 5, 8):
            ok = is_fractionally_feasible(from_response_bound(inst, rho))
            if feasible_seen:
                assert ok  # once feasible, always feasible
            feasible_seen = feasible_seen or ok
