"""Tests for Birkhoff–von-Neumann decomposition and b-matchings."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.matching.b_matching import (
    is_b_matching,
    project_coloring,
    replicate_ports,
)
from repro.matching.bipartite import BipartiteMultigraph
from repro.matching.bvn import decompose_into_matchings, verify_decomposition
from tests.conftest import bipartite_edge_lists


def _graph(n_left, n_right, edges):
    g = BipartiteMultigraph(n_left, n_right)
    for u, v in edges:
        g.add_edge(u, v)
    return g


class TestDecomposition:
    def test_k33_into_three_matchings(self):
        g = _graph(3, 3, [(u, v) for u in range(3) for v in range(3)])
        matchings = decompose_into_matchings(g)
        verify_decomposition(g, matchings)
        assert len(matchings) == 3
        assert all(len(m) == 3 for m in matchings)

    def test_empty(self):
        assert decompose_into_matchings(_graph(2, 2, [])) == []

    def test_verify_rejects_duplicate_edge(self):
        g = _graph(2, 2, [(0, 0), (1, 1)])
        with pytest.raises(AssertionError, match="two classes"):
            verify_decomposition(g, [[0, 1], [0]])

    def test_verify_rejects_vertex_reuse(self):
        g = _graph(1, 2, [(0, 0), (0, 1)])
        with pytest.raises(AssertionError, match="reuses a vertex"):
            verify_decomposition(g, [[0, 1]])

    def test_verify_rejects_missing_edges(self):
        g = _graph(2, 2, [(0, 0), (1, 1)])
        with pytest.raises(AssertionError, match="cover"):
            verify_decomposition(g, [[0]])

    @given(bipartite_edge_lists(max_side=5, max_edges=18))
    @settings(max_examples=120, deadline=None)
    def test_decomposition_always_valid(self, data):
        n_left, n_right, edges = data
        g = _graph(n_left, n_right, edges)
        matchings = decompose_into_matchings(g)
        verify_decomposition(g, matchings)


class TestPortReplication:
    def test_replica_degree_bounded(self):
        # Port 0 has 4 edges, capacity 2 -> replicas of degree <= 2.
        g = _graph(1, 4, [(0, j) for j in range(4)])
        rep, emap = replicate_ports(g, [2], [1, 1, 1, 1])
        assert rep.n_left == 2
        assert rep.left_degrees().max() == 2
        assert emap.tolist() == [0, 1, 2, 3]

    def test_capacity_vector_length_checked(self):
        g = _graph(2, 2, [(0, 0)])
        with pytest.raises(ValueError):
            replicate_ports(g, [1], [1, 1])

    def test_zero_capacity_rejected(self):
        g = _graph(1, 1, [(0, 0)])
        with pytest.raises(ValueError):
            replicate_ports(g, [0], [1])

    def test_projected_classes_are_b_matchings(self):
        left_caps, right_caps = [2, 1], [1, 2]
        edges = [(0, 0), (0, 1), (0, 1), (1, 1), (0, 0), (1, 0)]
        g = _graph(2, 2, edges)
        rep, emap = replicate_ports(g, left_caps, right_caps)
        classes = decompose_into_matchings(rep)
        projected = project_coloring(emap, classes)
        covered = sorted(e for cls in projected for e in cls)
        assert covered == list(range(len(edges)))
        for cls in projected:
            assert is_b_matching(g, cls, left_caps, right_caps)

    @given(
        bipartite_edge_lists(max_side=4, max_edges=14),
        st.data(),
    )
    @settings(max_examples=80, deadline=None)
    def test_replication_property(self, data, draw):
        n_left, n_right, edges = data
        g = _graph(n_left, n_right, edges)
        left_caps = [draw.draw(st.integers(1, 3)) for _ in range(n_left)]
        right_caps = [draw.draw(st.integers(1, 3)) for _ in range(n_right)]
        rep, emap = replicate_ports(g, left_caps, right_caps)
        assert rep.n_edges == g.n_edges
        # Replica degree bound: ceil(deg / cap).
        for u in range(n_left):
            deg = int(g.left_degrees()[u])
            if deg:
                assert rep.left_degrees().max() <= max(
                    -(-int(g.left_degrees()[w]) // left_caps[w])
                    for w in range(n_left)
                    if g.left_degrees()[w]
                )
        classes = decompose_into_matchings(rep)
        for cls in project_coloring(emap, classes):
            assert is_b_matching(g, cls, left_caps, right_caps)
