"""Structured verification outcomes: violations, reports, and the error.

Every checker in :mod:`repro.verify` returns a
:class:`VerificationReport` — a list of :class:`Violation` values plus
the names of the checks that ran — instead of asserting.  Callers that
want exceptions call :meth:`VerificationReport.raise_if_failed`, which
raises :class:`VerificationError` carrying the full report; callers
that want to aggregate (the CLI ``verify`` command, the differential
harness) merge reports and render them at the end.

A :class:`Violation` is JSON-serializable by construction: ``code`` is a
stable machine-readable slug (test assertions match on it), ``message``
is the human rendering, and ``context`` holds scalar details (fids,
rounds, bound values) for programmatic triage.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Mapping, Optional


@dataclass(frozen=True)
class Violation:
    """One certified-invariant breach found by a checker.

    Attributes
    ----------
    code:
        Stable machine-readable slug, e.g. ``"capacity-overload"`` or
        ``"bound-above-objective"``.
    message:
        Human-readable description naming the offending flow / port /
        round / bound.
    context:
        JSON-scalar details (``{"fid": 3, "round": 2, ...}``).
    """

    code: str
    message: str
    context: Mapping[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict:
        """JSON-serializable representation."""
        return {
            "code": self.code,
            "message": self.message,
            "context": dict(self.context),
        }

    @staticmethod
    def from_dict(data: Mapping) -> "Violation":
        """Inverse of :meth:`to_dict`."""
        return Violation(
            code=data["code"],
            message=data["message"],
            context=dict(data.get("context") or {}),
        )

    def __str__(self) -> str:
        return f"[{self.code}] {self.message}"


@dataclass
class VerificationReport:
    """Outcome of one (or several merged) certification passes.

    Attributes
    ----------
    subject:
        What was certified (``"FS-MRT on 9f3a…"``, a trace path, ...).
    checks:
        Names of the checks that actually ran — an empty ``violations``
        list is only meaningful alongside a non-empty ``checks`` list.
    violations:
        Every invariant breach found; empty means certified.
    stats:
        Scalar diagnostics the checks computed along the way
        (approximation ratios, augmentation used, oracle bounds).
    """

    subject: str
    checks: List[str] = field(default_factory=list)
    violations: List[Violation] = field(default_factory=list)
    stats: Dict[str, Any] = field(default_factory=dict)
    # Companion set for O(1) ran() dedup: merge-heavy aggregation (one
    # sub-report per record of a large cached store) would otherwise
    # scan the checks list per insertion, going quadratic.
    _seen: set = field(
        default_factory=set, init=False, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        self._seen = set(self.checks)

    @property
    def ok(self) -> bool:
        """True when every check passed (and at least one ran)."""
        return not self.violations and bool(self.checks)

    def add(self, code: str, message: str, **context: Any) -> None:
        """Record one violation."""
        self.violations.append(Violation(code, message, context))

    def ran(self, check: str) -> None:
        """Record that ``check`` executed (even if it found nothing)."""
        if check not in self._seen:
            self._seen.add(check)
            self.checks.append(check)

    def merge(self, other: "VerificationReport") -> "VerificationReport":
        """Fold ``other`` into this report (returns ``self``).

        Checks, stats, *and violations* are qualified with ``other``'s
        subject, so an aggregate report (a cross-check, a whole cached
        store) still names which record/solver every violation belongs
        to — the subject would otherwise be lost at merge time.
        """
        for check in other.checks:
            self.ran(f"{other.subject}:{check}" if other.subject else check)
        for violation in other.violations:
            if other.subject:
                context = dict(violation.context)
                context.setdefault("subject", other.subject)
                violation = Violation(
                    violation.code,
                    f"{other.subject}: {violation.message}",
                    context,
                )
            self.violations.append(violation)
        for key, value in other.stats.items():
            self.stats.setdefault(
                f"{other.subject}:{key}" if other.subject else key, value
            )
        return self

    def raise_if_failed(self) -> "VerificationReport":
        """Raise :class:`VerificationError` unless :attr:`ok`; else return self."""
        if self.violations:
            raise VerificationError(self)
        if not self.checks:
            raise VerificationError(self, "no checks ran")
        return self

    def summary(self) -> str:
        """One-line human summary."""
        state = "certified" if self.ok else f"{len(self.violations)} violation(s)"
        return f"{self.subject}: {state} ({len(self.checks)} check(s))"

    def render(self) -> str:
        """Multi-line human rendering (summary plus one line per violation)."""
        lines = [self.summary()]
        lines.extend(f"  {v}" for v in self.violations)
        return "\n".join(lines)

    def to_dict(self) -> dict:
        """JSON-serializable representation (inverse of :meth:`from_dict`)."""
        return {
            "subject": self.subject,
            "checks": list(self.checks),
            "violations": [v.to_dict() for v in self.violations],
            "stats": dict(self.stats),
        }

    @staticmethod
    def from_dict(data: Mapping) -> "VerificationReport":
        """Rebuild from :meth:`to_dict` output."""
        return VerificationReport(
            subject=data["subject"],
            checks=list(data.get("checks") or []),
            violations=[
                Violation.from_dict(v) for v in data.get("violations") or []
            ],
            stats=dict(data.get("stats") or {}),
        )


def merge_reports(
    subject: str, reports: Iterable[VerificationReport]
) -> VerificationReport:
    """Fold ``reports`` into one report labelled ``subject``."""
    out = VerificationReport(subject)
    for report in reports:
        out.merge(report)
    return out


class VerificationError(AssertionError):
    """A certification pass found violations (or ran no checks at all).

    Subclasses ``AssertionError`` so test harnesses treat a failed
    certificate as a test failure; carries the full
    :class:`VerificationReport` as :attr:`report`.
    """

    def __init__(
        self, report: VerificationReport, message: Optional[str] = None
    ):
        self.report = report
        self._message = message
        super().__init__(message or report.render())

    def __reduce__(self):
        # Default BaseException pickling reconstructs via cls(*args) —
        # i.e. VerificationError(rendered_string) — which would crash in
        # __init__ calling .render() on a str.  Multiprocessing Runner
        # workers pickle this exception back to the parent, so the
        # report must survive the round trip intact.
        return (type(self), (self.report, self._message))
