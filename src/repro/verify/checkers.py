"""Certificate checkers: schedules, LP bounds, online runs, streams.

Each checker re-derives the paper's guarantees from first principles and
returns a :class:`~repro.verify.violations.VerificationReport` instead
of asserting:

* :func:`check_schedule` — per-round degree/capacity feasibility, release
  respect, demand conservation, and (optionally) consistency with a
  claimed :class:`~repro.core.metrics.ScheduleMetrics`;
* :func:`check_lp_certificate` — a :class:`~repro.api.report.SolveReport`'s
  claimed lower bounds stay below the achieved objectives (for
  augmentation-free schedules), match an independent oracle
  recomputation (:mod:`repro.lp.bounds`), and satisfy the solver's own
  theorem guarantees (FS-MRT's Theorem 3 response/augmentation caps,
  FS-ART's reported approximation ratio);
* :func:`check_online_run` — queue/arrival accounting of
  :func:`~repro.online.simulator.simulate` /
  :func:`~repro.online.simulator.simulate_stream` results;
* :func:`check_stream` — an arrival stream's builder contract
  (deterministic re-iteration, in-range ports, demands within kappa);
* :func:`check_record` — the schedule-free subset of the checks, for
  cached :class:`~repro.api.store.ResultStore` records (``to_dict``
  payloads with the schedule stripped).

Comparisons against LP-derived bounds use a relative tolerance ``rtol``
(default ``1e-6``) so LP backends' round-off never produces false
violations.  Metric *identity* checks (``avg * n == total``, claimed
metrics vs recomputed) deliberately use a near-exact ``1e-9`` instead:
they compare integer counts and exact ratios of them, where any real
drift is a bug, not round-off.
"""

from __future__ import annotations

from typing import Any, Mapping, Optional

import numpy as np

from repro.core.instance import Instance
from repro.core.metrics import ScheduleMetrics
from repro.core.schedule import Schedule
from repro.core.switch import Switch
from repro.verify.violations import VerificationReport

#: Default relative tolerance for float bound comparisons.
DEFAULT_RTOL = 1e-6

#: Bounds whose value *and* objective are exact integers (ρ* from the
#: binary search vs max response in rounds): a true inversion is >= 1,
#: so the direction check uses zero tolerance — the same choice
#: :func:`repro.verify.cross_check` and the Runner's trial-level
#: certification make — lest a relative tolerance mask off-by-one
#: inversions on long-horizon objectives.
EXACT_BOUNDS = frozenset({"rho_star"})


def bound_tolerance(value: float, rtol: float = DEFAULT_RTOL) -> float:
    """Absolute slack for comparing ``value`` against a float bound.

    Relative in the value's magnitude with a floor of ``rtol`` itself,
    so comparisons near zero keep a non-degenerate tolerance.  Shared by
    every bound check in the subsystem (and the Runner's trial-level
    certification) so the certified tolerance cannot drift per call
    site.
    """
    return rtol * max(1.0, abs(float(value)))


_tol = bound_tolerance  # module-internal shorthand


def _is_number(value: Any) -> bool:
    """A real, finite number (bools are not numbers here)."""
    return (
        isinstance(value, (int, float))
        and not isinstance(value, bool)
        and np.isfinite(value)
    )


def _check_bounds_well_formed(
    report: "VerificationReport", bounds: Optional[Mapping[str, Any]]
) -> bool:
    """Flag non-finite / non-numeric bound values; True iff all are clean.

    The shared ``well-formed`` pass of :func:`check_lp_certificate` and
    :func:`check_record` — it always records the check (so even a
    schedule-less report certifies against *something*), and its boolean
    result gates the numeric comparisons, which would otherwise crash on
    type-corrupted input instead of reporting a Violation.
    """
    report.ran("well-formed")
    ok = True
    for name, value in (bounds or {}).items():
        if not _is_number(value):
            ok = False
            report.add(
                "malformed-bound",
                f"lower bound {name}={value!r} is not a finite number",
                bound_name=name,
            )
    return ok


def check_bound_inversion(
    report: "VerificationReport",
    code: str,
    solver: str,
    name: str,
    bound: float,
    objective: float,
    rtol: float = DEFAULT_RTOL,
) -> None:
    """Record ``code`` if the certified lower bound ``name`` exceeds an
    augmentation-free objective.

    The single definition of the inequality — shared by the per-report
    ``bound:<name>`` check (:func:`check_lp_certificate` /
    :func:`check_record`), :func:`repro.verify.cross_check`, and the
    Runner's trial-level certification — so the tolerance rule cannot
    drift across certification paths.  Bounds in :data:`EXACT_BOUNDS`
    compare exactly (an integer inversion is >= 1); everything else
    gets ``rtol`` slack for LP round-off.
    """
    if name in EXACT_BOUNDS:
        rtol = 0.0
    if bound > objective + bound_tolerance(objective, rtol):
        report.add(
            code,
            f"certified lower bound {name}={bound} exceeds {solver}'s "
            f"augmentation-free objective {objective}",
            solver=solver,
            bound_name=name,
            bound=float(bound),
            objective=float(objective),
        )


# ---------------------------------------------------------------------------
# Schedules
# ---------------------------------------------------------------------------


def check_schedule(
    schedule: Schedule,
    metrics: Optional[ScheduleMetrics] = None,
    capacity_switch: Optional[Switch] = None,
    max_augmentation: Optional[int] = None,
    subject: str = "schedule",
) -> VerificationReport:
    """Certify a schedule's feasibility (and its claimed metrics).

    Checks, in order:

    * ``release`` — no flow runs before its release round;
    * ``capacity`` — per-(port, round) loads stay within the allowed
      capacities.  The allowance is, in precedence order:
      ``capacity_switch`` (validated as-is), else the instance's switch
      plus ``max_augmentation`` extra units per port, else the
      augmentation the ``metrics`` claim (``metrics.max_augmentation``),
      else zero — so a resource-augmentation schedule certifies against
      exactly the capacity excess it admits to, and nothing more;
    * ``conservation`` — scheduled demand equals the instance's total
      demand on both switch sides (every flow runs exactly once; the
      dense :class:`Schedule` representation makes the per-flow version
      structural, this cross-checks the aggregate through the load
      matrices);
    * ``metrics`` — when ``metrics`` is given, every field matches a
      recomputation from the schedule (completion times ``C_e = 1 + t``).

    Returns a report; never raises on invalid schedules.
    """
    report = VerificationReport(subject)
    inst = schedule.instance
    n = inst.num_flows

    report.ran("release")
    if n:
        releases = inst.releases()
        early = schedule.assignment < releases
        if early.any():
            for fid in np.flatnonzero(early)[:5].tolist():
                report.add(
                    "early-schedule",
                    f"flow {fid} runs at round "
                    f"{int(schedule.assignment[fid])} before its release "
                    f"{int(releases[fid])}",
                    fid=int(fid),
                    round=int(schedule.assignment[fid]),
                    release=int(releases[fid]),
                )

    allowed = 0
    if capacity_switch is not None:
        switch = capacity_switch
    else:
        switch = inst.switch
        if max_augmentation is not None:
            allowed = int(max_augmentation)
        elif metrics is not None:
            allowed = int(metrics.max_augmentation)

    report.ran("capacity")
    # The (ports x makespan) load matrices dominate the cost of this
    # checker; build them once and derive the augmentation actually
    # used (= Schedule.max_augmentation()) from them instead of letting
    # max_augmentation()/ScheduleMetrics.of() rebuild them.
    in_loads, out_loads = schedule.port_round_loads()
    in_excess = in_loads - inst.switch.input_capacities[:, None]
    out_excess = out_loads - inst.switch.output_capacities[:, None]
    used = int(max(in_excess.max(initial=0), out_excess.max(initial=0)))
    if capacity_switch is None:
        report.stats["augmentation_used"] = used
    makespan = schedule.makespan()
    report.stats["makespan"] = makespan
    for side, loads, caps in (
        ("input", in_loads, switch.input_capacities),
        ("output", out_loads, switch.output_capacities),
    ):
        over = loads > (caps[:, None] + allowed)
        if over.any():
            for p, t in np.argwhere(over)[:5].tolist():
                report.add(
                    "capacity-overload",
                    f"{side} port {p} carries {int(loads[p, t])} in round "
                    f"{t} (capacity {int(caps[p])} + allowed augmentation "
                    f"{allowed})",
                    side=side,
                    port=int(p),
                    round=int(t),
                    load=int(loads[p, t]),
                    capacity=int(caps[p]),
                    allowed_augmentation=allowed,
                )

    report.ran("conservation")
    total_demand = int(inst.demands().sum()) if n else 0
    for side, loads in (("input", in_loads), ("output", out_loads)):
        scheduled = int(loads.sum())
        if scheduled != total_demand:
            report.add(
                "demand-conservation",
                f"{side}-side scheduled demand {scheduled} != instance "
                f"total demand {total_demand}",
                side=side,
                scheduled=scheduled,
                expected=total_demand,
            )

    if metrics is not None:
        report.ran("metrics")
        from repro.core.metrics import (
            average_response_time,
            max_response_time,
            total_response_time,
        )

        # Same fields as ScheduleMetrics.of(schedule), assembled from
        # O(n) pieces plus the load-derived augmentation above — .of()
        # would rebuild the load matrices a second time.
        recomputed = ScheduleMetrics(
            num_flows=n,
            total_response=total_response_time(schedule),
            average_response=average_response_time(schedule),
            max_response=max_response_time(schedule),
            makespan=makespan,
            max_augmentation=used,
        )
        for field_name in (
            "num_flows",
            "total_response",
            "average_response",
            "max_response",
            "makespan",
            "max_augmentation",
        ):
            claimed = getattr(metrics, field_name)
            actual = getattr(recomputed, field_name)
            matches = (
                abs(claimed - actual) <= 1e-9 * max(1.0, abs(actual))
                if isinstance(actual, float)
                else claimed == actual
            )
            if not matches:
                report.add(
                    "metrics-mismatch",
                    f"claimed {field_name}={claimed} but the schedule "
                    f"yields {actual}",
                    field=field_name,
                    claimed=claimed,
                    actual=actual,
                )
    return report


# ---------------------------------------------------------------------------
# LP certificates
# ---------------------------------------------------------------------------


def _metrics_identities(
    report: VerificationReport, metrics: Mapping[str, Any]
) -> None:
    """The internal consistency of a metrics mapping (dict form)."""
    report.ran("metrics-identities")
    n = int(metrics["num_flows"])
    total = float(metrics["total_response"])
    avg = float(metrics["average_response"])
    mx = float(metrics["max_response"])
    expected_avg = (total / n) if n > 0 else 0.0
    if abs(avg - expected_avg) > 1e-9 * max(1.0, expected_avg):
        report.add(
            "metrics-identity",
            f"average_response {avg} != total_response/num_flows "
            f"{expected_avg}",
            average_response=avg,
            expected=expected_avg,
        )
    if n <= 0:
        # A flow count of zero forces every other quantity to zero — a
        # corrupted record claiming n=0 with nonzero responses must not
        # slip past the per-flow checks below (all gated on n > 0).
        if n < 0:
            report.add(
                "metrics-identity",
                f"num_flows {n} is negative",
                num_flows=n,
            )
        for field_name in ("total_response", "max_response", "makespan"):
            value = float(metrics[field_name])
            if value != 0:
                report.add(
                    "metrics-identity",
                    f"{field_name} {value} must be 0 when num_flows is 0",
                    field=field_name,
                    value=value,
                )
    if n > 0:
        # Every response time is >= 1 (C_e = t + 1 >= r_e + 1), so the
        # max is at least 1 and never exceeds the total.
        if mx < 1:
            report.add(
                "metrics-identity",
                f"max_response {mx} < 1 on a non-empty schedule",
                max_response=mx,
            )
        if mx > total + 1e-9:
            report.add(
                "metrics-identity",
                f"max_response {mx} exceeds total_response {total}",
                max_response=mx,
                total_response=total,
            )
        if total < n:
            report.add(
                "metrics-identity",
                f"total_response {total} < num_flows {n} (every flow "
                "responds in >= 1 round)",
                total_response=total,
                num_flows=n,
            )


def _bound_direction(
    report: VerificationReport,
    name: str,
    bound: float,
    objective: Optional[float],
    augmentation: int,
    solver: str,
    rtol: float,
) -> None:
    """Certify the bound/objective inequality in the correct direction.

    An augmentation-free schedule is a feasible solution of the original
    problem, so every certified lower bound must sit at or below its
    objective.  A resource-augmentation schedule (FS-ART, FS-MRT,
    Time-Constrained fallbacks) is *not* feasible for the original
    capacities, so its objective may legitimately dip below the bound;
    the theorem-specific guarantees are checked separately in
    :func:`check_lp_certificate`.
    """
    if objective is None:
        return
    report.ran(f"bound:{name}")
    if bound > 0:
        report.stats[f"ratio:{name}"] = objective / bound
    if augmentation == 0:
        check_bound_inversion(
            report, "bound-above-objective", solver, name, bound,
            objective, rtol,
        )


def _oracle_bound(name: str, instance: Instance, params: Mapping[str, Any]):
    """Independently recompute the claimed bound ``name`` for ``instance``.

    Honors the parameters that change the bound's value (the ART LP
    horizon, the MRT search cap); both oracles are digest-memoised in
    :mod:`repro.lp.bounds`, so repeated certification of one instance
    does no extra LP work.
    """
    from repro.lp.bounds import art_lower_bound, mrt_lower_bound

    if name == "lp_total_response":
        return float(
            art_lower_bound(instance, horizon=params.get("horizon"))
        )
    if name == "rho_star":
        return float(
            mrt_lower_bound(instance, rho_upper=params.get("rho_upper"))
        )
    return None


def check_lp_certificate(
    solve_report,
    instance: Optional[Instance] = None,
    recompute: bool = True,
    rtol: float = DEFAULT_RTOL,
    subject: Optional[str] = None,
) -> VerificationReport:
    """Certify a :class:`~repro.api.report.SolveReport`'s bound claims.

    Checks:

    * ``metrics-identities`` — the metrics are internally consistent
      (``avg * n == total``, ``1 <= max <= total``);
    * ``bound:<name>`` — each claimed lower bound sits below the
      objective it bounds (augmentation-free schedules only) with the
      achieved/bound ratio reported in ``stats["ratio:<name>"]``;
    * ``oracle:<name>`` — with ``recompute=True`` and an instance in
      hand (passed explicitly or embedded in the report's schedule),
      each claimed bound matches an independent recomputation through
      :mod:`repro.lp.bounds` within ``rtol``;
    * ``guarantee:<solver>`` — solver-specific theorem guarantees:
      FS-MRT's schedule responds within ρ* using at most
      ``2 d_max - 1`` extra capacity (Theorem 3); FS-ART's reported
      ``approximation_ratio`` equals ``total_response / bound``.
    """
    report = VerificationReport(
        subject or f"lp-certificate:{solve_report.solver}"
    )
    metrics = solve_report.metrics
    if metrics is not None:
        _metrics_identities(report, metrics.to_dict())
    if not _check_bounds_well_formed(report, solve_report.lower_bounds):
        # Type-corrupted bounds: the numeric comparisons below would
        # crash rather than report; the malformed-bound violations are
        # the finding.
        return report
    if instance is None and solve_report.schedule is not None:
        instance = solve_report.schedule.instance

    augmentation = int(metrics.max_augmentation) if metrics else 0
    for name, (bound, objective) in solve_report.certificates().items():
        _bound_direction(
            report, name, bound, objective, augmentation,
            solve_report.solver, rtol,
        )
        if recompute and instance is not None:
            oracle = _oracle_bound(name, instance, solve_report.params)
            if oracle is not None:
                report.ran(f"oracle:{name}")
                report.stats[f"oracle:{name}"] = oracle
                if abs(bound - oracle) > _tol(oracle, rtol):
                    report.add(
                        "bound-oracle-mismatch",
                        f"{solve_report.solver} claims {name}={bound} but "
                        f"the oracle recomputes {oracle}",
                        bound_name=name,
                        bound=bound,
                        oracle=oracle,
                    )

    _check_guarantees(report, solve_report, instance, rtol)
    return report


def _check_guarantees(
    report: VerificationReport, solve_report, instance, rtol: float
) -> None:
    """Solver-specific theorem guarantees (by registry name)."""
    metrics = solve_report.metrics
    extras = solve_report.extras
    if solve_report.solver == "FS-MRT" and metrics is not None:
        report.ran("guarantee:FS-MRT")
        rho = solve_report.lower_bounds.get("rho_star")
        if rho is not None and metrics.max_response > rho + _tol(rho, rtol):
            report.add(
                "theorem3-response",
                f"FS-MRT max response {metrics.max_response} exceeds its "
                f"certified rho* {rho}",
                max_response=metrics.max_response,
                rho_star=rho,
            )
        if instance is not None:
            cap = 2 * instance.max_demand - 1
            if metrics.max_augmentation > cap:
                report.add(
                    "theorem3-augmentation",
                    f"FS-MRT used {metrics.max_augmentation} extra "
                    f"capacity, above the Theorem 3 bound {cap}",
                    augmentation=metrics.max_augmentation,
                    bound=cap,
                )
    if solve_report.solver == "FS-ART" and metrics is not None:
        ratio = extras.get("approximation_ratio")
        bound = solve_report.lower_bounds.get("lp_total_response")
        if ratio is not None and bound:
            report.ran("guarantee:FS-ART")
            expected = metrics.total_response / bound
            if abs(ratio - expected) > _tol(expected, rtol):
                report.add(
                    "art-ratio-mismatch",
                    f"FS-ART reports approximation_ratio {ratio} but "
                    f"total/bound = {expected}",
                    reported=ratio,
                    expected=expected,
                )


def check_record(
    record: Mapping[str, Any],
    rtol: float = DEFAULT_RTOL,
    subject: Optional[str] = None,
) -> VerificationReport:
    """Certify a cached ``SolveReport.to_dict()`` payload (no schedule).

    The result-store strips schedules before persisting, so this is the
    replayable subset: metrics identities plus the bound/objective
    direction for augmentation-free records.  Bound pseudo-records
    (``kind == "bound"``, metrics ``None``) only need well-formed,
    finite bound values.
    """
    if not isinstance(record, Mapping):
        report = VerificationReport(subject or "record:?")
        report.ran("well-formed")
        report.add(
            "malformed-record",
            f"record payload is {type(record).__name__}, not a mapping",
        )
        return report
    report = VerificationReport(
        subject or f"record:{record.get('solver', '?')}"
    )
    metrics = record.get("metrics")
    bounds = record.get("lower_bounds") or {}
    if not isinstance(metrics, (Mapping, type(None))) or not isinstance(
        bounds, Mapping
    ):
        report.ran("well-formed")
        report.add(
            "malformed-record",
            "metrics/lower_bounds are not mappings",
        )
        return report
    bounds_ok = _check_bounds_well_formed(report, bounds)
    if metrics is None:
        # Bound pseudo-records never carry metrics, and an explicit
        # infeasibility certificate (extras["feasible"] == False) is a
        # legitimate schedule-less outcome.  Anything else is a poisoned
        # entry: run_trial refuses to serve it, so the store verifier
        # must not certify it.
        feasible = (record.get("extras") or {}).get("feasible")
        if record.get("kind") != "bound" and feasible is not False:
            report.add(
                "missing-metrics",
                f"{record.get('kind', '?')!r} record carries no metrics "
                "(poisoned store entry?)",
                kind=record.get("kind"),
            )
        return report
    required = (
        "num_flows", "total_response", "average_response",
        "max_response", "makespan", "max_augmentation",
    )
    missing = [f for f in required if f not in metrics]
    bad_types = [
        f for f in required
        if f not in missing and not _is_number(metrics[f])
    ]
    if missing or bad_types:
        # Type-corrupted metrics would crash the identity arithmetic
        # below; the malformed-metrics violation *is* the finding.
        detail = []
        if missing:
            detail.append(f"missing fields {missing}")
        if bad_types:
            detail.append(
                "non-numeric fields "
                f"{[(f, metrics[f]) for f in bad_types]}"
            )
        report.add(
            "malformed-metrics",
            f"metrics record has {' and '.join(detail)}",
            missing=missing,
            bad_types=bad_types,
        )
        return report
    _metrics_identities(report, metrics)
    if not bounds_ok:
        return report
    from repro.api.report import BOUND_TARGETS

    augmentation = int(metrics["max_augmentation"])
    for name, value in bounds.items():
        target = BOUND_TARGETS.get(name)
        if target is None:
            continue
        _bound_direction(
            report, name, float(value), float(metrics[target]),
            augmentation, str(record.get("solver", "?")), rtol,
        )
    return report


# ---------------------------------------------------------------------------
# Online runs
# ---------------------------------------------------------------------------


def _expected_queue_history(
    instance: Instance, assignment: np.ndarray, rounds: int
) -> np.ndarray:
    """Waiting-flow count at the start of each round, re-derived.

    A flow waits at round ``t`` iff it has been released (``r_e <= t``)
    and has not yet run (``a_e >= t``) — the engine appends its queue
    depth after ingesting round ``t``'s arrivals and before scheduling.
    Computed as released-so-far minus scheduled-before via two
    cumulative bincounts: O(n + rounds), so verifying a long-horizon
    run costs less than simulating it.
    """
    if rounds == 0 or instance.num_flows == 0:
        return np.zeros(rounds, dtype=np.int64)
    releases = instance.releases()
    released = np.cumsum(
        np.bincount(releases, minlength=rounds)[:rounds]
    )
    scheduled = np.cumsum(
        np.bincount(assignment, minlength=rounds)[:rounds]
    )
    scheduled_before = np.concatenate(
        (np.zeros(1, dtype=scheduled.dtype), scheduled[:-1])
    )
    return (released - scheduled_before).astype(np.int64)


def check_online_run(
    result,
    instance: Optional[Instance] = None,
    rtol: float = DEFAULT_RTOL,
    subject: Optional[str] = None,
) -> VerificationReport:
    """Certify a simulation result's queue/arrival accounting.

    Accepts a :class:`~repro.online.simulator.SimulationResult` (the
    instance comes from its schedule) or a
    :class:`~repro.online.simulator.StreamSimulationResult` (pass the
    materialized ``instance`` to enable the assignment-level checks; the
    aggregate identities are checked regardless).

    Checks:

    * ``schedule`` / ``metrics`` — the full :func:`check_schedule` pass
      when an assignment is available (online engines enforce the true
      capacities, so zero augmentation is required);
    * ``round-accounting`` — the reported round count equals the
      schedule's makespan (the engine stops exactly when the queue
      drains);
    * ``queue-accounting`` — the recorded per-round queue depths equal
      the release/assignment re-derivation at every round;
    * ``arrival-accounting`` (streams) — flows counted in equal flows
      scheduled out, and the metrics identities hold.
    """
    from repro.online.simulator import SimulationResult

    if isinstance(result, SimulationResult):
        report = VerificationReport(subject or "online-run")
        inst = result.schedule.instance
        # The online engine enforces the true capacities every round, so
        # the allowance is pinned to zero — a result whose (internally
        # consistent) metrics admit to augmentation is itself the bug.
        report.merge(
            check_schedule(
                result.schedule,
                metrics=result.metrics,
                max_augmentation=0,
                subject="schedule",
            )
        )
        if result.metrics.max_augmentation != 0:
            report.add(
                "online-augmentation",
                "online engine enforces true capacities; "
                "max_augmentation must be 0, got "
                f"{result.metrics.max_augmentation}",
                augmentation=result.metrics.max_augmentation,
            )
        report.ran("round-accounting")
        expected_rounds = result.schedule.makespan()
        if result.rounds != expected_rounds:
            report.add(
                "round-accounting",
                f"simulation reports {result.rounds} rounds but the "
                f"schedule's makespan is {expected_rounds}",
                rounds=result.rounds,
                makespan=expected_rounds,
            )
        report.ran("queue-accounting")
        history = np.asarray(result.queue_history)
        if history.shape[0] != result.rounds:
            report.add(
                "queue-accounting",
                f"queue history has {history.shape[0]} entries for "
                f"{result.rounds} rounds",
                entries=int(history.shape[0]),
                rounds=result.rounds,
            )
        else:
            expected = _expected_queue_history(
                inst, result.schedule.assignment, result.rounds
            )
            bad = np.flatnonzero(history != expected)
            for t in bad[:5].tolist():
                report.add(
                    "queue-accounting",
                    f"round {t} records {int(history[t])} waiting flows "
                    f"but releases/assignments imply {int(expected[t])}",
                    round=int(t),
                    recorded=int(history[t]),
                    expected=int(expected[t]),
                )
        return report

    # Streaming result.
    report = VerificationReport(subject or "stream-run")
    metrics = result.metrics
    _metrics_identities(report, metrics.to_dict())
    report.ran("round-accounting")
    if metrics.makespan != result.rounds:
        report.add(
            "round-accounting",
            f"stream reports {result.rounds} rounds but metrics claim "
            f"makespan {metrics.makespan}",
            rounds=result.rounds,
            makespan=metrics.makespan,
        )
    if metrics.max_augmentation != 0:
        report.add(
            "stream-augmentation",
            "streaming engine enforces true capacities; "
            f"max_augmentation must be 0, got {metrics.max_augmentation}",
            augmentation=metrics.max_augmentation,
        )
    if result.assignment is not None:
        report.ran("arrival-accounting")
        assignment = np.asarray(result.assignment)
        if assignment.shape[0] != metrics.num_flows:
            report.add(
                "arrival-accounting",
                f"assignment covers {assignment.shape[0]} flows but "
                f"{metrics.num_flows} arrived",
                assigned=int(assignment.shape[0]),
                arrived=metrics.num_flows,
            )
        elif (assignment < 0).any():
            unscheduled = int((assignment < 0).sum())
            report.add(
                "arrival-accounting",
                f"{unscheduled} arrived flow(s) were never scheduled",
                unscheduled=unscheduled,
            )
        elif instance is not None and (
            instance.num_flows != assignment.shape[0]
        ):
            # A wrong materialization (different prefix, different
            # seed) is a caller mistake the checker must *report*, not
            # crash on inside the Schedule constructor.
            report.add(
                "instance-mismatch",
                f"materialized instance has {instance.num_flows} flows "
                f"but the stream scheduled {assignment.shape[0]}",
                instance_flows=instance.num_flows,
                stream_flows=int(assignment.shape[0]),
            )
        elif instance is not None:
            schedule = Schedule(instance, assignment)
            report.merge(
                check_schedule(
                    schedule,
                    metrics=metrics,
                    max_augmentation=0,
                    subject="schedule",
                )
            )
            if result.queue_history is not None:
                report.ran("queue-accounting")
                history = np.asarray(result.queue_history)
                expected = _expected_queue_history(
                    instance, assignment, result.rounds
                )
                if history.shape[0] != expected.shape[0] or (
                    history != expected
                ).any():
                    report.add(
                        "queue-accounting",
                        "stream queue history disagrees with the "
                        "release/assignment re-derivation",
                        entries=int(history.shape[0]),
                        rounds=result.rounds,
                    )
    return report


# ---------------------------------------------------------------------------
# Arrival streams
# ---------------------------------------------------------------------------


def check_stream(
    stream,
    rounds: Optional[int] = None,
    subject: Optional[str] = None,
) -> VerificationReport:
    """Certify an arrival stream's builder contract on a bounded prefix.

    Checks:

    * ``determinism`` — two independent iterations of the same prefix
      produce byte-identical batches
      (:meth:`~repro.scenarios.stream.ArrivalStream.prefix_digest`; the
      second digest is accumulated during the validity pass, so the
      whole certification costs exactly two prefix generations);
    * ``batch-validity`` — every batch stays within the stream's switch
      (ports in range, demands ``1 <= d_e <= kappa_e``), mirroring the
      validation :meth:`Instance.create` applies to materialized flows.

    ``rounds`` defaults to the stream's own bound; an unbounded stream
    requires it.
    """
    from itertools import islice

    from repro.scenarios.stream import hash_batch, prefix_hasher

    report = VerificationReport(subject or f"stream:{stream.label}")
    if rounds is None:
        rounds = stream.rounds
    if rounds is None:
        report.add(
            "unbounded-stream",
            f"stream {stream.label!r} is unbounded; pass rounds= to "
            "certify a prefix",
        )
        return report

    first = stream.prefix_digest(rounds)
    report.stats["prefix_digest"] = first

    report.ran("batch-validity")
    switch = stream.switch
    hasher = prefix_hasher(switch)
    for t, (srcs, dsts, demands) in enumerate(islice(iter(stream), rounds)):
        hash_batch(hasher, (srcs, dsts, demands))
        if srcs.size == 0:
            continue
        ports_ok = True
        if int(srcs.min()) < 0 or int(srcs.max()) >= switch.num_inputs:
            ports_ok = False
            report.add(
                "batch-port-range",
                f"round {t}: src port out of range for "
                f"{switch.num_inputs} inputs",
                round=t,
            )
        if int(dsts.min()) < 0 or int(dsts.max()) >= switch.num_outputs:
            ports_ok = False
            report.add(
                "batch-port-range",
                f"round {t}: dst port out of range for "
                f"{switch.num_outputs} outputs",
                round=t,
            )
        if not ports_ok:
            continue
        if int(demands.min()) < 1:
            report.add(
                "batch-demand",
                f"round {t}: demands must be >= 1",
                round=t,
            )
            continue
        kappa = np.minimum(
            switch.input_capacities[srcs], switch.output_capacities[dsts]
        )
        if (demands > kappa).any():
            i = int(np.flatnonzero(demands > kappa)[0])
            report.add(
                "batch-demand",
                f"round {t}: demand {int(demands[i])} exceeds kappa "
                f"{int(kappa[i])}",
                round=t,
                demand=int(demands[i]),
                kappa=int(kappa[i]),
            )

    report.ran("determinism")
    second = hasher.hexdigest()
    if first != second:
        report.add(
            "nondeterministic-stream",
            f"two iterations of {stream.label!r} produced different "
            f"prefixes ({first[:12]} vs {second[:12]}); builders must "
            "derive all RNG state from the seed",
            first=first,
            second=second,
        )
    return report
