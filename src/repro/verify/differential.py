"""Differential oracles: cross-solver and metamorphic certification.

Two harnesses sit on top of the single-report checkers:

* :func:`cross_check` runs any set of registered solvers on one
  instance, certifies each report individually (schedule feasibility +
  LP certificates), and then certifies *mutual* bound consistency: the
  oracle LP bounds (:mod:`repro.lp.bounds`) must sit at or below every
  augmentation-free solver's objective — if any solver beats a bound,
  either the solver cheats or the bound is wrong, and the report says
  which instance exhibits it.

* :func:`metamorphic_check` applies semantics-preserving instance
  transforms — port relabeling, joint demand/capacity scaling, flow
  reordering — and certifies that the LP lower bounds are invariant
  (they are functions of the instance's structure only) and that every
  solver still produces a certifiable schedule on the transformed
  instance.  Solver *objectives* may legitimately move under a
  transform (tie-breaks see different fids/port ids), so only the
  provable invariants are asserted.

Both return structured results; nothing in this module asserts.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.core.flow import Flow
from repro.core.instance import Instance
from repro.core.switch import Switch
from repro.verify.checkers import (
    DEFAULT_RTOL,
    bound_tolerance as _tol,
    check_lp_certificate,
    check_schedule,
)
from repro.verify.violations import VerificationReport


def _short(digest: str) -> str:
    return digest[:12]


def _resolve(name: str):
    """Instantiate a registered solver; unknown names raise (fail fast,
    mirroring :class:`repro.api.runner.Runner` — a typo is a caller bug,
    not a certification finding)."""
    from repro.api.registry import get_solver

    return get_solver(name)


def _applicable(solver, instance: Instance) -> bool:
    """Whether ``solver`` declares itself runnable on ``instance``.

    Solvers with documented preconditions advertise them as attributes
    (``requires_unit_demands`` on FS-ART); default solver sweeps skip
    instances outside a precondition instead of reporting a false
    ``solver-error``.
    """
    if getattr(solver, "requires_unit_demands", False):
        return instance.is_unit_demand
    return True


@dataclass
class CrossCheckResult:
    """Outcome of :func:`cross_check`.

    Attributes
    ----------
    instance_digest:
        Canonical digest of the certified instance.
    reports:
        ``{solver_name: SolveReport}`` for every solver that ran.
    bounds:
        The oracle LP bounds shared by the consistency checks
        (``art_total`` / ``mrt_rho``; empty with ``compute_bounds=False``).
    verification:
        The merged certification report (individual + mutual checks).
    """

    instance_digest: str
    reports: Dict[str, Any] = field(default_factory=dict)
    bounds: Dict[str, float] = field(default_factory=dict)
    verification: VerificationReport = field(
        default_factory=lambda: VerificationReport("cross-check")
    )

    @property
    def ok(self) -> bool:
        return self.verification.ok

    def raise_if_failed(self) -> "CrossCheckResult":
        self.verification.raise_if_failed()
        return self


def cross_check(
    instance: Instance,
    solvers: Optional[Sequence[str]] = None,
    params: Optional[Mapping[str, Mapping[str, Any]]] = None,
    compute_bounds: bool = True,
    rtol: float = DEFAULT_RTOL,
) -> CrossCheckResult:
    """Run ``solvers`` on one instance and certify mutual consistency.

    Parameters
    ----------
    instance:
        The instance to certify on.
    solvers:
        Registry names; defaults to every registered *offline* solver.
    params:
        Optional per-solver solve parameters, ``{name: {key: value}}``.
    compute_bounds:
        Also compute the oracle LP bounds and certify them against every
        augmentation-free objective (the memoised
        :mod:`repro.lp.bounds` oracles, so repeat certification of one
        instance is free).
    rtol:
        Relative tolerance for float bound comparisons.

    A solver that raises contributes a ``solver-error`` violation
    instead of aborting the sweep over the remaining solvers.  With the
    default solver list, solvers whose declared preconditions the
    instance does not meet (FS-ART on non-unit demands) are skipped; an
    explicitly passed solver is always run — asking for it asserts the
    precondition holds.
    """
    from repro.api.registry import list_solvers

    defaulted = solvers is None
    if solvers is None:
        solvers = list_solvers("offline")
    if not solvers:
        # An empty list would "certify" zero solvers — the silent no-op
        # certification this subsystem exists to prevent.
        raise ValueError("cross_check needs at least one solver")
    params = params or {}
    digest = instance.digest()
    result = CrossCheckResult(
        instance_digest=digest,
        verification=VerificationReport(f"cross-check:{_short(digest)}"),
    )
    verification = result.verification

    resolved = {name: _resolve(name) for name in solvers}
    if defaulted:
        solvers = [n for n in solvers if _applicable(resolved[n], instance)]
    for name in solvers:
        verification.ran(f"solver:{name}")
        try:
            report = resolved[name].solve(instance, **dict(params.get(name, {})))
        except Exception as exc:  # solver bug: certify the rest anyway
            verification.add(
                "solver-error",
                f"{name} raised {type(exc).__name__}: {exc}",
                solver=name,
                error=type(exc).__name__,
            )
            continue
        result.reports[name] = report
        if report.schedule is None:
            verification.add(
                "infeasible-report",
                f"{name} produced no schedule on a feasible instance",
                solver=name,
            )
            continue
        verification.merge(
            check_schedule(
                report.schedule,
                metrics=report.metrics,
                subject=f"{name}/schedule",
            )
        )
        verification.merge(
            check_lp_certificate(
                report,
                instance=instance,
                recompute=compute_bounds,
                rtol=rtol,
                subject=f"{name}/certificate",
            )
        )

    if compute_bounds and instance.num_flows:
        from repro.lp.bounds import art_lower_bound, mrt_lower_bound

        art_lb = float(art_lower_bound(instance))
        mrt_lb = float(mrt_lower_bound(instance))
        result.bounds = {"art_total": art_lb, "mrt_rho": mrt_lb}
        verification.stats["art_total_bound"] = art_lb
        verification.stats["mrt_rho_bound"] = mrt_lb
        verification.ran("mutual-bounds")
        from repro.verify.checkers import check_bound_inversion

        for name, report in result.reports.items():
            metrics = report.metrics
            if metrics is None or metrics.max_augmentation != 0:
                continue  # augmented schedules may beat the bounds
            check_bound_inversion(
                verification, "cross-bound-total", name,
                "lp_total_response", art_lb, metrics.total_response,
                rtol=rtol,
            )
            check_bound_inversion(
                verification, "cross-bound-max", name,
                "rho_star", mrt_lb, metrics.max_response,
            )
    return result


# ---------------------------------------------------------------------------
# Metamorphic transforms
# ---------------------------------------------------------------------------


def relabel_ports(instance: Instance, seed: int = 0) -> Instance:
    """Permute input and output port identities (capacities follow).

    The bipartite structure is preserved up to isomorphism, so every
    instance-level quantity that ignores port *names* — both LP bounds,
    exact optima, feasibility — is invariant.
    """
    rng = random.Random(f"relabel:{seed}")
    switch = instance.switch
    in_perm = list(range(switch.num_inputs))
    out_perm = list(range(switch.num_outputs))
    rng.shuffle(in_perm)
    rng.shuffle(out_perm)
    # in_perm[old] = new, so the new port in_perm[old] inherits old's
    # capacity.
    in_caps = [0] * switch.num_inputs
    for old, new in enumerate(in_perm):
        in_caps[new] = int(switch.input_capacities[old])
    out_caps = [0] * switch.num_outputs
    for old, new in enumerate(out_perm):
        out_caps[new] = int(switch.output_capacities[old])
    new_switch = Switch.create(
        switch.num_inputs, switch.num_outputs, in_caps, out_caps
    )
    flows = [
        Flow(in_perm[f.src], out_perm[f.dst], f.demand, f.release)
        for f in instance.flows
    ]
    return Instance.create(new_switch, flows)


def scale_demands(instance: Instance, factor: int = 2) -> Instance:
    """Scale every demand *and* every capacity by ``factor``.

    A flow set is feasible in a round iff its demand sums stay within
    the capacities; multiplying both sides by the same positive integer
    preserves that, so the feasible schedules — and with them both LP
    bounds (which count rounds, not demand units) — are unchanged.
    """
    if not isinstance(factor, int) or factor < 1:
        raise ValueError(f"factor must be a positive int, got {factor!r}")
    switch = instance.switch
    new_switch = Switch.create(
        switch.num_inputs,
        switch.num_outputs,
        (switch.input_capacities * factor).tolist(),
        (switch.output_capacities * factor).tolist(),
    )
    flows = [
        Flow(f.src, f.dst, f.demand * factor, f.release)
        for f in instance.flows
    ]
    return Instance.create(new_switch, flows)


def shuffle_flows(instance: Instance, seed: int = 0) -> Instance:
    """Permute the flow order (fids are renumbered in the new order).

    The flow *multiset* is unchanged, so instance-level quantities are
    invariant; per-flow tie-breaks (which consult fids) may place
    individual flows differently.
    """
    rng = random.Random(f"shuffle:{seed}")
    flows = list(instance.flows)
    rng.shuffle(flows)
    return Instance.create(
        instance.switch,
        [Flow(f.src, f.dst, f.demand, f.release) for f in flows],
    )


def metamorphic_transforms(
    instance: Instance, seed: int = 0, scale_factor: int = 2
) -> List[Tuple[str, Instance]]:
    """The named semantics-preserving variants of ``instance``."""
    return [
        ("relabel-ports", relabel_ports(instance, seed)),
        ("scale-demands", scale_demands(instance, scale_factor)),
        ("shuffle-flows", shuffle_flows(instance, seed)),
    ]


def metamorphic_check(
    instance: Instance,
    solvers: Sequence[str] = ("Greedy",),
    params: Optional[Mapping[str, Mapping[str, Any]]] = None,
    seed: int = 0,
    scale_factor: int = 2,
    rtol: float = DEFAULT_RTOL,
) -> VerificationReport:
    """Certify invariance under semantics-preserving transforms.

    For each transform of :func:`metamorphic_transforms`:

    * ``soundness:<t>`` — the transform preserved what it promised
      (flow count, release multiset, total demand up to the scale
      factor);
    * ``lp-invariance:<t>`` — both oracle LP bounds are unchanged
      (within ``rtol`` for the float ART bound, exactly for the integer
      ρ*);
    * per-solver — every solver still yields a certifiable schedule on
      the transformed instance (:func:`check_schedule` +
      :func:`check_lp_certificate` without re-recomputing oracles).
    """
    from repro.lp.bounds import art_lower_bound, mrt_lower_bound

    params = params or {}
    resolved = {solver: _resolve(solver) for solver in solvers}  # fail fast
    digest = instance.digest()
    report = VerificationReport(f"metamorphic:{_short(digest)}")
    if instance.num_flows == 0:
        report.ran("trivial-empty")
        return report
    base_art = float(art_lower_bound(instance))
    base_mrt = int(mrt_lower_bound(instance))
    base_releases = sorted(f.release for f in instance.flows)
    base_demand = int(instance.demands().sum())

    for name, variant in metamorphic_transforms(
        instance, seed=seed, scale_factor=scale_factor
    ):
        factor = scale_factor if name == "scale-demands" else 1
        report.ran(f"soundness:{name}")
        if variant.num_flows != instance.num_flows:
            report.add(
                "transform-soundness",
                f"{name} changed the flow count "
                f"({instance.num_flows} -> {variant.num_flows})",
                transform=name,
            )
        if sorted(f.release for f in variant.flows) != base_releases:
            report.add(
                "transform-soundness",
                f"{name} changed the release multiset",
                transform=name,
            )
        if int(variant.demands().sum()) != base_demand * factor:
            report.add(
                "transform-soundness",
                f"{name} changed the total demand",
                transform=name,
            )

        report.ran(f"lp-invariance:{name}")
        art = float(art_lower_bound(variant))
        mrt = int(mrt_lower_bound(variant))
        if abs(art - base_art) > _tol(base_art, rtol):
            report.add(
                "lp-invariance",
                f"ART LP bound drifted under {name}: "
                f"{base_art} -> {art}",
                transform=name,
                base=base_art,
                transformed=art,
            )
        if mrt != base_mrt:
            report.add(
                "lp-invariance",
                f"rho* drifted under {name}: {base_mrt} -> {mrt}",
                transform=name,
                base=base_mrt,
                transformed=mrt,
            )

        for solver in solvers:
            if not _applicable(resolved[solver], variant):
                # e.g. FS-ART on the scaled-demands variant: the
                # transform left its unit-demand precondition behind.
                continue
            try:
                # Fresh instantiation per solve — the registry contract
                # lets solvers keep per-solve state.
                solve_report = _resolve(solver).solve(
                    variant, **dict(params.get(solver, {}))
                )
            except Exception as exc:
                report.add(
                    "solver-error",
                    f"{solver} raised {type(exc).__name__} on the "
                    f"{name} variant: {exc}",
                    solver=solver,
                    transform=name,
                )
                continue
            if solve_report.schedule is None:
                report.add(
                    "infeasible-report",
                    f"{solver} produced no schedule on the {name} variant",
                    solver=solver,
                    transform=name,
                )
                continue
            report.merge(
                check_schedule(
                    solve_report.schedule,
                    metrics=solve_report.metrics,
                    subject=f"{name}/{solver}",
                )
            )
            report.merge(
                check_lp_certificate(
                    solve_report,
                    instance=variant,
                    recompute=False,
                    rtol=rtol,
                    subject=f"{name}/{solver}/certificate",
                )
            )
    return report
