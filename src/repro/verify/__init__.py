"""Schedule-certificate subsystem: runtime verification of the paper's
guarantees.

The paper's value is *provable* — rounded schedules are feasible, and
FS-ART / FS-MRT stay within certified factors of the LP (1)-(4) /
(19)-(21) lower bounds.  This package turns those proofs into runtime
infrastructure with three layers:

* **checkers** (:mod:`repro.verify.checkers`) — re-derive feasibility,
  metric consistency, LP certificates, online queue accounting, and
  stream determinism from first principles, reporting structured
  :class:`Violation` lists instead of asserting;
* **differential oracles** (:mod:`repro.verify.differential`) —
  :func:`cross_check` certifies any set of registered solvers against
  each other and the oracle bounds on one instance;
  :func:`metamorphic_check` certifies invariance under
  semantics-preserving transforms (port relabeling, joint
  demand/capacity scaling, flow reordering);
* **wiring** — ``Runner(verify=True)`` certifies every sweep trial, the
  ``python -m repro verify`` CLI replays cached reports / stores /
  scenarios through the checkers, ``simulate(..., verify=True)``
  self-checks the online engine, and ``tests/verify_harness.py``
  exposes ``certify`` pytest fixtures so new suites get certification
  for free.

Quick start
-----------
>>> from repro.verify import certify, cross_check
>>> from repro.workloads import poisson_uniform_workload
>>> inst = poisson_uniform_workload(6, 4.0, 4, seed=0)
>>> cross_check(inst, solvers=["Greedy"]).ok
True
>>> from repro.api import get_solver
>>> certify(get_solver("MaxWeight").solve(inst)).ok
True
"""

from __future__ import annotations

from typing import Any, Optional

from repro.verify.checkers import (
    DEFAULT_RTOL,
    bound_tolerance,
    check_bound_inversion,
    check_lp_certificate,
    check_online_run,
    check_record,
    check_schedule,
    check_stream,
)
from repro.verify.differential import (
    CrossCheckResult,
    cross_check,
    metamorphic_check,
    metamorphic_transforms,
    relabel_ports,
    scale_demands,
    shuffle_flows,
)
from repro.verify.violations import (
    VerificationError,
    VerificationReport,
    Violation,
    merge_reports,
)


def certify_solve(solve_report, instance, subject: str = ""):
    """Full fresh-solve certification: schedule feasibility + certificate.

    The exact pass a ``Runner(verify=True)`` sweep applies to a freshly
    computed report while its schedule is still in hand — schedule
    release/capacity/conservation/metrics checks merged with the
    LP-certificate bound checks (``recompute=False``: the claimed
    bounds are certified against the achieved objectives, not re-solved).
    Shared by :func:`repro.api.runner.run_trial` and the solve service's
    workers (:mod:`repro.service.worker`) so both certify identically.
    Returns the merged :class:`VerificationReport`; callers decide
    whether to ``raise_if_failed``.
    """
    verification = check_schedule(
        solve_report.schedule,
        metrics=solve_report.metrics,
        subject=subject or f"solve:{solve_report.solver}",
    )
    verification.merge(
        check_lp_certificate(
            solve_report,
            instance=instance,
            recompute=False,
            subject="certificate",
        )
    )
    return verification


def certify(obj: Any, instance: Optional[Any] = None, **kwargs):
    """Certify any supported object, dispatching to the right checker.

    Accepts a :class:`~repro.core.schedule.Schedule`, a
    :class:`~repro.api.report.SolveReport`, a
    :class:`~repro.online.simulator.SimulationResult` /
    :class:`~repro.online.simulator.StreamSimulationResult`, an
    :class:`~repro.scenarios.stream.ArrivalStream`, an
    :class:`~repro.core.instance.Instance` (runs :func:`cross_check`),
    or a plain ``dict`` (treated as a cached report record).  Returns
    the resulting :class:`VerificationReport`; extra keyword arguments
    are forwarded to the underlying checker.
    """
    from repro.api.report import SolveReport
    from repro.core.instance import Instance
    from repro.core.schedule import Schedule
    from repro.online.simulator import (
        SimulationResult,
        StreamSimulationResult,
    )
    from repro.scenarios.stream import ArrivalStream

    if isinstance(obj, Schedule):
        return check_schedule(obj, **kwargs)
    if isinstance(obj, SolveReport):
        report = check_lp_certificate(obj, instance=instance, **kwargs)
        if obj.schedule is not None:
            report.merge(
                check_schedule(
                    obj.schedule, metrics=obj.metrics, subject="schedule"
                )
            )
        return report
    if isinstance(obj, (SimulationResult, StreamSimulationResult)):
        return check_online_run(obj, instance=instance, **kwargs)
    if isinstance(obj, ArrivalStream):
        return check_stream(obj, **kwargs)
    if isinstance(obj, Instance):
        return cross_check(obj, **kwargs).verification
    if isinstance(obj, dict):
        return check_record(obj, **kwargs)
    raise TypeError(
        f"don't know how to certify a {type(obj).__name__}; pass a "
        "Schedule, SolveReport, SimulationResult, StreamSimulationResult, "
        "ArrivalStream, Instance, or report-record dict"
    )


__all__ = [
    "Violation",
    "VerificationReport",
    "VerificationError",
    "merge_reports",
    "DEFAULT_RTOL",
    "bound_tolerance",
    "check_bound_inversion",
    "check_schedule",
    "check_lp_certificate",
    "check_online_run",
    "check_record",
    "check_stream",
    "certify",
    "certify_solve",
    "cross_check",
    "CrossCheckResult",
    "metamorphic_check",
    "metamorphic_transforms",
    "relabel_ports",
    "scale_demands",
    "shuffle_flows",
]
