"""``repro bench`` — committed, machine-normalized benchmark snapshots.

The script-mode benchmark suites (``benchmarks/bench_*.py`` modules
exposing ``main(argv)`` with ``--json-out``) measure wall-clock seconds,
which are meaningless across machines.  This runner makes their output
committable: it first times a fixed, dependency-free **baseline op** on
the current machine, then rewrites every ``*_seconds`` measurement with
a sibling ``*_vs_baseline`` ratio (suite seconds / baseline seconds).
Two snapshots taken on different hardware then disagree only where the
*relative* cost of a kernel changed — which is exactly the perf history
an in-tree ``BENCH_*.json`` trajectory is for.

Snapshot envelope (one file per suite, ``BENCH_<suite>.json``)::

    {
      "schema_version": 1,
      "suite": "matching",
      "quick": true,
      "baseline_op": {"seconds": ..., "repeats": ..., "description": ...},
      "results": {... suite payload, ``*_vs_baseline`` fields added ...}
    }

Raw seconds are kept alongside the ratios — they are useful locally —
but diffs of committed snapshots should be read through the
``*_vs_baseline`` fields.
"""

from __future__ import annotations

import importlib.util
import json
import tempfile
import time
from pathlib import Path
from typing import Dict, List, Optional, Tuple

#: Envelope format stamp.
SNAPSHOT_SCHEMA_VERSION = 1

#: ``--check`` fails when a fresh ``*_vs_baseline`` ratio exceeds the
#: committed one by more than this fraction.
REGRESSION_THRESHOLD = 0.20

#: Max fresh runs per suite in ``--check``.  A regression must survive
#: every rerun (the per-ratio *minimum* of the fresh runs is compared,
#: best-of-N being the standard way to time): one noisy scheduling
#: hiccup in a millisecond-scale measurement cannot fail the gate, a
#: real slowdown reproduces in all runs and still does.
CHECK_RETRIES = 3

#: Best-of repeats for the baseline op.
BASELINE_REPEATS = 5

#: Work size of the baseline op.  Chosen so one run lands in the
#: hundreds-of-microseconds range on commodity hardware: long enough to
#: time stably, short enough that calibration is free.
BASELINE_SIZE = 20_000

BASELINE_DESCRIPTION = (
    f"best of {BASELINE_REPEATS}: pure-python loop of {BASELINE_SIZE} "
    "multiply-mod-accumulate steps (fixed work, no numpy, no allocation)"
)


def baseline_op() -> int:
    """The calibrated unit of work: a fixed pure-python arithmetic loop.

    Deliberately interpreter-bound (no numpy): the suites' hot loops are
    a mix of python orchestration and array kernels, and the python
    interpreter's speed is the machine property that dominates
    cross-machine variance in this repo's benchmarks.
    """
    acc = 1
    for i in range(1, BASELINE_SIZE):
        acc = (acc * i + 17) % 1_000_003
    return acc


def calibrate(repeats: int = BASELINE_REPEATS) -> float:
    """Best-of-``repeats`` seconds for one :func:`baseline_op` run."""
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        baseline_op()
        best = min(best, time.perf_counter() - t0)
    return best


def normalize(payload, baseline_seconds: float):
    """Add ``<stem>_vs_baseline`` next to every ``*_seconds`` field.

    Walks the payload recursively; a plain ``"seconds"`` key gets
    ``"vs_baseline"``.  Non-finite and non-numeric values are left
    alone.  Returns the payload (mutated in place for dicts/lists).
    """
    if isinstance(payload, dict):
        for key in list(payload):
            value = payload[key]
            if (
                key.endswith("seconds")
                and isinstance(value, (int, float))
                and not isinstance(value, bool)
                and value == value  # not NaN
                and value not in (float("inf"), float("-inf"))
            ):
                stem = key[: -len("seconds")].rstrip("_")
                ratio_key = f"{stem}_vs_baseline" if stem else "vs_baseline"
                payload[ratio_key] = round(value / baseline_seconds, 4)
            else:
                normalize(value, baseline_seconds)
    elif isinstance(payload, list):
        for item in payload:
            normalize(item, baseline_seconds)
    return payload


def _seconds_keys(payload, prefix: str = "") -> List[Tuple[str, str]]:
    """Every ``*seconds`` measurement key in ``payload``: ``(path, key)``.

    Mirrors :func:`normalize`'s walk exactly, so anything that would
    grow a ``_vs_baseline`` sibling is listed.
    """
    found: List[Tuple[str, str]] = []
    if isinstance(payload, dict):
        for key in sorted(payload):
            path = f"{prefix}.{key}" if prefix else key
            if key.endswith("seconds"):
                found.append((path, key))
            else:
                found.extend(_seconds_keys(payload[key], path))
    elif isinstance(payload, list):
        for i, item in enumerate(payload):
            found.extend(_seconds_keys(item, f"{prefix}[{i}]"))
    return found


def assert_canonical_seconds(results, suite: str) -> None:
    """Fail loudly when a suite emits a non-canonical ``*_seconds`` key.

    Every timing field that lands in a committed snapshot must come
    from the canonical vocabulary
    (:data:`repro.obs.metrics.BENCH_SECONDS_KEYS`) — otherwise ad-hoc
    names accrete in ``BENCH_*.json`` diffs, and cross-suite tooling
    (dashboards, the regression gate's path matching) silently splits
    one phase across several spellings.  Extend the frozen set in
    ``repro/obs/metrics.py`` deliberately when a suite genuinely needs
    a new measurement name.
    """
    from repro.obs.metrics import BENCH_SECONDS_KEYS, is_canonical_seconds_key

    unknown = sorted(
        {
            f"{path} (key {key!r})"
            for path, key in _seconds_keys(results)
            if not is_canonical_seconds_key(key)
        }
    )
    if unknown:
        raise RuntimeError(
            f"benchmark suite {suite!r} emitted non-canonical timing "
            f"key(s): {', '.join(unknown)}; allowed names are "
            f"{sorted(BENCH_SECONDS_KEYS)} — add the new name to "
            "BENCH_SECONDS_KEYS in src/repro/obs/metrics.py if it is "
            "intentional"
        )


def discover_suites(bench_dir: "str | Path") -> Dict[str, Path]:
    """Script-mode suites: ``bench_*.py`` files whose source defines
    ``main(``.  (A source scan, not an import — the pytest-benchmark
    only modules must not be imported just to be rejected.)"""
    suites = {}
    for path in sorted(Path(bench_dir).glob("bench_*.py")):
        try:
            text = path.read_text(encoding="utf-8")
        except OSError:
            continue
        if "\ndef main(" in text and "--json-out" in text:
            suites[path.stem[len("bench_"):]] = path
    return suites


def _load_suite(name: str, path: Path):
    spec = importlib.util.spec_from_file_location(f"repro_bench_{name}", path)
    if spec is None or spec.loader is None:  # pragma: no cover - defensive
        raise RuntimeError(f"cannot load benchmark suite {path}")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def run_suite(
    name: str,
    path: Path,
    out_dir: Path,
    baseline_seconds: float,
    quick: bool = True,
) -> Path:
    """Run one suite and write its normalized ``BENCH_<name>.json``.

    The suite's own ``main`` writes its raw payload to a scratch file
    (so this runner composes with any script that honours
    ``--json-out PATH``); a non-zero suite exit — a failed in-suite
    assertion like a speedup floor — propagates as ``RuntimeError``.
    """
    module = _load_suite(name, path)
    raw_path = out_dir / f".bench-raw-{name}.json"
    argv: List[str] = ["--json-out", str(raw_path)]
    if quick:
        argv.append("--quick")
    rc = module.main(argv)
    if rc:
        raise RuntimeError(f"benchmark suite {name!r} failed with exit {rc}")
    try:
        results = json.loads(raw_path.read_text(encoding="utf-8"))
    finally:
        raw_path.unlink(missing_ok=True)
    assert_canonical_seconds(results, name)
    snapshot = {
        "schema_version": SNAPSHOT_SCHEMA_VERSION,
        "suite": name,
        "quick": quick,
        "baseline_op": {
            "seconds": baseline_seconds,
            "repeats": BASELINE_REPEATS,
            "description": BASELINE_DESCRIPTION,
        },
        "results": normalize(results, baseline_seconds),
    }
    out_path = out_dir / f"BENCH_{name}.json"
    out_path.write_text(
        json.dumps(snapshot, indent=1, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    return out_path


def collect_ratios(payload, prefix: str = "") -> Dict[str, float]:
    """Every ``*_vs_baseline`` ratio in ``payload``, keyed by JSON path.

    The comparison domain of ``--check``: paths are stable across runs
    of the same suite (dict keys sorted, list positions indexed), so a
    committed and a fresh snapshot line up field by field.
    """
    ratios: Dict[str, float] = {}
    if isinstance(payload, dict):
        for key in sorted(payload):
            path = f"{prefix}.{key}" if prefix else key
            value = payload[key]
            if key == "vs_baseline" or key.endswith("_vs_baseline"):
                if isinstance(value, (int, float)) and not isinstance(
                    value, bool
                ):
                    ratios[path] = float(value)
            else:
                ratios.update(collect_ratios(value, path))
    elif isinstance(payload, list):
        for i, item in enumerate(payload):
            ratios.update(collect_ratios(item, f"{prefix}[{i}]"))
    return ratios


def check_suite(
    name: str,
    path: Path,
    committed_path: Path,
    baseline_seconds: float,
    threshold: float = REGRESSION_THRESHOLD,
) -> Tuple[List[Tuple[str, float, float]], int]:
    """Compare a fresh run of one suite against its committed snapshot.

    The suite is re-run in the committed snapshot's own ``quick`` mode
    into a temporary directory (the committed file is never touched);
    every ``*_vs_baseline`` ratio present in both snapshots is compared.
    A candidate regression must survive up to :data:`CHECK_RETRIES`
    fresh runs — the per-ratio minimum across runs is what is compared,
    so scheduling noise in millisecond-scale measurements cannot fail
    the gate.  Returns ``(regressions, compared)`` where each regression
    is ``(json_path, committed_ratio, fresh_ratio)`` with the fresh
    ratio more than ``threshold`` above the committed one.
    """
    committed = json.loads(committed_path.read_text(encoding="utf-8"))
    old = collect_ratios(committed.get("results", {}))
    best: Dict[str, float] = {}
    regressions: List[Tuple[str, float, float]] = []
    shared: List[str] = []
    for attempt in range(CHECK_RETRIES):
        with tempfile.TemporaryDirectory() as tmp:
            fresh_path = run_suite(
                name,
                path,
                Path(tmp),
                baseline_seconds,
                quick=bool(committed.get("quick", True)),
            )
            fresh = json.loads(fresh_path.read_text(encoding="utf-8"))
        new = collect_ratios(fresh.get("results", {}))
        for ratio_path, value in new.items():
            if ratio_path not in best or value < best[ratio_path]:
                best[ratio_path] = value
        shared = sorted(set(old) & set(best))
        regressions = [
            (ratio_path, old[ratio_path], best[ratio_path])
            for ratio_path in shared
            if old[ratio_path] > 0
            and best[ratio_path] > old[ratio_path] * (1 + threshold)
        ]
        if not regressions:
            break
        if attempt < CHECK_RETRIES - 1:
            print(
                f"{len(regressions)} candidate regression(s); rerunning "
                "to confirm"
            )
    return regressions, len(shared)


def run_check(suites: Dict[str, Path], out_dir: Path) -> int:
    """The ``--check`` regression gate over every committed snapshot.

    Suites without a committed ``BENCH_<name>.json`` in ``out_dir`` are
    skipped with a note (a brand-new suite must not fail the gate before
    its first snapshot lands); with no committed snapshot at all there
    is nothing to guard and that *is* an error.  Exit status 1 on any
    ``*_vs_baseline`` regression beyond :data:`REGRESSION_THRESHOLD`.
    """
    to_check = {
        name: (path, out_dir / f"BENCH_{name}.json")
        for name, path in suites.items()
        if (out_dir / f"BENCH_{name}.json").is_file()
    }
    if not to_check:
        raise SystemExit(
            f"error: no committed BENCH_*.json snapshots in {out_dir} to "
            "check against; run `repro bench` and commit the snapshots first"
        )
    skipped = sorted(set(suites) - set(to_check))
    for name in skipped:
        print(f"note: suite {name!r} has no committed snapshot; skipped")
    baseline_seconds = calibrate()
    print(
        f"baseline op: {baseline_seconds * 1e6:.0f} us "
        f"({BASELINE_DESCRIPTION})"
    )
    failed = False
    for name, (path, committed_path) in to_check.items():
        print(f"\n=== check {name} ({committed_path.name}) ===")
        try:
            regressions, compared = check_suite(
                name, path, committed_path, baseline_seconds
            )
        except RuntimeError as exc:
            raise SystemExit(f"error: {exc}")
        if regressions:
            failed = True
            for ratio_path, before, after in regressions:
                print(
                    f"REGRESSION {ratio_path}: {before:.4f} -> {after:.4f} "
                    f"(+{(after / before - 1) * 100:.0f}%, limit "
                    f"+{REGRESSION_THRESHOLD * 100:.0f}%)"
                )
        print(
            f"{compared} ratio(s) compared, {len(regressions)} regression(s)"
        )
    if failed:
        print("\nbench check FAILED — see regressions above")
        return 1
    print("\nbench check passed")
    return 0


def main(args) -> int:
    """``repro bench`` entry point (argparse namespace from __main__)."""
    bench_dir = Path(args.bench_dir)
    if not bench_dir.is_dir():
        raise SystemExit(f"error: benchmark dir {args.bench_dir!r} not found")
    suites = discover_suites(bench_dir)
    if not suites:
        raise SystemExit(
            f"error: no script-mode bench_*.py suites in {args.bench_dir!r}"
        )
    selected: Optional[List[str]] = (
        [s for s in args.only.split(",") if s] if args.only else None
    )
    if selected:
        unknown = sorted(set(selected) - set(suites))
        if unknown:
            raise SystemExit(
                f"error: unknown suite(s) {unknown}; available: "
                f"{sorted(suites)}"
            )
        suites = {name: suites[name] for name in selected}
    out_dir = Path(args.out_dir)
    if getattr(args, "check", False):
        return run_check(suites, out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)

    baseline_seconds = calibrate()
    print(
        f"baseline op: {baseline_seconds * 1e6:.0f} us "
        f"({BASELINE_DESCRIPTION})"
    )
    written = []
    for name, path in suites.items():
        print(f"\n=== {name} ({path.name}) ===")
        try:
            out_path = run_suite(
                name, path, out_dir, baseline_seconds, quick=args.quick
            )
        except RuntimeError as exc:
            raise SystemExit(f"error: {exc}")
        written.append(out_path)
        print(f"snapshot: {out_path}")
    print(
        f"\n{len(written)} snapshot(s) written; commit them to extend the "
        "perf history"
    )
    return 0
