"""repro.service — the long-lived solve service.

A stdlib-only (asyncio + ``http.client``) service that turns the
repository's content-addressed result store into a network-facing,
digest-batching solve endpoint:

* :mod:`~repro.service.protocol` — schema-versioned wire dataclasses
  (``SolveRequest`` / ``SolveResponse`` / ``ErrorInfo``).
* :mod:`~repro.service.broker` — per-digest request coalescing,
  admission control (bounded queue depth, per-solver caps, drain flag),
  per-request timeouts.
* :mod:`~repro.service.jobs` / :mod:`~repro.service.worker` — the
  filesystem work-stealing queue and the claim-solve-store worker
  loops; any process sharing the cache dir (``repro serve --join``)
  steals work with zero duplicate solves.
* :mod:`~repro.service.server` / :mod:`~repro.service.client` — the
  asyncio HTTP front-end and the blocking client behind
  ``repro submit``.
* :mod:`~repro.service.metrics` — Prometheus-text counters, gauges,
  and latency histograms served on ``GET /metrics``.

>>> from repro.service import ServiceThread, ServiceClient
>>> with ServiceThread(cache_dir, workers=2, worker_mode="thread") as svc:
...     response = ServiceClient(svc.address).solve(
...         "lp-rounding", scenario="hotspot:ports=8,mean=4,horizon=6")
"""

from repro.service.broker import BrokerConfig, SolveBroker
from repro.service.client import ServiceClient, ServiceError
from repro.service.jobs import Job, JobQueue
from repro.service.metrics import ServiceMetrics, parse_metric
from repro.service.protocol import (
    ERROR_STATUS,
    PROTOCOL_VERSION,
    ErrorInfo,
    ProtocolError,
    SolveRequest,
    SolveResponse,
    error_response,
)
from repro.service.server import ServiceThread, SolveService
from repro.service.worker import WorkerPool, execute_job, worker_loop

__all__ = [
    "BrokerConfig",
    "SolveBroker",
    "ServiceClient",
    "ServiceError",
    "Job",
    "JobQueue",
    "ServiceMetrics",
    "parse_metric",
    "ERROR_STATUS",
    "PROTOCOL_VERSION",
    "ErrorInfo",
    "ProtocolError",
    "SolveRequest",
    "SolveResponse",
    "error_response",
    "ServiceThread",
    "SolveService",
    "WorkerPool",
    "execute_job",
    "worker_loop",
]
