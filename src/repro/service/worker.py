"""Work-stealing solve workers over a shared cache directory.

A worker is just a loop over :meth:`~repro.service.jobs.JobQueue.claim`:
scan the queue, win jobs via exclusive claim files, solve them, persist
the report into this worker's own result-store shard (the store's
shard-per-writer layout means workers never contend on a file), and
publish a done marker.  Nothing about the loop knows whether its peers
are threads, processes, or other machines — the filesystem is the whole
coordination protocol, which is what turns ``repro serve --join
<cache-dir>`` into a distributed executor.

:class:`WorkerPool` runs N such loops as daemon processes (real
parallelism for CPU-bound LP solves) or threads (cheap, deterministic
test fixtures); both share one stop event and drain cleanly: a stopping
worker finishes the job it claimed — never abandoning a claim — then
flushes and closes its shard.
"""

from __future__ import annotations

import multiprocessing
import os
import socket
import threading
from typing import Callable, List, Optional

from repro.service.jobs import DEFAULT_CLAIM_TIMEOUT, Job, JobQueue
from repro.utils.timing import Timer


def default_owner() -> str:
    """Claim-file identity of this worker: host, pid, thread."""
    return (
        f"{socket.gethostname()}:{os.getpid()}:"
        f"{threading.current_thread().name}"
    )


def execute_job(job: Job, store) -> dict:
    """Run one claimed job to a done-marker outcome payload.

    Mirrors the sweep's :func:`repro.api.runner.run_trial` contract
    exactly: the stored record is the schedule- and timing-stripped
    :meth:`~repro.api.report.SolveReport.to_stored_dict` payload, and
    with ``job.verify`` the fresh report is certified
    (:func:`repro.verify.certify_solve`) *before* the store put, so a
    bad result can never poison the shared cache.  Failures — solver
    exceptions, bad params, verification violations — never raise: they
    become structured error outcomes for the broker to serve, and the
    worker moves on to the next job.

    When ``job.trace`` carries a :class:`~repro.obs.spans.TraceContext`
    payload, the job runs under a ``job`` span resumed from it — worker
    spans nest under the broker's request span across the process (or
    machine) boundary — and the collected span records ship back in the
    outcome's ``spans`` field for the broker to absorb.
    """
    from repro.obs.spans import TraceContext, Tracer, activate, deactivate

    if job.trace is None:
        return _run_job(job, store)
    try:
        ctx = TraceContext.from_dict(job.trace)
    except (KeyError, TypeError):  # malformed carrier: run untraced
        return _run_job(job, store)
    tracer = Tracer(trace_id=ctx.trace_id)
    prev = activate(tracer)
    try:
        with tracer.resume(ctx):
            with tracer.span("job", id_suffix="job", solver=job.solver):
                outcome = _run_job(job, store)
    finally:
        deactivate(prev)
    outcome["spans"] = tracer.drain()
    return outcome


def _run_job(job: Job, store) -> dict:
    """The traced-or-not core of :func:`execute_job`."""
    from repro.core.instance import Instance

    timer = Timer()
    try:
        instance = Instance.from_dict(job.instance)
        from repro.api.registry import get_solver

        solver = get_solver(job.solver)
        with timer.measure("solve"):
            report = solver.solve(instance, **dict(job.params))
        certified = False
        if job.verify and report.schedule is not None:
            from repro.verify import certify_solve

            with timer.measure("verify"):
                certify_solve(
                    report, instance, subject=f"{job.solver}@{job.key[:12]}"
                ).raise_if_failed()
            certified = True
        stored = report.to_stored_dict()
        store.put(job.solver, instance.digest(), dict(job.params), stored)
        return {
            "ok": True,
            "key": job.key,
            "solver": job.solver,
            "digest": instance.digest(),
            "certified": certified,
            "report": stored,
            "timings": dict(timer.totals),
        }
    except BaseException as exc:
        if isinstance(exc, (KeyboardInterrupt, SystemExit)):
            raise
        from repro.verify import VerificationError

        code = (
            "verification-failed"
            if isinstance(exc, VerificationError)
            else "solver-error"
        )
        return {
            "ok": False,
            "key": job.key,
            "solver": job.solver,
            "error": {
                "code": code,
                "message": f"{type(exc).__name__}: {exc}",
            },
            "timings": dict(timer.totals),
        }


def worker_loop(
    cache_dir: str,
    stop,
    *,
    owner: Optional[str] = None,
    poll_interval: float = 0.05,
    claim_timeout: float = DEFAULT_CLAIM_TIMEOUT,
    on_job: Optional[Callable[[Job], None]] = None,
) -> int:
    """Claim-and-solve until ``stop`` is set; returns jobs completed.

    ``stop`` is any object with ``is_set()`` / ``wait(timeout)`` —
    ``threading.Event`` and ``multiprocessing.Event`` both qualify, so
    the same loop body serves thread workers, process workers, and the
    ``--join`` CLI.  An idle pass (nothing claimable) sleeps
    ``poll_interval`` on the event, so stopping is prompt.  ``on_job``
    is a test hook observing each claimed job *before* it runs.

    The worker opens its own private :class:`~repro.api.store.
    ResultStore` (one shard per worker) and closes it on the way out —
    including on ``KeyboardInterrupt``, so a Ctrl-C'd worker leaves
    every completed record flushed and readable.
    """
    from repro.api.store import ResultStore

    store = ResultStore(cache_dir)
    queue = JobQueue(cache_dir)
    me = owner or default_owner()
    completed = 0
    try:
        while not stop.is_set():
            progressed = False
            for key in queue.pending_keys():
                if stop.is_set():
                    break
                job = queue.claim(key, me, stale_after=claim_timeout)
                if job is None:
                    continue
                if on_job is not None:
                    on_job(job)
                outcome = execute_job(job, store)
                outcome["worker"] = me
                queue.complete(key, outcome)
                completed += 1
                progressed = True
            if not progressed:
                stop.wait(poll_interval)
    except KeyboardInterrupt:
        pass  # fall through to the flush below; records survive
    finally:
        store.close()
    return completed


def _process_entry(cache_dir, stop, owner, poll_interval, claim_timeout):
    # Separate module-level entry so spawn-based start methods can
    # pickle the target.
    worker_loop(
        cache_dir,
        stop,
        owner=owner,
        poll_interval=poll_interval,
        claim_timeout=claim_timeout,
    )


class WorkerPool:
    """N work-stealing workers over one cache dir, stopped as a unit.

    ``mode="process"`` (default) runs each worker in its own daemon
    process — real parallelism for the CPU-bound solves and exactly the
    topology a multi-machine deployment has, just co-located.
    ``mode="thread"`` runs them as daemon threads in-process: cheaper to
    spin up and able to share test instrumentation (``on_job``), at the
    cost of the GIL.
    """

    def __init__(
        self,
        cache_dir: "str | os.PathLike",
        workers: int = 2,
        *,
        mode: str = "process",
        poll_interval: float = 0.05,
        claim_timeout: float = DEFAULT_CLAIM_TIMEOUT,
        on_job: Optional[Callable[[Job], None]] = None,
    ):
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if mode not in ("process", "thread"):
            raise ValueError(f"mode must be 'process' or 'thread', got {mode!r}")
        if on_job is not None and mode != "thread":
            raise ValueError("on_job instrumentation requires mode='thread'")
        self.cache_dir = str(cache_dir)
        self.workers = int(workers)
        self.mode = mode
        self.poll_interval = poll_interval
        self.claim_timeout = claim_timeout
        self.on_job = on_job
        self._members: List = []
        self._stop = (
            threading.Event() if mode == "thread" else multiprocessing.Event()
        )

    def start(self) -> "WorkerPool":
        if self._members:
            raise RuntimeError("worker pool already started")
        for i in range(self.workers):
            if self.mode == "thread":
                member = threading.Thread(
                    target=worker_loop,
                    args=(self.cache_dir, self._stop),
                    kwargs=dict(
                        owner=f"{default_owner()}#w{i}",
                        poll_interval=self.poll_interval,
                        claim_timeout=self.claim_timeout,
                        on_job=self.on_job,
                    ),
                    name=f"repro-worker-{i}",
                    daemon=True,
                )
            else:
                member = multiprocessing.Process(
                    target=_process_entry,
                    args=(
                        self.cache_dir,
                        self._stop,
                        None,  # owner derived in the child (its own pid)
                        self.poll_interval,
                        self.claim_timeout,
                    ),
                    name=f"repro-worker-{i}",
                    daemon=True,
                )
            member.start()
            self._members.append(member)
        return self

    def stop(self, timeout: float = 30.0) -> None:
        """Signal every worker and wait for the drain.

        Workers finish the job they are on (claims are never abandoned)
        before exiting; a worker still alive after ``timeout`` seconds
        is abandoned (processes are daemonic, so interpreter exit still
        reaps it).
        """
        self._stop.set()
        for member in self._members:
            member.join(timeout=timeout)
        self._members = []

    @property
    def alive(self) -> int:
        """Workers still running."""
        return sum(1 for m in self._members if m.is_alive())

    def __enter__(self) -> "WorkerPool":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()
