"""The store-backed distributed work queue of the solve service.

The queue lives *inside* the result-store directory — ``<cache_dir>/
queue/`` — so "share a cache dir" is the complete deployment story: any
process that can read the store's shards can also steal its work.  One
unit of work is one file triple keyed by the store's
:func:`~repro.api.store.canonical_key` (the SHA-256 of ``(solver,
instance digest, params)``, i.e. exactly the key the finished record is
stored under):

``<key>.job``
    The work itself: solver name, params, the full inline instance
    payload, and the verify flag.  Written atomically (temp file +
    ``os.replace``) so a scanner never sees a half-written job.
``<key>.claim``
    Exclusive-creation lockfile (``O_CREAT | O_EXCL``) naming the owner.
    Creating it *is* winning the work — the atomicity primitive every
    shared filesystem provides — which is what lets a second
    ``repro serve --join <cache-dir>`` process on another machine steal
    jobs with zero duplicate solves.  A claim left by a crashed worker
    goes stale after ``stale_after`` seconds and is broken (unlinked);
    the racers then fight a fresh ``O_EXCL`` round for it.
``<key>.done``
    Completion marker with the outcome payload: the stored report (or a
    structured error for failed jobs), worker identity, per-phase
    timings, and the certification flag.  Written atomically *after*
    the result lands in the store, so a broker polling the store never
    races a half-finished job.  Brokers read done markers without
    consuming them (several brokers may wait on one key) and discard
    them once settled; :meth:`JobQueue.sweep_done` garbage-collects
    markers nobody claimed.
"""

from __future__ import annotations

import json
import os
import time
import uuid
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional

#: Queue subdirectory inside a result-store cache dir.
QUEUE_DIRNAME = "queue"

#: Seconds after which an unfinished claim is presumed crashed and may
#: be broken.  Generous: the largest LP solves run minutes, and a stolen
#: still-running job would be solved twice (correct, just wasted work).
DEFAULT_CLAIM_TIMEOUT = 600.0

#: Schema stamp inside job files (reject future-format jobs cleanly).
JOB_SCHEMA_VERSION = 1


@dataclass(frozen=True)
class Job:
    """One queued ``(digest, solver)`` solve, self-contained and inert.

    Carries the full instance payload so a stealing worker needs nothing
    but the shared directory — no side channel, no scenario registry
    round-trip, no network.
    """

    key: str
    solver: str
    instance: dict
    params: Dict = field(default_factory=dict)
    verify: bool = False
    #: Optional trace carrier (``{"trace_id": ..., "span_id": ...}``):
    #: the broker's open request span, so the executing worker's spans
    #: nest under the request that enqueued the job — even when that
    #: worker is a ``--join`` process on another machine.
    trace: Optional[Dict] = None

    def to_dict(self) -> dict:
        out = {
            "schema_version": JOB_SCHEMA_VERSION,
            "key": self.key,
            "solver": self.solver,
            "instance": self.instance,
            "params": dict(self.params),
            "verify": self.verify,
        }
        if self.trace is not None:
            out["trace"] = dict(self.trace)
        return out

    @staticmethod
    def from_dict(data: dict) -> "Job":
        version = data.get("schema_version", JOB_SCHEMA_VERSION)
        if version != JOB_SCHEMA_VERSION:
            raise ValueError(
                f"unsupported job schema_version {version!r} (this build "
                f"reads version {JOB_SCHEMA_VERSION})"
            )
        trace = data.get("trace")
        return Job(
            key=data["key"],
            solver=data["solver"],
            instance=data["instance"],
            params=dict(data.get("params", {})),
            verify=bool(data.get("verify", False)),
            trace=dict(trace) if trace is not None else None,
        )


class JobQueue:
    """File-per-job queue under ``<cache_dir>/queue/`` (see module doc)."""

    def __init__(self, cache_dir: "str | Path"):
        self.dir = Path(cache_dir) / QUEUE_DIRNAME
        self.dir.mkdir(parents=True, exist_ok=True)

    def _path(self, key: str, suffix: str) -> Path:
        return self.dir / f"{key}{suffix}"

    def _write_atomic(self, path: Path, payload: dict) -> None:
        tmp = self.dir / f".tmp-{uuid.uuid4().hex}"
        tmp.write_text(json.dumps(payload, sort_keys=True), encoding="utf-8")
        os.replace(tmp, path)

    # ------------------------------------------------------------------
    # Producer side (broker)
    # ------------------------------------------------------------------

    def enqueue(self, job: Job) -> bool:
        """Publish ``job`` for any worker to claim.

        Returns ``False`` without writing when the job is already
        queued or already carries an unconsumed done marker — the
        multi-broker case where another front-end enqueued the same key
        first; the caller simply waits on the shared outcome.
        """
        if (
            self._path(job.key, ".job").exists()
            or self._path(job.key, ".done").exists()
        ):
            return False
        self._write_atomic(self._path(job.key, ".job"), job.to_dict())
        return True

    def pending_keys(self) -> List[str]:
        """Keys with a published job file, in sorted (stable) order."""
        return sorted(p.stem for p in self.dir.glob("*.job"))

    # ------------------------------------------------------------------
    # Worker side
    # ------------------------------------------------------------------

    def claim(
        self,
        key: str,
        owner: str,
        stale_after: Optional[float] = DEFAULT_CLAIM_TIMEOUT,
    ) -> Optional[Job]:
        """Try to win ``key``; the claimed :class:`Job` on success.

        Exactly one concurrent caller — across every process and machine
        sharing the directory — receives the job (``O_EXCL`` claim
        creation).  Losers, completed keys, and keys whose job payload
        vanished mid-race all get ``None``; a claim older than
        ``stale_after`` with no done marker is broken so the next scan
        can re-claim crashed work.
        """
        claim = self._path(key, ".claim")
        try:
            fd = os.open(claim, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            if stale_after is not None and not self._path(key, ".done").exists():
                try:
                    age = time.time() - claim.stat().st_mtime
                except OSError:
                    return None  # claim vanished: owner just finished
                if age > stale_after:
                    # Break the crashed owner's claim.  Several workers
                    # may race this unlink; the missing_ok makes losing
                    # harmless, and the job is only re-won through a
                    # fresh O_EXCL round on the next scan.
                    claim.unlink(missing_ok=True)
            return None
        with os.fdopen(fd, "w", encoding="utf-8") as fh:
            fh.write(json.dumps({"owner": owner}))
        try:
            data = json.loads(
                self._path(key, ".job").read_text(encoding="utf-8")
            )
            return Job.from_dict(data)
        except (OSError, ValueError, KeyError):
            # The job completed (and was unlinked) between our scan and
            # our claim, or the payload is garbage; either way there is
            # nothing to run — release so we don't wedge the key.
            self.release(key)
            return None

    def release(self, key: str) -> None:
        """Drop an unfinished claim so the job can be re-won."""
        self._path(key, ".claim").unlink(missing_ok=True)

    def complete(self, key: str, outcome: dict) -> None:
        """Publish ``outcome`` and retire the job.

        Order matters: the done marker appears first (atomic rename), so
        at no instant is the key neither pending nor done; then the job
        file and claim are removed, which is what stops scanners from
        considering the key at all.
        """
        self._write_atomic(self._path(key, ".done"), outcome)
        self._path(key, ".job").unlink(missing_ok=True)
        self._path(key, ".claim").unlink(missing_ok=True)

    # ------------------------------------------------------------------
    # Outcome side (broker's reaper)
    # ------------------------------------------------------------------

    def done_keys(self) -> List[str]:
        """Keys with an unconsumed done marker."""
        return sorted(p.stem for p in self.dir.glob("*.done"))

    def read_done(self, key: str) -> Optional[dict]:
        """The outcome payload for ``key``, without consuming it.

        Non-destructive because several brokers may be waiting on the
        same key; each settles its own waiters, then calls
        :meth:`discard_done`, and the double-unlink is harmless.
        """
        try:
            return json.loads(
                self._path(key, ".done").read_text(encoding="utf-8")
            )
        except (OSError, ValueError):
            return None

    def discard_done(self, key: str) -> None:
        """Drop a settled done marker."""
        self._path(key, ".done").unlink(missing_ok=True)

    def sweep_done(self, older_than: float) -> int:
        """Unlink done markers older than ``older_than`` seconds.

        Markers for jobs whose enqueueing broker died (or that were
        enqueued out-of-band) would otherwise accumulate forever; the
        results themselves are safe in the store.  Returns the number
        swept.
        """
        cutoff = time.time() - older_than
        swept = 0
        for marker in self.dir.glob("*.done"):
            try:
                if marker.stat().st_mtime < cutoff:
                    marker.unlink(missing_ok=True)
                    swept += 1
            except OSError:
                continue
        return swept

    def __len__(self) -> int:
        return len(self.pending_keys())
