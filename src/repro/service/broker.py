"""The request broker: digest-coalescing, admission control, timeouts.

One broker fronts one shared result-store directory.  Every request is
normalized to the store's own content address — ``canonical_key(solver,
Instance.digest(), params)`` — and then falls through three tiers:

1. **Store** — completed work is answered straight from the shared
   :class:`~repro.api.store.ResultStore` (refreshed incrementally, so
   records solved by *other* processes count), costing one index lookup.
2. **Coalesce** — a request whose key is already in flight attaches to
   the existing :class:`asyncio.Future`; a burst of N identical requests
   performs exactly one solve and N waiters share its outcome.
3. **Admit** — genuinely new work passes admission control (bounded
   queue depth, per-solver concurrency cap, drain flag) and is published
   to the on-disk :class:`~repro.service.jobs.JobQueue`, where any
   worker — this process's pool or a ``--join`` process on another
   machine — steals it.

Completion flows back through the queue's done markers (which carry
worker identity, per-phase timings, and structured errors) with the
store itself as fallback: if another broker consumed a shared done
marker first, the record's appearance in the store still settles the
waiters.  Per-request timeouts detach the waiter only — the solve keeps
running and lands in the store for the next request.
"""

from __future__ import annotations

import asyncio
import dataclasses
import time
from dataclasses import dataclass
from typing import Dict, Optional

from repro.api.store import ResultStore, canonical_key
from repro.obs.spans import Tracer, new_trace_id
from repro.service.jobs import Job, JobQueue
from repro.service.metrics import ServiceMetrics
from repro.service.protocol import (
    ProtocolError,
    SolveRequest,
    SolveResponse,
    error_response,
)


@dataclass(frozen=True)
class BrokerConfig:
    """Admission-control and polling knobs of one broker."""

    #: Maximum keys simultaneously in flight (queued + solving).  A
    #: request that would exceed it is rejected 429 ``queue-full``.
    queue_depth: int = 64
    #: Maximum in-flight keys per solver name; the cheap-solver traffic
    #: keeps flowing when one expensive solver saturates.  Rejected
    #: requests get 429 ``solver-busy``.
    solver_cap: int = 16
    #: Wait bound (seconds) for requests that do not set their own.
    default_timeout: Optional[float] = 120.0
    #: ``Retry-After`` value (seconds) stamped on overload rejections.
    retry_after: float = 1.0
    #: Certify every fresh solve (workers run
    #: :func:`repro.verify.certify_solve` before the store put) and
    #: record-check cache hits before serving them.
    verify: bool = False
    #: Reaper cadence: how often done markers and the store are polled.
    poll_interval: float = 0.02
    #: Age (seconds) after which unclaimed done markers are swept.
    done_ttl: float = 300.0


class _Pending:
    """One in-flight key: the shared future and its bookkeeping."""

    __slots__ = ("key", "solver", "digest", "future", "waiters", "store_hits")

    def __init__(self, key: str, solver: str, digest: str, future):
        self.key = key
        self.solver = solver
        self.digest = digest
        self.future = future
        self.waiters = 0
        self.store_hits = 0


class SolveBroker:
    """Coalescing front-end over one cache dir (see module docstring)."""

    def __init__(
        self,
        cache_dir: "str",
        config: Optional[BrokerConfig] = None,
        metrics: Optional[ServiceMetrics] = None,
        tracer: Optional[Tracer] = None,
    ):
        self.cache_dir = str(cache_dir)
        self.config = config or BrokerConfig()
        self.metrics = metrics or ServiceMetrics()
        # Span collection is explicit (``Tracer.emit``) rather than
        # ambient: concurrent requests interleave on one event-loop
        # thread, so a thread-local span stack would mis-nest them.
        self.tracer = tracer
        self.store = ResultStore(self.cache_dir)
        self.queue = JobQueue(self.cache_dir)
        self.pending: Dict[str, _Pending] = {}
        self.draining = False
        self._reaper: Optional[asyncio.Task] = None
        self._sweep_in = 0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    async def start(self) -> None:
        """Start the completion reaper (idempotent)."""
        if self._reaper is None:
            self._reaper = asyncio.create_task(self._reap_loop())
        self.metrics.gauge(
            "repro_draining", 0.0,
            help="1 while the service is draining (rejecting new work)",
        )

    async def drain(self, timeout: Optional[float] = None) -> bool:
        """Stop admitting new work; wait for in-flight keys to settle.

        Only keys someone is still waiting on hold the drain open: an
        in-flight key whose every requester already timed out is
        settled immediately (its job file survives, so a later worker
        still completes it into the store).  Returns ``True`` when the
        queue drained fully; on timeout the leftover waiters are
        settled with a structured ``draining`` error (never left
        hanging) and ``False`` is returned.
        """
        self.draining = True
        self.metrics.gauge("repro_draining", 1.0)
        loop = asyncio.get_running_loop()
        deadline = None if timeout is None else loop.time() + timeout
        abandoned = {
            "ok": False,
            "error": {
                "code": "draining",
                "message": "service shut down before this solve completed",
            },
        }
        while True:
            for key, entry in list(self.pending.items()):
                if entry.waiters <= 0:
                    self._settle(key, dict(abandoned))
            if not self.pending:
                return True
            if deadline is not None and loop.time() >= deadline:
                for key in list(self.pending):
                    self._settle(key, dict(abandoned))
                return False
            await asyncio.sleep(self.config.poll_interval)

    async def stop(self) -> None:
        """Cancel the reaper and release the store."""
        if self._reaper is not None:
            self._reaper.cancel()
            try:
                await self._reaper
            except asyncio.CancelledError:
                pass
            self._reaper = None
        self.store.close()

    # ------------------------------------------------------------------
    # Request path
    # ------------------------------------------------------------------

    async def submit(self, request: SolveRequest) -> SolveResponse:
        """Answer one solve request through cache → coalesce → admit.

        With a tracer attached, the whole request runs under a root
        ``request`` span on its own trace (the caller's
        ``request.trace`` ID when given, else a fresh one), the solve
        wait under a ``solve_wait`` child, and the executing worker's
        spans — shipped back through the done marker — nest under the
        request across the process boundary.  The trace ID is echoed in
        ``SolveResponse.trace_id`` either way.
        """
        trace_id = request.trace or (
            new_trace_id() if self.tracer is not None else None
        )
        if self.tracer is None:
            response = await self._submit_inner(request, trace_id)
        else:
            start = time.time()
            t0 = time.perf_counter()
            response = await self._submit_inner(request, trace_id)
            dt = time.perf_counter() - t0
            self.tracer.emit(
                "request", start, start + dt, "0",
                trace_id=trace_id,
                attrs={
                    "solver": request.solver,
                    "status": response.status,
                    "source": response.source,
                },
            )
        if trace_id is not None:
            response = dataclasses.replace(response, trace_id=trace_id)
        return response

    async def _submit_inner(
        self, request: SolveRequest, trace_id: Optional[str]
    ) -> SolveResponse:
        cfg = self.config
        try:
            instance_dict, digest = await asyncio.to_thread(
                _materialize, request
            )
        except ProtocolError as exc:
            self._count_outcome(request.solver, "rejected")
            return error_response(exc.code, str(exc))
        params = dict(request.params)
        key = canonical_key(request.solver, digest, params)
        verify = cfg.verify or request.verify

        # Tier 1: the store (answers work finished by anyone, ever).
        self.store.refresh()
        record = self.store.lookup(key)
        if record is not None:
            return self._serve_record(
                request.solver, digest, key, record, verify
            )

        # Tier 2: coalesce onto an in-flight solve of the same key.
        entry = self.pending.get(key)
        coalesced = entry is not None
        if entry is not None:
            self.metrics.counter(
                "repro_coalesced_total",
                help="requests attached to an already-in-flight solve",
            )
            self._count_outcome(request.solver, "coalesced")
        else:
            # Tier 3: admission control, then publish the job.
            rejection = self._admission_error(request.solver)
            if rejection is not None:
                return rejection
            future = asyncio.get_running_loop().create_future()
            entry = _Pending(key, request.solver, digest, future)
            self.pending[key] = entry
            self.metrics.gauge(
                "repro_queue_depth", float(len(self.pending)),
                help="keys in flight (queued + solving)",
            )
            self.metrics.counter(
                "repro_enqueued_total", solver=request.solver,
                help="jobs published to the work queue",
            )
            job = Job(
                key=key,
                solver=request.solver,
                instance=instance_dict,
                params=params,
                verify=verify,
                trace=(
                    {"trace_id": trace_id, "span_id": "0"}
                    if self.tracer is not None and trace_id is not None
                    else None
                ),
            )
            try:
                await asyncio.to_thread(self.queue.enqueue, job)
            except OSError as exc:
                self._settle(key, {
                    "ok": False,
                    "error": {
                        "code": "internal",
                        "message": f"could not enqueue job: {exc}",
                    },
                })

        entry.waiters += 1
        timeout = (
            request.timeout
            if request.timeout is not None
            else cfg.default_timeout
        )
        wait_wall, wait_t0 = time.time(), time.perf_counter()
        try:
            outcome = await asyncio.wait_for(
                asyncio.shield(entry.future), timeout
            )
        except asyncio.TimeoutError:
            self._emit_wait_span(trace_id, wait_wall, wait_t0, "timeout")
            self.metrics.counter(
                "repro_timeouts_total",
                help="requests that hit their wait bound",
            )
            self._count_outcome(request.solver, "timeout")
            return error_response(
                "timeout",
                f"no result within {timeout:g}s; the solve is still "
                f"running and will be served from cache once finished "
                f"(GET /result/{digest}?solver={request.solver})",
            )
        finally:
            entry.waiters -= 1
        self._emit_wait_span(trace_id, wait_wall, wait_t0, "settled")
        return self._outcome_response(
            request.solver, digest, key, outcome,
            source="coalesced" if coalesced else "solved",
        )

    def _emit_wait_span(
        self, trace_id: Optional[str], wall: float, t0: float, outcome: str
    ) -> None:
        """Record the ``solve_wait`` child span of one traced request."""
        if self.tracer is None or trace_id is None:
            return
        dt = time.perf_counter() - t0
        self.tracer.emit(
            "solve_wait", wall, wall + dt, "0.1", parent_id="0",
            trace_id=trace_id, attrs={"outcome": outcome},
        )

    def result(
        self, digest: str, solver: str, params: Optional[dict] = None
    ) -> Optional[dict]:
        """The stored report for ``(solver, digest, params)``, if any."""
        self.store.refresh()
        return self.store.lookup(canonical_key(solver, digest, params or {}))

    def healthz(self) -> dict:
        """Liveness payload for ``GET /healthz``."""
        return {
            "status": "draining" if self.draining else "ok",
            "pending": len(self.pending),
            "records": len(self.store),
            "cache_dir": self.cache_dir,
        }

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _count_outcome(self, solver: str, outcome: str) -> None:
        self.metrics.counter(
            "repro_solve_requests_total",
            solver=solver or "?",
            outcome=outcome,
            help="solve requests by terminal outcome",
        )

    def _admission_error(self, solver: str) -> Optional[SolveResponse]:
        cfg = self.config
        if self.draining:
            code, message = "draining", (
                "service is draining and admits no new work"
            )
        elif len(self.pending) >= cfg.queue_depth:
            code, message = "queue-full", (
                f"{len(self.pending)} keys in flight (limit "
                f"{cfg.queue_depth}); retry shortly"
            )
        elif (
            sum(1 for e in self.pending.values() if e.solver == solver)
            >= cfg.solver_cap
        ):
            code, message = "solver-busy", (
                f"solver {solver!r} already has {cfg.solver_cap} keys in "
                f"flight; retry shortly"
            )
        else:
            return None
        self.metrics.counter(
            "repro_rejected_total", reason=code,
            help="requests rejected by admission control",
        )
        self._count_outcome(solver, "rejected")
        return error_response(code, message, retry_after=cfg.retry_after)

    def _serve_record(
        self, solver: str, digest: str, key: str, record: dict, verify: bool
    ) -> SolveResponse:
        certified = False
        if verify:
            from repro.verify import check_record

            verification = check_record(record, subject=f"{solver}@{digest[:12]}")
            if not verification.ok:
                self._count_outcome(solver, "error")
                return error_response(
                    "verification-failed",
                    f"stored record failed certification: "
                    f"{verification.render()}",
                )
            certified = True
        self.metrics.counter(
            "repro_cache_hits_total",
            help="requests answered straight from the result store",
        )
        self._count_outcome(solver, "cache")
        return SolveResponse(
            status="ok",
            solver=solver,
            digest=digest,
            key=key,
            source="cache",
            certified=certified,
            report=record,
        )

    def _outcome_response(
        self,
        solver: str,
        digest: str,
        key: str,
        outcome: dict,
        source: str = "solved",
    ) -> SolveResponse:
        if outcome.get("ok"):
            self._count_outcome(solver, source)
            return SolveResponse(
                status="ok",
                solver=solver,
                digest=digest,
                key=key,
                source=source,
                certified=bool(outcome.get("certified", False)),
                report=outcome.get("report"),
            )
        error = outcome.get("error") or {}
        self._count_outcome(solver, "error")
        return error_response(
            str(error.get("code", "solver-error")),
            str(error.get("message", "solve failed")),
        )

    def _settle(self, key: str, outcome: dict) -> None:
        entry = self.pending.pop(key, None)
        self.metrics.gauge("repro_queue_depth", float(len(self.pending)))
        # Worker-side span records ride the done marker; fold them into
        # this broker's trace sink (and strip them from the outcome the
        # waiters see — spans are observability, not payload).
        spans = outcome.pop("spans", None)
        if spans and self.tracer is not None:
            self.tracer.absorb(spans)
        if entry is None:
            return
        solve_seconds = (outcome.get("timings") or {}).get("solve")
        if solve_seconds is not None:
            self.metrics.observe(
                "repro_solve_seconds", float(solve_seconds),
                solver=entry.solver,
                help="worker-side solve wall-clock per completed job",
            )
        if outcome.get("ok"):
            self.metrics.counter(
                "repro_solved_total", solver=entry.solver,
                help="jobs completed successfully",
            )
        else:
            self.metrics.counter(
                "repro_solve_failures_total", solver=entry.solver,
                help="jobs that ended in a structured error",
            )
        if not entry.future.done():
            entry.future.set_result(outcome)

    def _reap_once(self) -> None:
        """One completion sweep: done markers first, store as fallback."""
        queue = self.queue
        done = set(queue.done_keys())
        for key in list(self.pending):
            if key not in done:
                continue
            outcome = queue.read_done(key)
            if outcome is not None:
                self._settle(key, outcome)
                queue.discard_done(key)
        if self.pending:
            self.store.refresh()
            for key, entry in list(self.pending.items()):
                record = self.store.lookup(key)
                if record is None:
                    continue
                # The record can land one tick before its done marker
                # (store put happens first); give the marker — which
                # carries timings and the certified stamp — one poll
                # interval to show up before settling from the store.
                entry.store_hits += 1
                if entry.store_hits >= 2:
                    self._settle(key, {
                        "ok": True,
                        "key": key,
                        "solver": entry.solver,
                        "digest": entry.digest,
                        "certified": False,
                        "report": record,
                        "timings": {},
                    })
        self.metrics.gauge("repro_store_records", float(len(self.store)))
        self._sweep_in -= 1
        if self._sweep_in <= 0:
            # Roughly once per done_ttl: collect markers no broker owns.
            self._sweep_in = max(
                1, int(self.config.done_ttl / max(self.config.poll_interval, 1e-3))
            )
            self.queue.sweep_done(self.config.done_ttl)

    async def _reap_loop(self) -> None:
        while True:
            await asyncio.sleep(self.config.poll_interval)
            try:
                self._reap_once()
            except Exception as exc:  # pragma: no cover - defensive
                # A transient filesystem error must not kill completion
                # delivery for every in-flight request.
                self.metrics.counter(
                    "repro_reaper_errors_total",
                    help="exceptions swallowed by the completion reaper",
                    kind=type(exc).__name__,
                )


def _materialize(request: SolveRequest):
    """Resolve a request to ``(instance payload, digest)``.

    Inline instances are round-tripped through
    :class:`~repro.core.instance.Instance` so the digest is always the
    canonical one; scenario requests are generated server-side with the
    request's seed.  Unknown solvers and malformed inputs become
    :class:`ProtocolError` with the right code.
    """
    from repro.api.registry import get_solver
    from repro.core.instance import Instance

    try:
        get_solver(request.solver)
    except ValueError as exc:
        raise ProtocolError(str(exc), code="unknown-solver")
    if request.instance is not None:
        try:
            instance = Instance.from_dict(request.instance)
        except (KeyError, TypeError, ValueError, IndexError) as exc:
            raise ProtocolError(
                f"malformed inline instance: {type(exc).__name__}: {exc}"
            )
    else:
        from repro.scenarios import ScenarioSpec, build_instance

        try:
            spec = (
                request.scenario
                if isinstance(request.scenario, str)
                else ScenarioSpec.from_dict(request.scenario)
            )
            instance = build_instance(spec, seed=request.seed)
        except (OSError, ValueError) as exc:
            raise ProtocolError(f"cannot build scenario: {exc}")
    if instance.num_flows == 0:
        raise ProtocolError(
            "instance has no flows; nothing to solve (zero-flow instances "
            "are skipped by sweeps and rejected by the service)"
        )
    return instance.to_dict(), instance.digest()
