"""Stdlib asyncio HTTP front-end of the solve service.

A deliberately small HTTP/1.1 implementation over
:func:`asyncio.start_server` — request line, headers, Content-Length
body, one request per connection (``Connection: close``) — because the
container has no web framework and the protocol surface is four routes:

``POST /solve``
    Body is a :class:`~repro.service.protocol.SolveRequest`; the
    response a :class:`~repro.service.protocol.SolveResponse`.  Error
    codes map to HTTP statuses via
    :data:`~repro.service.protocol.ERROR_STATUS`, and overload
    rejections carry a ``Retry-After`` header.
``GET /result/<digest>?solver=<name>[&params=<json>]``
    Cache lookup by content address; 404 with a structured
    ``not-found`` error when the store has no such record.
``GET /healthz``
    Liveness JSON (status, pending count, record count).
``GET /metrics``
    Prometheus text exposition of the shared registry.

:class:`SolveService` owns the broker, the listener, and (optionally) a
co-located :class:`~repro.service.worker.WorkerPool`;
:class:`ServiceThread` runs the whole thing on a background event loop
thread — the test fixture and the building block behind ``repro
serve``.
"""

from __future__ import annotations

import asyncio
import json
import threading
from typing import Optional, Tuple
from urllib.parse import parse_qs, urlsplit

from repro.service.broker import BrokerConfig, SolveBroker
from repro.service.metrics import ServiceMetrics
from repro.service.protocol import (
    ERROR_STATUS,
    ProtocolError,
    SolveRequest,
    SolveResponse,
    error_response,
)
from repro.service.worker import WorkerPool

#: Largest accepted request body (inline instances can be big, but a
#: runaway upload must not exhaust the service).
MAX_BODY_BYTES = 64 * 1024 * 1024

_REASONS = {
    200: "OK", 400: "Bad Request", 404: "Not Found",
    405: "Method Not Allowed", 413: "Payload Too Large",
    429: "Too Many Requests", 500: "Internal Server Error",
    503: "Service Unavailable", 504: "Gateway Timeout",
}


class SolveService:
    """Broker + HTTP listener + optional co-located worker pool."""

    def __init__(
        self,
        cache_dir: str,
        host: str = "127.0.0.1",
        port: int = 0,
        config: Optional[BrokerConfig] = None,
        metrics: Optional[ServiceMetrics] = None,
        workers: int = 0,
        worker_mode: str = "process",
        trace: Optional[str] = None,
    ):
        self.host = host
        self.port = port  # rebound to the real port once listening
        self.metrics = metrics or ServiceMetrics()
        self._tracer = None
        if trace is not None:
            from repro.obs.export import JsonlSink
            from repro.obs.spans import Tracer

            # One tracer for the whole service lifetime: every request
            # gets its own trace ID inside this shared JSONL sink.
            self._tracer = Tracer(
                sink=JsonlSink(str(trace)), metrics=self.metrics
            )
        self.broker = SolveBroker(
            cache_dir, config=config, metrics=self.metrics,
            tracer=self._tracer,
        )
        self.pool: Optional[WorkerPool] = (
            WorkerPool(cache_dir, workers, mode=worker_mode)
            if workers > 0
            else None
        )
        self._server: Optional[asyncio.base_events.Server] = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    async def start(self) -> None:
        await self.broker.start()
        if self.pool is not None:
            self.pool.start()
        self._server = await asyncio.start_server(
            self._handle, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def stop(self, drain_timeout: Optional[float] = 30.0) -> None:
        """Drain, then tear down listener, workers, and broker."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        await self.broker.drain(timeout=drain_timeout)
        if self.pool is not None:
            self.pool.stop()
            self.pool = None
        await self.broker.stop()
        if self._tracer is not None:
            self._tracer.finish()

    @property
    def address(self) -> str:
        return f"http://{self.host}:{self.port}"

    # ------------------------------------------------------------------
    # HTTP plumbing
    # ------------------------------------------------------------------

    async def _handle(self, reader, writer) -> None:
        try:
            status, content_type, body, extra = await self._respond(reader)
            head = [
                f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}",
                f"Content-Type: {content_type}",
                f"Content-Length: {len(body)}",
                "Connection: close",
            ]
            head.extend(f"{k}: {v}" for k, v in extra)
            writer.write(
                ("\r\n".join(head) + "\r\n\r\n").encode("ascii") + body
            )
            await writer.drain()
        except (ConnectionError, asyncio.IncompleteReadError):
            pass  # client went away mid-request; nothing to answer
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _respond(self, reader) -> Tuple[int, str, bytes, list]:
        try:
            method, target, body = await _read_request(reader)
        except _HttpError as exc:
            return _json_body(
                exc.status, error_response("bad-request", str(exc))
            )
        split = urlsplit(target)
        path = split.path.rstrip("/") or "/"
        endpoint = path.split("/", 2)[1] or "root"
        loop = asyncio.get_running_loop()
        started = loop.time()
        try:
            result = await self._route(method, path, split.query, body)
        except Exception as exc:  # pragma: no cover - last-resort guard
            result = _json_body(
                500,
                error_response("internal", f"{type(exc).__name__}: {exc}"),
            )
        self.metrics.observe(
            "repro_request_seconds", loop.time() - started,
            endpoint=endpoint,
            help="HTTP request handling latency",
        )
        self.metrics.counter(
            "repro_http_requests_total",
            endpoint=endpoint, status=str(result[0]),
            help="HTTP requests by endpoint and status",
        )
        return result

    async def _route(
        self, method: str, path: str, query: str, body: bytes
    ) -> Tuple[int, str, bytes, list]:
        if path == "/solve":
            if method != "POST":
                return _json_body(
                    405, error_response("bad-request", "POST /solve")
                )
            try:
                payload = json.loads(body.decode("utf-8"))
                request = SolveRequest.from_dict(payload)
            except ProtocolError as exc:
                return _json_body(
                    ERROR_STATUS.get(exc.code, 400),
                    error_response(exc.code, str(exc)),
                )
            except (UnicodeDecodeError, ValueError) as exc:
                return _json_body(
                    400,
                    error_response(
                        "bad-request", f"request body is not JSON: {exc}"
                    ),
                )
            return _json_body(None, await self.broker.submit(request))
        if path.startswith("/result/") and method == "GET":
            digest = path[len("/result/"):]
            args = parse_qs(query)
            solver = (args.get("solver") or [""])[0]
            if not solver:
                return _json_body(
                    400,
                    error_response(
                        "bad-request",
                        "GET /result/<digest> needs ?solver=<name>",
                    ),
                )
            try:
                params = json.loads((args.get("params") or ["{}"])[0])
            except ValueError as exc:
                return _json_body(
                    400,
                    error_response(
                        "bad-request", f"'params' is not JSON: {exc}"
                    ),
                )
            record = self.broker.result(digest, solver, params)
            if record is None:
                return _json_body(
                    404,
                    error_response(
                        "not-found",
                        f"no stored result for solver={solver!r} "
                        f"digest={digest[:16]}…",
                    ),
                )
            from repro.api.store import canonical_key

            return _json_body(
                200,
                SolveResponse(
                    status="ok",
                    solver=solver,
                    digest=digest,
                    key=canonical_key(solver, digest, params),
                    source="cache",
                    report=record,
                ),
            )
        if path == "/healthz" and method == "GET":
            payload = json.dumps(self.broker.healthz()).encode("utf-8")
            return 200, "application/json", payload, []
        if path == "/metrics" and method == "GET":
            text = self.metrics.render().encode("utf-8")
            return 200, "text/plain; version=0.0.4; charset=utf-8", text, []
        return _json_body(
            404, error_response("not-found", f"no route {method} {path}")
        )


class _HttpError(Exception):
    def __init__(self, status: int, message: str):
        super().__init__(message)
        self.status = status


async def _read_request(reader) -> Tuple[str, str, bytes]:
    """Parse one HTTP/1.x request: ``(method, target, body)``."""
    try:
        line = await reader.readline()
    except (ValueError, asyncio.LimitOverrunError):
        raise _HttpError(400, "request line too long")
    parts = line.decode("latin-1").rstrip("\r\n").split(" ")
    if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
        raise _HttpError(400, "malformed request line")
    method, target = parts[0].upper(), parts[1]
    length = 0
    while True:
        raw = await reader.readline()
        header = raw.decode("latin-1").rstrip("\r\n")
        if not header:
            break
        name, _, value = header.partition(":")
        if name.strip().lower() == "content-length":
            try:
                length = int(value.strip())
            except ValueError:
                raise _HttpError(400, "bad Content-Length")
    if length > MAX_BODY_BYTES:
        raise _HttpError(413, f"body exceeds {MAX_BODY_BYTES} bytes")
    body = await reader.readexactly(length) if length else b""
    return method, target, body


def _json_body(
    status: Optional[int], response: SolveResponse
) -> Tuple[int, str, bytes, list]:
    """Encode ``response``; derive the status from its error when None."""
    if status is None:
        status = (
            200
            if response.ok
            else ERROR_STATUS.get(
                response.error.code if response.error else "internal", 500
            )
        )
    extra = []
    if response.error is not None and response.error.retry_after is not None:
        extra.append(("Retry-After", f"{response.error.retry_after:g}"))
    payload = json.dumps(response.to_dict(), sort_keys=True).encode("utf-8")
    return status, "application/json", payload, extra


class ServiceThread:
    """A whole :class:`SolveService` on a background event-loop thread.

    The constructor arguments are forwarded verbatim; :meth:`start`
    blocks until the listener is bound (so ``service.port`` and
    ``service.address`` are immediately usable) and re-raises any
    startup failure in the caller's thread.  Context-manager use gives
    the one-liner test fixture::

        with ServiceThread(cache_dir, workers=2, worker_mode="thread") as svc:
            client = ServiceClient(svc.address)
    """

    def __init__(self, cache_dir: str, **kwargs):
        self.service = SolveService(cache_dir, **kwargs)
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._ready = threading.Event()
        self._stopped: Optional[asyncio.Event] = None
        self._startup_error: Optional[BaseException] = None

    @property
    def address(self) -> str:
        return self.service.address

    @property
    def port(self) -> int:
        return self.service.port

    def start(self, timeout: float = 30.0) -> "ServiceThread":
        self._thread = threading.Thread(
            target=self._run, name="repro-service", daemon=True
        )
        self._thread.start()
        if not self._ready.wait(timeout):
            raise RuntimeError("service thread did not start in time")
        if self._startup_error is not None:
            raise RuntimeError(
                f"service failed to start: {self._startup_error}"
            ) from self._startup_error
        return self

    def _run(self) -> None:
        asyncio.run(self._main())

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stopped = asyncio.Event()
        try:
            await self.service.start()
        except BaseException as exc:
            self._startup_error = exc
            self._ready.set()
            return
        self._ready.set()
        await self._stopped.wait()
        await self.service.stop()

    def stop(self, timeout: float = 30.0) -> None:
        """Drain and stop the service; joins the loop thread."""
        if self._loop is None or self._stopped is None:
            return
        self._loop.call_soon_threadsafe(self._stopped.set)
        if self._thread is not None:
            self._thread.join(timeout)
        self._loop = None

    def __enter__(self) -> "ServiceThread":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()
