"""Blocking ``http.client`` client for the solve service.

The counterpart of :mod:`repro.service.server`, used by the ``repro
submit`` CLI, the CI smoke job, and ``examples/service_client.py``.
Speaks exactly the :mod:`repro.service.protocol` wire types; every
transport- or service-level failure surfaces as :class:`ServiceError`
carrying the structured error code, so callers branch on
``exc.code == "queue-full"`` instead of parsing prose.

:meth:`ServiceClient.solve` optionally retries overload rejections
(429/503) honouring the server's ``Retry-After`` value — the polite
client loop the admission-control design assumes.
"""

from __future__ import annotations

import json
import time
from http.client import HTTPConnection, HTTPException
from typing import Any, Dict, Optional, Tuple
from urllib.parse import quote, urlsplit

from repro.service.protocol import ErrorInfo, SolveRequest, SolveResponse

#: Error codes worth retrying: the server is healthy, just saturated.
RETRYABLE_CODES = ("queue-full", "solver-busy")


class ServiceError(RuntimeError):
    """A request that did not produce an ``ok`` response.

    ``code`` is the structured protocol error code (``"timeout"``,
    ``"queue-full"``, …) or ``"transport"`` when the HTTP exchange
    itself failed; ``retry_after`` is the server's backoff hint, when
    it sent one.
    """

    def __init__(
        self,
        message: str,
        code: str = "transport",
        status: Optional[int] = None,
        retry_after: Optional[float] = None,
    ):
        super().__init__(message)
        self.code = code
        self.status = status
        self.retry_after = retry_after

    @staticmethod
    def from_error(info: ErrorInfo, status: Optional[int]) -> "ServiceError":
        return ServiceError(
            f"[{info.code}] {info.message}",
            code=info.code,
            status=status,
            retry_after=info.retry_after,
        )


class ServiceClient:
    """Blocking client bound to one service address.

    ``address`` is ``http://host:port`` (the scheme is optional);
    ``timeout`` bounds each HTTP exchange — keep it above the service's
    solve timeout or the transport gives up before the server answers.
    """

    def __init__(self, address: str, timeout: Optional[float] = 300.0):
        if "//" not in address:
            address = "http://" + address
        split = urlsplit(address)
        if split.scheme != "http" or split.hostname is None:
            raise ValueError(
                f"address must be http://host:port, got {address!r}"
            )
        self.host = split.hostname
        self.port = split.port or 80
        self.timeout = timeout

    # ------------------------------------------------------------------
    # Transport
    # ------------------------------------------------------------------

    def _request(
        self, method: str, path: str, body: Optional[dict] = None
    ) -> Tuple[int, bytes]:
        conn = HTTPConnection(self.host, self.port, timeout=self.timeout)
        try:
            payload = (
                json.dumps(body).encode("utf-8") if body is not None else None
            )
            conn.request(
                method,
                path,
                body=payload,
                headers={"Content-Type": "application/json"}
                if payload is not None
                else {},
            )
            response = conn.getresponse()
            return response.status, response.read()
        except (OSError, HTTPException) as exc:
            raise ServiceError(
                f"cannot reach service at {self.host}:{self.port}: {exc}"
            )
        finally:
            conn.close()

    def _solve_response(self, status: int, body: bytes) -> SolveResponse:
        try:
            response = SolveResponse.from_dict(json.loads(body.decode("utf-8")))
        except (ValueError, UnicodeDecodeError) as exc:
            raise ServiceError(
                f"service answered HTTP {status} with a non-protocol body: "
                f"{exc}"
            )
        if not response.ok:
            info = response.error or ErrorInfo(
                code="internal", message=f"HTTP {status}"
            )
            raise ServiceError.from_error(info, status)
        return response

    # ------------------------------------------------------------------
    # API
    # ------------------------------------------------------------------

    def solve(
        self,
        solver: str,
        instance: Optional[Any] = None,
        scenario: Optional[Any] = None,
        seed: int = 0,
        params: Optional[Dict[str, Any]] = None,
        verify: bool = False,
        timeout: Optional[float] = None,
        retries: int = 0,
        backoff: float = 1.0,
        trace: Optional[str] = None,
    ) -> SolveResponse:
        """Submit one solve and return its ``ok`` response.

        ``instance`` may be a typed :class:`~repro.core.instance.
        Instance` (serialized automatically) or an already-encoded
        payload dict; alternatively pass ``scenario``.  With ``retries
        > 0`` overload rejections are retried up to that many times,
        sleeping the server's ``Retry-After`` (or ``backoff``) between
        attempts.  ``trace`` is a caller-chosen trace ID the service
        adopts for this request's spans (echoed back as
        ``SolveResponse.trace_id``).  Anything else raises
        :class:`ServiceError`.
        """
        if instance is not None and hasattr(instance, "to_dict"):
            instance = instance.to_dict()
        request = SolveRequest(
            solver=solver,
            instance=instance,
            scenario=scenario,
            seed=seed,
            params=dict(params or {}),
            verify=verify,
            timeout=timeout,
            trace=trace,
        )
        attempt = 0
        while True:
            status, body = self._request("POST", "/solve", request.to_dict())
            try:
                return self._solve_response(status, body)
            except ServiceError as exc:
                if exc.code not in RETRYABLE_CODES or attempt >= retries:
                    raise
                attempt += 1
                time.sleep(
                    exc.retry_after if exc.retry_after is not None else backoff
                )

    def result(
        self,
        digest: str,
        solver: str,
        params: Optional[Dict[str, Any]] = None,
    ) -> SolveResponse:
        """Fetch a stored result by content address (raises when absent)."""
        path = f"/result/{quote(digest)}?solver={quote(solver)}"
        if params:
            path += f"&params={quote(json.dumps(params, sort_keys=True))}"
        status, body = self._request("GET", path)
        return self._solve_response(status, body)

    def healthz(self) -> dict:
        """The service's liveness payload."""
        status, body = self._request("GET", "/healthz")
        try:
            payload = json.loads(body.decode("utf-8"))
        except (ValueError, UnicodeDecodeError) as exc:
            raise ServiceError(f"bad healthz body: {exc}", status=status)
        if status != 200:
            raise ServiceError(
                f"healthz answered HTTP {status}: {payload}", status=status
            )
        return payload

    def metrics(self) -> str:
        """The raw Prometheus exposition text from ``GET /metrics``."""
        status, body = self._request("GET", "/metrics")
        if status != 200:
            raise ServiceError(
                f"metrics answered HTTP {status}", status=status
            )
        return body.decode("utf-8")
