"""Back-compat shim: the metrics registry moved to :mod:`repro.obs.metrics`.

The registry started life here as the service's private Prometheus-text
exporter; once the sweep runner and batch kernels needed the same
namespace it was promoted to ``repro.obs``.  Everything historical
callers imported from this module — ``ServiceMetrics``, ``parse_metric``,
``DEFAULT_BUCKETS`` — re-exports unchanged.
"""

from __future__ import annotations

from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    MetricsRegistry,
    ServiceMetrics,
    parse_metric,
)

__all__ = [
    "DEFAULT_BUCKETS",
    "MetricsRegistry",
    "ServiceMetrics",
    "parse_metric",
]
