"""In-process service metrics with Prometheus text-format export.

A deliberately tiny registry — counters, gauges, and fixed-bucket
latency histograms keyed by ``(name, sorted labels)`` — rendered in the
Prometheus exposition format (text/plain version 0.0.4) by
:meth:`ServiceMetrics.render`, which is exactly what ``GET /metrics``
serves.  Stdlib-only by design: the service cannot depend on a
``prometheus_client`` the container may not have.

Updates are lock-protected so the asyncio loop, the broker's reaper,
and in-process worker threads can all feed the same registry;
:func:`parse_metric` is the inverse used by tests and the CI smoke job
to assert on scraped values.
"""

from __future__ import annotations

import math
import threading
from typing import Dict, List, Optional, Tuple

#: Default latency buckets (seconds).  Spans sub-millisecond cache hits
#: through multi-minute LP solves; +Inf is implicit.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.005, 0.02, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 120.0,
)

_LabelKey = Tuple[Tuple[str, str], ...]


def _label_key(labels: Dict[str, str]) -> _LabelKey:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


def _escape(value: str) -> str:
    return (
        value.replace("\\", r"\\").replace('"', r"\"").replace("\n", r"\n")
    )


def _render_labels(key: _LabelKey, extra: str = "") -> str:
    parts = [f'{k}="{_escape(v)}"' for k, v in key]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


def _format_value(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


class ServiceMetrics:
    """Counter/gauge/histogram registry for one service process."""

    def __init__(self):
        self._lock = threading.Lock()
        self._counters: Dict[Tuple[str, _LabelKey], float] = {}
        self._gauges: Dict[Tuple[str, _LabelKey], float] = {}
        # histogram -> (bucket bounds, per-bucket counts, sum, count)
        self._hists: Dict[
            Tuple[str, _LabelKey], Tuple[Tuple[float, ...], List[int], float, int]
        ] = {}
        self._help: Dict[str, Tuple[str, str]] = {}  # name -> (type, help)

    def _declare(self, name: str, kind: str, help_text: str) -> None:
        if name not in self._help:
            self._help[name] = (kind, help_text)

    def counter(
        self, name: str, amount: float = 1.0, help: str = "", **labels: str
    ) -> None:
        """Increment counter ``name`` (monotone; amount must be >= 0)."""
        with self._lock:
            self._declare(name, "counter", help)
            key = (name, _label_key(labels))
            self._counters[key] = self._counters.get(key, 0.0) + amount

    def gauge(
        self, name: str, value: float, help: str = "", **labels: str
    ) -> None:
        """Set gauge ``name`` to ``value``."""
        with self._lock:
            self._declare(name, "gauge", help)
            self._gauges[(name, _label_key(labels))] = float(value)

    def observe(
        self,
        name: str,
        value: float,
        help: str = "",
        buckets: Tuple[float, ...] = DEFAULT_BUCKETS,
        **labels: str,
    ) -> None:
        """Record ``value`` into histogram ``name``."""
        with self._lock:
            self._declare(name, "histogram", help)
            key = (name, _label_key(labels))
            entry = self._hists.get(key)
            if entry is None:
                entry = (tuple(buckets), [0] * len(buckets), 0.0, 0)
            bounds, counts, total, n = entry
            for i, bound in enumerate(bounds):
                if value <= bound:
                    counts[i] += 1
            self._hists[key] = (bounds, counts, total + float(value), n + 1)

    def value(self, name: str, **labels: str) -> float:
        """Current counter/gauge value (0.0 when never touched)."""
        key = (name, _label_key(labels))
        with self._lock:
            if key in self._counters:
                return self._counters[key]
            return self._gauges.get(key, 0.0)

    def render(self) -> str:
        """The registry in Prometheus exposition format (0.0.4)."""
        with self._lock:
            lines: List[str] = []
            for name in sorted(self._help):
                kind, help_text = self._help[name]
                if help_text:
                    lines.append(f"# HELP {name} {help_text}")
                lines.append(f"# TYPE {name} {kind}")
                if kind == "counter":
                    series = self._counters
                elif kind == "gauge":
                    series = self._gauges
                else:
                    for (hname, key), entry in sorted(self._hists.items()):
                        if hname != name:
                            continue
                        bounds, counts, total, n = entry
                        for bound, count in zip(bounds, counts):
                            le = f'le="{_format_value(bound)}"'
                            lines.append(
                                f"{name}_bucket{_render_labels(key, le)} "
                                f"{count}"
                            )
                        inf = 'le="+Inf"'
                        lines.append(
                            f"{name}_bucket{_render_labels(key, inf)} {n}"
                        )
                        lines.append(
                            f"{name}_sum{_render_labels(key)} "
                            f"{_format_value(total)}"
                        )
                        lines.append(f"{name}_count{_render_labels(key)} {n}")
                    continue
                for (sname, key), value in sorted(series.items()):
                    if sname != name:
                        continue
                    lines.append(
                        f"{name}{_render_labels(key)} {_format_value(value)}"
                    )
            return "\n".join(lines) + "\n" if lines else ""


def parse_metric(
    text: str, name: str, **labels: str
) -> Optional[float]:
    """Read one series value back out of :meth:`ServiceMetrics.render`.

    Matches ``name`` exactly and requires every given label pair to be
    present on the series (extra labels on the line are allowed, so
    callers can select e.g. ``endpoint="solve"`` without naming every
    label).  Returns ``None`` when no line matches — the assertion
    helper for tests and the CI smoke job.
    """
    want = [f'{k}="{_escape(str(v))}"' for k, v in labels.items()]
    for line in text.splitlines():
        if line.startswith("#"):
            continue
        head, _, value = line.rpartition(" ")
        if not head or not value:
            continue
        series, brace, labelpart = head.partition("{")
        if series != name:
            continue
        if brace and not labelpart.endswith("}"):
            continue
        body = labelpart[:-1] if brace else ""
        if all(pair in body for pair in want):
            try:
                return float(value)
            except ValueError:
                return None
    return None
