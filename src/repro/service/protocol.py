"""Schema-versioned wire types of the solve service.

One request shape, one response shape, one error shape — all plain
dataclasses that round-trip through JSON (``to_dict`` / ``from_dict``),
so the asyncio server, the blocking client, and the CLI ``submit``
subcommand speak exactly the same protocol.  ``from_dict`` validates
strictly and raises :class:`ProtocolError` with a stable machine
``code``; the server maps codes to HTTP statuses
(:data:`ERROR_STATUS`), so a client can branch on the code without
parsing prose.

A successful response's ``report`` field is a
:meth:`repro.api.report.SolveReport.to_stored_dict` payload — the same
schedule- and timing-stripped record the result store persists — and
:meth:`SolveResponse.solve_report` rebuilds the typed
:class:`~repro.api.report.SolveReport` from it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Optional

#: Version stamped on every request and response.  Bump when a field
#: changes meaning; the server rejects requests stamped with a version
#: it does not speak (``unsupported-version``).
PROTOCOL_VERSION = 1

#: HTTP status the server answers each structured error code with.
ERROR_STATUS: Dict[str, int] = {
    "bad-request": 400,
    "unsupported-version": 400,
    "unknown-solver": 400,
    "not-found": 404,
    "queue-full": 429,
    "solver-busy": 429,
    "draining": 503,
    "timeout": 504,
    "solver-error": 500,
    "verification-failed": 500,
    "internal": 500,
}


class ProtocolError(ValueError):
    """A request (or response) payload violates the protocol schema.

    Carries a stable machine ``code`` (a key of :data:`ERROR_STATUS`)
    so transports can answer with the right HTTP status and clients can
    branch without string-matching the message.
    """

    def __init__(self, message: str, code: str = "bad-request"):
        super().__init__(message)
        self.code = code


@dataclass(frozen=True)
class ErrorInfo:
    """Structured error payload of a failed :class:`SolveResponse`.

    ``retry_after`` (seconds) is set on overload rejections — the same
    value the server sends as the HTTP ``Retry-After`` header — so
    well-behaved clients can back off precisely.
    """

    code: str
    message: str
    retry_after: Optional[float] = None

    def to_dict(self) -> dict:
        out: Dict[str, Any] = {"code": self.code, "message": self.message}
        if self.retry_after is not None:
            out["retry_after"] = self.retry_after
        return out

    @staticmethod
    def from_dict(data: Mapping) -> "ErrorInfo":
        if not isinstance(data, Mapping) or "code" not in data:
            raise ProtocolError("error payload must be a mapping with a 'code'")
        retry = data.get("retry_after")
        return ErrorInfo(
            code=str(data["code"]),
            message=str(data.get("message", "")),
            retry_after=float(retry) if retry is not None else None,
        )


def _require(condition: bool, message: str, code: str = "bad-request") -> None:
    if not condition:
        raise ProtocolError(message, code=code)


@dataclass(frozen=True)
class SolveRequest:
    """One ``POST /solve`` body.

    Exactly one of ``instance`` (an inline
    :meth:`~repro.core.instance.Instance.to_dict` payload) or
    ``scenario`` (a compact ``"name:k=v,..."`` string or a
    :meth:`~repro.scenarios.ScenarioSpec.to_dict` payload, generated
    server-side with ``seed``) names the work.  ``params`` are forwarded
    to ``Solver.solve`` verbatim and participate in the request's cache
    key, so distinct parameterizations never alias.  ``timeout``
    (seconds) bounds only this request's wait — the solve itself keeps
    running and lands in the store for later requests.  ``verify``
    additionally requests certificate checking even when the service was
    not started with ``--verify``.
    """

    solver: str
    instance: Optional[dict] = None
    scenario: Optional[Any] = None
    seed: int = 0
    params: Dict[str, Any] = field(default_factory=dict)
    verify: bool = False
    timeout: Optional[float] = None
    #: Optional caller trace ID (hex string): the broker adopts it for
    #: the request's spans and echoes it back as
    #: ``SolveResponse.trace_id``, correlating client-side traces with
    #: service-side span logs.
    trace: Optional[str] = None

    def to_dict(self) -> dict:
        out: Dict[str, Any] = {
            "schema_version": PROTOCOL_VERSION,
            "solver": self.solver,
        }
        if self.instance is not None:
            out["instance"] = self.instance
        if self.scenario is not None:
            out["scenario"] = self.scenario
        if self.seed:
            out["seed"] = self.seed
        if self.params:
            out["params"] = dict(self.params)
        if self.verify:
            out["verify"] = True
        if self.timeout is not None:
            out["timeout"] = self.timeout
        if self.trace is not None:
            out["trace"] = self.trace
        return out

    @staticmethod
    def from_dict(data: Mapping) -> "SolveRequest":
        _require(
            isinstance(data, Mapping),
            f"request body must be a JSON object, got "
            f"{type(data).__name__}",
        )
        version = data.get("schema_version", PROTOCOL_VERSION)
        _require(
            version == PROTOCOL_VERSION,
            f"unsupported protocol schema_version {version!r} "
            f"(this service speaks version {PROTOCOL_VERSION})",
            code="unsupported-version",
        )
        unknown = set(data) - {
            "schema_version", "solver", "instance", "scenario", "seed",
            "params", "verify", "timeout", "trace",
        }
        _require(not unknown, f"unknown request fields {sorted(unknown)}")
        solver = data.get("solver")
        _require(
            isinstance(solver, str) and bool(solver),
            "request must name a 'solver' (see list-solvers)",
        )
        instance = data.get("instance")
        scenario = data.get("scenario")
        _require(
            (instance is None) != (scenario is None),
            "request must carry exactly one of 'instance' (inline trace "
            "payload) or 'scenario' (registry spec)",
        )
        if instance is not None:
            _require(
                isinstance(instance, Mapping),
                "'instance' must be an Instance.to_dict payload (object)",
            )
        if scenario is not None:
            _require(
                isinstance(scenario, (str, Mapping)),
                "'scenario' must be a compact spec string or a "
                "ScenarioSpec.to_dict payload",
            )
        seed = data.get("seed", 0)
        _require(
            isinstance(seed, int) and not isinstance(seed, bool),
            f"'seed' must be an integer, got {seed!r}",
        )
        params = data.get("params", {})
        _require(
            isinstance(params, Mapping)
            and all(isinstance(k, str) for k in params),
            "'params' must be an object with string keys",
        )
        verify = data.get("verify", False)
        _require(
            isinstance(verify, bool), f"'verify' must be a boolean, got "
            f"{verify!r}",
        )
        timeout = data.get("timeout")
        if timeout is not None:
            _require(
                isinstance(timeout, (int, float))
                and not isinstance(timeout, bool)
                and timeout > 0,
                f"'timeout' must be a positive number of seconds, got "
                f"{timeout!r}",
            )
            timeout = float(timeout)
        trace = data.get("trace")
        if trace is not None:
            _require(
                isinstance(trace, str) and bool(trace),
                f"'trace' must be a non-empty trace-ID string, got "
                f"{trace!r}",
            )
        return SolveRequest(
            solver=solver,
            instance=dict(instance) if instance is not None else None,
            scenario=(
                dict(scenario) if isinstance(scenario, Mapping) else scenario
            ),
            seed=seed,
            params=dict(params),
            verify=verify,
            timeout=timeout,
            trace=trace,
        )


#: Where a successful response's report came from: answered straight
#: from the shared result store, attached to an already-in-flight solve
#: of the same key, or computed by this request's own enqueued job.
RESPONSE_SOURCES = ("cache", "coalesced", "solved")


@dataclass(frozen=True)
class SolveResponse:
    """One ``POST /solve`` (or ``GET /result``) response body.

    ``trace_id`` echoes the trace this request ran under — the caller's
    ``SolveRequest.trace`` when given, otherwise the broker-assigned ID
    — so a client can correlate its response with the service's span
    log and ``/metrics`` series.
    """

    status: str  # "ok" | "error"
    solver: Optional[str] = None
    digest: Optional[str] = None
    key: Optional[str] = None
    source: Optional[str] = None  # one of RESPONSE_SOURCES
    certified: bool = False
    report: Optional[dict] = None
    error: Optional[ErrorInfo] = None
    trace_id: Optional[str] = None

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    def solve_report(self):
        """The typed :class:`~repro.api.report.SolveReport` this response
        carries (raises on error responses)."""
        from repro.api.report import SolveReport

        if self.report is None:
            raise ValueError(
                f"response carries no report (status={self.status!r}"
                + (f", error={self.error.code!r}" if self.error else "")
                + ")"
            )
        return SolveReport.from_dict(self.report)

    def to_dict(self) -> dict:
        out: Dict[str, Any] = {
            "schema_version": PROTOCOL_VERSION,
            "status": self.status,
        }
        for name in ("solver", "digest", "key", "source", "report", "trace_id"):
            value = getattr(self, name)
            if value is not None:
                out[name] = value
        if self.certified:
            out["certified"] = True
        if self.error is not None:
            out["error"] = self.error.to_dict()
        return out

    @staticmethod
    def from_dict(data: Mapping) -> "SolveResponse":
        _require(
            isinstance(data, Mapping) and "status" in data,
            "response body must be a JSON object with a 'status'",
        )
        error = data.get("error")
        return SolveResponse(
            status=str(data["status"]),
            solver=data.get("solver"),
            digest=data.get("digest"),
            key=data.get("key"),
            source=data.get("source"),
            certified=bool(data.get("certified", False)),
            report=data.get("report"),
            error=ErrorInfo.from_dict(error) if error is not None else None,
            trace_id=data.get("trace_id"),
        )


def error_response(
    code: str, message: str, retry_after: Optional[float] = None
) -> SolveResponse:
    """A failed :class:`SolveResponse` carrying a structured error."""
    return SolveResponse(
        status="error",
        error=ErrorInfo(code=code, message=message, retry_after=retry_after),
    )
