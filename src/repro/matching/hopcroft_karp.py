"""Hopcroft–Karp maximum-cardinality bipartite matching.

Runs in ``O(E sqrt(V))``: repeated phases of BFS layering followed by DFS
augmentation along vertex-disjoint shortest augmenting paths.  This is the
engine behind the paper's **MaxCard** online heuristic ("at every step a
matching of maximum cardinality is extracted from G_t") and the matching
extraction inside König edge coloring.

The implementation works on flat integer arrays — CSR adjacency, integer
BFS layers, explicit DFS stacks — with no per-call adjacency dicts and no
float distances.  Two entry points share the same core:
:func:`max_cardinality_matching` consumes a :class:`BipartiteMultigraph`
(reusing its cached CSR), and :func:`max_cardinality_matching_arrays`
consumes bare endpoint arrays (the online simulator's incremental pair
view, skipping graph construction entirely).  Parallel edges are harmless
(at most one copy can ever be matched; the kernel deterministically
matches the lowest-id copy of a pair, because adjacency lists are scanned
in edge-insertion order).

A previous matching can be passed as a **warm start**: the kernel seeds
its match arrays from the surviving entries and repairs the matching with
augmenting phases instead of starting empty.  When the warm start is
already near-maximum this collapses the phase count to O(1) — the lever
the incremental online simulator pulls, where G_t changes by a few edges
per round.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Optional

import numpy as np

from repro.matching.bipartite import BipartiteMultigraph

#: Integer "unreached" sentinel for BFS layers (larger than any distance).
_INF = 1 << 60


def max_cardinality_matching(
    graph: BipartiteMultigraph,
    warm_start: Optional[Dict[int, int]] = None,
    stats: Optional[Dict[str, int]] = None,
) -> Dict[int, int]:
    """Return a maximum matching as ``{left_vertex: edge_id}``.

    Parameters
    ----------
    graph:
        The bipartite multigraph.
    warm_start:
        Optional previous matching in the same ``{left_vertex: edge_id}``
        shape this function returns.  Entries are validated against the
        *current* graph — an entry is silently skipped when its edge id is
        out of range, its edge is no longer incident on that left vertex,
        or it conflicts with an already-seeded entry (left vertices are
        seeded in ascending order; first claim on a right vertex wins).
        Surviving entries seed the match arrays and the usual augmenting
        phases repair the matching to maximum, so the result is always a
        maximum matching regardless of the warm start's quality.  Note
        that a warm start may steer the algorithm to a *different* maximum
        matching than a cold solve (maximum matchings are not unique).
    stats:
        Optional counter dict; ``"bfs_phases"`` is incremented once per
        BFS layering pass and ``"augmentations"`` once per augmenting
        path applied.  Used by benchmarks and the CI bench-smoke job to
        demonstrate warm starts doing less work than cold solves.

    Returns
    -------
    dict
        ``{left_vertex: edge_id}`` for every matched left vertex.  The
        matched edges are recovered as ``graph.edges[eid]``; payloads via
        ``graph.payloads[eid]``.  (The seed docstring advertised a
        ``{edge_id: 1}``-style set; the mapping form below is what was
        always returned.)
    """
    if graph.n_edges == 0 or graph.n_left == 0:
        return {}
    indptr_arr, adj_arr = graph.csr_left()
    return _hk_core(
        graph.n_left,
        graph.n_right,
        indptr_arr.tolist(),
        adj_arr.tolist(),
        graph.dst[adj_arr].tolist(),
        graph.src,
        graph.dst,
        warm_start,
        stats,
    )


def max_cardinality_matching_arrays(
    n_left: int,
    n_right: int,
    us: np.ndarray,
    vs: np.ndarray,
    warm_start: Optional[Dict[int, int]] = None,
    stats: Optional[Dict[str, int]] = None,
) -> Dict[int, int]:
    """:func:`max_cardinality_matching` over bare endpoint arrays.

    ``us[i]``/``vs[i]`` are the endpoints of edge ``i``; the returned
    mapping's values index into these arrays.  Semantics (traversal
    order, warm-start handling, counters) are identical to the graph
    entry point; this one skips graph construction and CSR caching for
    callers that already hold flat arrays, e.g. the simulator's
    incremental pair view.
    """
    n_edges = len(us)
    if n_edges == 0 or n_left == 0:
        return {}
    us = np.asarray(us, dtype=np.int64)
    vs = np.asarray(vs, dtype=np.int64)
    # Vectorized CSR build (edge-insertion order per left vertex).
    indptr = np.zeros(n_left + 1, dtype=np.int64)
    np.cumsum(np.bincount(us, minlength=n_left), out=indptr[1:])
    adj = np.argsort(us, kind="stable")
    return _hk_core(
        n_left,
        n_right,
        indptr.tolist(),
        adj.tolist(),
        vs[adj].tolist(),
        us,
        vs,
        warm_start,
        stats,
    )


def max_cardinality_matching_adjacency(
    n_left: int,
    n_right: int,
    adj_rows: List[List[int]],
    payload_rows: List[List[int]],
    warm_start: Optional[Dict[int, int]] = None,
    stats: Optional[Dict[str, int]] = None,
) -> Dict[int, int]:
    """Maximum matching over pre-built per-left-vertex adjacency rows.

    ``adj_rows[u]`` lists the right neighbors of left vertex ``u`` in the
    caller's tie-breaking order; ``payload_rows[u]`` carries an aligned
    opaque payload (e.g. a flow id) returned for matched edges.  This is
    the zero-copy entry for the online simulator's incremental pair view:
    the rows are maintained across rounds, so a solve allocates nothing
    but its match arrays.

    ``warm_start`` here is pair-level: ``{left_vertex: right_vertex}``
    from a previous solve.  Pairs no longer adjacent (or conflicting) are
    skipped; the rest seed the matching, which the usual phases repair to
    maximum.

    Returns
    -------
    dict
        ``{left_vertex: payload}`` for every matched left vertex.
    """
    match_left: List[int] = [-1] * n_left
    match_right: List[int] = [-1] * n_right
    pay_left: List[int] = [-1] * n_left

    if warm_start:
        for u in sorted(warm_start):
            if not 0 <= u < n_left:
                continue
            v = warm_start[u]
            row = adj_rows[u]
            try:
                idx = row.index(v)
            except ValueError:
                continue
            if match_left[u] != -1 or match_right[v] != -1:
                continue
            match_left[u] = v
            match_right[v] = u
            pay_left[u] = payload_rows[u][idx]
    # Greedy first-fit extension.  From an empty matching this is exactly
    # Hopcroft–Karp's first phase (all layers zero), so cold solves skip
    # one BFS pass without changing the result; after a warm seed it fills
    # the uncovered left vertices cheaply so the repair phases start from
    # a near-maximum matching.
    for u in range(n_left):
        if match_left[u] != -1:
            continue
        i = 0
        for v in adj_rows[u]:
            if match_right[v] == -1:
                match_left[u] = v
                match_right[v] = u
                pay_left[u] = payload_rows[u][i]
                break
            i += 1

    dist: List[int] = [0] * n_left

    def bfs() -> bool:
        if stats is not None:
            stats["bfs_phases"] = stats.get("bfs_phases", 0) + 1
        queue: deque[int] = deque()
        for u in range(n_left):
            if match_left[u] == -1:
                dist[u] = 0
                queue.append(u)
            else:
                dist[u] = _INF
        found = False
        while queue:
            u = queue.popleft()
            du = dist[u]
            for v in adj_rows[u]:
                w = match_right[v]
                if w == -1:
                    found = True
                elif dist[w] == _INF:
                    dist[w] = du + 1
                    queue.append(w)
        return found

    def dfs(root: int) -> bool:
        stack: List[List[int]] = [[root, 0]]
        path: List[tuple[int, int, int]] = []
        while stack:
            frame = stack[-1]
            u, idx = frame
            row = adj_rows[u]
            end = len(row)
            advanced = False
            while idx < end:
                v = row[idx]
                idx += 1
                frame[1] = idx
                w = match_right[v]
                if w == -1:
                    path.append((u, v, payload_rows[u][idx - 1]))
                    for pu, pv, pp in path:
                        match_left[pu] = pv
                        match_right[pv] = pu
                        pay_left[pu] = pp
                    return True
                if dist[w] == dist[u] + 1:
                    path.append((u, v, payload_rows[u][idx - 1]))
                    stack.append([w, 0])
                    advanced = True
                    break
            if not advanced:
                dist[u] = _INF
                stack.pop()
                if path:
                    path.pop()
        return False

    while bfs():
        for u in range(n_left):
            if match_left[u] == -1:
                if dfs(u) and stats is not None:
                    stats["augmentations"] = stats.get("augmentations", 0) + 1

    return {u: pay_left[u] for u in range(n_left) if match_left[u] != -1}


def _hk_core(
    nL: int,
    nR: int,
    indptr: List[int],
    adj: List[int],
    adj_v: List[int],
    src,
    dst,
    warm_start: Optional[Dict[int, int]],
    stats: Optional[Dict[str, int]],
) -> Dict[int, int]:
    """Shared BFS/DFS phase loop over CSR lists (plain Python ints:
    elementwise indexing here is 3-4x faster than NumPy scalar access).

    ``adj``/``adj_v`` are the CSR-ordered edge ids and their right
    endpoints; ``src``/``dst`` (any indexable) are touched only to
    validate a warm start.
    """
    n_edges = len(adj)
    match_left: List[int] = [-1] * nL          # matched right vertex per left
    match_right: List[int] = [-1] * nR
    edge_left: List[int] = [-1] * nL           # matched edge id per left

    if warm_start:
        for u in sorted(warm_start):
            eid = warm_start[u]
            if not 0 <= u < nL or not 0 <= eid < n_edges:
                continue
            if src[eid] != u:
                continue
            v = int(dst[eid])
            if match_left[u] != -1 or match_right[v] != -1:
                continue
            match_left[u] = v
            match_right[v] = u
            edge_left[u] = eid
    # Greedy first-fit extension.  From an empty matching, Hopcroft–Karp's
    # first phase (all layers zero) degenerates to exactly this scan —
    # each free left vertex takes its first free neighbor — so cold solves
    # skip one full BFS pass without changing the result; after a warm
    # seed it fills the uncovered left vertices before the repair phases.
    for u in range(nL):
        if match_left[u] != -1:
            continue
        for i in range(indptr[u], indptr[u + 1]):
            v = adj_v[i]
            if match_right[v] == -1:
                match_left[u] = v
                match_right[v] = u
                edge_left[u] = adj[i]
                break

    dist: List[int] = [0] * nL

    def bfs() -> bool:
        """Layer the graph from free left vertices; True if an augmenting
        path exists."""
        if stats is not None:
            stats["bfs_phases"] = stats.get("bfs_phases", 0) + 1
        queue: deque[int] = deque()
        for u in range(nL):
            if match_left[u] == -1:
                dist[u] = 0
                queue.append(u)
            else:
                dist[u] = _INF
        found = False
        while queue:
            u = queue.popleft()
            du = dist[u]
            for i in range(indptr[u], indptr[u + 1]):
                w = match_right[adj_v[i]]
                if w == -1:
                    found = True
                elif dist[w] == _INF:
                    dist[w] = du + 1
                    queue.append(w)
        return found

    # DFS is implemented with an explicit stack so deep augmenting paths on
    # large graphs cannot hit Python's recursion limit.
    while bfs():
        for u in range(nL):
            if match_left[u] == -1:
                if _dfs_iterative(
                    u, indptr, adj, adj_v, match_left, match_right,
                    edge_left, dist,
                ) and stats is not None:
                    stats["augmentations"] = stats.get("augmentations", 0) + 1

    return {u: edge_left[u] for u in range(nL) if match_left[u] != -1}


def _dfs_iterative(
    root: int,
    indptr: List[int],
    adj: List[int],
    adj_v: List[int],
    match_left: List[int],
    match_right: List[int],
    edge_left: List[int],
    dist: List[int],
) -> bool:
    """Stack-based variant of the layered DFS (avoids recursion limits)."""
    # Each stack frame: (vertex, CSR cursor into adj)
    stack: List[List[int]] = [[root, indptr[root]]]
    path: List[tuple[int, int, int]] = []  # (u, v, eid) tentative augments
    while stack:
        frame = stack[-1]
        u, idx = frame
        end = indptr[u + 1]
        advanced = False
        while idx < end:
            v = adj_v[idx]
            eid = adj[idx]
            idx += 1
            frame[1] = idx
            w = match_right[v]
            if w == -1:
                # Augment along the discovered path plus this final edge.
                path.append((u, v, eid))
                for pu, pv, peid in path:
                    match_left[pu] = pv
                    match_right[pv] = pu
                    edge_left[pu] = peid
                return True
            if dist[w] == dist[u] + 1:
                path.append((u, v, eid))
                stack.append([w, indptr[w]])
                advanced = True
                break
        if not advanced:
            dist[u] = _INF
            stack.pop()
            if path:
                path.pop()
    return False


def matching_edge_ids(graph: BipartiteMultigraph) -> List[int]:
    """Convenience wrapper: the edge ids of a maximum matching."""
    return sorted(max_cardinality_matching(graph).values())


def maximum_matching_size(graph: BipartiteMultigraph) -> int:
    """Size of a maximum matching."""
    return len(max_cardinality_matching(graph))
