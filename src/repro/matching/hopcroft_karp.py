"""Hopcroft–Karp maximum-cardinality bipartite matching.

Runs in ``O(E sqrt(V))``: repeated phases of BFS layering followed by DFS
augmentation along vertex-disjoint shortest augmenting paths.  This is the
engine behind the paper's **MaxCard** online heuristic ("at every step a
matching of maximum cardinality is extracted from G_t") and the matching
extraction inside König edge coloring.

The implementation works directly on a :class:`BipartiteMultigraph`;
parallel edges are harmless (at most one copy can ever be matched).
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List

from repro.matching.bipartite import BipartiteMultigraph

_INF = float("inf")


def max_cardinality_matching(graph: BipartiteMultigraph) -> Dict[int, int]:
    """Return a maximum matching as ``{edge_id: 1}``-style edge id set.

    Returns
    -------
    dict
        ``{left_vertex: edge_id}`` for every matched left vertex.  The
        matched edges are recovered as ``graph.edges[eid]``; payloads via
        ``graph.payloads[eid]``.
    """
    nL = graph.n_left
    # adjacency as (neighbor, edge id) pairs per left vertex
    adj: List[List[tuple[int, int]]] = [[] for _ in range(nL)]
    for eid, (u, v) in enumerate(graph.edges):
        adj[u].append((v, eid))

    match_left: List[int] = [-1] * nL          # matched right vertex per left
    match_right: List[int] = [-1] * graph.n_right
    edge_left: List[int] = [-1] * nL           # matched edge id per left

    dist: List[float] = [0.0] * nL

    def bfs() -> bool:
        """Layer the graph from free left vertices; True if an augmenting
        path exists."""
        queue: deque[int] = deque()
        for u in range(nL):
            if match_left[u] == -1:
                dist[u] = 0.0
                queue.append(u)
            else:
                dist[u] = _INF
        found = False
        while queue:
            u = queue.popleft()
            for v, _eid in adj[u]:
                w = match_right[v]
                if w == -1:
                    found = True
                elif dist[w] == _INF:
                    dist[w] = dist[u] + 1
                    queue.append(w)
        return found

    # DFS is implemented with an explicit stack so deep augmenting paths on
    # large graphs cannot hit Python's recursion limit.
    while bfs():
        for u in range(nL):
            if match_left[u] == -1:
                _dfs_iterative(u, adj, match_left, match_right, edge_left, dist)

    return {u: edge_left[u] for u in range(nL) if match_left[u] != -1}


def _dfs_iterative(
    root: int,
    adj: List[List[tuple[int, int]]],
    match_left: List[int],
    match_right: List[int],
    edge_left: List[int],
    dist: List[float],
) -> bool:
    """Stack-based variant of the layered DFS (avoids recursion limits)."""
    # Each stack frame: (vertex, iterator index into adj[vertex])
    stack: List[List[int]] = [[root, 0]]
    path: List[tuple[int, int, int]] = []  # (u, v, eid) tentative augments
    while stack:
        frame = stack[-1]
        u, idx = frame
        advanced = False
        while idx < len(adj[u]):
            v, eid = adj[u][idx]
            idx += 1
            frame[1] = idx
            w = match_right[v]
            if w == -1:
                # Augment along the discovered path plus this final edge.
                path.append((u, v, eid))
                for pu, pv, peid in path:
                    match_left[pu] = pv
                    match_right[pv] = pu
                    edge_left[pu] = peid
                return True
            if dist[w] == dist[u] + 1:
                path.append((u, v, eid))
                stack.append([w, 0])
                advanced = True
                break
        if not advanced:
            dist[u] = _INF
            stack.pop()
            if path:
                path.pop()
    return False


def matching_edge_ids(graph: BipartiteMultigraph) -> List[int]:
    """Convenience wrapper: the edge ids of a maximum matching."""
    return sorted(max_cardinality_matching(graph).values())


def maximum_matching_size(graph: BipartiteMultigraph) -> int:
    """Size of a maximum matching."""
    return len(max_cardinality_matching(graph))
