"""Maximum-weight bipartite matching (not necessarily perfect).

The paper's **MinRTime** and **MaxWeight** heuristics both extract a
maximum-weight matching from the waiting graph each round, with different
edge weights (flow age, and endpoint queue sizes, respectively).

Algorithm: the classical ``O(n^2 m)`` Hungarian method for the rectangular
assignment problem, with the row-scan inner loop vectorized in NumPy
(following the HPC guideline of pushing hot loops into array operations).
Maximum-weight *matching* reduces to assignment by treating absent edges
as weight 0 and discarding zero-weight pairs afterwards: with nonnegative
weights, leaving a vertex unmatched and matching it through a weight-0
"phantom" edge are equivalent.

For the paper's 150x150 waiting graphs a call takes single-digit
milliseconds.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

_INF = np.inf


def solve_dense_assignment(cost: np.ndarray) -> np.ndarray:
    """Minimum-cost rectangular assignment (rows <= cols all assigned).

    Parameters
    ----------
    cost:
        ``(n, m)`` float array with ``n <= m``; every row is assigned to a
        distinct column minimizing total cost.

    Returns
    -------
    ndarray
        ``col_of_row`` of shape ``(n,)``.

    Notes
    -----
    This is the potentials formulation of the Hungarian algorithm (often
    attributed to e-maxx): one Dijkstra-like scan per row, potentials keep
    reduced costs nonnegative.  1-indexed sentinel column 0 tracks the
    currently inserted row.
    """
    cost = np.asarray(cost, dtype=np.float64)
    n, m = cost.shape
    if n > m:
        raise ValueError(f"need n <= m, got shape {cost.shape}")
    # Potentials u (rows, 1-indexed by row+1) and v (cols, with sentinel 0).
    u = np.zeros(n + 1)
    v = np.zeros(m + 1)
    p = np.zeros(m + 1, dtype=np.int64)  # p[j] = row matched to column j (0 = none)
    way = np.zeros(m + 1, dtype=np.int64)

    for i in range(1, n + 1):
        p[0] = i
        j0 = 0
        minv = np.full(m + 1, _INF)
        used = np.zeros(m + 1, dtype=bool)
        while True:
            used[j0] = True
            i0 = p[j0]
            # Vectorized relaxation over all unused columns.
            free = ~used
            free[0] = False
            cols = np.flatnonzero(free)
            if cols.size:
                cur = cost[i0 - 1, cols - 1] - u[i0] - v[cols]
                better = cur < minv[cols]
                upd = cols[better]
                minv[upd] = cur[better]
                way[upd] = j0
                j1 = cols[np.argmin(minv[cols])]
                delta = minv[j1]
            else:  # pragma: no cover - cannot happen while p[j0] != 0
                break
            # Update potentials.
            used_idx = np.flatnonzero(used)
            u[p[used_idx]] += delta
            v[used_idx] -= delta
            minv[cols] -= delta
            j0 = j1
            if p[j0] == 0:
                break
        # Augment along the alternating tree.
        while j0 != 0:
            j1 = way[j0]
            p[j0] = p[j1]
            j0 = j1

    col_of_row = np.full(n, -1, dtype=np.int64)
    for j in range(1, m + 1):
        if p[j] != 0:
            col_of_row[p[j] - 1] = j - 1
    return col_of_row


def max_weight_matching(
    n_left: int,
    n_right: int,
    edges: Sequence[tuple[int, int]],
    weights: Sequence[float],
) -> Dict[int, int]:
    """Maximum-weight matching of a bipartite graph.

    Parameters
    ----------
    n_left / n_right:
        Vertex counts.
    edges:
        ``(u, v)`` pairs; parallel edges are allowed (the heaviest copy is
        the only one that can win).
    weights:
        Nonnegative weight per edge, aligned with ``edges``.

    Returns
    -------
    dict
        ``{left_vertex: edge_index}`` for every matched left vertex whose
        matched edge has strictly positive weight.
    """
    if len(edges) != len(weights):
        raise ValueError("edges and weights must have equal length")
    if n_left == 0 or n_right == 0 or not edges:
        return {}

    # Dense weight matrix; keep the *heaviest* parallel edge and its id.
    weight_mat = np.zeros((n_left, n_right))
    eid_mat = np.full((n_left, n_right), -1, dtype=np.int64)
    for eid, (u, v) in enumerate(edges):
        w = float(weights[eid])
        if w < 0:
            raise ValueError(f"weights must be nonnegative, got {w}")
        if not 0 <= u < n_left or not 0 <= v < n_right:
            raise ValueError(f"edge ({u}, {v}) out of range")
        if eid_mat[u, v] == -1 or w > weight_mat[u, v]:
            weight_mat[u, v] = w
            eid_mat[u, v] = eid

    transposed = n_left > n_right
    mat = weight_mat.T if transposed else weight_mat
    # Maximize weight == minimize negated weight.
    assignment = solve_dense_assignment(-mat)

    result: Dict[int, int] = {}
    for row, col in enumerate(assignment):
        if col < 0:
            continue
        u, v = (col, row) if transposed else (row, int(col))
        if weight_mat[u, v] > 0:
            result[u] = int(eid_mat[u, v])
    return result


def matching_weight(
    matching: Dict[int, int], weights: Sequence[float]
) -> float:
    """Total weight of a matching returned by :func:`max_weight_matching`."""
    return float(sum(weights[eid] for eid in matching.values()))
