"""Minimum vertex cover via König's theorem.

König: in a bipartite graph, minimum vertex cover size equals maximum
matching size.  The constructive direction — alternating-path
reachability from unmatched left vertices — gives an optimality
*certificate* for our Hopcroft–Karp implementation: a cover of the same
size as a matching proves both optimal.  The test suite uses this to
certify matchings without reference implementations, and it is exposed
publicly because schedulability analyses use covers as congestion
witnesses (a vertex cover of the waiting graph is a set of ports whose
capacity limits the round's throughput).
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Set, Tuple

from repro.matching.bipartite import BipartiteMultigraph
from repro.matching.hopcroft_karp import max_cardinality_matching


def minimum_vertex_cover(
    graph: BipartiteMultigraph,
) -> Tuple[Set[Tuple[str, int]], Dict[int, int]]:
    """Compute a minimum vertex cover and a maximum matching.

    Returns
    -------
    (cover, matching)
        ``cover`` is a set of ``("L", u)`` / ``("R", v)`` tags;
        ``matching`` is the ``{left_vertex: edge_id}`` maximum matching
        it was derived from.  ``len(cover) == len(matching)`` always
        (König), and every edge has an endpoint in the cover.
    """
    matching = max_cardinality_matching(graph)
    matched_left: Dict[int, int] = {}
    matched_right: Dict[int, int] = {}
    for u, eid in matching.items():
        _, v = graph.edges[eid]
        matched_left[u] = v
        matched_right[v] = u

    adj: List[List[int]] = [[] for _ in range(graph.n_left)]
    for eid, (u, v) in enumerate(graph.edges):
        adj[u].append(v)

    # Alternating BFS from unmatched left vertices: unmatched edges
    # left->right, matched edges right->left.
    visited_left: Set[int] = set()
    visited_right: Set[int] = set()
    queue: deque[int] = deque(
        u for u in range(graph.n_left) if u not in matched_left
    )
    visited_left.update(queue)
    while queue:
        u = queue.popleft()
        for v in adj[u]:
            if v in visited_right:
                continue
            # Only traverse non-matching edges forward; a (u, v) matching
            # edge cannot extend an alternating path from a free vertex.
            if matched_left.get(u) == v:
                continue
            visited_right.add(v)
            w = matched_right.get(v)
            if w is not None and w not in visited_left:
                visited_left.add(w)
                queue.append(w)

    # König: cover = (L \ visited_L) ∪ (R ∩ visited_R).
    cover: Set[Tuple[str, int]] = {
        ("L", u)
        for u in range(graph.n_left)
        if u in matched_left and u not in visited_left
    }
    cover |= {("R", v) for v in visited_right if v in matched_right}
    return cover, matching


def is_vertex_cover(
    graph: BipartiteMultigraph, cover: Set[Tuple[str, int]]
) -> bool:
    """Check that every edge has an endpoint in ``cover``."""
    return all(
        ("L", u) in cover or ("R", v) in cover for u, v in graph.edges
    )


def certify_maximum_matching(graph: BipartiteMultigraph) -> bool:
    """Self-certify Hopcroft–Karp: matching and cover sizes must agree.

    Returns True when the certificate checks out; an ``AssertionError``
    here would indicate a bug in either algorithm.
    """
    cover, matching = minimum_vertex_cover(graph)
    return is_vertex_cover(graph, cover) and len(cover) == len(matching)
