"""Bipartite graph algorithms (the paper used the LEMON C++ library).

Everything the scheduling algorithms need from graph theory, implemented
from scratch:

* :mod:`repro.matching.bipartite` — bipartite (multi)graph container;
* :mod:`repro.matching.hopcroft_karp` — maximum-cardinality matching
  (used by the MaxCard heuristic and by König edge coloring);
* :mod:`repro.matching.batch_hk` — trials-axis batched Hopcroft–Karp
  over stacked block-diagonal graphs (used by the trial-batched online
  engine);
* :mod:`repro.matching.weight_matching` — maximum-weight bipartite
  matching via shortest augmenting paths with potentials (used by the
  MinRTime and MaxWeight heuristics);
* :mod:`repro.matching.edge_coloring` — König Δ-edge-coloring of bipartite
  multigraphs (the constructive Birkhoff–von Neumann step of Theorem 1);
* :mod:`repro.matching.bvn` — Birkhoff–von-Neumann-style decomposition of
  degree-bounded bipartite multigraphs into matchings;
* :mod:`repro.matching.b_matching` — the port-replication reduction from
  b-matchings to matchings used in the general-capacity case of Theorem 1.
"""

from repro.matching.bipartite import BipartiteMultigraph, EdgeView
from repro.matching.hopcroft_karp import (
    max_cardinality_matching,
    max_cardinality_matching_adjacency,
    max_cardinality_matching_arrays,
)
from repro.matching.batch_hk import max_cardinality_matching_batch
from repro.matching.weight_matching import max_weight_matching
from repro.matching.edge_coloring import edge_color_bipartite
from repro.matching.bvn import decompose_into_matchings
from repro.matching.b_matching import replicate_ports, project_coloring
from repro.matching.vertex_cover import (
    certify_maximum_matching,
    is_vertex_cover,
    minimum_vertex_cover,
)

__all__ = [
    "minimum_vertex_cover",
    "is_vertex_cover",
    "certify_maximum_matching",
    "BipartiteMultigraph",
    "EdgeView",
    "max_cardinality_matching",
    "max_cardinality_matching_adjacency",
    "max_cardinality_matching_arrays",
    "max_cardinality_matching_batch",
    "max_weight_matching",
    "edge_color_bipartite",
    "decompose_into_matchings",
    "replicate_ports",
    "project_coloring",
]
