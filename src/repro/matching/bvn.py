"""Birkhoff–von-Neumann-style decomposition of bounded-degree multigraphs.

The paper invokes "the Birkhoff–von Neumann Theorem" to decompose a
combined window graph of maximum degree ``d`` into at most ``d``
matchings (Theorem 1).  For 0/1 (multi)graphs this is exactly König edge
coloring, which we use as the engine; this module provides the
decomposition-oriented API the scheduling code consumes.
"""

from __future__ import annotations

from typing import List

from repro.matching.bipartite import BipartiteMultigraph
from repro.matching.edge_coloring import color_classes, edge_color_bipartite


def decompose_into_matchings(graph: BipartiteMultigraph) -> List[List[int]]:
    """Partition the edges of ``graph`` into at most Δ matchings.

    Returns
    -------
    list of list of int
        Each inner list is the edge ids of one matching; the lists
        partition ``range(graph.n_edges)`` and there are exactly
        ``graph.max_degree()`` of them (some possibly small, none empty).
    """
    if graph.n_edges == 0:
        return []
    colors = edge_color_bipartite(graph)
    classes = color_classes(graph, colors)
    # Emit in color order for determinism; drop empty classes (cannot
    # occur with König coloring, but harmless).
    return [classes[c] for c in sorted(classes) if classes[c]]


def verify_decomposition(
    graph: BipartiteMultigraph, matchings: List[List[int]]
) -> None:
    """Raise ``AssertionError`` unless ``matchings`` is a valid decomposition.

    Checks: (i) the classes partition the edge set; (ii) each class is a
    matching (no shared endpoints); (iii) class count <= Δ.
    """
    seen: set[int] = set()
    for cls in matchings:
        lefts: set[int] = set()
        rights: set[int] = set()
        for eid in cls:
            if eid in seen:
                raise AssertionError(f"edge {eid} appears in two classes")
            seen.add(eid)
            u, v = graph.edges[eid]
            if u in lefts or v in rights:
                raise AssertionError(f"class reuses a vertex at edge {eid}")
            lefts.add(u)
            rights.add(v)
    if len(seen) != graph.n_edges:
        raise AssertionError(
            f"classes cover {len(seen)} of {graph.n_edges} edges"
        )
    if len(matchings) > max(graph.max_degree(), 0):
        raise AssertionError(
            f"{len(matchings)} classes exceed max degree {graph.max_degree()}"
        )
