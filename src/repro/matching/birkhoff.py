"""Birkhoff decomposition of fractional rate matrices.

Remark 3.2 of the paper observes that the optimal solution of LP (1)–(4)
is a *non-integral schedule*: for each round, a doubly-substochastic
rate matrix ``R`` (row/column sums at most 1 after normalizing by port
capacity).  The classical way to realize such rates on a crossbar — and
the core of the Birkhoff–von Neumann switching literature the paper
cites — is to decompose ``R`` into a convex combination of (partial)
permutation matrices: ``R = sum_k lambda_k P_k`` with
``sum_k lambda_k <= 1``.

Algorithm: pad ``R`` to the doubly *stochastic* matrix

    D = [[ R,            diag(1 - rowsum) ],
         [ diag(1-colsum),      R^T       ]]

(each line of ``D`` sums to exactly 1), then run the constructive
Birkhoff proof on ``D``: the support of a doubly stochastic matrix
always contains a perfect matching (Hall), so repeatedly extract one
with Hopcroft–Karp, peel off its minimum entry, and recurse.  Each peel
zeroes at least one entry, so there are at most ``nnz(D)`` terms, and
the peel weights sum to exactly 1.  Restricting each permutation to the
``R`` block yields the partial matchings of the substochastic input.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.matching.bipartite import BipartiteMultigraph
from repro.matching.hopcroft_karp import max_cardinality_matching

_TOL = 1e-9


def birkhoff_decomposition(
    rates: np.ndarray, max_terms: int | None = None
) -> List[Tuple[float, List[Tuple[int, int]]]]:
    """Decompose a doubly-substochastic matrix into weighted matchings.

    Parameters
    ----------
    rates:
        ``(m, m')`` nonnegative matrix with every row and column sum
        ``<= 1`` (normalize by port capacity first for capacitated
        ports).
    max_terms:
        Safety cap on the number of extracted terms (default
        ``nnz(D) + 1`` for the padded matrix ``D``).

    Returns
    -------
    list of (weight, matching)
        ``matching`` is a list of ``(row, col)`` pairs forming a partial
        permutation; weights are positive and sum to **at most 1**, and
        the weighted sum of the matchings reconstructs ``rates`` exactly
        (up to float tolerance).  Terms whose permutation misses the
        ``R`` block entirely (pure idle time) are omitted.

    Raises
    ------
    ValueError
        If the matrix is negative or a line sum exceeds 1.
    """
    R = np.asarray(rates, dtype=np.float64)
    if R.ndim != 2:
        raise ValueError(f"rates must be 2-D, got shape {R.shape}")
    if (R < -_TOL).any():
        raise ValueError("rates must be nonnegative")
    row_sums = R.sum(axis=1)
    col_sums = R.sum(axis=0)
    if (row_sums > 1 + 1e-7).any() or (col_sums > 1 + 1e-7).any():
        raise ValueError("row/column sums must be <= 1 (substochastic)")
    m, mp = R.shape

    # Doubly stochastic padding (see module docstring).
    n = m + mp
    D = np.zeros((n, n))
    D[:m, :mp] = R
    D[:m, mp:] = np.diag(np.clip(1.0 - row_sums, 0.0, None))
    D[m:, :mp] = np.diag(np.clip(1.0 - col_sums, 0.0, None))
    D[m:, mp:] = R.T

    if max_terms is None:
        max_terms = int((D > _TOL).sum()) + 1

    terms: List[Tuple[float, List[Tuple[int, int]]]] = []
    for _ in range(max_terms):
        support = np.argwhere(D > _TOL)
        if support.size == 0:
            break
        graph = BipartiteMultigraph(n, n)
        for u, v in support:
            graph.add_edge(int(u), int(v))
        matching = max_cardinality_matching(graph)
        pairs = [graph.edges[eid] for eid in matching.values()]
        if len(pairs) < n:
            # Residual mass too small to matter; float dust remains.
            if D.max() < 1e-7:
                break
            raise AssertionError(
                "no perfect matching on a doubly stochastic support — "
                "numerical degeneration"
            )
        weight = float(min(D[u, v] for u, v in pairs))
        for u, v in pairs:
            D[u, v] -= weight
            if D[u, v] < _TOL:
                D[u, v] = 0.0
        real = [(u, v) for u, v in pairs if u < m and v < mp]
        if real:
            terms.append((weight, real))
    return terms


def reconstruct(
    shape: Tuple[int, int],
    terms: List[Tuple[float, List[Tuple[int, int]]]],
) -> np.ndarray:
    """Inverse of :func:`birkhoff_decomposition` (testing helper)."""
    R = np.zeros(shape)
    for weight, matching in terms:
        for u, v in matching:
            R[u, v] += weight
    return R


def rates_from_lp_solution(
    values: dict, num_inputs: int, num_outputs: int, round_: int, flows
) -> np.ndarray:
    """Assemble the round-``t`` rate matrix from LP (1)–(4) variables.

    ``values`` maps ``("b", fid, t)`` to the fractional amount of flow
    ``fid`` scheduled in round ``t``; entries are accumulated into the
    (src, dst) cell (unit capacities assumed — normalize otherwise).
    """
    R = np.zeros((num_inputs, num_outputs))
    for (tag, fid, t), val in values.items():
        if tag == "b" and t == round_ and val > _TOL:
            flow = flows[fid]
            R[flow.src, flow.dst] += val
    return R
