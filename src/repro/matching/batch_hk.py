"""Trials-axis batched Hopcroft–Karp (stacked block-diagonal solves).

The trial-batched online engine (:mod:`repro.online.batch`) stacks N
disjoint per-trial matching problems onto the virtual ports of one tiled
switch.  The resulting bipartite graph is **block diagonal** — edges
never cross trial blocks — so one stacked solve with per-trial masks can
replace N independent Hopcroft–Karp runs: every BFS layering and every
greedy-seed round becomes a handful of NumPy passes over the whole
stack, and only the (rare, short) augmenting-path walks stay in Python.

:func:`max_cardinality_matching_batch` is byte-identical, per trial
block, to running :func:`repro.matching.hopcroft_karp.
max_cardinality_matching_adjacency` on that trial's rows:

* the **greedy first-fit seed** (each free left vertex takes its first
  free neighbor, in ascending vertex order) is reformulated as greedy
  edge matching over CSR-ordered edges and executed as parallel rounds
  of the reversed-scatter first-occurrence trick — the same
  parallel-greedy argument the batched packing kernels use, so the
  union over rounds equals the sequential scan exactly;
* the **BFS phase** is level-synchronous over the whole stack: the
  frontier starts at every free left vertex of every still-active
  trial, and one gather per level advances all trials at once.  Level-
  synchronous exploration assigns the same shortest-path layers as the
  sequential queue-based BFS, so the DFS sees identical ``dist``
  labels;
* a trial **drops out of the frontier** the first phase its BFS finds
  no augmenting path (its matching is maximum) — exactly when its solo
  loop would terminate — which also makes ``bfs_phases`` and
  ``augmentations`` attributable per trial;
* **warm starts** seed per-trial ``{left: right}`` pairs with the same
  validate-then-claim order as the solo kernel (ascending left vertex,
  first claim on a right vertex wins).

Because the blocks are disjoint, interleaving trials changes nothing:
every per-trial projection of the stacked state equals the state of
that trial's solo solve after the same number of steps.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.matching.hopcroft_karp import _INF


def max_cardinality_matching_batch(
    n_left: int,
    n_right: int,
    us: np.ndarray,
    vs: np.ndarray,
    trial_of_left: np.ndarray,
    trial_of_right: np.ndarray,
    n_trials: int,
    warm_start: Optional[Dict[int, int]] = None,
    bfs_phases: Optional[np.ndarray] = None,
    augmentations: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Maximum-cardinality matching of a stacked block-diagonal graph.

    Parameters
    ----------
    n_left / n_right:
        Total (stacked) left/right vertex counts.
    us / vs:
        Edge endpoint arrays.  Edges incident on the same left vertex
        must appear in that vertex's adjacency (tie-breaking) order;
        the CSR build below preserves it with a stable sort.  Every
        edge must stay inside one trial block
        (``trial_of_left[us[i]] == trial_of_right[vs[i]]``).
    trial_of_left / trial_of_right:
        Owning trial per stacked left/right vertex.
    n_trials:
        Number of trial blocks.
    warm_start:
        Optional merged ``{left_vertex: right_vertex}`` seed (pair
        level, like the adjacency solo entry point).  Entries whose
        pair is no longer adjacent, or that conflict with an earlier
        seeded entry, are silently skipped — identical validation
        order to the solo kernel.
    bfs_phases / augmentations:
        Optional ``int64[n_trials]`` accumulators.  For each trial that
        owns at least one edge, incremented exactly as that trial's
        solo ``stats`` dict would be (one per BFS layering pass, one
        per augmenting path applied).  Trials with no edges are not
        touched — their solo solve would never have been invoked.

    Returns
    -------
    np.ndarray
        ``int64[n_left]``: the matched edge's index into ``us``/``vs``
        per left vertex, ``-1`` where unmatched.
    """
    us = np.asarray(us, dtype=np.int64)
    vs = np.asarray(vs, dtype=np.int64)
    edge_left = np.full(n_left, -1, dtype=np.int64)
    if us.size == 0 or n_left == 0:
        return edge_left

    # CSR over the stack; stable sort keeps each row in input order.
    order = np.argsort(us, kind="stable")
    csr_u = us[order]
    csr_v = vs[order]
    csr_e = order
    indptr = np.zeros(n_left + 1, dtype=np.int64)
    np.cumsum(np.bincount(us, minlength=n_left), out=indptr[1:])

    match_left = np.full(n_left, -1, dtype=np.int64)
    match_right = np.full(n_right, -1, dtype=np.int64)

    if warm_start:
        # Ascending left vertex = per-trial ascending order (blocks are
        # disjoint), mirroring the solo kernel's seeding sequence.
        for u in sorted(warm_start):
            if not 0 <= u < n_left:
                continue
            v = warm_start[u]
            s, e = int(indptr[u]), int(indptr[u + 1])
            hits = np.flatnonzero(csr_v[s:e] == v)
            if hits.size == 0:
                continue
            if match_left[u] != -1 or match_right[v] != -1:
                continue
            match_left[u] = v
            match_right[v] = u
            edge_left[u] = csr_e[s + int(hits[0])]

    # ------------------------------------------------------------------
    # Vectorized greedy first-fit seed.  Sequential first-fit (ascending
    # u, first free neighbor in row order) equals greedy *edge* matching
    # over slots sorted by (u, row position) — i.e. ascending CSR slot —
    # which parallelizes as rounds of "take every slot that is first
    # among the remaining on both its endpoints" (reversed-scatter
    # first-occurrence), exactly like the unit packing kernel.
    # ------------------------------------------------------------------
    cand = np.flatnonzero(
        (match_left[csr_u] == -1) & (match_right[csr_v] == -1)
    )
    slot_l = np.empty(n_left, dtype=np.int64)
    slot_r = np.empty(n_right, dtype=np.int64)
    while cand.size:
        uu = csr_u[cand]
        vv = csr_v[cand]
        idx = np.arange(cand.size, dtype=np.int64)
        rev = idx[::-1]
        slot_l[uu[::-1]] = rev
        slot_r[vv[::-1]] = rev
        take = (slot_l[uu] == idx) & (slot_r[vv] == idx)
        tslots = cand[take]
        match_left[csr_u[tslots]] = csr_v[tslots]
        match_right[csr_v[tslots]] = csr_u[tslots]
        edge_left[csr_u[tslots]] = csr_e[tslots]
        slot_l[uu[take]] = -1
        slot_r[vv[take]] = -1
        cand = cand[(slot_l[uu] >= 0) & (slot_r[vv] >= 0)]

    # Trials owning at least one edge participate; the rest are never
    # entered (their solo solve would not have been called).
    active = np.zeros(n_trials, dtype=bool)
    active[trial_of_left[us]] = True

    # Lazily converted CSR lists for the Python DFS walks.
    indptr_l = csr_v_l = csr_e_l = None
    tol_list: Optional[list] = None

    while active.any():
        if bfs_phases is not None:
            bfs_phases[active] += 1
        # --------------------------------------------------------------
        # Level-synchronous BFS across all active trials.  Shortest-path
        # layers are order-independent, so the stacked dist labels equal
        # each trial's solo queue-based BFS labels exactly.
        # --------------------------------------------------------------
        dist = np.full(n_left, _INF, dtype=np.int64)
        frontier = np.flatnonzero(
            (match_left == -1) & active[trial_of_left]
        )
        dist[frontier] = 0
        found = np.zeros(n_trials, dtype=bool)
        level = 0
        while frontier.size:
            counts = indptr[frontier + 1] - indptr[frontier]
            nz = counts > 0
            fr = frontier[nz]
            cnt = counts[nz]
            if fr.size == 0:
                break
            # Gather all CSR slots of the frontier in one pass.
            starts = indptr[fr]
            total = int(cnt.sum())
            step = np.ones(total, dtype=np.int64)
            step[0] = starts[0]
            cum = np.cumsum(cnt)
            step[cum[:-1]] = starts[1:] - (starts[:-1] + cnt[:-1]) + 1
            slots = np.cumsum(step)
            vv = csr_v[slots]
            ww = match_right[vv]
            free_right = ww == -1
            if free_right.any():
                found[trial_of_right[vv[free_right]]] = True
            nxt = ww[~free_right]
            nxt = nxt[dist[nxt] == _INF]
            if nxt.size == 0:
                break
            dist[nxt] = level + 1
            frontier = np.unique(nxt)
            level += 1

        active = found
        if not found.any():
            break
        # --------------------------------------------------------------
        # Layered DFS augmentation, Python, only over the free left
        # vertices of trials whose BFS found a path.  Ascending stacked
        # vertex order = per-trial ascending order.  Other trials' free
        # vertices have dist == _INF frontier exclusion, so the walks
        # can never cross blocks.
        # --------------------------------------------------------------
        if indptr_l is None:
            indptr_l = indptr.tolist()
            csr_v_l = csr_v.tolist()
            csr_e_l = csr_e.tolist()
            tol_list = trial_of_left.tolist()
        dist_l = dist.tolist()
        targets = np.flatnonzero(
            (match_left == -1) & found[trial_of_left]
        )
        for root in targets.tolist():
            if _dfs_augment(
                root, indptr_l, csr_v_l, csr_e_l,
                match_left, match_right, edge_left, dist_l,
            ) and augmentations is not None:
                augmentations[tol_list[root]] += 1

    return edge_left


def _dfs_augment(
    root: int,
    indptr: list,
    csr_v: list,
    csr_e: list,
    match_left: np.ndarray,
    match_right: np.ndarray,
    edge_left: np.ndarray,
    dist: list,
) -> bool:
    """One augmenting walk — the solo kernel's iterative DFS verbatim,
    over the stacked CSR (match arrays stay NumPy: walks are short and
    rare, so scalar access is off the hot path)."""
    stack = [[root, indptr[root]]]
    path = []  # (u, v, slot) tentative augments
    while stack:
        frame = stack[-1]
        u, idx = frame
        end = indptr[u + 1]
        advanced = False
        while idx < end:
            v = csr_v[idx]
            slot = idx
            idx += 1
            frame[1] = idx
            w = int(match_right[v])
            if w == -1:
                path.append((u, v, slot))
                for pu, pv, pslot in path:
                    match_left[pu] = pv
                    match_right[pv] = pu
                    edge_left[pu] = csr_e[pslot]
                return True
            if dist[w] == dist[u] + 1:
                path.append((u, v, slot))
                stack.append([w, indptr[w]])
                advanced = True
                break
        if not advanced:
            dist[u] = _INF
            stack.pop()
            if path:
                path.pop()
    return False
