"""A minimal bipartite multigraph container.

Vertices are integers ``0..n_left-1`` on the left and ``0..n_right-1`` on
the right.  Parallel edges are allowed (the Theorem 1 conversion produces
multigraphs: several unit flows between the same port pair within one
window).  Edges carry an opaque payload (typically a flow id) so matchings
and colorings can be mapped back to flows.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, List, Optional

import numpy as np


@dataclass
class BipartiteMultigraph:
    """Edge-list bipartite multigraph with adjacency indexing.

    Attributes
    ----------
    n_left / n_right:
        Vertex counts of the two sides.
    edges:
        List of ``(u, v)`` pairs; index into this list is the edge id.
    payloads:
        ``payloads[eid]`` is caller data attached to edge ``eid``.
    """

    n_left: int
    n_right: int
    edges: List[tuple[int, int]] = field(default_factory=list)
    payloads: List[Any] = field(default_factory=list)

    def add_edge(self, u: int, v: int, payload: Any = None) -> int:
        """Append edge ``(u, v)``; returns its edge id."""
        if not 0 <= u < self.n_left:
            raise ValueError(f"left vertex {u} out of range [0, {self.n_left})")
        if not 0 <= v < self.n_right:
            raise ValueError(f"right vertex {v} out of range [0, {self.n_right})")
        self.edges.append((u, v))
        self.payloads.append(payload)
        return len(self.edges) - 1

    @property
    def n_edges(self) -> int:
        """Number of edges (with multiplicity)."""
        return len(self.edges)

    def left_degrees(self) -> np.ndarray:
        """Degree (with multiplicity) of each left vertex."""
        deg = np.zeros(self.n_left, dtype=np.int64)
        for u, _ in self.edges:
            deg[u] += 1
        return deg

    def right_degrees(self) -> np.ndarray:
        """Degree (with multiplicity) of each right vertex."""
        deg = np.zeros(self.n_right, dtype=np.int64)
        for _, v in self.edges:
            deg[v] += 1
        return deg

    def max_degree(self) -> int:
        """Δ over both sides (0 when edgeless)."""
        if not self.edges:
            return 0
        return int(max(self.left_degrees().max(), self.right_degrees().max()))

    def adjacency_left(self) -> List[List[int]]:
        """``adj[u]`` = edge ids incident on left vertex ``u``."""
        adj: List[List[int]] = [[] for _ in range(self.n_left)]
        for eid, (u, _) in enumerate(self.edges):
            adj[u].append(eid)
        return adj

    def adjacency_right(self) -> List[List[int]]:
        """``adj[v]`` = edge ids incident on right vertex ``v``."""
        adj: List[List[int]] = [[] for _ in range(self.n_right)]
        for eid, (_, v) in enumerate(self.edges):
            adj[v].append(eid)
        return adj

    def subgraph(self, edge_ids: Iterable[int]) -> "BipartiteMultigraph":
        """Graph on the same vertex sets containing only ``edge_ids``."""
        sub = BipartiteMultigraph(self.n_left, self.n_right)
        for eid in edge_ids:
            u, v = self.edges[eid]
            sub.add_edge(u, v, self.payloads[eid])
        return sub

    @staticmethod
    def from_edges(
        n_left: int,
        n_right: int,
        edges: Iterable[tuple[int, int]],
        payloads: Optional[Iterable[Any]] = None,
    ) -> "BipartiteMultigraph":
        """Build a graph from an edge iterable (payloads optional)."""
        g = BipartiteMultigraph(n_left, n_right)
        if payloads is None:
            for u, v in edges:
                g.add_edge(u, v)
        else:
            for (u, v), payload in zip(edges, payloads):
                g.add_edge(u, v, payload)
        return g

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"BipartiteMultigraph({self.n_left}+{self.n_right} vertices, "
            f"{self.n_edges} edges, Δ={self.max_degree()})"
        )
