"""An array-native bipartite multigraph container.

Vertices are integers ``0..n_left-1`` on the left and ``0..n_right-1`` on
the right.  Parallel edges are allowed (the Theorem 1 conversion produces
multigraphs: several unit flows between the same port pair within one
window).  Edges carry an opaque payload (typically a flow id) so matchings
and colorings can be mapped back to flows.

Storage is columnar: two append-buffered ``int64`` arrays (``src``/``dst``,
grown geometrically) plus a payload list, with derived structure —
degrees, Δ, and a CSR adjacency per side — built lazily on first use and
invalidated by any mutation.  This keeps ``add_edge`` O(1) amortized,
degree queries a single ``np.bincount``, and lets the matching/coloring
kernels and the online simulator consume flat arrays instead of Python
tuple lists.

Back-compat: ``graph.edges`` is a sequence view producing ``(u, v)``
tuples (indexable, iterable, comparable to a list), and ``graph.payloads``
is the payload list, so all pre-existing call sites keep working.
"""

from __future__ import annotations

from typing import Any, Iterable, List, Optional, Sequence, Tuple

import numpy as np

_INITIAL_CAPACITY = 16


class EdgeView:
    """Read-only sequence view of a graph's edges as ``(u, v)`` tuples."""

    __slots__ = ("_graph",)

    def __init__(self, graph: "BipartiteMultigraph"):
        self._graph = graph

    def __len__(self) -> int:
        return self._graph.n_edges

    def __getitem__(self, eid):
        g = self._graph
        if isinstance(eid, slice):
            return [
                (int(u), int(v))
                for u, v in zip(g.src[eid], g.dst[eid])
            ]
        n = g.n_edges
        if eid < 0:
            eid += n
        if not 0 <= eid < n:
            raise IndexError(f"edge id {eid} out of range [0, {n})")
        return (int(g._src[eid]), int(g._dst[eid]))

    def __iter__(self):
        g = self._graph
        return zip(g._src[: g.n_edges].tolist(), g._dst[: g.n_edges].tolist())

    def __eq__(self, other) -> bool:
        if isinstance(other, EdgeView):
            other = list(other)
        if isinstance(other, (list, tuple)):
            return list(self) == list(other)
        return NotImplemented

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"EdgeView({list(self)})"


class BipartiteMultigraph:
    """Array-backed bipartite multigraph with lazy CSR adjacency.

    Attributes
    ----------
    n_left / n_right:
        Vertex counts of the two sides.
    edges:
        Sequence view of ``(u, v)`` pairs; index into it is the edge id.
    payloads:
        ``payloads[eid]`` is caller data attached to edge ``eid``.
    src / dst:
        The underlying ``int64`` endpoint arrays (read-only views of the
        live prefix of the append buffers).
    """

    __slots__ = (
        "n_left",
        "n_right",
        "_src",
        "_dst",
        "_n_edges",
        "_payloads",
        "_csr_left",
        "_csr_right",
        "_degrees",
    )

    def __init__(self, n_left: int, n_right: int):
        self.n_left = int(n_left)
        self.n_right = int(n_right)
        self._src = np.empty(_INITIAL_CAPACITY, dtype=np.int64)
        self._dst = np.empty(_INITIAL_CAPACITY, dtype=np.int64)
        self._n_edges = 0
        self._payloads: List[Any] = []
        self._csr_left: Optional[Tuple[np.ndarray, np.ndarray]] = None
        self._csr_right: Optional[Tuple[np.ndarray, np.ndarray]] = None
        self._degrees: Optional[Tuple[np.ndarray, np.ndarray, int]] = None

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------

    def _invalidate(self) -> None:
        self._csr_left = None
        self._csr_right = None
        self._degrees = None

    def _reserve(self, extra: int) -> None:
        need = self._n_edges + extra
        cap = self._src.shape[0]
        if need <= cap:
            return
        while cap < need:
            cap *= 2
        self._src = np.resize(self._src, cap)
        self._dst = np.resize(self._dst, cap)

    def add_edge(self, u: int, v: int, payload: Any = None) -> int:
        """Append edge ``(u, v)``; returns its edge id."""
        if not 0 <= u < self.n_left:
            raise ValueError(f"left vertex {u} out of range [0, {self.n_left})")
        if not 0 <= v < self.n_right:
            raise ValueError(f"right vertex {v} out of range [0, {self.n_right})")
        self._reserve(1)
        eid = self._n_edges
        self._src[eid] = u
        self._dst[eid] = v
        self._payloads.append(payload)
        self._n_edges = eid + 1
        self._invalidate()
        return eid

    def add_edges(
        self,
        us: Sequence[int],
        vs: Sequence[int],
        payloads: Optional[Sequence[Any]] = None,
    ) -> None:
        """Bulk-append edges from endpoint arrays (vectorized validation).

        ``payloads`` may be any sequence aligned with ``us``/``vs`` (a
        NumPy array of flow ids included); omitted payloads are ``None``.
        """
        us = np.asarray(us, dtype=np.int64)
        vs = np.asarray(vs, dtype=np.int64)
        if us.shape != vs.shape or us.ndim != 1:
            raise ValueError("us and vs must be equal-length 1-D arrays")
        k = us.shape[0]
        if k == 0:
            return
        if us.min() < 0 or us.max() >= self.n_left:
            bad = int(us[(us < 0) | (us >= self.n_left)][0])
            raise ValueError(f"left vertex {bad} out of range [0, {self.n_left})")
        if vs.min() < 0 or vs.max() >= self.n_right:
            bad = int(vs[(vs < 0) | (vs >= self.n_right)][0])
            raise ValueError(f"right vertex {bad} out of range [0, {self.n_right})")
        if payloads is not None and len(payloads) != k:
            raise ValueError("payloads must align with us/vs")
        self._append_unchecked(us, vs, payloads)

    def _append_unchecked(
        self,
        us: np.ndarray,
        vs: np.ndarray,
        payloads: Optional[Sequence[Any]],
    ) -> None:
        k = us.shape[0]
        self._reserve(k)
        n = self._n_edges
        self._src[n : n + k] = us
        self._dst[n : n + k] = vs
        if payloads is None:
            self._payloads.extend([None] * k)
        elif isinstance(payloads, np.ndarray):
            self._payloads.extend(payloads.tolist())
        else:
            self._payloads.extend(payloads)
        self._n_edges = n + k
        self._invalidate()

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------

    @property
    def n_edges(self) -> int:
        """Number of edges (with multiplicity)."""
        return self._n_edges

    @property
    def src(self) -> np.ndarray:
        """Left endpoint per edge id (live prefix of the append buffer)."""
        view = self._src[: self._n_edges]
        view.flags.writeable = False
        return view

    @property
    def dst(self) -> np.ndarray:
        """Right endpoint per edge id (live prefix of the append buffer)."""
        view = self._dst[: self._n_edges]
        view.flags.writeable = False
        return view

    @property
    def edges(self) -> EdgeView:
        """``(u, v)`` tuple view; index into it is the edge id."""
        return EdgeView(self)

    @property
    def payloads(self) -> List[Any]:
        """Caller data per edge id (mutate via ``add_edge`` only)."""
        return self._payloads

    # ------------------------------------------------------------------
    # Degrees (cached, one bincount pass per side)
    # ------------------------------------------------------------------

    def _degree_cache(self) -> Tuple[np.ndarray, np.ndarray, int]:
        if self._degrees is None:
            n = self._n_edges
            left = np.bincount(self._src[:n], minlength=self.n_left)
            right = np.bincount(self._dst[:n], minlength=self.n_right)
            delta = 0
            if n:
                delta = int(max(left.max(), right.max()))
            self._degrees = (left, right, delta)
        return self._degrees

    def left_degrees(self) -> np.ndarray:
        """Degree (with multiplicity) of each left vertex."""
        return self._degree_cache()[0]

    def right_degrees(self) -> np.ndarray:
        """Degree (with multiplicity) of each right vertex."""
        return self._degree_cache()[1]

    def max_degree(self) -> int:
        """Δ over both sides (0 when edgeless).

        Single pass over the edge arrays, cached until the next mutation
        (the seed implementation re-derived both degree vectors on every
        call).
        """
        if self._n_edges == 0:
            return 0
        return self._degree_cache()[2]

    # ------------------------------------------------------------------
    # Adjacency (lazy CSR, invalidated by mutation)
    # ------------------------------------------------------------------

    def csr_left(self) -> Tuple[np.ndarray, np.ndarray]:
        """CSR adjacency over left vertices: ``(indptr, eids)``.

        ``eids[indptr[u]:indptr[u+1]]`` are the edge ids incident on left
        vertex ``u``, in **edge-insertion order** (stable sort) — the
        traversal order every kernel in this package relies on for
        deterministic tie-breaking.
        """
        if self._csr_left is None:
            self._csr_left = self._build_csr(
                self._src[: self._n_edges], self.n_left
            )
        return self._csr_left

    def csr_right(self) -> Tuple[np.ndarray, np.ndarray]:
        """CSR adjacency over right vertices: ``(indptr, eids)``."""
        if self._csr_right is None:
            self._csr_right = self._build_csr(
                self._dst[: self._n_edges], self.n_right
            )
        return self._csr_right

    @staticmethod
    def _build_csr(keys: np.ndarray, n_vertices: int) -> Tuple[np.ndarray, np.ndarray]:
        counts = np.bincount(keys, minlength=n_vertices)
        indptr = np.zeros(n_vertices + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        order = np.argsort(keys, kind="stable").astype(np.int64, copy=False)
        return indptr, order

    def adjacency_left(self) -> List[List[int]]:
        """``adj[u]`` = edge ids incident on left vertex ``u``."""
        indptr, eids = self.csr_left()
        lst = eids.tolist()
        return [
            lst[indptr[u] : indptr[u + 1]] for u in range(self.n_left)
        ]

    def adjacency_right(self) -> List[List[int]]:
        """``adj[v]`` = edge ids incident on right vertex ``v``."""
        indptr, eids = self.csr_right()
        lst = eids.tolist()
        return [
            lst[indptr[v] : indptr[v + 1]] for v in range(self.n_right)
        ]

    # ------------------------------------------------------------------
    # Derived graphs
    # ------------------------------------------------------------------

    def subgraph(self, edge_ids: Iterable[int]) -> "BipartiteMultigraph":
        """Graph on the same vertex sets containing only ``edge_ids``.

        O(k) for k selected edges: endpoints are gathered with one fancy
        index per side, with no per-edge range revalidation (the ids index
        an already-validated graph).
        """
        if isinstance(edge_ids, np.ndarray):
            ids = edge_ids.astype(np.int64, copy=False).reshape(-1)
        else:
            ids = np.fromiter(edge_ids, dtype=np.int64)
        sub = BipartiteMultigraph(self.n_left, self.n_right)
        if ids.size == 0:
            return sub
        if ids.min() < 0 or ids.max() >= self._n_edges:
            raise IndexError("edge id out of range in subgraph selection")
        payloads = self._payloads
        sub._append_unchecked(
            self._src[ids], self._dst[ids], [payloads[i] for i in ids.tolist()]
        )
        return sub

    @staticmethod
    def from_arrays(
        n_left: int,
        n_right: int,
        us: np.ndarray,
        vs: np.ndarray,
        payloads: Optional[Sequence[Any]] = None,
    ) -> "BipartiteMultigraph":
        """Build a graph from endpoint arrays (vectorized ``from_edges``)."""
        g = BipartiteMultigraph(n_left, n_right)
        g.add_edges(us, vs, payloads)
        return g

    @staticmethod
    def from_edges(
        n_left: int,
        n_right: int,
        edges: Iterable[tuple[int, int]],
        payloads: Optional[Iterable[Any]] = None,
    ) -> "BipartiteMultigraph":
        """Build a graph from an edge iterable (payloads optional)."""
        pairs = list(edges)
        g = BipartiteMultigraph(n_left, n_right)
        if payloads is not None:
            # zip semantics of the scalar path: the shorter sequence wins.
            plist = list(payloads)
            pairs = pairs[: len(plist)]
            plist = plist[: len(pairs)]
        if not pairs:
            return g
        arr = np.asarray(pairs, dtype=np.int64)
        g.add_edges(arr[:, 0], arr[:, 1], plist if payloads is not None else None)
        return g

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"BipartiteMultigraph({self.n_left}+{self.n_right} vertices, "
            f"{self.n_edges} edges, Δ={self.max_degree()})"
        )
