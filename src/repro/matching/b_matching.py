"""b-matchings via port replication (general-capacity case of Theorem 1).

A *b-matching* of a bipartite graph, for capacity function ``b``, is a
subgraph in which every vertex ``v`` has degree at most ``b(v)``.  The
paper converts the general-capacity schedule-extraction problem to unit
capacities with a standard transformation: replicate each port ``p`` into
``c_p`` copies and distribute its incident edges round-robin among the
copies.  An edge coloring of the replicated graph projects back to a
partition of the original edges into b-matchings.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from repro.matching.bipartite import BipartiteMultigraph


def replicate_ports(
    graph: BipartiteMultigraph,
    left_capacities: Sequence[int],
    right_capacities: Sequence[int],
) -> tuple[BipartiteMultigraph, np.ndarray]:
    """Round-robin port replication.

    Parameters
    ----------
    graph:
        Bipartite multigraph whose vertices are ports.
    left_capacities / right_capacities:
        ``c_p`` per vertex; vertex ``p`` becomes ``c_p`` replicas.

    Returns
    -------
    (replicated, edge_map)
        ``replicated`` is the graph on replica vertices; edge ``i`` of
        ``replicated`` corresponds to edge ``edge_map[i]`` of ``graph``
        (here the identity — edges are emitted in input order, so
        ``edge_map[i] == i``; returned for interface clarity).

    Notes
    -----
    Round-robin distribution guarantees replica degree
    ``<= ceil(deg(p) / c_p)``; Theorem 1 uses this to bound the replicated
    graph's Δ by ``ceil(c'(1 + 1/c) log n)`` when port loads obey the
    pseudo-schedule's overload bound.
    """
    left_caps = np.asarray(left_capacities, dtype=np.int64)
    right_caps = np.asarray(right_capacities, dtype=np.int64)
    if left_caps.shape != (graph.n_left,) or right_caps.shape != (graph.n_right,):
        raise ValueError("capacity vectors must match graph vertex counts")
    if (left_caps < 1).any() or (right_caps < 1).any():
        raise ValueError("capacities must be >= 1")

    left_offset = np.concatenate([[0], np.cumsum(left_caps)])
    right_offset = np.concatenate([[0], np.cumsum(right_caps)])
    replicated = BipartiteMultigraph(int(left_offset[-1]), int(right_offset[-1]))
    edge_map = np.arange(graph.n_edges, dtype=np.int64)
    if graph.n_edges == 0:
        return replicated, edge_map

    # Vectorized round-robin: the i-th edge incident on a vertex (in edge
    # order) goes to replica ``i mod c``.  The occurrence rank within each
    # vertex group falls out of a stable sort by endpoint.
    src, dst = graph.src, graph.dst
    replicated._append_unchecked(
        left_offset[src] + _occurrence_rank(src, graph.n_left) % left_caps[src],
        right_offset[dst]
        + _occurrence_rank(dst, graph.n_right) % right_caps[dst],
        graph.payloads,
    )
    return replicated, edge_map


def _occurrence_rank(keys: np.ndarray, n_vertices: int) -> np.ndarray:
    """``rank[i]`` = how many earlier edges share ``keys[i]`` (0-based)."""
    order = np.argsort(keys, kind="stable")
    counts = np.bincount(keys, minlength=n_vertices)
    group_starts = np.zeros(n_vertices, dtype=np.int64)
    np.cumsum(counts[:-1], out=group_starts[1:])
    rank_sorted = np.arange(keys.size, dtype=np.int64) - np.repeat(
        group_starts, counts
    )
    rank = np.empty(keys.size, dtype=np.int64)
    rank[order] = rank_sorted
    return rank


def project_coloring(
    edge_map: np.ndarray, replica_classes: List[List[int]]
) -> List[List[int]]:
    """Map matchings of the replicated graph back to original edge ids.

    Each replica matching projects to a *b-matching* of the original
    graph: at most ``c_p`` of port ``p``'s edges per class, because the
    class uses each replica at most once.
    """
    return [[int(edge_map[eid]) for eid in cls] for cls in replica_classes]


def is_b_matching(
    graph: BipartiteMultigraph,
    edge_ids: Sequence[int],
    left_capacities: Sequence[int],
    right_capacities: Sequence[int],
) -> bool:
    """Check the b-matching property for one edge class."""
    left_deg: Dict[int, int] = {}
    right_deg: Dict[int, int] = {}
    for eid in edge_ids:
        u, v = graph.edges[eid]
        left_deg[u] = left_deg.get(u, 0) + 1
        right_deg[v] = right_deg.get(v, 0) + 1
    return all(
        left_deg[u] <= left_capacities[u] for u in left_deg
    ) and all(right_deg[v] <= right_capacities[v] for v in right_deg)
