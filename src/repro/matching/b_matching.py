"""b-matchings via port replication (general-capacity case of Theorem 1).

A *b-matching* of a bipartite graph, for capacity function ``b``, is a
subgraph in which every vertex ``v`` has degree at most ``b(v)``.  The
paper converts the general-capacity schedule-extraction problem to unit
capacities with a standard transformation: replicate each port ``p`` into
``c_p`` copies and distribute its incident edges round-robin among the
copies.  An edge coloring of the replicated graph projects back to a
partition of the original edges into b-matchings.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from repro.matching.bipartite import BipartiteMultigraph


def replicate_ports(
    graph: BipartiteMultigraph,
    left_capacities: Sequence[int],
    right_capacities: Sequence[int],
) -> tuple[BipartiteMultigraph, np.ndarray]:
    """Round-robin port replication.

    Parameters
    ----------
    graph:
        Bipartite multigraph whose vertices are ports.
    left_capacities / right_capacities:
        ``c_p`` per vertex; vertex ``p`` becomes ``c_p`` replicas.

    Returns
    -------
    (replicated, edge_map)
        ``replicated`` is the graph on replica vertices; edge ``i`` of
        ``replicated`` corresponds to edge ``edge_map[i]`` of ``graph``
        (here the identity — edges are emitted in input order, so
        ``edge_map[i] == i``; returned for interface clarity).

    Notes
    -----
    Round-robin distribution guarantees replica degree
    ``<= ceil(deg(p) / c_p)``; Theorem 1 uses this to bound the replicated
    graph's Δ by ``ceil(c'(1 + 1/c) log n)`` when port loads obey the
    pseudo-schedule's overload bound.
    """
    left_caps = np.asarray(left_capacities, dtype=np.int64)
    right_caps = np.asarray(right_capacities, dtype=np.int64)
    if left_caps.shape != (graph.n_left,) or right_caps.shape != (graph.n_right,):
        raise ValueError("capacity vectors must match graph vertex counts")
    if (left_caps < 1).any() or (right_caps < 1).any():
        raise ValueError("capacities must be >= 1")

    left_offset = np.concatenate([[0], np.cumsum(left_caps)])
    right_offset = np.concatenate([[0], np.cumsum(right_caps)])
    replicated = BipartiteMultigraph(int(left_offset[-1]), int(right_offset[-1]))

    left_next = np.zeros(graph.n_left, dtype=np.int64)
    right_next = np.zeros(graph.n_right, dtype=np.int64)
    edge_map = np.arange(graph.n_edges, dtype=np.int64)
    for eid, (u, v) in enumerate(graph.edges):
        cu = int(left_offset[u] + left_next[u])
        cv = int(right_offset[v] + right_next[v])
        left_next[u] = (left_next[u] + 1) % left_caps[u]
        right_next[v] = (right_next[v] + 1) % right_caps[v]
        replicated.add_edge(cu, cv, graph.payloads[eid])
    return replicated, edge_map


def project_coloring(
    edge_map: np.ndarray, replica_classes: List[List[int]]
) -> List[List[int]]:
    """Map matchings of the replicated graph back to original edge ids.

    Each replica matching projects to a *b-matching* of the original
    graph: at most ``c_p`` of port ``p``'s edges per class, because the
    class uses each replica at most once.
    """
    return [[int(edge_map[eid]) for eid in cls] for cls in replica_classes]


def is_b_matching(
    graph: BipartiteMultigraph,
    edge_ids: Sequence[int],
    left_capacities: Sequence[int],
    right_capacities: Sequence[int],
) -> bool:
    """Check the b-matching property for one edge class."""
    left_deg: Dict[int, int] = {}
    right_deg: Dict[int, int] = {}
    for eid in edge_ids:
        u, v = graph.edges[eid]
        left_deg[u] = left_deg.get(u, 0) + 1
        right_deg[v] = right_deg.get(v, 0) + 1
    return all(
        left_deg[u] <= left_capacities[u] for u in left_deg
    ) and all(right_deg[v] <= right_capacities[v] for v in right_deg)
