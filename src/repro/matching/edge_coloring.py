"""König Δ-edge-coloring of bipartite multigraphs.

König's theorem: every bipartite multigraph with maximum degree Δ admits a
proper edge coloring with exactly Δ colors.  This is the constructive core
of the Birkhoff–von Neumann step in Theorem 1 of the paper: a combined
window graph of degree ``d`` decomposes into ``d`` matchings, which are
then executed in the window's rounds.

Algorithm (classical alternating-path recoloring, ``O(V E)``):
process edges one at a time; for edge ``(u, v)`` pick a color ``alpha``
free at ``u`` and ``beta`` free at ``v``.  If some color is free at both,
use it.  Otherwise flip the alternating ``alpha``/``beta`` path starting at
``v``; in a bipartite graph this path cannot end at ``u``, so after the
flip ``alpha`` is free at both endpoints.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from repro.matching.bipartite import BipartiteMultigraph


def edge_color_bipartite(graph: BipartiteMultigraph) -> np.ndarray:
    """Properly color the edges of ``graph`` with exactly Δ colors.

    Returns
    -------
    ndarray
        ``colors[eid] in [0, Delta)`` such that no two edges sharing a
        vertex get the same color.  Empty array for an edgeless graph.
    """
    delta = graph.max_degree()
    n_edges = graph.n_edges
    colors = np.full(n_edges, -1, dtype=np.int64)
    if n_edges == 0:
        return colors

    # slot[side][vertex][color] = edge id using `color` at `vertex`, or -1.
    left_slot: List[List[int]] = [[-1] * delta for _ in range(graph.n_left)]
    right_slot: List[List[int]] = [[-1] * delta for _ in range(graph.n_right)]

    def first_free(slots: List[int]) -> int:
        for c, eid in enumerate(slots):
            if eid == -1:
                return c
        raise AssertionError("degree exceeded Delta — graph mutated?")

    for eid, (u, v) in enumerate(graph.edges):
        alpha = first_free(left_slot[u])
        beta = first_free(right_slot[v])
        if left_slot[u][beta] == -1:
            # beta free at both endpoints.
            colors[eid] = beta
            left_slot[u][beta] = eid
            right_slot[v][beta] = eid
            continue
        if right_slot[v][alpha] == -1:
            colors[eid] = alpha
            left_slot[u][alpha] = eid
            right_slot[v][alpha] = eid
            continue
        # Flip the alpha/beta alternating path starting from v along alpha.
        # Invariant: alpha free at u, beta free at v; path starts with the
        # alpha-colored edge at v and alternates beta, alpha, ...
        _flip_alternating_path(
            graph, colors, left_slot, right_slot, v, alpha, beta
        )
        # Now alpha is free at v as well (its alpha edge was recolored).
        colors[eid] = alpha
        left_slot[u][alpha] = eid
        right_slot[v][alpha] = eid

    return colors


def _flip_alternating_path(
    graph: BipartiteMultigraph,
    colors: np.ndarray,
    left_slot: List[List[int]],
    right_slot: List[List[int]],
    start_right: int,
    alpha: int,
    beta: int,
) -> None:
    """Swap colors alpha <-> beta along the path leaving ``start_right``.

    The path begins with the alpha-colored edge at right vertex
    ``start_right`` and alternates.  Because the path starting at ``v``
    with color alpha cannot reach ``u`` (that would close an odd walk in a
    bipartite graph / would require alpha used at ``u``), flipping it frees
    alpha at ``start_right`` without breaking properness elsewhere.
    """
    # Walk and collect edges of the path.
    path_edges: List[int] = []
    side_right = True  # current endpoint is on the right side
    vertex = start_right
    color = alpha
    while True:
        slots = right_slot[vertex] if side_right else left_slot[vertex]
        eid = slots[color]
        if eid == -1:
            break
        path_edges.append(eid)
        u2, v2 = graph.edges[eid]
        vertex = u2 if side_right else v2
        side_right = not side_right
        color = beta if color == alpha else alpha

    # Un-register every path edge, then re-register with swapped colors.
    for eid in path_edges:
        u2, v2 = graph.edges[eid]
        c = int(colors[eid])
        left_slot[u2][c] = -1
        right_slot[v2][c] = -1
    for eid in path_edges:
        u2, v2 = graph.edges[eid]
        c = int(colors[eid])
        new_c = beta if c == alpha else alpha
        colors[eid] = new_c
        left_slot[u2][new_c] = eid
        right_slot[v2][new_c] = eid


def color_classes(graph: BipartiteMultigraph, colors: np.ndarray) -> Dict[int, List[int]]:
    """Group edge ids by color: ``{color: [eids]}`` (each class a matching)."""
    classes: Dict[int, List[int]] = {}
    for eid in range(graph.n_edges):
        classes.setdefault(int(colors[eid]), []).append(eid)
    return classes


def is_proper_coloring(graph: BipartiteMultigraph, colors: np.ndarray) -> bool:
    """Check that no vertex sees a repeated color."""
    seen_left: Dict[tuple[int, int], int] = {}
    seen_right: Dict[tuple[int, int], int] = {}
    for eid, (u, v) in enumerate(graph.edges):
        c = int(colors[eid])
        if c < 0:
            return False
        if (u, c) in seen_left or (v, c) in seen_right:
            return False
        seen_left[(u, c)] = eid
        seen_right[(v, c)] = eid
    return True
