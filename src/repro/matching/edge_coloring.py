"""König Δ-edge-coloring of bipartite multigraphs.

König's theorem: every bipartite multigraph with maximum degree Δ admits a
proper edge coloring with exactly Δ colors.  This is the constructive core
of the Birkhoff–von Neumann step in Theorem 1 of the paper: a combined
window graph of degree ``d`` decomposes into ``d`` matchings, which are
then executed in the window's rounds.

Algorithm (classical alternating-path recoloring, ``O(V E)`` worst case):
process edges one at a time; for edge ``(u, v)`` pick the **lowest** color
``alpha`` free at ``u`` and lowest ``beta`` free at ``v``.  If some color
is free at both, use it.  Otherwise flip the alternating ``alpha``/``beta``
path starting at ``v``; in a bipartite graph this path cannot end at ``u``,
so after the flip ``alpha`` is free at both endpoints.

Free-color lookup is O(log Δ) amortized instead of the seed's O(Δ) scan:
each vertex keeps a *never-used frontier* (colors at or above it have
never been allocated at that vertex, so the frontier itself is always a
free candidate) plus a min-heap of colors freed by path flips below the
frontier.  The reported color is still the minimum free color — the
tie-breaking rule is unchanged, so colorings are identical to the seed
implementation edge for edge.
"""

from __future__ import annotations

from heapq import heappop, heappush
from typing import Dict, List

import numpy as np

from repro.matching.bipartite import BipartiteMultigraph


class _FreeColorTracker:
    """Lowest-free-color bookkeeping for one side of the graph.

    ``slots[vertex][color]`` is the edge id using ``color`` at ``vertex``
    (-1 when free).  Invariant: every *free* color strictly below a
    vertex's never-used frontier is present in that vertex's heap (it got
    there via :meth:`clear`); colors at or above the frontier have never
    been allocated through :meth:`first_free`, so the frontier — advanced
    lazily past colors consumed by direct flip re-registration — is the
    smallest free candidate outside the heap.  ``first_free`` is a pure
    query (peek): stale heap entries (freed, then re-used by a flip) are
    dropped lazily.
    """

    __slots__ = ("slots", "_heaps", "_frontier", "_delta")

    def __init__(self, n_vertices: int, delta: int):
        self.slots: List[List[int]] = [[-1] * delta for _ in range(n_vertices)]
        self._heaps: List[List[int]] = [[] for _ in range(n_vertices)]
        self._frontier: List[int] = [0] * n_vertices
        self._delta = delta

    def first_free(self, vertex: int) -> int:
        """The smallest color free at ``vertex`` (must exist: deg < Δ)."""
        slots = self.slots[vertex]
        heap = self._heaps[vertex]
        while heap and slots[heap[0]] != -1:
            heappop(heap)  # stale: freed earlier, re-used by a flip
        nv = self._frontier[vertex]
        top = heap[0] if heap else self._delta
        while nv < top and nv < self._delta and slots[nv] != -1:
            nv += 1  # consumed by a flip without a first_free call
        self._frontier[vertex] = nv
        if top < nv:
            return top
        if nv >= self._delta:
            raise AssertionError("degree exceeded Delta — graph mutated?")
        return nv

    def set(self, vertex: int, color: int, eid: int) -> None:
        """Register ``eid`` as the ``color`` edge at ``vertex``."""
        self.slots[vertex][color] = eid

    def clear(self, vertex: int, color: int) -> None:
        """Free ``color`` at ``vertex`` (path flip un-registration)."""
        self.slots[vertex][color] = -1
        if color < self._frontier[vertex]:
            heappush(self._heaps[vertex], color)


def edge_color_bipartite(graph: BipartiteMultigraph) -> np.ndarray:
    """Properly color the edges of ``graph`` with exactly Δ colors.

    Returns
    -------
    ndarray
        ``colors[eid] in [0, Delta)`` such that no two edges sharing a
        vertex get the same color.  Empty array for an edgeless graph.
    """
    delta = graph.max_degree()
    n_edges = graph.n_edges
    colors = np.full(n_edges, -1, dtype=np.int64)
    if n_edges == 0:
        return colors

    src = graph.src.tolist()
    dst = graph.dst.tolist()
    out: List[int] = [-1] * n_edges

    left = _FreeColorTracker(graph.n_left, delta)
    right = _FreeColorTracker(graph.n_right, delta)

    for eid in range(n_edges):
        u = src[eid]
        v = dst[eid]
        alpha = left.first_free(u)
        beta = right.first_free(v)
        if left.slots[u][beta] == -1:
            # beta free at both endpoints.
            out[eid] = beta
            left.set(u, beta, eid)
            right.set(v, beta, eid)
            continue
        if right.slots[v][alpha] == -1:
            out[eid] = alpha
            left.set(u, alpha, eid)
            right.set(v, alpha, eid)
            continue
        # Flip the alpha/beta alternating path starting from v along alpha.
        # Invariant: alpha free at u, beta free at v; path starts with the
        # alpha-colored edge at v and alternates beta, alpha, ...
        _flip_alternating_path(src, dst, out, left, right, v, alpha, beta)
        # Now alpha is free at v as well (its alpha edge was recolored).
        out[eid] = alpha
        left.set(u, alpha, eid)
        right.set(v, alpha, eid)

    colors[:] = out
    return colors


def _flip_alternating_path(
    src: List[int],
    dst: List[int],
    colors: List[int],
    left: _FreeColorTracker,
    right: _FreeColorTracker,
    start_right: int,
    alpha: int,
    beta: int,
) -> None:
    """Swap colors alpha <-> beta along the path leaving ``start_right``.

    The path begins with the alpha-colored edge at right vertex
    ``start_right`` and alternates.  Because the path starting at ``v``
    with color alpha cannot reach ``u`` (that would close an odd walk in a
    bipartite graph / would require alpha used at ``u``), flipping it frees
    alpha at ``start_right`` without breaking properness elsewhere.
    """
    # Walk and collect edges of the path.
    path_edges: List[int] = []
    side_right = True  # current endpoint is on the right side
    vertex = start_right
    color = alpha
    while True:
        slots = right.slots[vertex] if side_right else left.slots[vertex]
        eid = slots[color]
        if eid == -1:
            break
        path_edges.append(eid)
        vertex = src[eid] if side_right else dst[eid]
        side_right = not side_right
        color = beta if color == alpha else alpha

    # Un-register every path edge, then re-register with swapped colors.
    for eid in path_edges:
        c = colors[eid]
        left.clear(src[eid], c)
        right.clear(dst[eid], c)
    for eid in path_edges:
        c = colors[eid]
        new_c = beta if c == alpha else alpha
        colors[eid] = new_c
        left.set(src[eid], new_c, eid)
        right.set(dst[eid], new_c, eid)


def color_classes(graph: BipartiteMultigraph, colors: np.ndarray) -> Dict[int, List[int]]:
    """Group edge ids by color: ``{color: [eids]}`` (each class a matching)."""
    classes: Dict[int, List[int]] = {}
    n = graph.n_edges
    if n == 0:
        return classes
    colors = np.asarray(colors)
    order = np.argsort(colors[:n], kind="stable")
    uniq, starts = np.unique(colors[:n][order], return_index=True)
    ends = np.append(starts[1:], order.size)
    for c, s, e in zip(uniq.tolist(), starts.tolist(), ends.tolist()):
        classes[int(c)] = order[s:e].tolist()
    return classes


def is_proper_coloring(graph: BipartiteMultigraph, colors: np.ndarray) -> bool:
    """Check that no vertex sees a repeated color (vectorized)."""
    n = graph.n_edges
    colors = np.asarray(colors)[:n]
    if n == 0:
        return True
    if (colors < 0).any():
        return False
    span = int(colors.max()) + 1
    left_keys = graph.src * span + colors
    right_keys = graph.dst * span + colors
    return (
        np.unique(left_keys).size == n and np.unique(right_keys).size == n
    )
