"""Co-flow instances.

A :class:`Coflow` is a set of flows released together; a
:class:`CoflowInstance` groups co-flows over one switch and flattens
them into a plain :class:`~repro.core.instance.Instance` (so all the
flow-level machinery — simulator, LPs, validators — applies), keeping
the flow → co-flow mapping for the co-flow metrics and policies.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Sequence, Tuple

import numpy as np

from repro.core.flow import Flow
from repro.core.instance import Instance
from repro.core.switch import Switch
from repro.utils.rng import SeedLike, make_rng
from repro.utils.validation import check_nonnegative_int, check_positive_int


@dataclass(frozen=True)
class Coflow:
    """One co-flow: a release round plus member port pairs/demands.

    Attributes
    ----------
    members:
        ``(src, dst, demand)`` triples; all members share the co-flow's
        release round (the standard model: a stage's transfers become
        known when the stage starts).
    release:
        Release round of every member.
    cid:
        Identifier within an instance (assigned by
        :class:`CoflowInstance`).
    """

    members: Tuple[Tuple[int, int, int], ...]
    release: int = 0
    cid: int = -1

    def __post_init__(self) -> None:
        if not self.members:
            raise ValueError("a coflow needs at least one member flow")
        check_nonnegative_int(self.release, "release")
        for src, dst, demand in self.members:
            check_nonnegative_int(src, "src")
            check_nonnegative_int(dst, "dst")
            check_positive_int(demand, "demand")

    @property
    def total_demand(self) -> int:
        """Sum of member demands."""
        return sum(d for _, _, d in self.members)

    def bottleneck(self, switch: Switch) -> float:
        """Varys' *effective bottleneck*: the max over ports of the
        co-flow's demand on that port divided by the port capacity —
        a lower bound on the rounds the co-flow needs once started."""
        in_load: dict[int, int] = {}
        out_load: dict[int, int] = {}
        for src, dst, demand in self.members:
            in_load[src] = in_load.get(src, 0) + demand
            out_load[dst] = out_load.get(dst, 0) + demand
        worst = 0.0
        for p, load in in_load.items():
            worst = max(worst, load / switch.input_capacity(p))
        for q, load in out_load.items():
            worst = max(worst, load / switch.output_capacity(q))
        return worst


@dataclass(frozen=True)
class CoflowInstance:
    """Co-flows over a switch, flattened to a flow-level instance.

    ``instance.flows[i]`` belongs to co-flow ``coflow_of[i]``.
    """

    switch: Switch
    coflows: Tuple[Coflow, ...]
    instance: Instance = field(repr=False)
    coflow_of: np.ndarray = field(repr=False)

    @staticmethod
    def create(switch: Switch, coflows: Iterable[Coflow]) -> "CoflowInstance":
        """Number co-flows, flatten members into flows, and validate."""
        numbered: List[Coflow] = []
        flows: List[Flow] = []
        owner: List[int] = []
        for cid, coflow in enumerate(coflows):
            numbered.append(
                Coflow(coflow.members, coflow.release, cid)
            )
            for src, dst, demand in coflow.members:
                flows.append(Flow(src, dst, demand, coflow.release))
                owner.append(cid)
        instance = Instance.create(switch, flows)
        return CoflowInstance(
            switch,
            tuple(numbered),
            instance,
            np.asarray(owner, dtype=np.int64),
        )

    @property
    def num_coflows(self) -> int:
        """Number of co-flows."""
        return len(self.coflows)

    def releases(self) -> np.ndarray:
        """Release round per co-flow."""
        return np.asarray([c.release for c in self.coflows], dtype=np.int64)


def random_shuffle_coflows(
    num_ports: int,
    num_coflows: int,
    width_range: Tuple[int, int] = (2, 6),
    arrival_gap: int = 2,
    seed: SeedLike = None,
) -> CoflowInstance:
    """MapReduce-style shuffle workload: each co-flow is a random
    (mappers x reducers) transfer pattern with unit demands.

    ``width_range`` bounds the mapper/reducer counts; co-flows are
    released every ``arrival_gap`` rounds (a job queue draining).
    """
    rng = make_rng(seed)
    m = check_positive_int(num_ports, "num_ports")
    lo, hi = width_range
    if not 1 <= lo <= hi <= m:
        raise ValueError(f"width_range must satisfy 1 <= lo <= hi <= {m}")
    switch = Switch.create(m)
    coflows = []
    for k in range(num_coflows):
        mappers = rng.choice(m, size=int(rng.integers(lo, hi + 1)), replace=False)
        reducers = rng.choice(m, size=int(rng.integers(lo, hi + 1)), replace=False)
        members = tuple(
            (int(u), int(v), 1) for u in mappers for v in reducers
        )
        coflows.append(Coflow(members, release=k * arrival_gap))
    return CoflowInstance.create(switch, coflows)
