"""Co-flow scheduling on a switch (the paper's §6 generalization).

A *co-flow* (Chowdhury–Stoica) is a collection of flows with a shared
semantic — all the shuffle transfers of one MapReduce stage, say — whose
user-visible latency is the completion of its **last** flow.  The paper
lists co-flows as the natural generalization of its model ("we would
like to extend our research to ... more general types of flows (e.g.,
co-flows)") and cites Varys and the co-flow approximation literature.

This subpackage builds the generalization on top of the library's flow
machinery:

* :mod:`repro.coflow.model` — co-flow instances over a switch;
* :mod:`repro.coflow.metrics` — co-flow completion/response metrics;
* :mod:`repro.coflow.policies` — co-flow-aware online policies
  (Varys-style SEBF, FIFO ordering) plus co-flow-oblivious baselines;
* :mod:`repro.coflow.simulator` — co-flow simulation driver.
"""

from repro.coflow.model import Coflow, CoflowInstance
from repro.coflow.metrics import (
    CoflowMetrics,
    coflow_completion_times,
    coflow_response_times,
)
from repro.coflow.policies import (
    COFLOW_POLICY_REGISTRY,
    CoflowFifoPolicy,
    CoflowSebfPolicy,
    make_coflow_policy,
)
from repro.coflow.simulator import CoflowSimulationResult, simulate_coflows

__all__ = [
    "Coflow",
    "CoflowInstance",
    "coflow_completion_times",
    "coflow_response_times",
    "CoflowMetrics",
    "CoflowSebfPolicy",
    "CoflowFifoPolicy",
    "COFLOW_POLICY_REGISTRY",
    "make_coflow_policy",
    "simulate_coflows",
    "CoflowSimulationResult",
]
