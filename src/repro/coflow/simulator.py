"""Co-flow simulation driver.

Runs any flow-level policy (co-flow-aware or oblivious) through the
online simulator and reports metrics at both granularities.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.coflow.metrics import CoflowMetrics
from repro.coflow.model import CoflowInstance
from repro.core.metrics import ScheduleMetrics
from repro.core.schedule import Schedule
from repro.online.policies import OnlinePolicy
from repro.online.simulator import simulate
from repro.utils.timing import Timer


@dataclass(frozen=True)
class CoflowSimulationResult:
    """Flow- and co-flow-level outcomes of one simulation."""

    schedule: Schedule
    flow_metrics: ScheduleMetrics
    coflow_metrics: CoflowMetrics
    stats: Dict[str, int] = field(default_factory=dict, repr=False)


def simulate_coflows(
    cf: CoflowInstance,
    policy: OnlinePolicy,
    timer: Optional[Timer] = None,
) -> CoflowSimulationResult:
    """Simulate ``policy`` on the flattened instance of ``cf``.

    ``timer`` is forwarded to :func:`repro.online.simulator.simulate`
    (per-round ``sim_round`` events and any policy-level events).
    """
    result = simulate(cf.instance, policy, timer=timer)
    return CoflowSimulationResult(
        schedule=result.schedule,
        flow_metrics=result.metrics,
        coflow_metrics=CoflowMetrics.of(cf, result.schedule),
        stats=result.stats,
    )
