"""Co-flow simulation driver.

Runs any flow-level policy (co-flow-aware or oblivious) through the
online simulator and reports metrics at both granularities.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.coflow.metrics import CoflowMetrics
from repro.coflow.model import CoflowInstance
from repro.core.metrics import ScheduleMetrics
from repro.core.schedule import Schedule
from repro.online.policies import OnlinePolicy
from repro.online.simulator import simulate


@dataclass(frozen=True)
class CoflowSimulationResult:
    """Flow- and co-flow-level outcomes of one simulation."""

    schedule: Schedule
    flow_metrics: ScheduleMetrics
    coflow_metrics: CoflowMetrics


def simulate_coflows(
    cf: CoflowInstance, policy: OnlinePolicy
) -> CoflowSimulationResult:
    """Simulate ``policy`` on the flattened instance of ``cf``."""
    result = simulate(cf.instance, policy)
    return CoflowSimulationResult(
        schedule=result.schedule,
        flow_metrics=result.metrics,
        coflow_metrics=CoflowMetrics.of(cf, result.schedule),
    )
