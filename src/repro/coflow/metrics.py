"""Co-flow response metrics.

A co-flow completes when its **last** member flow completes; its
response time is that completion minus its release.  These mirror the
paper's flow-level metrics one level up.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.coflow.model import CoflowInstance
from repro.core.schedule import Schedule


def coflow_completion_times(
    cf: CoflowInstance, schedule: Schedule
) -> np.ndarray:
    """``CCT_k = max over members of (round + 1)`` per co-flow."""
    completions = schedule.completion_times()
    out = np.zeros(cf.num_coflows, dtype=np.int64)
    np.maximum.at(out, cf.coflow_of, completions)
    return out


def coflow_response_times(cf: CoflowInstance, schedule: Schedule) -> np.ndarray:
    """``CCT_k - release_k`` per co-flow."""
    return coflow_completion_times(cf, schedule) - cf.releases()


@dataclass(frozen=True)
class CoflowMetrics:
    """Summary of a schedule's co-flow-level quality."""

    num_coflows: int
    average_response: float
    max_response: int
    average_completion: float

    @staticmethod
    def of(cf: CoflowInstance, schedule: Schedule) -> "CoflowMetrics":
        """Compute all co-flow metrics for ``schedule``."""
        if cf.num_coflows == 0:
            return CoflowMetrics(0, 0.0, 0, 0.0)
        responses = coflow_response_times(cf, schedule)
        completions = coflow_completion_times(cf, schedule)
        return CoflowMetrics(
            num_coflows=cf.num_coflows,
            average_response=float(responses.mean()),
            max_response=int(responses.max()),
            average_completion=float(completions.mean()),
        )

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"coflows={self.num_coflows} avg_rt={self.average_response:.2f} "
            f"max_rt={self.max_response} avg_cct={self.average_completion:.2f}"
        )
