"""Co-flow-aware online policies.

All policies here are flow-level :class:`~repro.online.policies.
OnlinePolicy` implementations parameterized by a co-flow *ordering*;
each round they pack waiting flows greedily in priority order (strict
priority between co-flows, arbitrary within), which concentrates switch
capacity on the highest-priority co-flow — the scheduling discipline of
Varys.

* **SEBF** (smallest effective bottleneck first) — priority =
  the co-flow's remaining bottleneck (Varys' heuristic; analogous to
  SRPT at the co-flow granularity);
* **CoflowFIFO** — priority = co-flow release (then id): fairness
  baseline;
* co-flow-*oblivious* baselines come straight from
  :mod:`repro.online.policies` (e.g. MaxCard), which maximize port
  utilization but interleave co-flows and hence delay completions.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from repro.coflow.model import CoflowInstance
from repro.core.flow import Flow
from repro.core.instance import Instance
from repro.online.policies import OnlinePolicy


class _CoflowOrderedPolicy(OnlinePolicy):
    """Greedy packing by a per-round co-flow priority (lower = first)."""

    name = "coflow-ordered"

    def __init__(self, cf: CoflowInstance):
        self._cf = cf

    def _coflow_priorities(
        self, t: int, waiting: Dict[int, Flow]
    ) -> Dict[int, float]:
        """Return ``{cid: priority}`` for co-flows with waiting flows."""
        raise NotImplementedError

    def select(self, t, waiting, instance):
        priorities = self._coflow_priorities(t, waiting)
        flows = sorted(
            waiting.values(),
            key=lambda f: (
                priorities[int(self._cf.coflow_of[f.fid])],
                int(self._cf.coflow_of[f.fid]),
                f.fid,
            ),
        )
        in_res = instance.switch.input_capacities.copy()
        out_res = instance.switch.output_capacities.copy()
        chosen: List[int] = []
        for flow in flows:
            if (
                in_res[flow.src] >= flow.demand
                and out_res[flow.dst] >= flow.demand
            ):
                in_res[flow.src] -= flow.demand
                out_res[flow.dst] -= flow.demand
                chosen.append(flow.fid)
        return chosen


class CoflowSebfPolicy(_CoflowOrderedPolicy):
    """Smallest Effective Bottleneck First (Varys-style).

    Priority of a co-flow = its *remaining* bottleneck: the max over
    ports of the waiting demand on that port divided by capacity.  SRPT
    intuition: finishing almost-done co-flows first minimizes average
    co-flow response.
    """

    name = "SEBF"

    def _coflow_priorities(self, t, waiting):
        in_load: Dict[tuple[int, int], int] = {}
        out_load: Dict[tuple[int, int], int] = {}
        for flow in waiting.values():
            cid = int(self._cf.coflow_of[flow.fid])
            in_load[(cid, flow.src)] = (
                in_load.get((cid, flow.src), 0) + flow.demand
            )
            out_load[(cid, flow.dst)] = (
                out_load.get((cid, flow.dst), 0) + flow.demand
            )
        priorities: Dict[int, float] = {}
        switch = self._cf.switch
        for (cid, p), load in in_load.items():
            val = load / switch.input_capacity(p)
            priorities[cid] = max(priorities.get(cid, 0.0), val)
        for (cid, q), load in out_load.items():
            val = load / switch.output_capacity(q)
            priorities[cid] = max(priorities.get(cid, 0.0), val)
        return priorities


class CoflowFifoPolicy(_CoflowOrderedPolicy):
    """First-released co-flow first (head-of-line discipline)."""

    name = "CoflowFIFO"

    def _coflow_priorities(self, t, waiting):
        return {
            int(self._cf.coflow_of[f.fid]): float(
                self._cf.coflows[int(self._cf.coflow_of[f.fid])].release
            )
            for f in waiting.values()
        }


#: Name → constructor (taking the CoflowInstance) registry.
COFLOW_POLICY_REGISTRY = {
    "SEBF": CoflowSebfPolicy,
    "CoflowFIFO": CoflowFifoPolicy,
}


def make_coflow_policy(name: str, cf: CoflowInstance) -> OnlinePolicy:
    """Instantiate a co-flow policy by name for instance ``cf``."""
    try:
        return COFLOW_POLICY_REGISTRY[name](cf)
    except KeyError:
        raise ValueError(
            f"unknown coflow policy {name!r}; "
            f"available: {sorted(COFLOW_POLICY_REGISTRY)}"
        ) from None
