"""Co-flow-aware online policies.

All policies here are flow-level :class:`~repro.online.policies.
OnlinePolicy` implementations parameterized by a co-flow *ordering*;
each round they pack waiting flows greedily in priority order (strict
priority between co-flows, arbitrary within), which concentrates switch
capacity on the highest-priority co-flow — the scheduling discipline of
Varys.

* **SEBF** (smallest effective bottleneck first) — priority =
  the co-flow's remaining bottleneck (Varys' heuristic; analogous to
  SRPT at the co-flow granularity);
* **CoflowFIFO** — priority = co-flow release (then id): fairness
  baseline;
* co-flow-*oblivious* baselines come straight from
  :mod:`repro.online.policies` (e.g. MaxCard), which maximize port
  utilization but interleave co-flows and hence delay completions.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from repro.coflow.model import CoflowInstance
from repro.core.flow import Flow
from repro.core.instance import Instance
from repro.online.policies import OnlinePolicy


def _defining_class(cls, name):
    """The class in ``cls``'s MRO whose ``__dict__`` defines ``name``."""
    for klass in cls.__mro__:
        if name in klass.__dict__:
            return klass
    return None


class _CoflowOrderedPolicy(OnlinePolicy):
    """Greedy packing by a per-round co-flow priority (lower = first).

    Implements both the classic dict interface and the simulator's array
    fast path: priorities are computed vectorized over the waiting-flow
    arrays, flows sorted with one ``np.lexsort`` on the same
    ``(priority, cid, fid)`` key the dict path uses, and the greedy
    packing loop runs over plain int lists — identical selections at a
    fraction of the per-round cost on deep queues.
    """

    name = "coflow-ordered"

    def __init__(self, cf: CoflowInstance):
        self._cf = cf

    def _coflow_priorities(
        self, t: int, waiting: Dict[int, Flow]
    ) -> Dict[int, float]:
        """Return ``{cid: priority}`` for co-flows with waiting flows."""
        raise NotImplementedError

    def _coflow_priorities_fast(
        self, t: int, fids: np.ndarray, queue
    ) -> np.ndarray:
        """Priority per co-flow id (full vector; only waiting cids used)."""
        raise NotImplementedError

    def select(self, t, waiting, instance):
        priorities = self._coflow_priorities(t, waiting)
        flows = sorted(
            waiting.values(),
            key=lambda f: (
                priorities[int(self._cf.coflow_of[f.fid])],
                int(self._cf.coflow_of[f.fid]),
                f.fid,
            ),
        )
        in_res = instance.switch.input_capacities.copy()
        out_res = instance.switch.output_capacities.copy()
        chosen: List[int] = []
        for flow in flows:
            if (
                in_res[flow.src] >= flow.demand
                and out_res[flow.dst] >= flow.demand
            ):
                in_res[flow.src] -= flow.demand
                out_res[flow.dst] -= flow.demand
                chosen.append(flow.fid)
        return chosen

    def select_fast(self, t, queue, instance):
        # Fast path only when the subclass provides vectorized priorities
        # of its own, paired with (defined by the same class as) its
        # dict-path priorities, and left the packing loop untouched.  A
        # subclass re-defining only `_coflow_priorities` falls back to the
        # dict interface it customized.
        cls = type(self)
        if (
            cls.select is not _CoflowOrderedPolicy.select
            or cls._coflow_priorities_fast
            is _CoflowOrderedPolicy._coflow_priorities_fast
            or _defining_class(cls, "_coflow_priorities")
            is not _defining_class(cls, "_coflow_priorities_fast")
        ):
            return None
        fids = queue.alive_fids()
        cids = self._cf.coflow_of[fids]
        prio = self._coflow_priorities_fast(t, fids, queue)
        order = np.lexsort((fids, cids, prio[cids]))
        srcs = queue.srcs[fids].tolist()
        dsts = queue.dsts[fids].tolist()
        demands = queue.demands[fids].tolist()
        fid_list = fids.tolist()
        in_res = instance.switch.input_capacities.tolist()
        out_res = instance.switch.output_capacities.tolist()
        chosen: List[int] = []
        for idx in order.tolist():
            s, d, dem = srcs[idx], dsts[idx], demands[idx]
            if in_res[s] >= dem and out_res[d] >= dem:
                in_res[s] -= dem
                out_res[d] -= dem
                chosen.append(fid_list[idx])
        return np.asarray(chosen, dtype=np.int64)


class CoflowSebfPolicy(_CoflowOrderedPolicy):
    """Smallest Effective Bottleneck First (Varys-style).

    Priority of a co-flow = its *remaining* bottleneck: the max over
    ports of the waiting demand on that port divided by capacity.  SRPT
    intuition: finishing almost-done co-flows first minimizes average
    co-flow response.
    """

    name = "SEBF"

    def _coflow_priorities(self, t, waiting):
        in_load: Dict[tuple[int, int], int] = {}
        out_load: Dict[tuple[int, int], int] = {}
        for flow in waiting.values():
            cid = int(self._cf.coflow_of[flow.fid])
            in_load[(cid, flow.src)] = (
                in_load.get((cid, flow.src), 0) + flow.demand
            )
            out_load[(cid, flow.dst)] = (
                out_load.get((cid, flow.dst), 0) + flow.demand
            )
        priorities: Dict[int, float] = {}
        switch = self._cf.switch
        for (cid, p), load in in_load.items():
            val = load / switch.input_capacity(p)
            priorities[cid] = max(priorities.get(cid, 0.0), val)
        for (cid, q), load in out_load.items():
            val = load / switch.output_capacity(q)
            priorities[cid] = max(priorities.get(cid, 0.0), val)
        return priorities

    def _coflow_priorities_fast(self, t, fids, queue):
        # Same max-over-ports of load/capacity, via two bincounts over
        # (cid, port) keys instead of per-flow dict updates.  The maxima
        # run over the same float values, so ties and results match the
        # dict path exactly.
        cf = self._cf
        switch = cf.switch
        n_cf = cf.num_coflows
        cids = cf.coflow_of[fids]
        demands = queue.demands[fids]
        m_in = switch.num_inputs
        m_out = switch.num_outputs
        in_load = np.bincount(
            cids * m_in + queue.srcs[fids],
            weights=demands,
            minlength=n_cf * m_in,
        ).reshape(n_cf, m_in)
        out_load = np.bincount(
            cids * m_out + queue.dsts[fids],
            weights=demands,
            minlength=n_cf * m_out,
        ).reshape(n_cf, m_out)
        prio_in = (in_load / switch.input_capacities).max(axis=1)
        prio_out = (out_load / switch.output_capacities).max(axis=1)
        return np.maximum(prio_in, prio_out)


class CoflowFifoPolicy(_CoflowOrderedPolicy):
    """First-released co-flow first (head-of-line discipline)."""

    name = "CoflowFIFO"

    def _coflow_priorities(self, t, waiting):
        return {
            int(self._cf.coflow_of[f.fid]): float(
                self._cf.coflows[int(self._cf.coflow_of[f.fid])].release
            )
            for f in waiting.values()
        }

    def _coflow_priorities_fast(self, t, fids, queue):
        return self._cf.releases().astype(np.float64)


#: Name → constructor (taking the CoflowInstance) registry.
COFLOW_POLICY_REGISTRY = {
    "SEBF": CoflowSebfPolicy,
    "CoflowFIFO": CoflowFifoPolicy,
}


def make_coflow_policy(name: str, cf: CoflowInstance) -> OnlinePolicy:
    """Instantiate a co-flow policy by name for instance ``cf``."""
    try:
        return COFLOW_POLICY_REGISTRY[name](cf)
    except KeyError:
        raise ValueError(
            f"unknown coflow policy {name!r}; "
            f"available: {sorted(COFLOW_POLICY_REGISTRY)}"
        ) from None
