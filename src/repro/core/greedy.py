"""Greedy earliest-fit list scheduling.

Not part of the paper's contributions, but needed throughout the library:

* it supplies the binary-search *upper* bound for the FS-MRT solver;
* it is a sanity baseline for the LP lower bounds in tests;
* it is the FIFO reference policy mentioned in the related-work discussion
  (FIFO is (3 - 2/m)-competitive for max response on machines).

The scheduler walks flows in a caller-chosen order and places each in the
earliest round ``t >= r_e`` where both ports have residual capacity.  Per-
round residual capacities are kept in dynamically grown NumPy arrays.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence

import numpy as np

from repro.core.flow import Flow
from repro.core.instance import Instance
from repro.core.schedule import Schedule


def greedy_earliest_fit(
    instance: Instance,
    order: Optional[Sequence[int]] = None,
    key: Optional[Callable[[Flow], tuple]] = None,
) -> Schedule:
    """Schedule every flow at its earliest feasible round, in list order.

    Parameters
    ----------
    instance:
        The instance to schedule.
    order:
        Explicit fid processing order; default is release order (FIFO),
        ties by fid.
    key:
        Alternative to ``order``: a sort key on flows (e.g.
        ``lambda f: (-f.demand,)`` for longest-demand-first).

    Returns
    -------
    Schedule
        A valid schedule for the instance's own (non-augmented) switch.
    """
    if order is not None and key is not None:
        raise ValueError("pass at most one of order / key")
    if order is None:
        flows = sorted(
            instance.flows, key=key if key else (lambda f: (f.release, f.fid))
        )
        order = [f.fid for f in flows]

    switch = instance.switch
    horizon = instance.horizon_bound()
    in_res = np.tile(switch.input_capacities[:, None], (1, horizon))
    out_res = np.tile(switch.output_capacities[:, None], (1, horizon))

    assignment = np.full(instance.num_flows, -1, dtype=np.int64)
    for fid in order:
        flow = instance.flows[fid]
        # Vectorized search: rounds where both ports fit the demand.
        feasible = (in_res[flow.src, flow.release :] >= flow.demand) & (
            out_res[flow.dst, flow.release :] >= flow.demand
        )
        t_rel = int(np.argmax(feasible))
        if not feasible[t_rel]:  # pragma: no cover - horizon_bound prevents
            raise RuntimeError("greedy ran out of horizon; bound too small")
        t = flow.release + t_rel
        in_res[flow.src, t] -= flow.demand
        out_res[flow.dst, t] -= flow.demand
        assignment[fid] = t
    return Schedule(instance, assignment)
