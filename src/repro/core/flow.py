"""Flow requests on a switch.

A flow (paper notation ``e = pq``) is a directed edge from an input port
``p`` to an output port ``q`` with an integer demand ``d_e >= 1`` and an
integer release round ``r_e >= 0``.  Flows are *atomic*: a schedule places a
flow entirely within one round (the paper's ``sigma_{e,t} in {0,1}`` with
``sum_t sigma_{e,t} >= 1``); the fractional LP relaxations are the only
place where a flow is split across rounds.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.utils.validation import check_nonnegative_int, check_positive_int


@dataclass(frozen=True, order=True)
class Flow:
    """A single flow request.

    Attributes
    ----------
    src:
        Input (ingress) port index, ``0 <= src < m``.
    dst:
        Output (egress) port index, ``0 <= dst < m'``.
    demand:
        Integer demand ``d_e >= 1``; must satisfy
        ``d_e <= min(c_src, c_dst)`` in the containing instance.
    release:
        Integer release round ``r_e >= 0``; the flow may be scheduled in
        any round ``t >= release``.
    fid:
        Stable identifier within an instance (assigned by
        :class:`repro.core.instance.Instance`); ``-1`` for free-standing
        flows.
    """

    src: int
    dst: int
    demand: int = 1
    release: int = 0
    fid: int = -1

    def __post_init__(self) -> None:
        check_nonnegative_int(self.src, "src")
        check_nonnegative_int(self.dst, "dst")
        check_positive_int(self.demand, "demand")
        check_nonnegative_int(self.release, "release")

    @property
    def is_unit(self) -> bool:
        """True when the flow has unit demand."""
        return self.demand == 1

    def with_fid(self, fid: int) -> "Flow":
        """Return a copy with identifier ``fid`` (used during instance build)."""
        return Flow(self.src, self.dst, self.demand, self.release, fid)

    def with_release(self, release: int) -> "Flow":
        """Return a copy released at round ``release`` (same fid)."""
        return Flow(self.src, self.dst, self.demand, release, self.fid)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Flow#{self.fid}({self.src}->{self.dst}, d={self.demand}, "
            f"r={self.release})"
        )
