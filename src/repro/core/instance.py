"""Problem instances: a switch plus a sequence of flow requests.

An :class:`Instance` is the common input type of every algorithm in the
library (offline LPs, rounding pipelines, online simulator).  It owns flow
identifiers, validates the paper's standing assumption
``d_e <= kappa_e = min(c_p, c_q)``, and provides NumPy views of the flow
attributes for vectorized processing plus JSON (de)serialization for trace
record/replay.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator, List, Sequence

import numpy as np

from repro.core.flow import Flow
from repro.core.switch import Switch


@dataclass(frozen=True)
class Instance:
    """An FS-ART / FS-MRT problem instance ``(switch, flows)``.

    Flows are stored in fid order; ``instance.flows[i].fid == i`` always
    holds, so algorithms may index flows by fid.
    """

    switch: Switch
    flows: tuple[Flow, ...] = field(default_factory=tuple)

    @staticmethod
    def create(switch: Switch, flows: Iterable[Flow]) -> "Instance":
        """Validate flows against ``switch`` and assign sequential fids."""
        numbered: List[Flow] = []
        for i, flow in enumerate(flows):
            if flow.src >= switch.num_inputs:
                raise ValueError(
                    f"flow {i}: src port {flow.src} out of range "
                    f"(switch has {switch.num_inputs} inputs)"
                )
            if flow.dst >= switch.num_outputs:
                raise ValueError(
                    f"flow {i}: dst port {flow.dst} out of range "
                    f"(switch has {switch.num_outputs} outputs)"
                )
            kappa = switch.kappa(flow.src, flow.dst)
            if flow.demand > kappa:
                raise ValueError(
                    f"flow {i}: demand {flow.demand} exceeds kappa_e = "
                    f"min(c_{flow.src}, c_{flow.dst}) = {kappa}"
                )
            numbered.append(flow.with_fid(i))
        return Instance(switch, tuple(numbered))

    @staticmethod
    def from_arrays(
        switch: Switch,
        srcs: np.ndarray,
        dsts: np.ndarray,
        demands: np.ndarray,
        releases: np.ndarray,
    ) -> "Instance":
        """Vectorized :meth:`create` from flow attribute arrays.

        Produces an instance *equal* to ``create(switch, [Flow(s, d,
        dem, r) for ...])`` — same flows, same fids, same digest — but
        validates the whole batch with array comparisons and skips the
        per-flow constructor/validator round trips, which dominate
        generation cost for large synthetic workloads.  The attribute
        arrays also seed the instance's vector cache directly.
        """
        srcs = np.ascontiguousarray(srcs, dtype=np.int64)
        dsts = np.ascontiguousarray(dsts, dtype=np.int64)
        demands = np.ascontiguousarray(demands, dtype=np.int64)
        releases = np.ascontiguousarray(releases, dtype=np.int64)
        n = srcs.size
        if not (dsts.size == demands.size == releases.size == n):
            raise ValueError("flow attribute arrays must have equal length")
        if n:
            # Same failure messages (and per-flow check order) as
            # Flow.__post_init__ / create(); first offender wins.
            bad = np.flatnonzero(
                (srcs < 0) | (dsts < 0) | (demands < 1) | (releases < 0)
            )
            if bad.size:
                i = int(bad[0])
                if srcs[i] < 0:
                    raise ValueError(f"src must be >= 0, got {int(srcs[i])}")
                if dsts[i] < 0:
                    raise ValueError(f"dst must be >= 0, got {int(dsts[i])}")
                if demands[i] < 1:
                    raise ValueError(
                        f"demand must be >= 1, got {int(demands[i])}"
                    )
                raise ValueError(
                    f"release must be >= 0, got {int(releases[i])}"
                )
            bad = np.flatnonzero(srcs >= switch.num_inputs)
            if bad.size:
                i = int(bad[0])
                raise ValueError(
                    f"flow {i}: src port {int(srcs[i])} out of range "
                    f"(switch has {switch.num_inputs} inputs)"
                )
            bad = np.flatnonzero(dsts >= switch.num_outputs)
            if bad.size:
                i = int(bad[0])
                raise ValueError(
                    f"flow {i}: dst port {int(dsts[i])} out of range "
                    f"(switch has {switch.num_outputs} outputs)"
                )
            kappa = np.minimum(
                switch.input_capacities[srcs], switch.output_capacities[dsts]
            )
            bad = np.flatnonzero(demands > kappa)
            if bad.size:
                i = int(bad[0])
                raise ValueError(
                    f"flow {i}: demand {int(demands[i])} exceeds kappa_e = "
                    f"min(c_{int(srcs[i])}, c_{int(dsts[i])}) = "
                    f"{int(kappa[i])}"
                )
        # Validation is done, so bypass Flow.__init__/__post_init__ (the
        # per-flow python cost this constructor exists to avoid).  Flow
        # has no __slots__; a plain __dict__ swap builds a field-complete
        # frozen instance.  tolist() gives python ints, keeping to_dict()
        # (and therefore the digest) byte-identical to create().
        flows = []
        new = object.__new__
        for i, (s, d, dem, r) in enumerate(
            zip(
                srcs.tolist(),
                dsts.tolist(),
                demands.tolist(),
                releases.tolist(),
            )
        ):
            f = new(Flow)
            f.__dict__.update(
                src=s, dst=d, demand=dem, release=r, fid=i
            )
            flows.append(f)
        instance = Instance(switch, tuple(flows))
        cache = (srcs, dsts, demands, releases)
        for arr in cache:
            arr.flags.writeable = False
        object.__setattr__(instance, "_vector_cache", cache)
        return instance

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.flows)

    def __iter__(self) -> Iterator[Flow]:
        return iter(self.flows)

    @property
    def num_flows(self) -> int:
        """``n = |F|``."""
        return len(self.flows)

    @property
    def is_unit_demand(self) -> bool:
        """True when every flow has demand 1."""
        return all(f.demand == 1 for f in self.flows)

    @property
    def max_demand(self) -> int:
        """``d_max`` (0 for an empty instance)."""
        return max((f.demand for f in self.flows), default=0)

    @property
    def max_release(self) -> int:
        """Latest release round (0 for an empty instance)."""
        return max((f.release for f in self.flows), default=0)

    # ------------------------------------------------------------------
    # Vectorized views (NumPy arrays indexed by fid)
    # ------------------------------------------------------------------

    def _vectors(self) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Memoized (srcs, dsts, demands, releases) arrays.

        The instance is frozen, so the arrays can never go stale; hot
        callers (the online simulator builds its queue state from them on
        every run) skip the per-flow attribute walk after the first call.
        """
        cached = getattr(self, "_vector_cache", None)
        if cached is None:
            n = len(self)
            cached = (
                np.fromiter((f.src for f in self.flows), dtype=np.int64, count=n),
                np.fromiter((f.dst for f in self.flows), dtype=np.int64, count=n),
                np.fromiter((f.demand for f in self.flows), dtype=np.int64, count=n),
                np.fromiter((f.release for f in self.flows), dtype=np.int64, count=n),
            )
            for arr in cached:
                arr.flags.writeable = False
            object.__setattr__(self, "_vector_cache", cached)
        return cached

    def srcs(self) -> np.ndarray:
        """Input-port index per flow."""
        return self._vectors()[0]

    def dsts(self) -> np.ndarray:
        """Output-port index per flow."""
        return self._vectors()[1]

    def demands(self) -> np.ndarray:
        """Demand per flow."""
        return self._vectors()[2]

    def releases(self) -> np.ndarray:
        """Release round per flow."""
        return self._vectors()[3]

    # ------------------------------------------------------------------
    # Derived quantities
    # ------------------------------------------------------------------

    def horizon_bound(self) -> int:
        """A round index by which some valid schedule finishes everything.

        A greedy schedule that places one flow per round after the last
        release always exists (demands respect ``kappa``), so
        ``max_release + n + 1`` rounds always suffice.  LP formulations use
        this as a finite time horizon.
        """
        return self.max_release + self.num_flows + 1

    def compact_horizon_bound(self) -> int:
        """A tighter horizon that still contains an *optimal* schedule.

        In a left-justified schedule (no flow can move to an earlier
        feasible round — total-response-optimal schedules can always be
        made left-justified by cost-decreasing moves), a flow scheduled
        at round ``t`` has one of its two ports saturated in every round
        of ``[r_e, t)``.  Port ``p`` can be saturated in at most
        ``ceil(D_p / c_p)`` rounds, where ``D_p`` is the total demand
        incident on ``p``, so every flow runs before
        ``r_e + ceil(D_src/c_src) + ceil(D_dst/c_dst)``.  The returned
        bound is ``max_release + 2 * max_p ceil(D_p/c_p) + 2``, capped by
        :meth:`horizon_bound`.  Using it as the LP horizon preserves the
        lower-bound property of the relaxations while shrinking them
        dramatically on balanced workloads.
        """
        if self.num_flows == 0:
            return 1
        in_load, out_load = self.port_loads()
        waits_in = np.ceil(in_load / self.switch.input_capacities)
        waits_out = np.ceil(out_load / self.switch.output_capacities)
        max_wait = int(max(waits_in.max(initial=0), waits_out.max(initial=0)))
        return min(self.horizon_bound(), self.max_release + 2 * max_wait + 2)

    def flows_by_release(self) -> dict[int, list[Flow]]:
        """Group flows by release round (used by the online simulator)."""
        groups: dict[int, list[Flow]] = {}
        for flow in self.flows:
            groups.setdefault(flow.release, []).append(flow)
        return groups

    def port_loads(self) -> tuple[np.ndarray, np.ndarray]:
        """Total demand per input port and per output port."""
        in_load = np.zeros(self.switch.num_inputs, dtype=np.int64)
        out_load = np.zeros(self.switch.num_outputs, dtype=np.int64)
        if self.flows:
            np.add.at(in_load, self.srcs(), self.demands())
            np.add.at(out_load, self.dsts(), self.demands())
        return in_load, out_load

    def restricted_to(self, fids: Sequence[int]) -> "Instance":
        """Sub-instance containing only the given flows (re-numbered)."""
        subset = [self.flows[i] for i in fids]
        return Instance.create(self.switch, subset)

    def shifted(self, delta: int) -> "Instance":
        """Instance with every release time shifted by ``delta`` (>= 0 result)."""
        shifted_flows = []
        for f in self.flows:
            new_release = f.release + delta
            if new_release < 0:
                raise ValueError(
                    f"shift {delta} makes flow {f.fid} release negative"
                )
            shifted_flows.append(Flow(f.src, f.dst, f.demand, new_release))
        return Instance.create(self.switch, shifted_flows)

    # ------------------------------------------------------------------
    # Serialization (trace record / replay)
    # ------------------------------------------------------------------

    def to_dict(self) -> dict:
        """JSON-serializable representation."""
        return {
            "switch": {
                "num_inputs": self.switch.num_inputs,
                "num_outputs": self.switch.num_outputs,
                "input_capacities": self.switch.input_capacities.tolist(),
                "output_capacities": self.switch.output_capacities.tolist(),
            },
            "flows": [
                {"src": f.src, "dst": f.dst, "demand": f.demand, "release": f.release}
                for f in self.flows
            ],
        }

    @staticmethod
    def from_dict(data: dict) -> "Instance":
        """Inverse of :meth:`to_dict`."""
        sw = data["switch"]
        switch = Switch.create(
            sw["num_inputs"],
            sw["num_outputs"],
            sw["input_capacities"],
            sw["output_capacities"],
        )
        flows = [
            Flow(f["src"], f["dst"], f.get("demand", 1), f.get("release", 0))
            for f in data["flows"]
        ]
        return Instance.create(switch, flows)

    def digest(self) -> str:
        """Canonical content digest of the instance (hex SHA-256).

        Computed over the sorted-key compact JSON of :meth:`to_dict`, so
        two instances with identical switch and flow data share a digest
        regardless of how they were constructed.  This is the cache key
        used by the :mod:`repro.lp.bounds` solve caches and the sweep
        result store (:mod:`repro.api.store`).  Memoized — the instance
        is frozen, so the digest can never go stale.
        """
        cached = getattr(self, "_digest", None)
        if cached is None:
            payload = json.dumps(
                self.to_dict(), sort_keys=True, separators=(",", ":")
            )
            cached = hashlib.sha256(payload.encode("utf-8")).hexdigest()
            object.__setattr__(self, "_digest", cached)
        return cached

    def save_json(self, path: str | Path) -> None:
        """Write the instance to ``path`` as JSON."""
        Path(path).write_text(json.dumps(self.to_dict(), indent=1))

    @staticmethod
    def load_json(path: str | Path) -> "Instance":
        """Read an instance previously written by :meth:`save_json`."""
        return Instance.from_dict(json.loads(Path(path).read_text()))

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Instance({self.switch}, n={self.num_flows}, "
            f"d_max={self.max_demand}, r_max={self.max_release})"
        )
