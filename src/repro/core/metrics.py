"""Response-time metrics (the paper's objectives).

``rho_e = C_e - r_e`` with ``C_e = 1 + t`` for a flow scheduled in round
``t``.  FS-ART minimizes ``sum_e rho_e`` (equivalently the average);
FS-MRT minimizes ``max_e rho_e``.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass

import numpy as np

from repro.core.schedule import Schedule


def response_times(schedule: Schedule) -> np.ndarray:
    """Per-flow response times ``rho_e = (t_e + 1) - r_e``."""
    return schedule.completion_times() - schedule.instance.releases()


def total_response_time(schedule: Schedule) -> int:
    """FS-ART objective ``sum_e rho_e``."""
    if schedule.instance.num_flows == 0:
        return 0
    return int(response_times(schedule).sum())


def average_response_time(schedule: Schedule) -> float:
    """``(1/n) sum_e rho_e`` (0.0 for an empty instance)."""
    n = schedule.instance.num_flows
    if n == 0:
        return 0.0
    return total_response_time(schedule) / n


def max_response_time(schedule: Schedule) -> int:
    """FS-MRT objective ``max_e rho_e`` (0 for an empty instance)."""
    if schedule.instance.num_flows == 0:
        return 0
    return int(response_times(schedule).max())


@dataclass(frozen=True)
class ScheduleMetrics:
    """Summary statistics of a schedule, for reporting and experiments."""

    num_flows: int
    total_response: int
    average_response: float
    max_response: int
    makespan: int
    max_augmentation: int

    @staticmethod
    def of(schedule: Schedule) -> "ScheduleMetrics":
        """Compute all metrics of ``schedule``."""
        return ScheduleMetrics(
            num_flows=schedule.instance.num_flows,
            total_response=total_response_time(schedule),
            average_response=average_response_time(schedule),
            max_response=max_response_time(schedule),
            makespan=schedule.makespan(),
            max_augmentation=schedule.max_augmentation(),
        )

    def to_dict(self) -> dict:
        """JSON-serializable field mapping (inverse of :meth:`from_dict`)."""
        return asdict(self)

    @staticmethod
    def from_dict(data: dict) -> "ScheduleMetrics":
        """Rebuild from :meth:`to_dict` output."""
        return ScheduleMetrics(**data)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"n={self.num_flows} total_rt={self.total_response} "
            f"avg_rt={self.average_response:.3f} max_rt={self.max_response} "
            f"makespan={self.makespan} extra_cap={self.max_augmentation}"
        )
