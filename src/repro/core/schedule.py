"""Schedules: round assignments for flows, with validation.

A :class:`Schedule` maps every flow (by fid) to the round in which it runs.
``validate_schedule`` checks the paper's schedule conditions (Section 2):

1. every flow is scheduled (exactly one round here — flows are atomic);
2. no flow runs before its release round;
3. for every port ``p`` and round ``t``, the total demand of scheduled
   flows incident on ``p`` is at most ``c_p`` (optionally an augmented
   capacity, for the resource-augmentation algorithms).

Completion time follows the paper's convention ``C_e = 1 + t`` (a flow
scheduled in round ``t`` occupies the window ``[t, t+1)``), so the response
time of a flow scheduled at its release round is 1.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Mapping, Optional

import numpy as np

from repro.core.instance import Instance
from repro.core.switch import Switch


class ScheduleError(ValueError):
    """Raised when a schedule violates a validity condition."""


@dataclass(frozen=True)
class Schedule:
    """An assignment of flows to rounds.

    Attributes
    ----------
    instance:
        The instance this schedule solves.
    assignment:
        ``assignment[fid] = t`` — round of flow ``fid``; length ``n``.
    """

    instance: Instance
    assignment: np.ndarray = field(repr=False)

    @staticmethod
    def from_mapping(instance: Instance, rounds: Mapping[int, int]) -> "Schedule":
        """Build from a ``{fid: round}`` mapping covering every flow."""
        n = instance.num_flows
        assignment = np.full(n, -1, dtype=np.int64)
        for fid, t in rounds.items():
            if not 0 <= fid < n:
                raise ScheduleError(f"unknown fid {fid}")
            assignment[fid] = t
        if (assignment < 0).any():
            missing = np.flatnonzero(assignment < 0)[:5].tolist()
            raise ScheduleError(f"flows missing from schedule (first few): {missing}")
        return Schedule(instance, assignment)

    def __post_init__(self) -> None:
        arr = np.asarray(self.assignment, dtype=np.int64)
        if arr.shape != (self.instance.num_flows,):
            raise ScheduleError(
                f"assignment must have shape ({self.instance.num_flows},), "
                f"got {arr.shape}"
            )
        if arr.size and int(arr.min()) < 0:
            # A negative round (e.g. a leftover -1 "unscheduled" marker)
            # used to wrap around in port_round_loads' fancy indexing,
            # silently crediting the flow to the *last* round — so an
            # incomplete schedule could pass the load checks and report
            # max_augmentation() == 0.  Reject it at construction.
            fid = int(np.flatnonzero(arr < 0)[0])
            raise ScheduleError(
                f"flow {fid} has negative round {int(arr[fid])}; every "
                "flow must be assigned a round >= 0"
            )
        object.__setattr__(self, "assignment", arr)
        arr.setflags(write=False)

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------

    def round_of(self, fid: int) -> int:
        """The round in which flow ``fid`` runs."""
        return int(self.assignment[fid])

    def completion_times(self) -> np.ndarray:
        """``C_e = 1 + t`` per flow."""
        return self.assignment + 1

    def makespan(self) -> int:
        """Last occupied round plus one (i.e. max completion time)."""
        if self.instance.num_flows == 0:
            return 0
        return int(self.assignment.max()) + 1

    def rounds_used(self) -> Dict[int, list[int]]:
        """``{round: [fids scheduled in that round]}``."""
        buckets: Dict[int, list[int]] = {}
        for fid, t in enumerate(self.assignment):
            buckets.setdefault(int(t), []).append(fid)
        return buckets

    # ------------------------------------------------------------------
    # Load computation
    # ------------------------------------------------------------------

    def port_round_loads(self) -> tuple[np.ndarray, np.ndarray]:
        """Per-(port, round) demand totals.

        Returns ``(in_loads, out_loads)`` with shapes ``(m, H)`` and
        ``(m', H)`` where ``H = makespan()``.
        """
        inst = self.instance
        H = self.makespan()
        in_loads = np.zeros((inst.switch.num_inputs, max(H, 1)), dtype=np.int64)
        out_loads = np.zeros((inst.switch.num_outputs, max(H, 1)), dtype=np.int64)
        if inst.num_flows:
            srcs, dsts = inst.srcs(), inst.dsts()
            demands = inst.demands()
            np.add.at(in_loads, (srcs, self.assignment), demands)
            np.add.at(out_loads, (dsts, self.assignment), demands)
        return in_loads, out_loads

    def max_augmentation(self) -> int:
        """Largest additive capacity excess used by this schedule.

        0 means the schedule is *capacity*-feasible for the instance's
        own switch; ``k > 0`` means some port in some round carries
        ``c_p + k`` demand.  Capacity feasibility alone is not full
        validity — a schedule may still run flows before their release
        rounds — so use :func:`validate_schedule` /
        :func:`is_valid_schedule` for the complete contract:
        ``is_valid_schedule(s)`` iff ``s.max_augmentation() == 0`` and
        no flow runs early.
        """
        in_loads, out_loads = self.port_round_loads()
        in_excess = in_loads - self.instance.switch.input_capacities[:, None]
        out_excess = out_loads - self.instance.switch.output_capacities[:, None]
        return int(max(in_excess.max(initial=0), out_excess.max(initial=0)))


def validate_schedule(
    schedule: Schedule,
    capacity_switch: Optional[Switch] = None,
) -> None:
    """Raise :class:`ScheduleError` unless ``schedule`` is valid.

    Parameters
    ----------
    capacity_switch:
        Capacities to validate against; defaults to the instance's own
        switch.  Resource-augmentation algorithms pass
        ``instance.switch.augmented(...)`` here.
    """
    inst = schedule.instance
    switch = capacity_switch if capacity_switch is not None else inst.switch
    if switch.num_inputs != inst.switch.num_inputs or (
        switch.num_outputs != inst.switch.num_outputs
    ):
        raise ScheduleError("capacity_switch port counts differ from instance")

    releases = inst.releases()
    early = schedule.assignment < releases
    if early.any():
        fid = int(np.flatnonzero(early)[0])
        raise ScheduleError(
            f"flow {fid} scheduled at round {schedule.assignment[fid]} "
            f"before its release {releases[fid]}"
        )

    in_loads, out_loads = schedule.port_round_loads()
    in_over = in_loads > switch.input_capacities[:, None]
    if in_over.any():
        p, t = np.argwhere(in_over)[0]
        raise ScheduleError(
            f"input port {p} overloaded at round {t}: "
            f"load {in_loads[p, t]} > capacity {switch.input_capacities[p]}"
        )
    out_over = out_loads > switch.output_capacities[:, None]
    if out_over.any():
        q, t = np.argwhere(out_over)[0]
        raise ScheduleError(
            f"output port {q} overloaded at round {t}: "
            f"load {out_loads[q, t]} > capacity {switch.output_capacities[q]}"
        )


def is_valid_schedule(
    schedule: Schedule, capacity_switch: Optional[Switch] = None
) -> bool:
    """Boolean form of :func:`validate_schedule`."""
    try:
        validate_schedule(schedule, capacity_switch)
    except ScheduleError:
        return False
    return True
