"""The non-blocking switch: a capacitated bipartite port set.

The paper models the datacenter network as a single non-blocking switch
``S(m, m')``: ``m`` input ports and ``m'`` output ports, every input
connected to every output with unlimited interconnect bandwidth, and all
bandwidth limits at the ports (Figure 1 of the paper).  A switch here is
therefore just the two capacity vectors.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence, Union

import numpy as np

from repro.utils.validation import check_positive_int

CapacitySpec = Union[int, Sequence[int], np.ndarray]


def _as_capacity_array(spec: CapacitySpec, count: int, name: str) -> np.ndarray:
    """Normalize a capacity spec (scalar or per-port sequence) to an array."""
    if np.isscalar(spec):
        cap = check_positive_int(spec, name)
        return np.full(count, cap, dtype=np.int64)
    arr = np.asarray(spec, dtype=np.int64)
    if arr.ndim != 1 or arr.shape[0] != count:
        raise ValueError(
            f"{name} must be a scalar or a length-{count} sequence, "
            f"got shape {arr.shape}"
        )
    if (arr < 1).any():
        raise ValueError(f"all {name} entries must be >= 1")
    return arr.copy()


@dataclass(frozen=True)
class Switch:
    """An ``m x m'`` non-blocking switch with per-port capacities.

    Attributes
    ----------
    num_inputs:
        Number of input (ingress) ports ``m``.
    num_outputs:
        Number of output (egress) ports ``m'``.
    input_capacities / output_capacities:
        Integer capacity vectors ``c_p``; a scalar broadcast to every port
        is accepted by :meth:`create`.
    """

    num_inputs: int
    num_outputs: int
    input_capacities: np.ndarray = field(repr=False)
    output_capacities: np.ndarray = field(repr=False)

    @staticmethod
    def create(
        num_inputs: int,
        num_outputs: int | None = None,
        input_capacities: CapacitySpec = 1,
        output_capacities: CapacitySpec | None = None,
    ) -> "Switch":
        """Build a switch; ``Switch.create(m)`` gives a unit-capacity ``m x m``.

        Parameters
        ----------
        num_inputs / num_outputs:
            Port counts; ``num_outputs`` defaults to ``num_inputs`` (the
            paper's ``S_m`` square case).
        input_capacities / output_capacities:
            Scalar (broadcast) or per-port integer capacities;
            ``output_capacities`` defaults to ``input_capacities``.
        """
        m = check_positive_int(num_inputs, "num_inputs")
        mp = m if num_outputs is None else check_positive_int(num_outputs, "num_outputs")
        in_caps = _as_capacity_array(input_capacities, m, "input_capacities")
        out_spec = input_capacities if output_capacities is None else output_capacities
        out_caps = _as_capacity_array(out_spec, mp, "output_capacities")
        return Switch(m, mp, in_caps, out_caps)

    def __post_init__(self) -> None:
        # Freeze the arrays so the dataclass is effectively immutable.
        self.input_capacities.setflags(write=False)
        self.output_capacities.setflags(write=False)

    @property
    def is_square(self) -> bool:
        """True when ``m == m'`` (the paper's ``S_m``)."""
        return self.num_inputs == self.num_outputs

    @property
    def is_unit_capacity(self) -> bool:
        """True when every port has capacity 1 (crossbar semantics)."""
        return bool(
            (self.input_capacities == 1).all() and (self.output_capacities == 1).all()
        )

    def input_capacity(self, p: int) -> int:
        """Capacity of input port ``p``."""
        return int(self.input_capacities[p])

    def output_capacity(self, q: int) -> int:
        """Capacity of output port ``q``."""
        return int(self.output_capacities[q])

    def kappa(self, src: int, dst: int) -> int:
        """``kappa_e = min(c_src, c_dst)``, the max schedulable demand."""
        return int(min(self.input_capacities[src], self.output_capacities[dst]))

    def augmented(self, factor: float = 1.0, additive: int = 0) -> "Switch":
        """Return a switch with capacities ``floor(factor * c_p) + additive``.

        Used by the resource-augmentation algorithms (Theorem 1 uses
        ``factor = 1 + c``; Theorem 3 uses ``additive = 2 d_max - 1``).
        """
        if factor < 1.0:
            raise ValueError(f"factor must be >= 1, got {factor}")
        if additive < 0:
            raise ValueError(f"additive must be >= 0, got {additive}")
        in_caps = (np.floor(self.input_capacities * factor)).astype(np.int64) + additive
        out_caps = (np.floor(self.output_capacities * factor)).astype(np.int64) + additive
        return Switch(self.num_inputs, self.num_outputs, in_caps, out_caps)

    def ports(self) -> Iterable[tuple[str, int]]:
        """Iterate over all ports as ``("in", p)`` / ``("out", q)`` tags."""
        for p in range(self.num_inputs):
            yield ("in", p)
        for q in range(self.num_outputs):
            yield ("out", q)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        if self.is_unit_capacity:
            return f"Switch({self.num_inputs}x{self.num_outputs}, unit capacities)"
        return (
            f"Switch({self.num_inputs}x{self.num_outputs}, "
            f"caps in[{self.input_capacities.min()}..{self.input_capacities.max()}] "
            f"out[{self.output_capacities.min()}..{self.output_capacities.max()}])"
        )
