"""Core problem model: switches, flows, instances, schedules, and metrics.

This subpackage implements Section 2 of the paper ("Problem Definitions and
Notation"): the non-blocking switch model ``S(m, m')`` with per-port
capacities, flow requests (directed edges with demand and release time),
the notion of a valid schedule, and the two response-time objectives
(average and maximum response time).
"""

from repro.core.flow import Flow
from repro.core.switch import Switch
from repro.core.instance import Instance
from repro.core.schedule import Schedule, ScheduleError, validate_schedule
from repro.core.metrics import (
    ScheduleMetrics,
    average_response_time,
    max_response_time,
    response_times,
    total_response_time,
)

__all__ = [
    "Flow",
    "Switch",
    "Instance",
    "Schedule",
    "ScheduleError",
    "validate_schedule",
    "ScheduleMetrics",
    "response_times",
    "average_response_time",
    "max_response_time",
    "total_response_time",
]
