"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``solve TRACE --solver NAME`` / ``solve --scenario NAME[:k=v,...]``
    Run any registered solver on a JSON trace (see
    ``repro.workloads.trace``) or on a generated scenario from the
    declarative registry (``repro.scenarios``); ``-p key=value``
    forwards solver parameters, ``--seed`` seeds scenario generation.
``list-solvers [--json]``
    Enumerate the plugin registry (offline / online / coflow).
``scenarios list [--json]``
    Enumerate the scenario registry with defaults and summaries.
``fig6`` / ``fig7``
    Regenerate the paper's figure series (``--quick`` /
    ``--paper-scale``; ``--jobs N`` parallelizes the sweep trials;
    ``--cache-dir DIR`` persists per-trial results so killed sweeps
    resume, with ``--resume`` [default] / ``--no-cache`` toggling reads).
``verify [TRACE | --scenario SPEC | --report FILE | --cache-dir DIR]``
    Replay work through the certificate checkers (``repro.verify``):
    cross-check registered solvers on a trace/scenario instance
    (``--metamorphic`` adds the transform harness), certify a saved
    ``SolveReport`` JSON (see ``solve --report-out``), or certify every
    record of a cached sweep store.  Exits non-zero on any violation.
``solve-mrt TRACE`` / ``solve-art TRACE`` / ``simulate TRACE``
    Back-compat aliases for ``solve`` with the FS-MRT / FS-ART / online
    policy solvers.
``generate OUT``
    Write a Poisson/uniform trace (the paper's workload) to a file.
``probe-open-problem``
    Explore the Section 6 open question empirically.
``serve --cache-dir DIR`` / ``serve --join DIR``
    Run the long-lived solve service (``repro.service``): HTTP endpoint
    with digest-coalescing, admission control, and a work-stealing
    worker pool over the shared cache dir.  ``--join DIR`` starts a
    worker-only process that steals queued jobs from a running
    service's directory (a second machine, or just more cores).
``submit --address URL``
    Blocking client for a running service: submit one solve (trace,
    inline, or ``--scenario``) and print the served report.
``bench``
    Run the script-mode benchmark suites and write committed,
    machine-normalized ``BENCH_*.json`` snapshots (``repro.bench``).
``trace export SPANLOG OUT`` / ``trace report SPANLOG``
    Convert a JSONL span log (from ``fig6/fig7 --trace``, ``solve
    --trace-out``, or ``serve --trace``) to Chrome ``trace_event``
    JSON for Perfetto / ``chrome://tracing``, or print its per-phase
    duration table (``repro.obs``).
"""

from __future__ import annotations

import argparse
import json
import sys


def _positive_int(value: str) -> int:
    """argparse type for flags that must be >= 1 (e.g. ``--jobs``)."""
    n = int(value)
    if n < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {value}")
    return n


def _parse_params(pairs) -> dict:
    """Parse ``-p key=value`` pairs; values go through JSON when possible."""
    params = {}
    for pair in pairs or ():
        key, sep, raw = pair.partition("=")
        if not sep or not key:
            raise SystemExit(f"bad -p {pair!r}: expected key=value")
        try:
            params[key] = json.loads(raw)
        except json.JSONDecodeError:
            params[key] = raw
    return params


def _cmd_figures(args, which: str) -> int:
    from repro.experiments.config import (
        default_config,
        paper_scale_config,
        smoke_config,
    )
    from repro.experiments.fig6 import render_fig6
    from repro.experiments.fig7 import render_fig7
    from repro.experiments.harness import run_sweep

    if args.paper_scale:
        config = paper_scale_config()
    elif args.quick:
        config = smoke_config()
    else:
        config = default_config()
    if (args.resume or args.no_cache) and args.cache_dir is None:
        raise SystemExit("error: --resume/--no-cache require --cache-dir")
    if args.resume and args.no_cache:
        raise SystemExit("error: --resume and --no-cache are mutually exclusive")
    from repro.api import SweepInterrupted

    profiler = None
    trace_arg = args.trace
    if args.profile:
        from repro.obs.profile import SamplingProfiler

        profiler = SamplingProfiler()
        profiler.start()
        if trace_arg is None:
            # Samples attribute to open spans, which only exist while a
            # tracer is ambient: --profile without --trace runs under an
            # in-memory tracer (no span log written).
            from repro.obs.spans import Tracer

            trace_arg = Tracer()
    try:
        sweep = run_sweep(
            config,
            compute_lp_bounds=not args.no_lp,
            verbose=True,
            jobs=args.jobs,
            cache_dir=args.cache_dir,
            resume=not args.no_cache,
            verify=args.verify,
            batch_trials=args.batch_trials,
            no_batch=args.no_batch,
            trace=trace_arg,
        )
    except SweepInterrupted as exc:
        print(f"\ninterrupted: {exc}", file=sys.stderr)
        if args.cache_dir:
            print(
                f"partial results kept in {args.cache_dir}; rerun the same "
                "command to resume from them",
                file=sys.stderr,
            )
        else:
            print(
                "no --cache-dir was set, so the partial results are gone; "
                "pass --cache-dir DIR to make interrupted sweeps resumable",
                file=sys.stderr,
            )
        return 130  # conventional SIGINT exit status
    finally:
        if profiler is not None:
            profiler.stop()
    print()
    print(render_fig6(sweep) if which == "fig6" else render_fig7(sweep))
    if args.trace:
        from repro.obs.export import phase_table, read_spans

        print()
        print(phase_table(read_spans(args.trace)))
        print(f"span log written to {args.trace} "
              f"(repro trace export {args.trace} out.json)")
    if profiler is not None:
        print()
        print(profiler.report())
    return 0


def _load_instance(args):
    """The instance named by ``args``: a trace file or a ``--scenario``.

    Exactly one source must be given; scenario parse/build errors and
    trace errors alike exit cleanly with an ``error:`` message.
    """
    scenario = getattr(args, "scenario", None)
    if (args.trace is None) == (scenario is None):
        raise SystemExit(
            "error: pass exactly one of TRACE or --scenario NAME[:k=v,...]"
        )
    if scenario is not None:
        from repro.scenarios import build_instance

        try:
            return build_instance(scenario, seed=getattr(args, "seed", 0))
        except (OSError, ValueError) as exc:
            raise SystemExit(f"error: {exc}")
    from repro.workloads.trace import load_trace

    try:
        return load_trace(args.trace)
    except (OSError, ValueError) as exc:
        raise SystemExit(f"error: {exc}")


def _run_on_instance(inst, solver_name: str, kind=None, params=None):
    """Run a registered solver on ``inst``, echoing the instance first.

    ``params`` is an explicit dict (not ``**kwargs``) so user-supplied
    ``-p`` names can never collide with this function's own arguments —
    every pair is forwarded to ``solve()`` verbatim.

    Predictable user errors — an unknown solver name, a solver of the
    wrong ``kind`` — exit cleanly with an ``error:`` message instead of
    a traceback (shared by ``solve`` and its aliases).  Errors raised
    by ``solve()`` itself propagate from here; the aliases let them
    traceback, while ``_cmd_solve`` additionally converts
    ValueError/TypeError (see its comment for the tradeoff).
    """
    from repro.api import get_solver, list_solvers

    try:
        solver = get_solver(solver_name)
    except ValueError as exc:
        raise SystemExit(f"error: {exc}")
    if kind is not None and solver.kind != kind:
        raise SystemExit(
            f"error: {solver_name!r} has kind {solver.kind!r}, expected "
            f"{kind!r}; available: {list_solvers(kind)}"
        )
    print(f"instance: {inst}")  # echo before the (possibly slow) solve
    return solver.solve(inst, **(params or {}))


def _run_on_trace(trace_path, solver_name: str, kind=None, params=None):
    """Back-compat shim for the ``solve`` aliases (trace input only)."""
    from repro.workloads.trace import load_trace

    try:
        inst = load_trace(trace_path)
    except (OSError, ValueError) as exc:
        raise SystemExit(f"error: {exc}")
    return _run_on_instance(inst, solver_name, kind=kind, params=params)


def _cmd_solve(args) -> int:
    inst = _load_instance(args)
    tracer = prev = root = None
    if args.trace_out:
        from repro.obs.export import JsonlSink
        from repro.obs.metrics import get_registry
        from repro.obs.spans import Tracer, activate

        tracer = Tracer(
            sink=JsonlSink(args.trace_out), metrics=get_registry()
        )
        prev = activate(tracer)
        root = tracer.open("solve", attrs={"solver": args.solver})
    try:
        report = _run_on_instance(
            inst, args.solver, params=_parse_params(args.param)
        )
    except (ValueError, TypeError) as exc:
        # Free-form -p input makes bad parameter names/values and
        # wrong-instance-kind mistakes the overwhelmingly common case
        # for this command, so ValueError/TypeError from the dispatch
        # exit cleanly — accepting that a solver-internal bug of those
        # types loses its traceback here (the aliases preserve it).
        # SystemExit from _run_on_trace passes straight through.
        raise SystemExit(f"error: {exc}")
    finally:
        if tracer is not None:
            from repro.obs.spans import deactivate

            tracer.close(root)
            deactivate(prev)
            tracer.finish()
            print(f"span log written to {args.trace_out}")
    print(f"solver {report.solver} ({report.kind}): ", end="")
    print(report.metrics if report.metrics is not None else "infeasible")
    for name, value in sorted(report.lower_bounds.items()):
        print(f"  lower bound {name} = {value:g}")
    for name, value in sorted(report.extras.items()):
        print(f"  {name} = {value}")
    if args.report_out:
        with open(args.report_out, "w") as fh:
            json.dump(report.to_dict(), fh, indent=1)
        print(f"full report written to {args.report_out}")
    if report.schedule is None:  # infeasible: exit 1 with or without --out
        if args.out:
            print("no schedule to write (infeasible)")
        return 1
    if args.out:
        _write_assignment(report.schedule, args.out)
    return 0


def _cmd_list_solvers(args) -> int:
    from repro.api import SOLVER_KINDS, get_solver, list_solvers

    if getattr(args, "json", False):
        payload = {
            kind: [
                {
                    "name": name,
                    "summary": getattr(get_solver(name), "summary", ""),
                }
                for name in list_solvers(kind)
            ]
            for kind in SOLVER_KINDS
        }
        print(json.dumps(payload, indent=1, sort_keys=True))
        return 0
    for kind in SOLVER_KINDS:
        names = list_solvers(kind)
        if not names:
            continue
        print(f"{kind}:")
        for name in names:
            summary = getattr(get_solver(name), "summary", "")
            print(f"  {name:<16s} {summary}")
    return 0


def _cmd_scenarios(args) -> int:
    from repro.scenarios import get_scenario, list_scenarios

    if args.scenarios_command != "list":  # pragma: no cover - argparse guards
        raise AssertionError(
            f"unhandled scenarios subcommand {args.scenarios_command}"
        )
    entries = [get_scenario(name) for name in list_scenarios()]
    if args.json:
        payload = [
            {
                "name": e.name,
                "summary": e.summary,
                "num_ports": e.num_ports,
                "capacity": e.capacity,
                "horizon": e.horizon,
                "params": dict(e.defaults),
            }
            for e in entries
        ]
        print(json.dumps(payload, indent=1, sort_keys=True))
        return 0
    for e in entries:
        print(f"{e.name:<16s} {e.summary}")
        shape = (
            f"ports={e.num_ports if e.num_ports is not None else 'derived'} "
            f"capacity={e.capacity if e.capacity is not None else 'derived'} "
            f"horizon={e.horizon if e.horizon is not None else 'unbounded'}"
        )
        knobs = " ".join(f"{k}={v}" for k, v in sorted(e.defaults.items()))
        print(f"{'':<16s}   defaults: {shape}" + (f" {knobs}" if knobs else ""))
    return 0


def _verify_report_file(path: str):
    """Certify one saved ``SolveReport`` JSON; returns the report."""
    from repro.api import SolveReport
    from repro.verify import certify

    try:
        with open(path, "r", encoding="utf-8") as fh:
            data = json.load(fh)
        solve_report = SolveReport.from_dict(data)
    except (OSError, ValueError, KeyError, TypeError) as exc:
        raise SystemExit(f"error: cannot load report {path!r}: {exc}")
    return certify(solve_report, subject=f"report:{path}")


def _verify_cache_dir(cache_dir: str):
    """Certify every *live* record of a result-store directory.

    Replays exactly what :class:`repro.api.store.ResultStore` would
    serve (:func:`repro.api.store.live_records`: oldest-shard-first,
    torn-tail tolerant, duplicate keys last-writer-wins — a record
    superseded by a ``--no-cache`` refresh can never be served again,
    so it is not re-certified).  Each certified record's subject names
    the shard it survived from.
    """
    from pathlib import Path

    from repro.api.store import live_records
    from repro.verify import check_record, merge_reports

    directory = Path(cache_dir)
    if not directory.is_dir():
        raise SystemExit(f"error: {cache_dir!r} is not a directory")
    if not any(directory.glob("results-*.jsonl")):
        raise SystemExit(
            f"error: no result shards (results-*.jsonl) in {cache_dir!r}"
        )
    live = live_records(directory)
    if not live:
        # Shards exist but every line is torn/garbled: say so instead
        # of rendering the meaningless "0 violation(s) (0 check(s))".
        raise SystemExit(
            f"error: shards in {cache_dir!r} contain no readable records"
        )
    reports = [
        check_record(
            entry["report"],
            subject=(
                f"{entry['solver'] or '?'}@"
                f"{str(entry['instance'] or '')[:12]} ({entry['shard']})"
            ),
        )
        for entry in live.values()
    ]
    merged = merge_reports(f"store:{cache_dir}", reports)
    merged.stats["records"] = len(live)
    return merged


def _cmd_verify(args) -> int:
    sources = [
        args.trace is not None,
        args.scenario is not None,
        args.report is not None,
        args.cache_dir is not None,
    ]
    if sum(sources) != 1:
        raise SystemExit(
            "error: pass exactly one of TRACE, --scenario, --report, "
            "or --cache-dir"
        )
    if args.report is not None or args.cache_dir is not None:
        # Cross-checking flags only make sense when an instance is in
        # hand; silently ignoring them would report 'certified' for
        # checks that never ran.
        for flag, value in (("--metamorphic", args.metamorphic),
                            ("--solvers", args.solvers)):
            if value:
                raise SystemExit(
                    f"error: {flag} applies to TRACE/--scenario "
                    "verification, not --report/--cache-dir"
                )

    if args.report is not None:
        verification = _verify_report_file(args.report)
    elif args.cache_dir is not None:
        verification = _verify_cache_dir(args.cache_dir)
    else:
        from repro.verify import cross_check, metamorphic_check

        inst = _load_instance(args)
        solvers = (
            [s for s in args.solvers.split(",") if s]
            if args.solvers
            else None
        )
        try:
            result = cross_check(inst, solvers=solvers)
        except ValueError as exc:  # unknown solver name
            raise SystemExit(f"error: {exc}")
        verification = result.verification
        if args.metamorphic:
            verification.merge(
                metamorphic_check(
                    inst,
                    solvers=solvers or ("Greedy",),
                    seed=args.seed,
                )
            )

    if args.json:
        print(json.dumps(verification.to_dict(), indent=1, sort_keys=True))
    else:
        print(verification.render())
    return 0 if verification.ok else 1


def _cmd_solve_mrt(args) -> int:
    report = _run_on_trace(args.trace, "FS-MRT")
    max_demand = report.schedule.instance.max_demand
    print(f"optimal (fractional) max response rho* = {report.extras['rho']}")
    print(f"schedule extra capacity used = {report.extras['max_violation']} "
          f"(Theorem 3 bound {2 * max_demand - 1})")
    print(f"LP solves = {report.extras['lp_solves']}")
    if args.out:
        _write_assignment(report.schedule, args.out)
    return 0


def _cmd_solve_art(args) -> int:
    report = _run_on_trace(args.trace, "FS-ART", params={"c": args.c})
    print(f"total response = {report.metrics.total_response} "
          f"(LP lower bound {report.lower_bounds['lp_total_response']:.2f})")
    print(f"capacity blowup = {report.extras['capacity_factor']}x "
          f"(target 1+c = {1 + args.c}x), "
          f"window h = {report.extras['window']}")
    if args.out:
        _write_assignment(report.schedule, args.out)
    return 0


def _cmd_simulate(args) -> int:
    report = _run_on_trace(args.trace, args.policy, kind="online")
    print(f"policy {args.policy}: {report.metrics}")
    if args.out:
        _write_assignment(report.schedule, args.out)
    return 0


def _cmd_generate(args) -> int:
    from repro.workloads.synthetic import poisson_uniform_workload
    from repro.workloads.trace import save_trace

    if args.scenario is not None:
        if (args.ports, args.mean, args.rounds) != (None, None, None):
            raise SystemExit(
                "error: --ports/--mean/--rounds configure the default "
                "Poisson/uniform generator; with --scenario use spec "
                "options instead (e.g. --scenario "
                f"{args.scenario.split(':')[0]}:ports=32,horizon=20)"
            )
        from repro.scenarios import build_instance

        try:
            inst = build_instance(args.scenario, seed=args.seed)
        except (OSError, ValueError) as exc:
            raise SystemExit(f"error: {exc}")
    else:
        inst = poisson_uniform_workload(
            24 if args.ports is None else args.ports,
            24.0 if args.mean is None else args.mean,
            10 if args.rounds is None else args.rounds,
            seed=args.seed,
        )
    save_trace(inst, args.out)
    print(f"wrote {inst} to {args.out}")
    return 0


def _cmd_probe(args) -> int:
    from repro.analysis.open_problem import probe_open_problem

    worst, values = probe_open_problem(
        num_ports=args.ports,
        num_rounds=args.rounds,
        trials=args.trials,
        seed=args.seed,
    )
    print("Section 6 open-problem probe (degree-bounded sequences, "
          "no augmentation):")
    print(f"  optimal max response per trial: {values}")
    print(f"  worst observed constant: {worst}")
    return 0


def _cmd_serve(args) -> int:
    if (args.cache_dir is None) == (args.join is None):
        raise SystemExit(
            "error: pass exactly one of --cache-dir DIR (run the full "
            "service) or --join DIR (worker-only: steal jobs from a "
            "running service's directory)"
        )

    if args.join is not None:
        # Worker-only mode: no HTTP listener, just claim-solve-store
        # loops over the shared directory until SIGTERM/Ctrl-C.
        import signal
        import threading

        from repro.service import WorkerPool

        stop = threading.Event()
        for sig in (signal.SIGINT, signal.SIGTERM):
            signal.signal(sig, lambda *_: stop.set())
        pool = WorkerPool(args.join, args.workers)
        pool.start()
        print(
            f"joined work queue at {args.join} with {args.workers} "
            "worker(s); Ctrl-C or SIGTERM to stop",
            flush=True,
        )
        try:
            while not stop.wait(0.2):
                pass
        finally:
            pool.stop()
        print("workers drained; stopped cleanly")
        return 0

    import asyncio
    import signal

    from repro.obs.metrics import get_registry
    from repro.service import BrokerConfig, SolveService

    # The process-wide registry, so GET /metrics serves every series
    # this process produced — service counters and any runner/oracle
    # timings alike (one unified exposition).
    service = SolveService(
        args.cache_dir,
        host=args.host,
        port=args.port,
        config=BrokerConfig(
            queue_depth=args.queue_depth,
            solver_cap=args.solver_cap,
            default_timeout=args.timeout,
            verify=args.verify,
        ),
        metrics=get_registry(),
        workers=args.workers,
        trace=args.trace,
    )

    async def _serve() -> None:
        await service.start()
        print(
            f"solve service on {service.address} "
            f"(cache {args.cache_dir}, {args.workers} worker(s)"
            + (", verify on" if args.verify else "")
            + "); Ctrl-C or SIGTERM to drain and stop",
            flush=True,
        )
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGINT, signal.SIGTERM):
            loop.add_signal_handler(sig, stop.set)
        await stop.wait()
        print("draining...", flush=True)
        await service.stop(drain_timeout=args.drain_timeout)

    asyncio.run(_serve())
    print("stopped cleanly")
    return 0


def _cmd_submit(args) -> int:
    from repro.service import ServiceClient, ServiceError

    if (args.trace is None) == (args.scenario is None):
        raise SystemExit(
            "error: pass exactly one of TRACE or --scenario NAME[:k=v,...]"
        )
    instance = None
    if args.trace is not None:
        from repro.workloads.trace import load_trace

        try:
            instance = load_trace(args.trace)
        except (OSError, ValueError) as exc:
            raise SystemExit(f"error: {exc}")
    client = ServiceClient(args.address, timeout=args.http_timeout)
    try:
        response = client.solve(
            args.solver,
            instance=instance,
            scenario=args.scenario,
            seed=args.seed,
            params=_parse_params(args.param),
            verify=args.verify,
            timeout=args.timeout,
            retries=args.retries,
            trace=args.trace_id,
        )
    except ServiceError as exc:
        raise SystemExit(f"error: {exc}")
    if args.json:
        print(json.dumps(response.to_dict(), indent=1, sort_keys=True))
        return 0
    report = response.solve_report()
    print(
        f"{response.solver} via {response.source}"
        + (" (certified)" if response.certified else "")
        + f" digest={response.digest[:16]}…"
        + (f" trace={response.trace_id}" if response.trace_id else "")
    )
    print(report.metrics if report.metrics is not None else "infeasible")
    for name, value in sorted(report.lower_bounds.items()):
        print(f"  lower bound {name} = {value:g}")
    return 0


def _cmd_bench(args) -> int:
    from repro.bench import main as bench_main

    return bench_main(args)


def _cmd_trace(args) -> int:
    from repro.obs.export import (
        export_chrome_trace,
        phase_table,
        read_spans,
        validate_span,
    )

    try:
        spans = read_spans(args.spanlog)
    except OSError as exc:
        raise SystemExit(f"error: {exc}")
    if not spans:
        raise SystemExit(f"error: no spans in {args.spanlog!r}")
    problems = [
        f"line {i + 1}: {p}"
        for i, s in enumerate(spans)
        for p in validate_span(s)
    ]
    if problems:
        for line in problems[:10]:
            print(f"warning: {line}", file=sys.stderr)
        if len(problems) > 10:
            print(
                f"warning: ... and {len(problems) - 10} more", file=sys.stderr
            )
    if args.trace_command == "export":
        count = export_chrome_trace(spans, args.out)
        print(
            f"wrote {count} trace events to {args.out} "
            "(load in Perfetto or chrome://tracing)"
        )
        return 0
    if args.trace_command == "report":
        print(phase_table(spans, limit=args.limit))
        return 0
    raise AssertionError(  # pragma: no cover - argparse guards
        f"unhandled trace subcommand {args.trace_command}"
    )


def _write_assignment(schedule, path: str) -> None:
    from repro.core.metrics import ScheduleMetrics

    data = {
        "assignment": schedule.assignment.tolist(),
        "metrics": ScheduleMetrics.of(schedule).to_dict(),
    }
    with open(path, "w") as fh:
        json.dump(data, fh, indent=1)
    print(f"schedule written to {path}")


def build_parser() -> argparse.ArgumentParser:
    """Construct the CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Scheduling Flows on a Switch (SPAA 2020) reproduction",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser(
        "solve", help="run any registered solver on a trace or scenario"
    )
    p.add_argument("trace", nargs="?", default=None)
    p.add_argument("--solver", default="MaxWeight",
                   help="registry name (see list-solvers)")
    p.add_argument("--scenario", default=None, metavar="NAME[:k=v,...]",
                   help="generate the instance from the scenario registry "
                        "instead of reading a trace (see scenarios list)")
    p.add_argument("--seed", type=int, default=0,
                   help="scenario generation seed (with --scenario)")
    p.add_argument("-p", "--param", action="append", metavar="KEY=VALUE",
                   help="solver parameter (repeatable; value parsed as JSON)")
    p.add_argument("--out", default=None)
    p.add_argument("--report-out", default=None, metavar="FILE",
                   help="also write the full SolveReport JSON (replayable "
                        "through 'verify --report FILE')")
    p.add_argument("--trace-out", default=None, metavar="FILE",
                   help="write a JSONL span log of the solve (inspect with "
                        "'trace report FILE'; the positional TRACE is the "
                        "input workload, hence the -out suffix)")

    p = sub.add_parser(
        "verify", help="replay work through the certificate checkers"
    )
    p.add_argument("trace", nargs="?", default=None,
                   help="JSON trace to cross-check solvers on")
    p.add_argument("--scenario", default=None, metavar="NAME[:k=v,...]",
                   help="cross-check on a generated scenario instance")
    p.add_argument("--report", default=None, metavar="FILE",
                   help="certify a saved SolveReport JSON "
                        "(from solve --report-out)")
    p.add_argument("--cache-dir", default=None, metavar="DIR",
                   help="certify every record of a cached sweep store")
    p.add_argument("--solvers", default=None, metavar="A,B,...",
                   help="solvers to cross-check (default: all offline)")
    p.add_argument("--seed", type=int, default=0,
                   help="scenario generation / transform seed")
    p.add_argument("--metamorphic", action="store_true",
                   help="also certify invariance under port-relabeling, "
                        "demand-scaling, and flow-shuffling transforms")
    p.add_argument("--json", action="store_true",
                   help="machine-readable verification report")

    p = sub.add_parser("list-solvers", help="enumerate the solver registry")
    p.add_argument("--json", action="store_true",
                   help="machine-readable output")

    p = sub.add_parser("scenarios", help="inspect the scenario registry")
    ssub = p.add_subparsers(dest="scenarios_command", required=True)
    p = ssub.add_parser("list", help="enumerate registered scenarios")
    p.add_argument("--json", action="store_true",
                   help="machine-readable output")

    for fig in ("fig6", "fig7"):
        p = sub.add_parser(fig, help=f"regenerate {fig} series")
        p.add_argument("--quick", action="store_true")
        p.add_argument("--paper-scale", action="store_true")
        p.add_argument("--no-lp", action="store_true")
        p.add_argument("--jobs", type=_positive_int, default=None,
                       help="parallel worker processes for the sweep")
        p.add_argument("--cache-dir", default=None, metavar="DIR",
                       help="persist per-trial results here; interrupted "
                            "sweeps resume and repeated cells are served "
                            "from disk")
        p.add_argument("--resume", action="store_true",
                       help="reuse results already in --cache-dir "
                            "(the default; flag kept for explicitness)")
        p.add_argument("--no-cache", action="store_true",
                       help="recompute every cell, refreshing --cache-dir")
        p.add_argument("--verify", action="store_true",
                       help="certify every trial through the repro.verify "
                            "checkers (fails fast on any violation)")
        p.add_argument("--batch-trials", type=_positive_int, default=None,
                       metavar="N",
                       help="cap trials merged into one structure-of-arrays "
                            "batch (default: each cell batched whole)")
        p.add_argument("--no-batch", action="store_true",
                       help="run trials one at a time instead of batched "
                            "(results are identical either way)")
        p.add_argument("--trace", default=None, metavar="FILE",
                       help="write a JSONL span log of the sweep (phase "
                            "table printed after the figure; export with "
                            "'trace export FILE out.json')")
        p.add_argument("--profile", action="store_true",
                       help="run a sampling profiler alongside the sweep "
                            "and print its hot-stack report")

    p = sub.add_parser("solve-mrt",
                       help="offline Theorem 3 solver (alias of solve)")
    p.add_argument("trace")
    p.add_argument("--out", default=None)

    p = sub.add_parser("solve-art",
                       help="offline Theorem 1 solver (alias of solve)")
    p.add_argument("trace")
    p.add_argument("-c", type=int, default=1, help="capacity augmentation")
    p.add_argument("--out", default=None)

    p = sub.add_parser("simulate",
                       help="run an online heuristic (alias of solve)")
    p.add_argument("trace")
    p.add_argument("--policy", default="MaxWeight")
    p.add_argument("--out", default=None)

    p = sub.add_parser(
        "generate", help="write a Poisson/uniform (or scenario) trace"
    )
    p.add_argument("out")
    # Poisson/uniform knobs default to None so an explicit flag can be
    # detected (and rejected) when --scenario supplies the generator.
    p.add_argument("--ports", type=int, default=None,
                   help="switch size (default 24; Poisson generator only)")
    p.add_argument("--mean", type=float, default=None,
                   help="mean arrivals/round (default 24; Poisson only)")
    p.add_argument("--rounds", type=int, default=None,
                   help="generation rounds (default 10; Poisson only)")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--scenario", default=None, metavar="NAME[:k=v,...]",
                   help="materialize a registered scenario instead of the "
                        "default Poisson/uniform generator")

    p = sub.add_parser(
        "probe-open-problem", help="Section 6 open-question explorer"
    )
    p.add_argument("--ports", type=int, default=4)
    p.add_argument("--rounds", type=int, default=6)
    p.add_argument("--trials", type=int, default=10)
    p.add_argument("--seed", type=int, default=0)

    p = sub.add_parser(
        "serve", help="run the long-lived solve service (repro.service)"
    )
    p.add_argument("--cache-dir", default=None, metavar="DIR",
                   help="result-store directory to serve (also holds the "
                        "work queue)")
    p.add_argument("--join", default=None, metavar="DIR",
                   help="worker-only mode: steal queued jobs from a running "
                        "service's cache dir (no HTTP listener)")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8642,
                   help="listen port (0 picks a free one; default 8642)")
    p.add_argument("--workers", type=_positive_int, default=2,
                   help="work-stealing worker processes (default 2)")
    p.add_argument("--queue-depth", type=_positive_int, default=64,
                   help="max keys in flight before 429 queue-full")
    p.add_argument("--solver-cap", type=_positive_int, default=16,
                   help="max in-flight keys per solver before 429 "
                        "solver-busy")
    p.add_argument("--timeout", type=float, default=120.0,
                   help="default per-request wait bound, seconds")
    p.add_argument("--drain-timeout", type=float, default=30.0,
                   help="seconds to wait for in-flight solves on shutdown")
    p.add_argument("--verify", action="store_true",
                   help="certify every fresh solve before it is stored "
                        "and record-check cache hits before serving them")
    p.add_argument("--trace", default=None, metavar="FILE",
                   help="write a JSONL span log of every request (one "
                        "trace ID per request, echoed in responses)")

    p = sub.add_parser(
        "submit", help="submit one solve to a running service"
    )
    p.add_argument("trace", nargs="?", default=None,
                   help="JSON trace to submit inline")
    p.add_argument("--address", default="http://127.0.0.1:8642",
                   help="service address (default http://127.0.0.1:8642)")
    p.add_argument("--solver", default="MaxWeight",
                   help="registry name (see list-solvers)")
    p.add_argument("--scenario", default=None, metavar="NAME[:k=v,...]",
                   help="solve a generated scenario instead of a trace "
                        "(built server-side with --seed)")
    p.add_argument("--seed", type=int, default=0,
                   help="scenario generation seed (with --scenario)")
    p.add_argument("-p", "--param", action="append", metavar="KEY=VALUE",
                   help="solver parameter (repeatable; value parsed as JSON)")
    p.add_argument("--verify", action="store_true",
                   help="request certification for this solve")
    p.add_argument("--timeout", type=float, default=None,
                   help="per-request wait bound, seconds (server default "
                        "otherwise)")
    p.add_argument("--retries", type=int, default=0,
                   help="retry count for 429 overload rejections "
                        "(honours Retry-After)")
    p.add_argument("--http-timeout", type=float, default=300.0,
                   help="transport timeout per HTTP exchange, seconds")
    p.add_argument("--json", action="store_true",
                   help="print the raw protocol response")
    p.add_argument("--trace-id", dest="trace_id", default=None,
                   metavar="ID",
                   help="caller trace ID for the service to adopt "
                        "(echoed back as trace_id; correlates this "
                        "request with the server's --trace span log)")

    p = sub.add_parser(
        "bench",
        help="run benchmark suites; write normalized BENCH_*.json snapshots",
    )
    p.add_argument("--quick", action="store_true",
                   help="reduced sizes/repeats (CI smoke mode)")
    p.add_argument("--bench-dir", default="benchmarks", metavar="DIR",
                   help="directory holding bench_*.py suites")
    p.add_argument("--out-dir", default=".", metavar="DIR",
                   help="where BENCH_<suite>.json snapshots are written "
                        "(default: current directory; commit them to extend "
                        "the perf history)")
    p.add_argument("--only", default=None, metavar="A,B,...",
                   help="run only these suites (names without the bench_ "
                        "prefix)")
    p.add_argument("--check", action="store_true",
                   help="re-run each suite and exit nonzero if any "
                        "*_vs_baseline ratio regressed >20%% against the "
                        "committed BENCH_*.json in --out-dir (the CI "
                        "bench-gate; committed files are never rewritten)")

    p = sub.add_parser(
        "trace", help="inspect or export JSONL span logs (repro.obs)"
    )
    tsub = p.add_subparsers(dest="trace_command", required=True)
    t = tsub.add_parser(
        "export", help="convert a span log to Chrome trace_event JSON"
    )
    t.add_argument("spanlog", help="JSONL span log (from a --trace run)")
    t.add_argument("out", help="Chrome trace JSON output path")
    t = tsub.add_parser(
        "report", help="print a span log's per-phase duration table"
    )
    t.add_argument("spanlog", help="JSONL span log (from a --trace run)")
    t.add_argument("--limit", type=_positive_int, default=None, metavar="N",
                   help="show only the top N phases by total time")

    return parser


_COMMANDS = {
    "solve": _cmd_solve,
    "verify": _cmd_verify,
    "list-solvers": _cmd_list_solvers,
    "scenarios": _cmd_scenarios,
    "solve-mrt": _cmd_solve_mrt,
    "solve-art": _cmd_solve_art,
    "simulate": _cmd_simulate,
    "generate": _cmd_generate,
    "probe-open-problem": _cmd_probe,
    "serve": _cmd_serve,
    "submit": _cmd_submit,
    "bench": _cmd_bench,
    "trace": _cmd_trace,
}


def main(argv=None) -> int:
    """CLI entry point."""
    args = build_parser().parse_args(argv)
    if args.command in ("fig6", "fig7"):
        return _cmd_figures(args, args.command)
    handler = _COMMANDS.get(args.command)
    if handler is None:
        raise AssertionError(f"unhandled command {args.command}")
    return handler(args)


if __name__ == "__main__":
    sys.exit(main())
