"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``fig6`` / ``fig7``
    Regenerate the paper's figure series (``--quick`` / ``--paper-scale``).
``solve-mrt TRACE``
    Run the Theorem 3 solver on a JSON trace (see ``repro.workloads.trace``).
``solve-art TRACE``
    Run the Theorem 1 solver on a JSON trace (unit demands).
``simulate TRACE --policy NAME``
    Run one online heuristic on a trace.
``generate OUT``
    Write a Poisson/uniform trace (the paper's workload) to a file.
``probe-open-problem``
    Explore the Section 6 open question empirically.
"""

from __future__ import annotations

import argparse
import sys

from repro.core.metrics import ScheduleMetrics


def _cmd_figures(args, which: str) -> int:
    from repro.experiments.config import (
        default_config,
        paper_scale_config,
        smoke_config,
    )
    from repro.experiments.fig6 import render_fig6
    from repro.experiments.fig7 import render_fig7
    from repro.experiments.harness import run_sweep

    if args.paper_scale:
        config = paper_scale_config()
    elif args.quick:
        config = smoke_config()
    else:
        config = default_config()
    sweep = run_sweep(config, compute_lp_bounds=not args.no_lp, verbose=True)
    print()
    print(render_fig6(sweep) if which == "fig6" else render_fig7(sweep))
    return 0


def _cmd_solve_mrt(args) -> int:
    from repro.mrt.algorithm import solve_mrt
    from repro.workloads.trace import load_trace

    inst = load_trace(args.trace)
    res = solve_mrt(inst)
    print(f"instance: {inst}")
    print(f"optimal (fractional) max response rho* = {res.rho}")
    print(f"schedule extra capacity used = {res.max_violation} "
          f"(Theorem 3 bound {2 * inst.max_demand - 1})")
    print(f"LP solves = {res.lp_solves}")
    if args.out:
        _write_assignment(res.schedule, args.out)
    return 0


def _cmd_solve_art(args) -> int:
    from repro.art.algorithm import solve_art
    from repro.workloads.trace import load_trace

    inst = load_trace(args.trace)
    res = solve_art(inst, c=args.c)
    print(f"instance: {inst}")
    print(f"total response = {res.total_response} "
          f"(LP lower bound {res.lower_bound:.2f})")
    print(f"capacity blowup = {res.conversion.capacity_factor}x "
          f"(target 1+c = {1 + args.c}x), window h = {res.conversion.window}")
    if args.out:
        _write_assignment(res.schedule, args.out)
    return 0


def _cmd_simulate(args) -> int:
    from repro.online.policies import make_policy
    from repro.online.simulator import simulate
    from repro.workloads.trace import load_trace

    inst = load_trace(args.trace)
    result = simulate(inst, make_policy(args.policy))
    print(f"instance: {inst}")
    print(f"policy {args.policy}: {result.metrics}")
    if args.out:
        _write_assignment(result.schedule, args.out)
    return 0


def _cmd_generate(args) -> int:
    from repro.workloads.synthetic import poisson_uniform_workload
    from repro.workloads.trace import save_trace

    inst = poisson_uniform_workload(
        args.ports, args.mean, args.rounds, seed=args.seed
    )
    save_trace(inst, args.out)
    print(f"wrote {inst} to {args.out}")
    return 0


def _cmd_probe(args) -> int:
    from repro.analysis.open_problem import probe_open_problem

    worst, values = probe_open_problem(
        num_ports=args.ports,
        num_rounds=args.rounds,
        trials=args.trials,
        seed=args.seed,
    )
    print("Section 6 open-problem probe (degree-bounded sequences, "
          "no augmentation):")
    print(f"  optimal max response per trial: {values}")
    print(f"  worst observed constant: {worst}")
    return 0


def _write_assignment(schedule, path: str) -> None:
    import json

    data = {
        "assignment": schedule.assignment.tolist(),
        "metrics": ScheduleMetrics.of(schedule).__dict__,
    }
    with open(path, "w") as fh:
        json.dump(data, fh, indent=1)
    print(f"schedule written to {path}")


def build_parser() -> argparse.ArgumentParser:
    """Construct the CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Scheduling Flows on a Switch (SPAA 2020) reproduction",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    for fig in ("fig6", "fig7"):
        p = sub.add_parser(fig, help=f"regenerate {fig} series")
        p.add_argument("--quick", action="store_true")
        p.add_argument("--paper-scale", action="store_true")
        p.add_argument("--no-lp", action="store_true")

    p = sub.add_parser("solve-mrt", help="offline Theorem 3 solver")
    p.add_argument("trace")
    p.add_argument("--out", default=None)

    p = sub.add_parser("solve-art", help="offline Theorem 1 solver")
    p.add_argument("trace")
    p.add_argument("-c", type=int, default=1, help="capacity augmentation")
    p.add_argument("--out", default=None)

    p = sub.add_parser("simulate", help="run an online heuristic")
    p.add_argument("trace")
    p.add_argument("--policy", default="MaxWeight")
    p.add_argument("--out", default=None)

    p = sub.add_parser("generate", help="write a Poisson/uniform trace")
    p.add_argument("out")
    p.add_argument("--ports", type=int, default=24)
    p.add_argument("--mean", type=float, default=24.0)
    p.add_argument("--rounds", type=int, default=10)
    p.add_argument("--seed", type=int, default=0)

    p = sub.add_parser(
        "probe-open-problem", help="Section 6 open-question explorer"
    )
    p.add_argument("--ports", type=int, default=4)
    p.add_argument("--rounds", type=int, default=6)
    p.add_argument("--trials", type=int, default=10)
    p.add_argument("--seed", type=int, default=0)

    return parser


def main(argv=None) -> int:
    """CLI entry point."""
    args = build_parser().parse_args(argv)
    if args.command in ("fig6", "fig7"):
        return _cmd_figures(args, args.command)
    if args.command == "solve-mrt":
        return _cmd_solve_mrt(args)
    if args.command == "solve-art":
        return _cmd_solve_art(args)
    if args.command == "simulate":
        return _cmd_simulate(args)
    if args.command == "generate":
        return _cmd_generate(args)
    if args.command == "probe-open-problem":
        return _cmd_probe(args)
    raise AssertionError(f"unhandled command {args.command}")


if __name__ == "__main__":
    sys.exit(main())
