"""LP (19)–(21): the Time-Constrained Flow Scheduling relaxation.

Variables ``x_{e,t}`` for ``t in R(e)``:

* capacity (19):   ``sum_{e in F_p} d_e x_{e,t} <= c_p``  for all ports p,
  rounds t;
* assignment (20): ``sum_{t in R(e)} x_{e,t} = 1``        for all flows e;
* nonnegativity (21).

The LP is a feasibility system (no objective).  It is an exact relaxation
test for the *fractional* problem: a schedule induces a 0/1 solution, so
LP infeasibility certifies that no schedule exists (used as the lower
bound for ρ in the binary search and as the Figure 7 baseline).
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.lp.model import LinearProgram, Sense
from repro.lp.result import LPResult
from repro.lp.solver import solve_lp
from repro.mrt.time_constrained import TimeConstrainedInstance

# Variable naming convention shared with the rounding module.
VarName = Tuple[str, int, int]  # ("x", fid, t)


def build_time_constrained_lp(tci: TimeConstrainedInstance) -> LinearProgram:
    """Construct LP (19)–(21) for ``tci``.

    Constraint names: ``("assign", fid)`` for (20) and
    ``("cap", side, port, t)`` with ``side in {"in", "out"}`` for (19).
    Capacity rows are only emitted for (port, round) pairs actually
    touched by some variable — absent rows are vacuous.
    """
    inst = tci.instance
    lp = LinearProgram()
    # (21) x >= 0 is the default variable bound; no upper bound needed
    # because (20) caps each variable at 1.
    in_touch: Dict[Tuple[int, int], Dict[VarName, float]] = {}
    out_touch: Dict[Tuple[int, int], Dict[VarName, float]] = {}
    for fid, rounds in enumerate(tci.active_rounds):
        flow = inst.flows[fid]
        assign_coeffs: Dict[VarName, float] = {}
        for t in rounds:
            name: VarName = ("x", fid, t)
            lp.add_variable(name)
            assign_coeffs[name] = 1.0
            in_touch.setdefault((flow.src, t), {})[name] = float(flow.demand)
            out_touch.setdefault((flow.dst, t), {})[name] = float(flow.demand)
        lp.add_constraint(("assign", fid), assign_coeffs, Sense.EQ, 1.0)

    for (p, t), coeffs in sorted(in_touch.items()):
        lp.add_constraint(
            ("cap", "in", p, t),
            coeffs,
            Sense.LE,
            float(inst.switch.input_capacity(p)),
        )
    for (q, t), coeffs in sorted(out_touch.items()):
        lp.add_constraint(
            ("cap", "out", q, t),
            coeffs,
            Sense.LE,
            float(inst.switch.output_capacity(q)),
        )
    return lp


def solve_fractional(
    tci: TimeConstrainedInstance,
    backend: str = "auto",
    need_vertex: bool = True,
) -> LPResult:
    """Solve LP (19)–(21); OPTIMAL means fractionally schedulable."""
    lp = build_time_constrained_lp(tci)
    return solve_lp(lp, backend=backend, need_vertex=need_vertex)


def is_fractionally_feasible(
    tci: TimeConstrainedInstance, backend: str = "auto"
) -> bool:
    """Feasibility predicate used by the ρ binary search."""
    return solve_fractional(tci, backend=backend, need_vertex=False).is_optimal
