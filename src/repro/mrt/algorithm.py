"""The FS-MRT solver (Theorem 3): binary search + LP rounding.

``solve_mrt`` finds the smallest response bound ρ* for which LP (19)–(21)
of the induced Time-Constrained instance is feasible, then rounds that
LP solution to an integral schedule.  Because the LP is a relaxation,
ρ* lower-bounds the optimal maximum response time of *any* schedule; the
rounded schedule achieves max response ≤ ρ* using at most ``2·d_max − 1``
additive capacity — which is exactly the paper's guarantee ("optimal
maximum response time, assuming the capacity of each port is increased by
at most 2 d_max − 1").  For unit demands this is tight by Theorem 2.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.greedy import greedy_earliest_fit
from repro.core.instance import Instance
from repro.core.metrics import max_response_time
from repro.core.schedule import Schedule
from repro.lp.bounds import LPBoundOracle
from repro.mrt.rounding import RoundingResult, round_time_constrained
from repro.mrt.time_constrained import (
    TimeConstrainedInstance,
    from_response_bound,
)


@dataclass(frozen=True)
class MRTResult:
    """Result of :func:`solve_mrt`.

    Attributes
    ----------
    rho:
        The certified optimal (fractional) maximum response time ρ*;
        a lower bound on every schedule's max response.
    schedule:
        Integral schedule with max response ≤ ρ*.
    max_violation:
        Additive capacity excess used (``<= 2 d_max - 1`` by Theorem 3).
    lp_solves / rounding_iterations / fallback_drops:
        Work counters for benchmarking and diagnostics.
    """

    rho: int
    schedule: Schedule
    max_violation: int
    lp_solves: int
    rounding_iterations: int
    fallback_drops: int


def solve_mrt(
    instance: Instance,
    backend: str = "auto",
    rho_upper: Optional[int] = None,
) -> MRTResult:
    """Solve FS-MRT per Theorem 3.

    Parameters
    ----------
    instance:
        The FS-MRT instance.
    backend:
        LP backend (see :func:`repro.lp.solver.solve_lp`).
    rho_upper:
        Optional known-feasible upper bound on ρ; defaults to the greedy
        earliest-fit schedule's max response (always feasible, so the
        search window ``[1, rho_upper]`` is valid).

    Returns
    -------
    MRTResult
    """
    if instance.num_flows == 0:
        import numpy as np

        empty = Schedule(instance, np.zeros(0, dtype=np.int64))
        return MRTResult(0, empty, 0, 0, 0, 0)

    if rho_upper is None:
        greedy = greedy_earliest_fit(instance)
        rho_upper = max_response_time(greedy)

    # The oracle builds LP (19)-(21) once at rho_upper; each search step
    # only toggles the rho-dependent variable bounds before solving.
    oracle = LPBoundOracle(instance, backend=backend, rho_cap=rho_upper)
    rho = oracle.lower_bound()
    lp_solves = oracle.solves

    rounding = round_time_constrained(
        from_response_bound(instance, rho), backend=backend
    )
    lp_solves += rounding.iterations
    if not rounding.feasible or rounding.schedule is None:
        # rho_upper is feasible by construction, so this cannot happen
        # unless the caller passed an infeasible rho_upper.
        raise RuntimeError(
            f"LP infeasible at rho={rho} despite feasible upper bound "
            f"{rho_upper}; was rho_upper valid?"
        )
    return MRTResult(
        rho=rho,
        schedule=rounding.schedule,
        max_violation=rounding.max_violation,
        lp_solves=lp_solves,
        rounding_iterations=rounding.iterations,
        fallback_drops=rounding.fallback_drops,
    )


def schedule_time_constrained(
    tci: TimeConstrainedInstance, backend: str = "auto"
) -> RoundingResult:
    """Solve the general Time-Constrained problem (includes deadlines).

    Either determines that no schedule exists (LP infeasible ⇒ the
    instance is infeasible even fractionally) or produces a schedule
    whose port loads exceed capacities by at most ``2·d_max − 1``
    (Theorem 3 verbatim, including the Remark 4.2 deadline model).
    """
    return round_time_constrained(tci, backend=backend)


def fractional_mrt_lower_bound(
    instance: Instance,
    backend: str = "auto",
    rho_upper: Optional[int] = None,
) -> int:
    """Just the binary-searched LP lower bound ρ* (Figure 7 baseline).

    Delegates to :class:`repro.lp.bounds.LPBoundOracle`: the LP is built
    once and only its ρ-dependent bounds change across the search, which
    returns the same ρ* as the legacy rebuild-per-step loop.  Callers
    that want in-process memoisation across repeated queries should use
    :func:`repro.lp.bounds.mrt_lower_bound` instead.
    """
    if instance.num_flows == 0:
        return 0
    oracle = LPBoundOracle(instance, backend=backend, rho_cap=rho_upper)
    return oracle.lower_bound()
