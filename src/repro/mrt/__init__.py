"""Maximum response time (FS-MRT) — Section 4 of the paper.

* :mod:`repro.mrt.time_constrained` — the Time-Constrained Flow
  Scheduling generalization (per-flow active-round sets ``R(e)``) and the
  reductions from FS-MRT and from the release/deadline model;
* :mod:`repro.mrt.lp_relaxation` — LP (19)–(21);
* :mod:`repro.mrt.rounding` — iterative-relaxation rounding realizing the
  Karp et al. bound of Lemma 4.3 (additive violation ``<= 2 d_max - 1``);
* :mod:`repro.mrt.algorithm` — the binary-search FS-MRT solver
  (Theorem 3);
* :mod:`repro.mrt.hardness` — the Restricted Timetable reduction of
  Theorem 2 (4/3-inapproximability).
"""

from repro.mrt.time_constrained import (
    TimeConstrainedInstance,
    from_deadlines,
    from_response_bound,
)
from repro.mrt.lp_relaxation import build_time_constrained_lp, solve_fractional
from repro.mrt.rounding import RoundingResult, round_time_constrained
from repro.mrt.algorithm import MRTResult, schedule_time_constrained, solve_mrt
from repro.mrt.hardness import RTTInstance, reduce_rtt_to_fsmrt, solve_rtt_bruteforce

__all__ = [
    "TimeConstrainedInstance",
    "from_response_bound",
    "from_deadlines",
    "build_time_constrained_lp",
    "solve_fractional",
    "round_time_constrained",
    "RoundingResult",
    "solve_mrt",
    "schedule_time_constrained",
    "MRTResult",
    "RTTInstance",
    "reduce_rtt_to_fsmrt",
    "solve_rtt_bruteforce",
]
