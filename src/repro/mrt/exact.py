"""Exact (exponential-time) solvers for small instances.

Used by the test suite and the hardness demos to certify optimal values
that the polynomial algorithms and LP bounds are compared against.  All
functions are backtracking searches and are only suitable for instances
with, say, ``n <= 12`` flows and small windows.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.core.greedy import greedy_earliest_fit
from repro.core.instance import Instance
from repro.core.metrics import max_response_time, total_response_time
from repro.core.schedule import Schedule
from repro.mrt.time_constrained import TimeConstrainedInstance, from_response_bound


def exact_time_constrained_schedule(
    tci: TimeConstrainedInstance,
) -> Optional[Schedule]:
    """Backtracking search for an *integral* time-constrained schedule.

    Returns a valid schedule (no capacity augmentation) or ``None`` when
    none exists.  This decides the feasibility question exactly, unlike
    the LP which is a relaxation.
    """
    inst = tci.instance
    n = inst.num_flows
    if n == 0:
        return Schedule(inst, np.zeros(0, dtype=np.int64))

    # Order flows by fewest options first (fail-fast heuristic).
    order = sorted(range(n), key=lambda fid: len(tci.active_rounds[fid]))
    in_res: Dict[tuple[int, int], int] = {}
    out_res: Dict[tuple[int, int], int] = {}
    assignment = np.full(n, -1, dtype=np.int64)

    def residual_in(p: int, t: int) -> int:
        return in_res.get((p, t), inst.switch.input_capacity(p))

    def residual_out(q: int, t: int) -> int:
        return out_res.get((q, t), inst.switch.output_capacity(q))

    def backtrack(idx: int) -> bool:
        if idx == n:
            return True
        fid = order[idx]
        flow = inst.flows[fid]
        for t in tci.active_rounds[fid]:
            if residual_in(flow.src, t) < flow.demand:
                continue
            if residual_out(flow.dst, t) < flow.demand:
                continue
            in_res[(flow.src, t)] = residual_in(flow.src, t) - flow.demand
            out_res[(flow.dst, t)] = residual_out(flow.dst, t) - flow.demand
            assignment[fid] = t
            if backtrack(idx + 1):
                return True
            assignment[fid] = -1
            in_res[(flow.src, t)] += flow.demand
            out_res[(flow.dst, t)] += flow.demand
        return False

    return Schedule(inst, assignment.copy()) if backtrack(0) else None


def exact_min_max_response(instance: Instance) -> int:
    """Optimal FS-MRT value by trying ρ = 1, 2, ... exactly."""
    if instance.num_flows == 0:
        return 0
    upper = max_response_time(greedy_earliest_fit(instance))
    for rho in range(1, upper + 1):
        if exact_time_constrained_schedule(from_response_bound(instance, rho)):
            return rho
    return upper


def exact_min_total_response(instance: Instance) -> int:
    """Optimal FS-ART value (total response) by branch and bound.

    Explores flows in fid order, assigning each a round within a window
    bounded by the greedy schedule's value; prunes on partial cost.
    """
    n = instance.num_flows
    if n == 0:
        return 0
    greedy = greedy_earliest_fit(instance)
    best = [total_response_time(greedy)]
    # Any single flow never needs to wait past greedy's total bound.
    max_round = greedy.makespan() + 1

    flows = instance.flows
    in_res: Dict[tuple[int, int], int] = {}
    out_res: Dict[tuple[int, int], int] = {}

    def residual_in(p: int, t: int) -> int:
        return in_res.get((p, t), instance.switch.input_capacity(p))

    def residual_out(q: int, t: int) -> int:
        return out_res.get((q, t), instance.switch.output_capacity(q))

    def backtrack(idx: int, cost: int) -> None:
        if cost >= best[0]:
            return
        if idx == n:
            best[0] = cost
            return
        flow = flows[idx]
        # Remaining flows each cost at least 1: admissible lower bound.
        remaining = n - idx - 1
        for t in range(flow.release, max_round):
            step = cost + (t + 1 - flow.release)
            if step + remaining >= best[0]:
                break  # rounds only get worse from here
            if residual_in(flow.src, t) < flow.demand:
                continue
            if residual_out(flow.dst, t) < flow.demand:
                continue
            in_res[(flow.src, t)] = residual_in(flow.src, t) - flow.demand
            out_res[(flow.dst, t)] = residual_out(flow.dst, t) - flow.demand
            backtrack(idx + 1, step)
            in_res[(flow.src, t)] += flow.demand
            out_res[(flow.dst, t)] += flow.demand

    backtrack(0, 0)
    return best[0]
