"""Time-Constrained Flow Scheduling (Section 4.2).

The generalization the paper actually solves: each flow ``e`` has a set of
*active rounds* ``R(e)`` (possibly non-contiguous) and must be scheduled
in some ``t in R(e)``.  Two reductions produce such instances:

* **FS-MRT with response bound ρ** — ``R(e) = {t : r_e <= t < r_e + ρ}``
  (the paper's reduction preceding Theorem 3);
* **release + deadline model** (Remark 4.2) — ``R(e) = [r_e, deadline_e]``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.core.instance import Instance
from repro.utils.validation import check_positive_int


@dataclass(frozen=True)
class TimeConstrainedInstance:
    """An instance plus per-flow active-round sets.

    Attributes
    ----------
    instance:
        The underlying switch + flows (release times are *not* consulted
        by the LP — the active sets are authoritative; the reduction
        builders derive them from releases).
    active_rounds:
        ``active_rounds[fid]`` is a sorted tuple of rounds in which flow
        ``fid`` may be scheduled.
    """

    instance: Instance
    active_rounds: tuple[tuple[int, ...], ...] = field(repr=False)

    def __post_init__(self) -> None:
        if len(self.active_rounds) != self.instance.num_flows:
            raise ValueError(
                f"need one active set per flow: {len(self.active_rounds)} "
                f"sets for {self.instance.num_flows} flows"
            )
        for fid, rounds in enumerate(self.active_rounds):
            if not rounds:
                raise ValueError(f"flow {fid} has an empty active set")
            if any(t < 0 for t in rounds):
                raise ValueError(f"flow {fid} has a negative active round")
            if tuple(sorted(set(rounds))) != rounds:
                raise ValueError(
                    f"flow {fid} active set must be sorted and duplicate-free"
                )

    @property
    def all_rounds(self) -> tuple[int, ...]:
        """The paper's ``T``: the union of all active sets, sorted."""
        rounds: set[int] = set()
        for rs in self.active_rounds:
            rounds.update(rs)
        return tuple(sorted(rounds))

    def respects_releases(self) -> bool:
        """Whether every active round is at or after the flow's release."""
        return all(
            rounds[0] >= flow.release
            for flow, rounds in zip(self.instance.flows, self.active_rounds)
        )


def from_response_bound(instance: Instance, rho: int) -> TimeConstrainedInstance:
    """Reduction FS-MRT → Time-Constrained: ``R(e) = [r_e, r_e + ρ)``.

    A schedule of the result has maximum response time at most ρ, and
    conversely any FS-MRT schedule with max response ≤ ρ schedules every
    flow inside its window.
    """
    rho = check_positive_int(rho, "rho")
    active = tuple(
        tuple(range(f.release, f.release + rho)) for f in instance.flows
    )
    return TimeConstrainedInstance(instance, active)


def from_deadlines(
    instance: Instance, deadlines: Sequence[int]
) -> TimeConstrainedInstance:
    """Release/deadline model (Remark 4.2): ``R(e) = [r_e, deadline_e]``.

    ``deadlines[fid]`` is the *last* admissible round of flow ``fid``
    (inclusive), mirroring the paper's ``r_e <= t <= d_e``.
    """
    if len(deadlines) != instance.num_flows:
        raise ValueError("need one deadline per flow")
    active = []
    for flow, deadline in zip(instance.flows, deadlines):
        if deadline < flow.release:
            raise ValueError(
                f"flow {flow.fid}: deadline {deadline} precedes release "
                f"{flow.release}"
            )
        active.append(tuple(range(flow.release, deadline + 1)))
    return TimeConstrainedInstance(instance, tuple(active))
