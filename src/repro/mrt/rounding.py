"""Rounding the Time-Constrained LP (Theorem 3 / Lemma 4.3).

The paper rounds an LP solution with the Karp–Leighton–Rivest–Thompson–
Vazirani–Vazirani rounding theorem: because every column of the
constraint matrix has positive-coefficient sum at most ``Δ = 2·d_max``
(each variable ``x_{e,t}`` appears in exactly two capacity rows with
coefficient ``d_e``), an integral solution exists whose capacity rows are
violated by strictly less than ``2·d_max`` — i.e. at most ``2·d_max − 1``
for integer data — while the assignment rows are met exactly.

We realize the bound constructively with **iterative LP relaxation**
(Lau–Ravi–Singh style), which for this matrix yields the same guarantee:

1. solve the residual LP to an optimal *vertex*;
2. permanently fix every integral variable (assign flows, debit residual
   capacities) and delete zero variables;
3. *drop* any capacity row that can no longer be violated by more than
   ``2·d_max − 1`` even if all its surviving variables round to 1;
4. repeat until every flow is assigned.

Step 3's drop criterion is exactly what makes the final bound
unconditional: a row is only ever deleted when its worst case respects
``c_p + 2·d_max − 1``.  A defensive fallback (drop the row closest to
droppable) guarantees termination under floating-point degeneracy; it is
counted in :class:`RoundingResult.fallback_drops` and the final violation
is measured and returned, so callers (and the property tests) can verify
the theorem's bound held.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

import numpy as np

from repro.core.schedule import Schedule
from repro.lp.model import LinearProgram, Sense
from repro.lp.solver import solve_lp
from repro.mrt.time_constrained import TimeConstrainedInstance

_TOL = 1e-7

PortRound = Tuple[str, int, int]  # (side, port, t)


@dataclass(frozen=True)
class RoundingResult:
    """Outcome of :func:`round_time_constrained`.

    Attributes
    ----------
    schedule:
        Integral schedule (every flow inside its active set), or ``None``
        when the LP was infeasible.
    feasible:
        Whether the fractional LP was feasible.
    max_violation:
        ``max over (port, round) of load - c_p`` (0 when none);
        Theorem 3 guarantees ``<= 2 d_max - 1``.
    iterations:
        Number of LP solves performed.
    fallback_drops:
        Times the defensive fallback fired (expected 0).
    """

    schedule: Optional[Schedule]
    feasible: bool
    max_violation: int = 0
    iterations: int = 0
    fallback_drops: int = 0


def round_time_constrained(
    tci: TimeConstrainedInstance,
    backend: str = "auto",
    timer=None,
) -> RoundingResult:
    """Round LP (19)–(21) to an integral schedule per Theorem 3.

    ``timer`` (an optional :class:`repro.utils.timing.Timer`) receives a
    ``rounding_lp`` event per residual-LP solve, so callers (AMRT, the
    FS-MRT adapter) can report where the wall-clock goes.
    """
    inst = tci.instance
    n = inst.num_flows
    if n == 0:
        return RoundingResult(
            Schedule(inst, np.zeros(0, dtype=np.int64)), True
        )
    d_max = inst.max_demand
    slack_budget = 2 * d_max - 1

    # Mutable rounding state.
    candidates: List[List[int]] = [list(rs) for rs in tci.active_rounds]
    assigned = np.full(n, -1, dtype=np.int64)
    # Residual capacity per *active* capacity row; dropping a row removes
    # it from this dict (it is then unconstrained).
    residual: Dict[PortRound, float] = {}
    row_vars: Dict[PortRound, Set[Tuple[int, int]]] = {}
    for fid, rounds in enumerate(tci.active_rounds):
        flow = inst.flows[fid]
        for t in rounds:
            for key in (("in", flow.src, t), ("out", flow.dst, t)):
                if key not in residual:
                    side, port, _ = key
                    cap = (
                        inst.switch.input_capacity(port)
                        if side == "in"
                        else inst.switch.output_capacity(port)
                    )
                    residual[key] = float(cap)
                    row_vars[key] = set()
                row_vars[key].add((fid, t))

    iterations = 0
    fallback_drops = 0

    def row_keys_of(fid: int, t: int) -> tuple[PortRound, PortRound]:
        flow = inst.flows[fid]
        return ("in", flow.src, t), ("out", flow.dst, t)

    def remove_var(fid: int, t: int) -> None:
        """Delete variable (fid, t) from candidates and row indexes."""
        candidates[fid].remove(t)
        for key in row_keys_of(fid, t):
            if key in row_vars:
                row_vars[key].discard((fid, t))

    def fix_flow(fid: int, t: int) -> None:
        """Permanently assign flow ``fid`` to round ``t``."""
        demand = inst.flows[fid].demand
        assigned[fid] = t
        for other_t in list(candidates[fid]):
            remove_var(fid, other_t)
        for key in row_keys_of(fid, t):
            if key in residual:
                residual[key] -= demand
                # Numerical guard: residuals are integers in exact
                # arithmetic; clamp tiny negatives.
                if -_TOL < residual[key] < 0:
                    residual[key] = 0.0

    def droppable(key: PortRound) -> bool:
        """Row can never exceed original capacity by more than budget."""
        surviving = sum(inst.flows[fid].demand for fid, _ in row_vars[key])
        return surviving <= residual[key] + slack_budget + _TOL

    def sweep_drops() -> int:
        dropped = 0
        for key in [k for k in residual if droppable(k)]:
            del residual[key]
            del row_vars[key]
            dropped += 1
        return dropped

    # NOTE: no constraint may be dropped before the first LP solve — the
    # first solve must decide feasibility of the *full* LP (19)-(21)
    # (Theorem 3's "either determine that there is no schedule or ...").
    # Likewise, flows with a single active round are NOT short-circuited:
    # the LP fixes their variable to 1 anyway, and bypassing it would
    # skip the feasibility check.

    while (assigned < 0).any():
        unfixed = np.flatnonzero(assigned < 0)

        # Build the residual LP.
        lp = LinearProgram()
        for fid in unfixed:
            coeffs = {}
            for t in candidates[fid]:
                lp.add_variable(("x", int(fid), t))
                coeffs[("x", int(fid), t)] = 1.0
            lp.add_constraint(("assign", int(fid)), coeffs, Sense.EQ, 1.0)
        for key in list(residual):
            coeffs = {
                ("x", fid, t): float(inst.flows[fid].demand)
                for fid, t in row_vars[key]
                if assigned[fid] < 0
            }
            if coeffs:
                lp.add_constraint(key, coeffs, Sense.LE, residual[key])

        if timer is not None:
            with timer.measure("rounding_lp"):
                result = solve_lp(lp, backend=backend, need_vertex=True)
        else:
            result = solve_lp(lp, backend=backend, need_vertex=True)
        iterations += 1
        if not result.is_optimal:
            if iterations == 1:
                return RoundingResult(None, False, iterations=iterations)
            raise RuntimeError(
                "residual LP became infeasible mid-rounding; this "
                "contradicts the relaxation invariant"
            )
        values = lp.solution_by_name(result.x)

        progressed = False
        for fid in unfixed:
            fid = int(fid)
            xs = [(t, values[("x", fid, t)]) for t in candidates[fid]]
            one_t = next((t for t, v in xs if v >= 1 - _TOL), None)
            if one_t is not None:
                fix_flow(fid, one_t)
                progressed = True
                continue
            for t, v in xs:
                if v <= _TOL:
                    remove_var(fid, t)
                    progressed = True

        if sweep_drops():
            progressed = True

        if not progressed:
            # Defensive fallback: drop the active row closest to droppable.
            fallback_drops += 1
            key = min(
                residual,
                key=lambda k: sum(
                    inst.flows[fid].demand for fid, _ in row_vars[k]
                )
                - residual[k],
            )
            del residual[key]
            del row_vars[key]

    schedule = Schedule(inst, assigned)
    return RoundingResult(
        schedule,
        True,
        max_violation=schedule.max_augmentation(),
        iterations=iterations,
        fallback_drops=fallback_drops,
    )
