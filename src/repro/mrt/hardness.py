"""Theorem 2: NP-hardness of FS-MRT via Restricted Timetable.

Implements the paper's reduction from the Restricted Timetable problem
(RTT, Even–Itai–Shamir 1976) to the feasibility version of FS-MRT with
response bound ρ = 3, which proves that no polynomial algorithm can
approximate FS-MRT within a factor better than 4/3 unless P = NP.

RTT (Definition 4.1): hours ``H = {1, 2, 3}``; teacher ``i ∈ [m]`` is
available in hours ``T_i ⊆ H`` with ``|T_i| >= 2`` and must teach the
class set ``g(i) ⊆ [m']`` with ``|g(i)| = |T_i|``, one class per hour,
each class busy with at most one teacher per hour, and (the constraint
the gadgets enforce) only during the teacher's available hours.

The reduction (proof of Theorem 2, steps 1–5) creates:

1. a "real" flow ``p_i → q_j`` for every ``j ∈ g(i)``;
2. released at round ``min T_i``;
3. per output ``q_j``: three blocker inputs whose flows (released round
   4) saturate ``q_j`` in rounds 4–6, confining real flows to rounds 1–3;
4. per teacher with ``T_i = {1, 3}``: a gadget output ``q*_i``, a dashed
   flow ``p_i → q*_i`` released round 2, and three dotted blockers
   released round 3 that force the dashed flow into round 2 — blocking
   ``p_i`` exactly in round 2 (Figure 3);
5. per teacher with ``T_i = {1, 2}``: the same gadget shifted one round,
   blocking ``p_i`` in round 3.

Rounds here are 0-indexed (paper round ``h`` ↔ library round ``h - 1``);
response bound ρ = 3 means a flow released at round ``r`` must run in
``{r, r+1, r+2}``.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Tuple

from repro.core.flow import Flow
from repro.core.instance import Instance
from repro.core.switch import Switch

HOURS: Tuple[int, ...] = (1, 2, 3)

#: The response bound the reduction targets (paper: ρ = 3).
REDUCTION_RHO = 3


@dataclass(frozen=True)
class RTTInstance:
    """A Restricted Timetable instance.

    Attributes
    ----------
    availability:
        ``availability[i] = T_i`` — frozen set of hours (subset of
        ``{1,2,3}``, size >= 2) in which teacher ``i`` is available.
    classes:
        ``classes[i] = g(i)`` — tuple of class indices taught by teacher
        ``i``; must satisfy ``len(g(i)) == len(T_i)``.
    num_classes:
        ``m'`` — class indices run in ``[0, m')``.
    """

    availability: Tuple[FrozenSet[int], ...]
    classes: Tuple[Tuple[int, ...], ...]
    num_classes: int

    def __post_init__(self) -> None:
        if len(self.availability) != len(self.classes):
            raise ValueError("availability and classes must align")
        for i, (hours, cls) in enumerate(zip(self.availability, self.classes)):
            if not hours <= set(HOURS):
                raise ValueError(f"teacher {i}: hours {hours} not within {HOURS}")
            if len(hours) < 2:
                raise ValueError(f"teacher {i}: |T_i| must be >= 2")
            if len(cls) != len(hours):
                raise ValueError(
                    f"teacher {i}: |g(i)|={len(cls)} != |T_i|={len(hours)}"
                )
            if len(set(cls)) != len(cls):
                raise ValueError(f"teacher {i}: duplicate classes in g(i)")
            if any(not 0 <= j < self.num_classes for j in cls):
                raise ValueError(f"teacher {i}: class index out of range")

    @property
    def num_teachers(self) -> int:
        """``m``."""
        return len(self.availability)


def solve_rtt_bruteforce(rtt: RTTInstance) -> Optional[Dict[Tuple[int, int], int]]:
    """Exact RTT solver by backtracking (small instances only).

    Returns ``{(teacher, class): hour}`` covering every required pair, or
    ``None`` when the instance is infeasible.  A valid timetable assigns
    each pair ``(i, j ∈ g(i))`` an hour ``h ∈ T_i`` such that teacher
    hours are distinct and no class hosts two teachers in one hour.
    """
    pairs: List[Tuple[int, int]] = [
        (i, j) for i in range(rtt.num_teachers) for j in rtt.classes[i]
    ]
    teacher_busy: Dict[Tuple[int, int], bool] = {}
    class_busy: Dict[Tuple[int, int], bool] = {}
    assignment: Dict[Tuple[int, int], int] = {}

    def backtrack(idx: int) -> bool:
        if idx == len(pairs):
            return True
        i, j = pairs[idx]
        for h in sorted(rtt.availability[i]):
            if teacher_busy.get((i, h)) or class_busy.get((j, h)):
                continue
            teacher_busy[(i, h)] = True
            class_busy[(j, h)] = True
            assignment[(i, j)] = h
            if backtrack(idx + 1):
                return True
            del assignment[(i, j)]
            teacher_busy[(i, h)] = False
            class_busy[(j, h)] = False
        return False

    return dict(assignment) if backtrack(0) else None


@dataclass(frozen=True)
class ReductionArtifacts:
    """Bookkeeping of :func:`reduce_rtt_to_fsmrt` for decoding/testing.

    ``real_flow[(i, j)]`` is the fid of the step-1 flow for teacher ``i``
    and class ``j``; ``rho`` is the feasibility threshold (always 3).
    """

    instance: Instance
    rho: int
    real_flow: Dict[Tuple[int, int], int]


def reduce_rtt_to_fsmrt(rtt: RTTInstance) -> ReductionArtifacts:
    """Build the FS-MRT instance of Theorem 2 from an RTT instance.

    The returned instance admits a schedule with maximum response time
    ≤ 3 **iff** the RTT instance is feasible.
    """
    m, mp = rtt.num_teachers, rtt.num_classes

    # Port layout.  Inputs: p_0..p_{m-1}, then blocker inputs (3 per real
    # output, 3 per gadget).  Outputs: q_0..q_{mp-1}, then gadget outputs.
    input_ports: List[str] = [f"p{i}" for i in range(m)]
    output_ports: List[str] = [f"q{j}" for j in range(mp)]

    def new_input(tag: str) -> int:
        input_ports.append(tag)
        return len(input_ports) - 1

    def new_output(tag: str) -> int:
        output_ports.append(tag)
        return len(output_ports) - 1

    flows: List[Flow] = []
    real_flow: Dict[Tuple[int, int], int] = {}

    def add_flow(src: int, dst: int, release_paper_round: int) -> int:
        flows.append(Flow(src, dst, demand=1, release=release_paper_round - 1))
        return len(flows) - 1

    # Steps 1-2: real flows, released at min T_i (paper rounds).
    for i in range(m):
        h_min = min(rtt.availability[i])
        for j in rtt.classes[i]:
            real_flow[(i, j)] = add_flow(i, j, h_min)

    # Step 3: saturate every real output q_j in paper rounds 4-6.
    for j in range(mp):
        for tag in ("w", "y", "z"):
            blocker = new_input(f"{tag}^out{j}")
            add_flow(blocker, j, 4)

    # Steps 4-5: per-teacher gadgets for T_i = {1,3} and T_i = {1,2}.
    for i in range(m):
        hours = rtt.availability[i]
        if hours == frozenset({1, 3}):
            dash_release, dot_release = 2, 3
        elif hours == frozenset({1, 2}):
            dash_release, dot_release = 3, 4
        else:
            continue  # {2,3} and {1,2,3} need no gadget (see module doc)
        q_star = new_output(f"q*{i}")
        add_flow(i, q_star, dash_release)
        for tag in ("w", "y", "z"):
            blocker = new_input(f"{tag}^t{i}")
            add_flow(blocker, q_star, dot_release)

    switch = Switch.create(len(input_ports), len(output_ports), 1, 1)
    instance = Instance.create(switch, flows)
    return ReductionArtifacts(instance, REDUCTION_RHO, real_flow)


def decode_schedule_to_timetable(
    artifacts: ReductionArtifacts, assignment: Dict[int, int]
) -> Dict[Tuple[int, int], int]:
    """Extract the RTT timetable from an FS-MRT schedule.

    ``assignment`` maps fid → round (0-indexed); real flows scheduled in
    library round ``t`` teach in paper hour ``t + 1``.
    """
    return {
        (i, j): assignment[fid] + 1
        for (i, j), fid in artifacts.real_flow.items()
    }


def verify_timetable(
    rtt: RTTInstance, timetable: Dict[Tuple[int, int], int]
) -> bool:
    """Check RTT conditions (iv)-(vii) for a candidate timetable."""
    required = {(i, j) for i in range(rtt.num_teachers) for j in rtt.classes[i]}
    if set(timetable) != required:
        return False
    teacher_hours: Dict[Tuple[int, int], int] = {}
    class_hours: Dict[Tuple[int, int], int] = {}
    for (i, j), h in timetable.items():
        if h not in rtt.availability[i]:
            return False
        if (i, h) in teacher_hours or (j, h) in class_hours:
            return False
        teacher_hours[(i, h)] = j
        class_hours[(j, h)] = i
    return True


def enumerate_small_rtt_instances(
    num_teachers: int, num_classes: int
) -> List[RTTInstance]:
    """Every RTT instance of the given size (testing helper; tiny sizes).

    Enumerates all availability patterns and class assignments; intended
    for exhaustive soundness/completeness checks of the reduction.
    """
    avail_options = [
        frozenset(s)
        for r in (2, 3)
        for s in itertools.combinations(HOURS, r)
    ]
    instances: List[RTTInstance] = []
    for avail in itertools.product(avail_options, repeat=num_teachers):
        class_options_per_teacher = [
            list(itertools.permutations(range(num_classes), len(a)))
            for a in avail
        ]
        for classes in itertools.product(*class_options_per_teacher):
            instances.append(
                RTTInstance(tuple(avail), tuple(classes), num_classes)
            )
    return instances
