"""Empirical probe of the paper's Section 6 open question.

The paper asks (Open Problems, "Improved approximation ratios"):

    Given unit flow requests arriving as bipartite graphs
    ``G_1, ..., G_T`` such that for any interval ``I`` and any port
    ``v``, the sum over ``i in I`` of ``deg_{G_i}(v)`` is at most
    ``|I| + 1`` — i.e. everything is schedulable with response 1 under
    a "+1" capacity augmentation — can every request be satisfied with
    a *constant* response time **without** any augmentation?

This module generates random sequences satisfying the degree condition
and computes the exact optimal unaugmented maximum response time with
the library's FS-MRT machinery, recording the largest constant observed.
A counterexample (growing optimal response) would refute the conjecture;
persistent small constants are (weak) evidence for it.  This is an
extension artifact — the paper poses the question but has no experiment
for it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.core.flow import Flow
from repro.core.instance import Instance
from repro.core.switch import Switch
from repro.mrt.algorithm import fractional_mrt_lower_bound
from repro.mrt.exact import exact_time_constrained_schedule
from repro.mrt.time_constrained import from_response_bound
from repro.utils.rng import SeedLike, make_rng


@dataclass(frozen=True)
class DegreeBoundedSequence:
    """A request sequence ``G_1..G_T`` obeying the interval degree bound.

    ``instance`` packages the union of requests (flow released at round
    ``i`` for each edge of ``G_i``); ``verified`` confirms the
    ``sum_{i in I} deg(v) <= |I| + 1`` condition was checked.
    """

    instance: Instance
    num_rounds: int
    verified: bool


def _interval_degree_ok(deg_per_round: np.ndarray) -> bool:
    """Check ``max over intervals I of (sum deg - |I|) <= 1`` per port.

    Equivalent to a max-subarray bound on ``deg - 1`` per port row.
    """
    excess = deg_per_round.astype(np.float64) - 1.0
    for row in excess:
        best = -np.inf
        running = 0.0
        for v in row:
            running = max(v, running + v)
            best = max(best, running)
        if best > 1.0 + 1e-9:
            return False
    return True


def random_degree_bounded_sequence(
    num_ports: int,
    num_rounds: int,
    seed: SeedLike = None,
    fill: float = 0.9,
) -> DegreeBoundedSequence:
    """Generate a random sequence satisfying the interval degree bound.

    Strategy: maintain per-port *credit* (how much degree an interval
    ending now may still absorb).  Each round, propose random edges and
    accept one only while both endpoints have credit; one port per
    sequence receives its "+1" bonus edge at a random round, which is
    what makes the question non-trivial.

    Parameters
    ----------
    fill:
        Target fraction of the per-round degree budget to use (higher =
        more adversarial).
    """
    rng = make_rng(seed)
    m = num_ports
    flows: List[Flow] = []
    # deg[side][port][round]
    deg_in = np.zeros((m, num_rounds), dtype=np.int64)
    deg_out = np.zeros((m, num_rounds), dtype=np.int64)

    def credit(deg_row: np.ndarray, t: int) -> int:
        """Max extra degree port may take at round t without violating
        any interval ending at t (suffix-max of running excess)."""
        run = 0.0
        worst = 0.0
        for i in range(t - 1, -1, -1):
            run += deg_row[i] - 1.0
            worst = max(worst, run)
        return int(1 + 1 - worst - deg_row[t])  # bound |I|+1 => excess <= 1

    for t in range(num_rounds):
        attempts = int(m * fill) + 1
        for _ in range(attempts):
            u = int(rng.integers(0, m))
            v = int(rng.integers(0, m))
            if credit(deg_in[u], t) >= 1 and credit(deg_out[v], t) >= 1:
                deg_in[u, t] += 1
                deg_out[v, t] += 1
                flows.append(Flow(u, v, 1, t))

    instance = Instance.create(Switch.create(m), flows)
    verified = _interval_degree_ok(deg_in) and _interval_degree_ok(deg_out)
    return DegreeBoundedSequence(instance, num_rounds, verified)


def probe_open_problem(
    num_ports: int = 4,
    num_rounds: int = 6,
    trials: int = 10,
    seed: int = 0,
    exact_flow_limit: int = 14,
) -> Tuple[int, List[int]]:
    """Measure optimal unaugmented max response over random sequences.

    Returns ``(worst, values)`` — the largest optimal response time seen
    and the per-trial values.  Uses the exact backtracking solver when
    the instance is small enough, else the LP lower bound (which still
    refutes constants if it grows).
    """
    values: List[int] = []
    for trial in range(trials):
        seq = random_degree_bounded_sequence(
            num_ports, num_rounds, seed=seed + trial
        )
        if not seq.verified:  # pragma: no cover - generator guarantees
            continue
        inst = seq.instance
        if inst.num_flows == 0:
            values.append(0)
            continue
        opt = _optimal_unaugmented_response(inst, exact_flow_limit)
        values.append(opt)
    return (max(values) if values else 0), values


def _optimal_unaugmented_response(
    instance: Instance, exact_flow_limit: int
) -> int:
    if instance.num_flows <= exact_flow_limit:
        rho = 1
        while True:
            sched = exact_time_constrained_schedule(
                from_response_bound(instance, rho)
            )
            if sched is not None:
                return rho
            rho += 1
    return fractional_mrt_lower_bound(instance)
