"""Empirical analyses beyond the paper's evaluation.

* :mod:`repro.analysis.open_problem` — an experimental probe of the
  Section 6 open question on scheduling degree-bounded graph sequences
  without resource augmentation;
* :mod:`repro.analysis.stability` — queueing-stability diagnostics for
  the online policies (sub/critical/super-critical load regimes).
"""

from repro.analysis.open_problem import (
    DegreeBoundedSequence,
    probe_open_problem,
    random_degree_bounded_sequence,
)
from repro.analysis.stability import StabilityReport, stability_report

__all__ = [
    "DegreeBoundedSequence",
    "random_degree_bounded_sequence",
    "probe_open_problem",
    "stability_report",
    "StabilityReport",
]
