"""Queueing-stability diagnostics for the online policies.

The paper's Figures 6–7 sweep per-port loads from 1/3 to 4; the load-1
boundary separates regimes where queues stay bounded from regimes where
backlog (and hence response time) grows linearly with the generation
length T.  This module quantifies that transition — useful context when
reading the figure panels, and a scientific control for new policies.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.instance import Instance
from repro.online.policies import OnlinePolicy
from repro.online.simulator import simulate


@dataclass(frozen=True)
class StabilityReport:
    """Backlog behaviour of one policy on one workload.

    Attributes
    ----------
    peak_queue:
        Largest waiting-flow count observed.
    final_drain_rounds:
        Rounds needed to clear the backlog after arrivals stop.
    queue_growth_rate:
        Least-squares slope of queue length during the arrival phase
        (≈ 0 in the stable regime, ≈ (load − 1)·m above saturation).
    avg_response / max_response:
        The schedule's response metrics.
    """

    policy: str
    peak_queue: int
    final_drain_rounds: int
    queue_growth_rate: float
    avg_response: float
    max_response: int


def stability_report(
    instance: Instance, policy: OnlinePolicy, arrival_rounds: int
) -> StabilityReport:
    """Simulate ``policy`` and summarize its queue dynamics.

    Parameters
    ----------
    arrival_rounds:
        The workload's generation length T (rounds with new arrivals);
        the growth-rate fit uses only this prefix.
    """
    result = simulate(instance, policy)
    history = result.queue_history.astype(np.float64)
    prefix = history[: max(2, min(arrival_rounds, history.size))]
    ts = np.arange(prefix.size, dtype=np.float64)
    # Least-squares slope of queue length over the arrival phase.
    slope = float(np.polyfit(ts, prefix, 1)[0]) if prefix.size >= 2 else 0.0
    return StabilityReport(
        policy=policy.name,
        peak_queue=int(history.max(initial=0)),
        final_drain_rounds=int(result.rounds - arrival_rounds)
        if result.rounds > arrival_rounds
        else 0,
        queue_growth_rate=slope,
        avg_response=result.metrics.average_response,
        max_response=result.metrics.max_response,
    )
