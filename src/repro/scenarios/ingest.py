"""External trace ingestion (CSV coflow-trace format).

Real datacenter traces (the Facebook-Hadoop coflow traces and their
descendants) are commonly distributed as per-flow CSV records.  This
module ingests the minimal common denominator::

    arrival_time,src,dst,bytes
    0.0,3,7,1048576
    0.25,1,7,524288
    ...

* ``arrival_time`` — nonnegative float, seconds (any consistent unit);
* ``src`` / ``dst`` — nonnegative integer port ids;
* ``bytes`` — positive flow size.

Quantization into the paper's round/demand model is explicit and
documented:

* **rounds**: ``release = floor(arrival_time / round_length)`` — a round
  models one scheduling window of ``round_length`` time units;
* **demand**: ``demand = max(1, ceil(bytes / bytes_per_unit))`` — one
  demand unit per ``bytes_per_unit`` bytes; ``bytes_per_unit=None``
  (default) maps every flow to unit demand (the paper's setting);
* **switch shape**: ``num_ports`` defaults to ``max(src, dst) + 1`` over
  the trace; ``capacity`` defaults to the largest quantized demand so
  the standing assumption ``d_e <= kappa_e`` always holds.

Malformed input raises :class:`~repro.workloads.trace.TraceFormatError`
naming the path, line, and offending field.  The resulting
:class:`~repro.scenarios.stream.ArrivalStream` is bounded (rounds =
last release + 1) and plugs into everything the synthetic scenarios do:
``simulate_stream``, ``materialize``, transforms, and sweeps.
"""

from __future__ import annotations

import csv
import io
import math
from pathlib import Path
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.switch import Switch
from repro.scenarios.stream import ArrivalStream, make_batch
from repro.utils.rng import make_rng
from repro.workloads.trace import TraceFormatError

#: Required CSV columns, in canonical order.
CSV_COLUMNS = ("arrival_time", "src", "dst", "bytes")

#: One parsed record: (arrival_time, src, dst, bytes).
TraceRow = Tuple[float, int, int, int]


def _parse_rows(lines, origin: str) -> List[TraceRow]:
    """Parse and validate CSV content; errors name ``origin`` and field."""
    reader = csv.reader(lines)
    try:
        header = next(reader)
    except StopIteration:
        raise TraceFormatError(f"{origin}: empty trace (missing header)")
    header = [col.strip().lower() for col in header]
    if header != list(CSV_COLUMNS):
        raise TraceFormatError(
            f"{origin}: bad header {header!r}; expected "
            f"{','.join(CSV_COLUMNS)}"
        )
    rows: List[TraceRow] = []
    for lineno, record in enumerate(reader, start=2):
        if not record or (len(record) == 1 and not record[0].strip()):
            continue
        if len(record) != len(CSV_COLUMNS):
            raise TraceFormatError(
                f"{origin}: line {lineno}: expected "
                f"{len(CSV_COLUMNS)} fields, got {len(record)}"
            )
        values = {}
        for field, raw in zip(CSV_COLUMNS, record):
            raw = raw.strip()
            try:
                if field == "arrival_time":
                    value = float(raw)
                    ok = math.isfinite(value) and value >= 0
                elif field == "bytes":
                    value = int(raw)
                    ok = value > 0
                else:
                    value = int(raw)
                    ok = value >= 0
            except ValueError:
                ok = False
                value = None
            if not ok:
                raise TraceFormatError(
                    f"{origin}: line {lineno}: bad value {raw!r} for "
                    f"field '{field}'"
                )
            values[field] = value
        rows.append((values["arrival_time"], values["src"],
                     values["dst"], values["bytes"]))
    return rows


def rows_to_stream(
    rows: Sequence[TraceRow],
    round_length: float = 1.0,
    bytes_per_unit: Optional[float] = None,
    num_ports: Optional[int] = None,
    capacity: Optional[int] = None,
    origin: str = "<rows>",
) -> ArrivalStream:
    """Quantize parsed trace rows into a bounded arrival stream.

    Rows are ordered by ``(release round, input order)``, so replaying
    the trace is deterministic regardless of the source file's ordering
    within a round.  See the module docstring for the quantization and
    shape defaults.
    """
    if round_length <= 0:
        raise ValueError(f"round_length must be > 0, got {round_length}")
    if bytes_per_unit is not None and bytes_per_unit <= 0:
        raise ValueError(f"bytes_per_unit must be > 0, got {bytes_per_unit}")
    if not rows:
        switch = Switch.create(num_ports or 1, None, capacity or 1)
        return ArrivalStream(switch, lambda: iter(()), 0, origin)

    releases = np.array(
        [int(r[0] // round_length) for r in rows], dtype=np.int64
    )
    srcs = np.array([r[1] for r in rows], dtype=np.int64)
    dsts = np.array([r[2] for r in rows], dtype=np.int64)
    if bytes_per_unit is None:
        demands = np.ones(len(rows), dtype=np.int64)
    else:
        demands = np.array(
            [max(1, math.ceil(r[3] / bytes_per_unit)) for r in rows],
            dtype=np.int64,
        )
    ports_seen = int(max(srcs.max(), dsts.max())) + 1
    if num_ports is None:
        num_ports = ports_seen
    elif ports_seen > num_ports:
        bad = int(np.flatnonzero((srcs >= num_ports) | (dsts >= num_ports))[0])
        raise TraceFormatError(
            f"{origin}: row {bad + 1}: port id out of range for "
            f"num_ports={num_ports} (src={int(srcs[bad])}, "
            f"dst={int(dsts[bad])})"
        )
    if capacity is None:
        capacity = int(demands.max())
    elif int(demands.max()) > capacity:
        bad = int(np.flatnonzero(demands > capacity)[0])
        raise TraceFormatError(
            f"{origin}: row {bad + 1}: quantized demand "
            f"{int(demands[bad])} exceeds capacity {capacity}; raise "
            "capacity or bytes_per_unit"
        )
    switch = Switch.create(num_ports, num_ports, capacity)

    # Stable sort by release keeps within-round input order.
    order = np.argsort(releases, kind="stable")
    releases, srcs = releases[order], srcs[order]
    dsts, demands = dsts[order], demands[order]
    rounds = int(releases.max()) + 1
    starts = np.searchsorted(releases, np.arange(rounds + 1))

    def factory():
        for t in range(rounds):
            lo, hi = int(starts[t]), int(starts[t + 1])
            yield (srcs[lo:hi], dsts[lo:hi], demands[lo:hi])

    return ArrivalStream(switch, factory, rounds, origin)


def load_csv_trace(
    path,
    round_length: float = 1.0,
    bytes_per_unit: Optional[float] = None,
    num_ports: Optional[int] = None,
    capacity: Optional[int] = None,
) -> ArrivalStream:
    """Ingest a CSV coflow trace file into an arrival stream."""
    path = Path(path)
    with open(path, "r", encoding="utf-8", newline="") as fh:
        rows = _parse_rows(fh, str(path))
    return rows_to_stream(
        rows,
        round_length=round_length,
        bytes_per_unit=bytes_per_unit,
        num_ports=num_ports,
        capacity=capacity,
        origin=str(path),
    )


def example_trace_rows(
    num_ports: int = 8, flows: int = 60, seed: int = 2020
) -> List[TraceRow]:
    """A small deterministic coflow-like trace (shuffle-ish bursts).

    Used as the built-in fallback of the ``trace-replay`` scenario (so
    it is runnable without any file on disk), by the examples, and by
    the trace-ingestion tests.
    """
    rng = make_rng(seed)
    rows: List[TraceRow] = []
    t = 0.0
    while len(rows) < flows:
        # A mini-coflow: one reducer pulls from a few mappers at once.
        reducer = int(rng.integers(0, num_ports))
        width = int(rng.integers(1, max(2, num_ports // 2)))
        mappers = rng.choice(num_ports, size=width, replace=False)
        for src in mappers.tolist():
            size = int(rng.integers(1, 9)) * 256 * 1024
            rows.append((round(t, 3), int(src), reducer, size))
        t += float(rng.random()) * 2.0
    return rows[:flows]


def write_example_trace(path, num_ports: int = 8, flows: int = 60,
                        seed: int = 2020) -> None:
    """Write :func:`example_trace_rows` as a CSV file at ``path``."""
    buf = io.StringIO()
    writer = csv.writer(buf)
    writer.writerow(CSV_COLUMNS)
    writer.writerows(example_trace_rows(num_ports, flows, seed))
    Path(path).write_text(buf.getvalue())
