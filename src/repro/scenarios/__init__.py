"""Declarative scenarios: specs, registry, streams, and trace ingestion.

The pieces (see each module's docstring for details):

* :class:`~repro.scenarios.spec.ScenarioSpec` /
  :func:`~repro.scenarios.spec.parse_scenario` — JSON-round-trippable,
  schema-versioned description of a workload (switch shape, arrival
  process, demand distribution, horizon);
* :func:`~repro.scenarios.registry.register_scenario` /
  :func:`~repro.scenarios.registry.build_stream` /
  :func:`~repro.scenarios.registry.build_instance` — decorator registry
  pre-loaded with the built-in library
  (:mod:`repro.scenarios.library`: paper-default, permutation, hotspot,
  incast, onoff-bursty, diurnal, heavy-tailed, trace-replay);
* :class:`~repro.scenarios.stream.ArrivalStream` — lazy per-round
  arrival batches with composition transforms (``thinned`` / ``scaled``
  / ``merged`` / ``time_warped`` / ``take``) and a bounded
  ``materialize()`` adapter for the offline solvers;
* :mod:`repro.scenarios.ingest` — CSV coflow-trace ingestion into the
  same stream protocol.

Quick start
-----------
>>> from repro.scenarios import build_instance, build_stream, list_scenarios
>>> "hotspot" in list_scenarios()
True
>>> inst = build_instance("hotspot:ports=8,mean=4,horizon=6", seed=1)
>>> inst.switch.num_inputs
8
>>> stream = build_stream("paper-default:ports=8,mean=4", seed=1)
>>> stream.rounds
32
"""

from repro.scenarios.spec import (
    SCENARIO_SPEC_VERSION,
    ScenarioSpec,
    parse_scenario,
)
from repro.scenarios.stream import (
    ArrivalStream,
    Batch,
    EMPTY_BATCH,
    make_batch,
    merge_streams,
)
from repro.scenarios.registry import (
    ScenarioEntry,
    build_instance,
    build_stream,
    get_scenario,
    list_scenarios,
    register_scenario,
    unregister_scenario,
)
from repro.scenarios.ingest import (
    example_trace_rows,
    load_csv_trace,
    rows_to_stream,
    write_example_trace,
)

# Importing the library registers every builtin scenario.  Eager on
# purpose, mirroring repro.api: any path to the registry imports this
# package first, so builtins are always present before user code can
# register or look up a scenario.
from repro.scenarios import library as _library  # noqa: F401  (side effect)

__all__ = [
    "SCENARIO_SPEC_VERSION",
    "ScenarioSpec",
    "parse_scenario",
    "ArrivalStream",
    "Batch",
    "EMPTY_BATCH",
    "make_batch",
    "merge_streams",
    "ScenarioEntry",
    "register_scenario",
    "unregister_scenario",
    "get_scenario",
    "list_scenarios",
    "build_stream",
    "build_instance",
    "example_trace_rows",
    "load_csv_trace",
    "rows_to_stream",
    "write_example_trace",
]
