"""Decorator-based scenario registry.

Mirrors the solver registry (:mod:`repro.api.registry`): a scenario is
registered under a name with a *builder* function producing an
:class:`~repro.scenarios.stream.ArrivalStream` from a resolved spec.

Usage::

    from repro.scenarios import register_scenario, build_stream

    @register_scenario(
        "my-traffic",
        defaults={"mean": 8.0},
        num_ports=24, capacity=1, horizon=32,
    )
    def my_traffic(spec, switch, params, horizon, seed):
        '''One-line summary shown by ``repro scenarios list``.'''
        def factory():
            rng = make_rng(seed)
            while True:
                k = int(rng.poisson(params["mean"]))
                yield make_batch(rng.integers(0, m, k), rng.integers(0, m, k))
        return ArrivalStream(switch, factory, rounds=horizon, label="my-traffic")

    stream = build_stream(parse_scenario("my-traffic:mean=16"), seed=7)

Builders receive the originating spec, the fully-resolved switch,
params (registered defaults overlaid with the spec's), horizon
(``None`` = unbounded), and an integer seed; they must return a
*deterministic, re-iterable* stream (derive all RNG state from ``seed``
inside the factory).  A scenario registered with ``num_ports=None``
derives its own switch shape (e.g. from a trace file): it receives
``switch=None`` plus whatever ``spec.num_ports`` / ``spec.capacity``
the user pinned, and must honor those pins itself.  The built-in
library (:mod:`repro.scenarios.library`) is registered eagerly when
:mod:`repro.scenarios` is imported, exactly like the solver adapters.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Mapping, Optional

from repro.core.switch import Switch
from repro.scenarios.spec import ScenarioSpec, parse_scenario
from repro.scenarios.stream import ArrivalStream

#: Builder signature: (spec, switch, params, horizon, seed) -> ArrivalStream.
#: ``switch`` is None for shape-deriving scenarios (entry num_ports=None).
ScenarioBuilder = Callable[
    [ScenarioSpec, Optional[Switch], Dict[str, Any], Optional[int], int],
    ArrivalStream,
]


@dataclass(frozen=True)
class ScenarioEntry:
    """One registered scenario: builder plus resolution defaults.

    ``num_ports=None`` (always together with ``capacity=None``,
    enforced by :func:`register_scenario`) marks a *shape-deriving*
    scenario: the builder determines the whole switch itself — e.g.
    from a trace file — honoring any spec pins.
    """

    name: str
    builder: ScenarioBuilder
    defaults: Mapping[str, Any]
    num_ports: Optional[int]
    capacity: Optional[int]
    horizon: Optional[int]

    @property
    def summary(self) -> str:
        """First docstring line of the builder (shown by the CLI)."""
        doc = (self.builder.__doc__ or "").strip()
        return doc.splitlines()[0] if doc else ""

    def resolve(self, spec: ScenarioSpec) -> tuple:
        """``(switch, params, horizon)`` for ``spec`` over this entry.

        Spec fields override the entry defaults; unknown spec params
        raise with the known names, so typos fail instead of being
        silently ignored.  ``switch`` is ``None`` for shape-deriving
        scenarios (the builder reads the spec's pins directly).
        """
        params = dict(self.defaults)
        unknown = [k for k in spec.param_dict if k not in params]
        if unknown:
            raise ValueError(
                f"scenario {self.name!r} got unknown parameter(s) "
                f"{sorted(unknown)}; known: {sorted(params)}"
            )
        params.update(spec.param_dict)
        num_ports = spec.num_ports if spec.num_ports is not None else self.num_ports
        capacity = spec.capacity if spec.capacity is not None else self.capacity
        horizon = spec.horizon if spec.horizon is not None else self.horizon
        if self.num_ports is None:
            switch = None
        else:
            # Fixed-shape entries carry a concrete capacity
            # (register_scenario enforces the pairing), so both
            # resolved values are ints here.
            switch = Switch.create(num_ports, num_ports, capacity)
        return switch, params, horizon


#: name -> ScenarioEntry.
_REGISTRY: Dict[str, ScenarioEntry] = {}


def register_scenario(
    name: str,
    defaults: Optional[Mapping[str, Any]] = None,
    num_ports: Optional[int] = 24,
    capacity: Optional[int] = 1,
    horizon: Optional[int] = 32,
):
    """Class/function decorator registering a scenario builder.

    ``defaults`` declares every accepted param with its default value;
    ``num_ports``/``capacity``/``horizon`` are the spec-field defaults
    used when the spec leaves them ``None``.  ``num_ports=None`` marks a
    shape-deriving scenario (see :class:`ScenarioEntry`) and requires
    ``capacity=None`` too — the builder owns the whole switch shape or
    none of it.  Duplicate names raise ``ValueError`` — plugins must
    pick fresh names or call :func:`unregister_scenario` first.
    """
    if (num_ports is None) != (capacity is None):
        raise ValueError(
            f"scenario {name!r}: num_ports and capacity must be both set "
            "(fixed-shape) or both None (shape-deriving), got "
            f"num_ports={num_ports!r}, capacity={capacity!r}"
        )

    def _register(builder: ScenarioBuilder) -> ScenarioBuilder:
        if not callable(builder):
            raise TypeError(f"scenario builder for {name!r} must be callable")
        if name in _REGISTRY:
            raise ValueError(f"scenario {name!r} is already registered")
        _REGISTRY[name] = ScenarioEntry(
            name=name,
            builder=builder,
            defaults=dict(defaults or {}),
            num_ports=num_ports,
            capacity=capacity,
            horizon=horizon,
        )
        return builder

    return _register


def unregister_scenario(name: str) -> None:
    """Remove ``name`` from the registry (no-op if absent)."""
    _REGISTRY.pop(name, None)


def get_scenario(name: str) -> ScenarioEntry:
    """The entry registered under ``name`` (with the known names on miss)."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown scenario {name!r}; available: {list_scenarios()}"
        ) from None


def list_scenarios() -> List[str]:
    """Sorted names of all registered scenarios."""
    return sorted(_REGISTRY)


def build_stream(
    spec: "ScenarioSpec | str", seed: int = 0
) -> ArrivalStream:
    """Build the arrival stream described by ``spec``.

    ``spec`` may be a :class:`ScenarioSpec` or the compact text form.
    The same ``(spec, seed)`` always yields the same stream — the seed
    is the only randomness source a builder may use.
    """
    spec = parse_scenario(spec) if isinstance(spec, str) else spec
    entry = get_scenario(spec.scenario)
    switch, params, horizon = entry.resolve(spec)
    stream = entry.builder(spec, switch, params, horizon, int(seed))
    if horizon is not None and (
        stream.rounds is None or stream.rounds > horizon
    ):
        stream = stream.take(horizon)
    return stream


def build_instance(
    spec: "ScenarioSpec | str", seed: int = 0, rounds: Optional[int] = None
):
    """Materialize ``spec`` as a bounded :class:`~repro.core.instance.
    Instance` (the adapter the offline solvers and sweeps consume).

    ``rounds`` overrides the spec/entry horizon; an unbounded spec
    without ``rounds`` raises.
    """
    return build_stream(spec, seed=seed).materialize(rounds)
