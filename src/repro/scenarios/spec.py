"""Declarative scenario specifications.

A :class:`ScenarioSpec` is a small, JSON-serializable value describing a
workload to generate: which registered scenario (arrival process +
demand distribution), the switch shape (``num_ports`` × ``num_ports``
with uniform ``capacity``), how many arrival rounds (``horizon``;
``None`` leaves the stream unbounded), and scenario-specific ``params``.

Specs round-trip through :meth:`ScenarioSpec.to_dict` /
:meth:`ScenarioSpec.from_dict` with an explicit ``schema_version`` so
stored specs (result-store keys, experiment configs, CLI history) fail
loudly instead of silently drifting when the schema evolves, and have a
canonical :meth:`ScenarioSpec.digest` for cache addressing.

The CLI accepts the compact text form parsed by :func:`parse_scenario`::

    paper-default
    hotspot:ports=32,mean=48,zipf_exponent=1.5
    trace-replay:path=shuffle.csv,round_length=0.5,horizon=200

``ports`` (or ``num_ports``), ``capacity``, and ``horizon`` bind the
spec fields; every other ``key=value`` lands in ``params`` (values are
parsed as JSON when possible, kept as strings otherwise).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field, replace
from typing import Any, Mapping, Optional, Tuple

#: Version stamp written by ``to_dict`` and required by ``from_dict``.
SCENARIO_SPEC_VERSION = 1

#: Spec fields settable from the compact ``k=v`` syntax (aliases allowed).
_FIELD_KEYS = {
    "ports": "num_ports",
    "num_ports": "num_ports",
    "capacity": "capacity",
    "horizon": "horizon",
}

_SCALAR_TYPES = (str, int, float, bool, type(None))


def _check_optional_positive(value: Optional[int], name: str) -> Optional[int]:
    if value is None:
        return None
    if not isinstance(value, int) or isinstance(value, bool) or value < 1:
        raise ValueError(f"{name} must be a positive int or None, got {value!r}")
    return value


@dataclass(frozen=True)
class ScenarioSpec:
    """Declarative description of one workload scenario.

    Attributes
    ----------
    scenario:
        Registry name (see :func:`repro.scenarios.list_scenarios`).
    num_ports / capacity / horizon:
        Switch shape and arrival-round count.  ``None`` defers to the
        scenario's registered defaults; an explicit ``horizon`` bounds
        the stream (and is what the bounded :func:`~repro.scenarios.
        build_instance` adapter materializes).
    params:
        Scenario-specific knobs as a sorted ``(key, value)`` tuple
        (hashable); construct with a plain dict — it is normalized.
    """

    scenario: str
    num_ports: Optional[int] = None
    capacity: Optional[int] = None
    horizon: Optional[int] = None
    params: Tuple[Tuple[str, Any], ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if not self.scenario or not isinstance(self.scenario, str):
            raise ValueError(f"scenario name must be a non-empty string, "
                             f"got {self.scenario!r}")
        _check_optional_positive(self.num_ports, "num_ports")
        _check_optional_positive(self.capacity, "capacity")
        _check_optional_positive(self.horizon, "horizon")
        params = self.params
        if isinstance(params, Mapping):
            items = params.items()
        else:
            items = tuple(params)
        normalized = []
        for key, value in sorted(items):
            if not isinstance(key, str) or not key:
                raise ValueError(f"param keys must be non-empty strings, "
                                 f"got {key!r}")
            if not isinstance(value, _SCALAR_TYPES):
                raise ValueError(
                    f"param {key!r} must be a JSON scalar "
                    f"(str/int/float/bool/None), got {type(value).__name__}"
                )
            normalized.append((key, value))
        object.__setattr__(self, "params", tuple(normalized))

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------

    @property
    def param_dict(self) -> dict:
        """The ``params`` tuple as a plain dict."""
        return dict(self.params)

    def with_overrides(self, **changes: Any) -> "ScenarioSpec":
        """Copy with field overrides; ``params`` merges instead of replacing."""
        params = changes.pop("params", None)
        spec = replace(self, **changes) if changes else self
        if params is not None:
            merged = spec.param_dict
            merged.update(params)
            spec = replace(spec, params=tuple(sorted(merged.items())))
        return spec

    def label(self) -> str:
        """Compact human-readable form (inverse-ish of :func:`parse_scenario`)."""
        parts = []
        if self.num_ports is not None:
            parts.append(f"ports={self.num_ports}")
        if self.capacity is not None:
            parts.append(f"capacity={self.capacity}")
        if self.horizon is not None:
            parts.append(f"horizon={self.horizon}")
        parts.extend(f"{k}={v}" for k, v in self.params)
        if not parts:
            return self.scenario
        return f"{self.scenario}:" + ",".join(parts)

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------

    def to_dict(self) -> dict:
        """JSON-serializable representation (schema-versioned)."""
        return {
            "schema_version": SCENARIO_SPEC_VERSION,
            "scenario": self.scenario,
            "num_ports": self.num_ports,
            "capacity": self.capacity,
            "horizon": self.horizon,
            "params": self.param_dict,
        }

    @staticmethod
    def from_dict(data: Mapping) -> "ScenarioSpec":
        """Inverse of :meth:`to_dict`; validates the schema version."""
        if not isinstance(data, Mapping):
            raise ValueError(
                f"scenario spec must be a mapping, got {type(data).__name__}"
            )
        version = data.get("schema_version", SCENARIO_SPEC_VERSION)
        if version != SCENARIO_SPEC_VERSION:
            raise ValueError(
                f"unsupported scenario spec schema_version {version!r} "
                f"(this build reads version {SCENARIO_SPEC_VERSION})"
            )
        try:
            name = data["scenario"]
        except KeyError:
            raise ValueError("scenario spec is missing the 'scenario' field")
        unknown = set(data) - {
            "schema_version", "scenario", "num_ports", "capacity",
            "horizon", "params",
        }
        if unknown:
            raise ValueError(
                f"scenario spec has unknown fields {sorted(unknown)}"
            )
        return ScenarioSpec(
            scenario=name,
            num_ports=data.get("num_ports"),
            capacity=data.get("capacity"),
            horizon=data.get("horizon"),
            params=dict(data.get("params") or {}),
        )

    def digest(self) -> str:
        """Canonical content digest (hex SHA-256 of the sorted-key JSON).

        Used to derive per-(spec, trial) seeds and as part of result-store
        addressing, so two logically equal specs always share a digest.
        """
        payload = json.dumps(
            self.to_dict(), sort_keys=True, separators=(",", ":")
        )
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"ScenarioSpec({self.label()})"


def parse_scenario(text: str) -> ScenarioSpec:
    """Parse the compact CLI form ``NAME[:key=value,...]``.

    ``ports``/``num_ports``, ``capacity``, and ``horizon`` set the spec
    fields; other keys become scenario params.  Values are JSON-decoded
    when possible (``mean=12.5`` → float, ``target=null`` → None) and
    kept as strings otherwise (``path=trace.csv``).
    """
    if isinstance(text, ScenarioSpec):
        return text
    if not isinstance(text, str) or not text.strip():
        raise ValueError(f"scenario spec must be 'NAME[:k=v,...]', got {text!r}")
    name, sep, rest = text.strip().partition(":")
    fields: dict = {}
    params: dict = {}
    if sep:
        for pair in rest.split(","):
            if not pair:
                continue
            key, eq, raw = pair.partition("=")
            key = key.strip()
            if not eq or not key:
                raise ValueError(
                    f"bad scenario option {pair!r} in {text!r}: "
                    "expected key=value"
                )
            try:
                value = json.loads(raw)
            except json.JSONDecodeError:
                value = raw
            if key in _FIELD_KEYS:
                fields[_FIELD_KEYS[key]] = value
            else:
                params[key] = value
    return ScenarioSpec(scenario=name, params=params, **fields)
