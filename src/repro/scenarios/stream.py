"""Lazy per-round arrival streams.

An :class:`ArrivalStream` produces, for rounds ``t = 0, 1, 2, ...``, one
*arrival batch* — a triple ``(srcs, dsts, demands)`` of equally-sized
int64 arrays — describing the flows released in that round.  Streams are

* **lazy**: batches are generated on demand, so a stream's horizon is not
  bounded by memory (the streaming simulator holds only active flows);
* **re-iterable and deterministic**: every ``iter()`` restarts the
  underlying generator factory from its seed, so two iterations of the
  same stream produce identical batches (this is what makes the
  stream-vs-materialized equivalence tests possible);
* **composable**: :meth:`~ArrivalStream.thinned`,
  :meth:`~ArrivalStream.scaled`, :meth:`~ArrivalStream.merged`,
  :meth:`~ArrivalStream.time_warped`, and :meth:`~ArrivalStream.take`
  wrap a stream in a new one without materializing anything.

The bounded adapter :meth:`ArrivalStream.materialize` turns a (prefix of
a) stream into a regular :class:`~repro.core.instance.Instance` for the
offline solvers; :func:`repro.online.simulator.simulate_stream` consumes
the stream directly.
"""

from __future__ import annotations

import hashlib
from itertools import islice
from typing import Callable, Iterator, List, Optional, Tuple

import numpy as np

from repro.core.flow import Flow
from repro.core.instance import Instance
from repro.core.switch import Switch
from repro.utils.rng import derive_seed, make_rng

#: One round's arrivals: (srcs, dsts, demands) int64 arrays of equal size.
Batch = Tuple[np.ndarray, np.ndarray, np.ndarray]

_EMPTY = np.empty(0, dtype=np.int64)
EMPTY_BATCH: Batch = (_EMPTY, _EMPTY, _EMPTY)


def prefix_hasher(switch: Switch):
    """A SHA-256 hasher seeded with the switch shape and capacities.

    Feed it batches with :func:`hash_batch`; together these define the
    canonical stream-prefix digest format shared by
    :meth:`ArrivalStream.prefix_digest` and
    :func:`repro.verify.check_stream` (which hashes during its validity
    pass — the two must stay byte-compatible, which is why the format
    lives here once).
    """
    h = hashlib.sha256()
    h.update(f"{switch.num_inputs},{switch.num_outputs};".encode())
    h.update(switch.input_capacities.tobytes())
    h.update(switch.output_capacities.tobytes())
    return h


def hash_batch(h, batch: Batch) -> None:
    """Fold one arrival batch into a :func:`prefix_hasher` hasher."""
    srcs, dsts, demands = batch
    h.update(b"|")
    h.update(np.ascontiguousarray(srcs, dtype=np.int64).tobytes())
    h.update(np.ascontiguousarray(dsts, dtype=np.int64).tobytes())
    h.update(np.ascontiguousarray(demands, dtype=np.int64).tobytes())


def make_batch(srcs, dsts, demands=None) -> Batch:
    """Normalize arrays/sequences into a :data:`Batch` triple."""
    s = np.asarray(srcs, dtype=np.int64)
    d = np.asarray(dsts, dtype=np.int64)
    if demands is None:
        dem = np.ones(s.size, dtype=np.int64)
    else:
        dem = np.asarray(demands, dtype=np.int64)
    if not (s.size == d.size == dem.size):
        raise ValueError(
            f"batch arrays must have equal sizes, got "
            f"{s.size}/{d.size}/{dem.size}"
        )
    return (s, d, dem)


class ArrivalStream:
    """A re-iterable sequence of per-round arrival batches on one switch.

    Parameters
    ----------
    switch:
        The switch every batch's ports/demands are validated against
        (validation happens at consumption time — by ``materialize`` or
        the streaming simulator — keeping generation allocation-free).
    factory:
        Zero-argument callable returning a fresh batch iterator.  It is
        invoked once per ``iter(stream)``, so it must re-derive any RNG
        state from its captured seed.
    rounds:
        Number of arrival rounds, or ``None`` for an unbounded stream.
        Iteration stops after ``rounds`` batches even if the factory's
        iterator could continue.
    label:
        Display name (scenario label or transform chain).
    """

    def __init__(
        self,
        switch: Switch,
        factory: Callable[[], Iterator[Batch]],
        rounds: Optional[int] = None,
        label: str = "stream",
    ):
        if rounds is not None and rounds < 0:
            raise ValueError(f"rounds must be >= 0 or None, got {rounds}")
        self.switch = switch
        self._factory = factory
        self.rounds = rounds
        self.label = label

    def __iter__(self) -> Iterator[Batch]:
        it = self._factory()
        if self.rounds is None:
            return it
        return islice(it, self.rounds)

    @property
    def is_bounded(self) -> bool:
        return self.rounds is not None

    def prefix_digest(self, rounds: Optional[int] = None) -> str:
        """Canonical content digest of a bounded prefix (hex SHA-256).

        Hashes the switch shape plus every batch of the first ``rounds``
        arrival rounds (``rounds`` defaults to the stream's own bound;
        an unbounded stream requires it).  Two iterations of a
        deterministic stream share a digest, which is what
        :func:`repro.verify.check_stream` certifies, and golden-digest
        tests can pin a scenario's output without materializing it.
        """
        if rounds is None:
            rounds = self.rounds
        if rounds is None:
            raise ValueError(
                f"stream {self.label!r} is unbounded; pass rounds= to "
                "digest a prefix"
            )
        h = prefix_hasher(self.switch)
        for batch in islice(iter(self), rounds):
            hash_batch(h, batch)
        return h.hexdigest()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        extent = "unbounded" if self.rounds is None else f"{self.rounds} rounds"
        return f"ArrivalStream({self.label}, {extent})"

    # ------------------------------------------------------------------
    # Composition transforms
    # ------------------------------------------------------------------

    def take(self, rounds: int) -> "ArrivalStream":
        """Bound the stream to its first ``rounds`` arrival rounds."""
        if rounds < 0:
            raise ValueError(f"rounds must be >= 0, got {rounds}")
        bound = rounds if self.rounds is None else min(rounds, self.rounds)
        return ArrivalStream(
            self.switch, self._factory, bound, f"{self.label}.take({rounds})"
        )

    def thinned(self, keep_prob: float, seed: int = 0) -> "ArrivalStream":
        """Keep each flow independently with probability ``keep_prob``."""
        if not 0.0 <= keep_prob <= 1.0:
            raise ValueError(f"keep_prob must be in [0, 1], got {keep_prob}")
        parent = self

        def factory() -> Iterator[Batch]:
            rng = make_rng(derive_seed(seed, 0x7411))
            for srcs, dsts, demands in parent:
                keep = rng.random(srcs.size) < keep_prob
                yield (srcs[keep], dsts[keep], demands[keep])

        return ArrivalStream(
            self.switch, factory, self.rounds,
            f"{self.label}.thinned({keep_prob:g})",
        )

    def scaled(self, factor: float, seed: int = 0) -> "ArrivalStream":
        """Scale the arrival rate by ``factor``.

        Each flow is replicated ``floor(factor)`` times plus one more
        with probability ``factor - floor(factor)``, so the expected
        per-round rate scales exactly by ``factor`` while the traffic
        shape (port pairs, demands, burst timing) is preserved.
        """
        if factor < 0:
            raise ValueError(f"factor must be >= 0, got {factor}")
        parent = self
        whole = int(np.floor(factor))
        frac = float(factor - whole)

        def factory() -> Iterator[Batch]:
            rng = make_rng(derive_seed(seed, 0x5CA1))
            for srcs, dsts, demands in parent:
                copies = np.full(srcs.size, whole, dtype=np.int64)
                if frac > 0.0:
                    copies += rng.random(srcs.size) < frac
                yield (
                    np.repeat(srcs, copies),
                    np.repeat(dsts, copies),
                    np.repeat(demands, copies),
                )

        return ArrivalStream(
            self.switch, factory, self.rounds,
            f"{self.label}.scaled({factor:g})",
        )

    def merged(self, other: "ArrivalStream") -> "ArrivalStream":
        """Superpose two streams round-wise (switches must match)."""
        if (
            self.switch.num_inputs != other.switch.num_inputs
            or self.switch.num_outputs != other.switch.num_outputs
            or not np.array_equal(
                self.switch.input_capacities, other.switch.input_capacities
            )
            or not np.array_equal(
                self.switch.output_capacities, other.switch.output_capacities
            )
        ):
            raise ValueError(
                "cannot merge streams over different switches "
                f"({self.switch} vs {other.switch})"
            )
        a, b = self, other
        if a.rounds is None or b.rounds is None:
            rounds = None
        else:
            rounds = max(a.rounds, b.rounds)

        def factory() -> Iterator[Batch]:
            it_a, it_b = iter(a), iter(b)
            while True:
                batch_a = next(it_a, None)
                batch_b = next(it_b, None)
                if batch_a is None and batch_b is None:
                    return
                if batch_a is None:
                    yield batch_b
                elif batch_b is None:
                    yield batch_a
                else:
                    yield tuple(
                        np.concatenate((x, y))
                        for x, y in zip(batch_a, batch_b)
                    )

        return ArrivalStream(
            self.switch, factory, rounds, f"({a.label}+{b.label})"
        )

    def time_warped(self, stretch: int) -> "ArrivalStream":
        """Dilate time: round ``t`` arrivals land at round ``stretch * t``.

        ``stretch >= 1`` spreads the same flows over a longer horizon
        (lighter instantaneous load, identical totals); ``stretch == 1``
        is the identity.
        """
        if not isinstance(stretch, int) or stretch < 1:
            raise ValueError(f"stretch must be an int >= 1, got {stretch}")
        if stretch == 1:
            return self
        parent = self
        if self.rounds is None:
            rounds = None
        else:
            rounds = 0 if self.rounds == 0 else (self.rounds - 1) * stretch + 1

        def factory() -> Iterator[Batch]:
            first = True
            for batch in parent:
                if not first:
                    for _ in range(stretch - 1):
                        yield EMPTY_BATCH
                first = False
                yield batch

        return ArrivalStream(
            self.switch, factory, rounds,
            f"{self.label}.time_warped({stretch})",
        )

    # ------------------------------------------------------------------
    # Bounded adapter (offline solvers)
    # ------------------------------------------------------------------

    def materialize(self, rounds: Optional[int] = None) -> Instance:
        """Materialize a bounded prefix as an :class:`Instance`.

        Flows get release round ``t`` in batch order, so fids follow the
        exact arrival order the streaming simulator sees — simulating
        the materialized instance and streaming the same prefix are
        byte-identical.  ``rounds`` defaults to the stream's own bound;
        an unbounded stream requires it.
        """
        if rounds is None:
            rounds = self.rounds
        if rounds is None:
            raise ValueError(
                f"stream {self.label!r} is unbounded; pass rounds= to "
                "materialize a prefix"
            )
        flows: List[Flow] = []
        for t, (srcs, dsts, demands) in enumerate(islice(iter(self), rounds)):
            for i in range(srcs.size):
                flows.append(
                    Flow(int(srcs[i]), int(dsts[i]), int(demands[i]), t)
                )
        return Instance.create(self.switch, flows)


def merge_streams(first: ArrivalStream, *rest: ArrivalStream) -> ArrivalStream:
    """Superpose any number of streams (functional form of ``merged``)."""
    out = first
    for stream in rest:
        out = out.merged(stream)
    return out
