"""The built-in scenario library (~8 named traffic shapes).

Each scenario is a registered :class:`~repro.scenarios.registry.
ScenarioEntry` producing a deterministic, re-iterable
:class:`~repro.scenarios.stream.ArrivalStream`:

=================  ========================================================
``paper-default``  The paper's §5.2.1 generator (Poisson, uniform pairs).
``permutation``    One flow per input along a fresh permutation per round.
``hotspot``        Zipf-skewed destination popularity (pFabric/VL2-style).
``incast``         Periodic fan-in bursts onto one output port.
``onoff-bursty``   Per-source ON/OFF Markov modulation of Poisson traffic.
``diurnal``        Sinusoidally time-varying Poisson rate (day/night load).
``heavy-tailed``   Poisson arrivals with Zipf-distributed demands.
``trace-replay``   CSV coflow-trace replay (built-in sample when no path).
=================  ========================================================

The synthetic shapes are *unbounded* generators; the registered default
``horizon`` bounds the built stream so ``build_instance`` and sweeps
work out of the box.  Any other prefix — including horizons far beyond
memory — is consumed lazily via ``spec`` ``horizon=``, ``ArrivalStream.
take``, or the streaming simulator's ``arrival_rounds``.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.scenarios.registry import register_scenario
from repro.scenarios.stream import ArrivalStream, EMPTY_BATCH
from repro.utils.rng import derive_seed, make_rng

#: Salt mixed into every scenario seed so scenario streams are decorrelated
#: from other consumers of the same root seed.
_SCENARIO_SALT = 0x5CE7A410


def _seeded(seed: int, *extra: int):
    return make_rng(derive_seed(int(seed), _SCENARIO_SALT, *extra))


def _uniform_pairs(rng, m: int, k: int):
    srcs = rng.integers(0, m, size=k)
    dsts = rng.integers(0, m, size=k)
    return srcs, dsts


@register_scenario(
    "paper-default", defaults={"mean": 24.0}, num_ports=24, horizon=32,
)
def paper_default(spec, switch, params, horizon, seed) -> ArrivalStream:
    """Paper §5.2.1: Poisson(mean) arrivals, uniform port pairs, unit demand."""
    m = switch.num_inputs
    mean = float(params["mean"])
    if mean <= 0:
        raise ValueError(f"mean must be > 0, got {mean}")

    def factory():
        rng = _seeded(seed, 1)
        ones = np.ones(0, dtype=np.int64)
        while True:
            k = int(rng.poisson(mean))
            srcs, dsts = _uniform_pairs(rng, m, k)
            if ones.size != k:
                ones = np.ones(k, dtype=np.int64)
            yield (srcs, dsts, ones)

    return ArrivalStream(switch, factory, horizon, "paper-default")


@register_scenario("permutation", defaults={}, num_ports=24, horizon=32)
def permutation(spec, switch, params, horizon, seed) -> ArrivalStream:
    """Full-rate balanced load: a fresh random permutation every round."""
    m = switch.num_inputs

    def factory():
        rng = _seeded(seed, 2)
        srcs = np.arange(m, dtype=np.int64)
        ones = np.ones(m, dtype=np.int64)
        while True:
            yield (srcs, rng.permutation(m), ones)

    return ArrivalStream(switch, factory, horizon, "permutation")


@register_scenario(
    "hotspot",
    defaults={"mean": 24.0, "zipf_exponent": 1.2},
    num_ports=24, horizon=32,
)
def hotspot(spec, switch, params, horizon, seed) -> ArrivalStream:
    """Skewed traffic: Zipf-popular output ports draw most of the flows."""
    m = switch.num_inputs
    mean = float(params["mean"])
    exponent = float(params["zipf_exponent"])
    if mean <= 0:
        raise ValueError(f"mean must be > 0, got {mean}")
    if exponent <= 0:
        raise ValueError(f"zipf_exponent must be > 0, got {exponent}")
    probs = np.arange(1, m + 1, dtype=np.float64) ** (-exponent)
    probs /= probs.sum()

    def factory():
        rng = _seeded(seed, 3)
        while True:
            k = int(rng.poisson(mean))
            srcs = rng.integers(0, m, size=k)
            dsts = rng.choice(m, size=k, p=probs)
            yield (srcs, dsts, np.ones(k, dtype=np.int64))

    return ArrivalStream(switch, factory, horizon, "hotspot")


@register_scenario(
    "incast",
    defaults={"fan_in": 0, "gap": 2, "target": None},
    num_ports=24, horizon=32,
)
def incast(spec, switch, params, horizon, seed) -> ArrivalStream:
    """Fan-in bursts: every ``gap`` rounds, ``fan_in`` inputs hit one output.

    ``fan_in=0`` (the default) means "half the ports"; ``target=None``
    picks a fresh random output per burst (fix it to model one hot
    reducer).
    """
    m = switch.num_inputs
    fan_in = int(params["fan_in"]) or max(1, m // 2)
    gap = int(params["gap"])
    target = params["target"]
    if not 1 <= fan_in <= m:
        raise ValueError(f"fan_in must be in [1, {m}], got {fan_in}")
    if gap < 1:
        raise ValueError(f"gap must be >= 1, got {gap}")
    if target is not None and not 0 <= int(target) < m:
        raise ValueError(f"target must be in [0, {m}), got {target}")

    def factory():
        rng = _seeded(seed, 4)
        ones = np.ones(fan_in, dtype=np.int64)
        t = 0
        while True:
            if t % gap == 0:
                dst = int(rng.integers(0, m)) if target is None else int(target)
                srcs = np.sort(rng.choice(m, size=fan_in, replace=False))
                yield (srcs, np.full(fan_in, dst, dtype=np.int64), ones)
            else:
                yield EMPTY_BATCH
            t += 1

    return ArrivalStream(switch, factory, horizon, "incast")


@register_scenario(
    "onoff-bursty",
    defaults={"p_on": 0.15, "p_off": 0.35, "rate": 3.0},
    num_ports=24, horizon=32,
)
def onoff_bursty(spec, switch, params, horizon, seed) -> ArrivalStream:
    """ON/OFF bursty sources: a 2-state Markov chain gates each input port.

    An OFF source turns ON with probability ``p_on`` each round, an ON
    source turns OFF with ``p_off``; while ON it emits Poisson(``rate``)
    flows per round to uniform destinations.  Long-run mean load per
    port is ``rate * p_on / (p_on + p_off)`` with strong temporal
    correlation — the classical burst model the Poisson baseline lacks.
    """
    m = switch.num_inputs
    p_on = float(params["p_on"])
    p_off = float(params["p_off"])
    rate = float(params["rate"])
    if not 0 < p_on <= 1 or not 0 < p_off <= 1:
        raise ValueError(
            f"p_on/p_off must be in (0, 1], got {p_on}/{p_off}"
        )
    if rate <= 0:
        raise ValueError(f"rate must be > 0, got {rate}")

    def factory():
        rng = _seeded(seed, 5)
        # Start every source in its stationary distribution.
        on = rng.random(m) < (p_on / (p_on + p_off))
        while True:
            flips = rng.random(m)
            on = np.where(on, flips >= p_off, flips < p_on)
            counts = np.where(on, rng.poisson(rate, size=m), 0)
            k = int(counts.sum())
            srcs = np.repeat(np.arange(m, dtype=np.int64), counts)
            dsts = rng.integers(0, m, size=k)
            yield (srcs, dsts, np.ones(k, dtype=np.int64))

    return ArrivalStream(switch, factory, horizon, "onoff-bursty")


@register_scenario(
    "diurnal",
    defaults={"mean": 24.0, "amplitude": 0.8, "period": 64},
    num_ports=24, horizon=128,
)
def diurnal(spec, switch, params, horizon, seed) -> ArrivalStream:
    """Diurnal load: Poisson rate ``mean * (1 + amplitude*sin(2πt/period))``.

    Models the day/night swing of user-facing clusters; at
    ``amplitude=1`` the trough is fully idle and the peak doubles the
    mean, stressing policies across both regimes in one run.
    """
    m = switch.num_inputs
    mean = float(params["mean"])
    amplitude = float(params["amplitude"])
    period = int(params["period"])
    if mean <= 0:
        raise ValueError(f"mean must be > 0, got {mean}")
    if not 0 <= amplitude <= 1:
        raise ValueError(f"amplitude must be in [0, 1], got {amplitude}")
    if period < 2:
        raise ValueError(f"period must be >= 2, got {period}")

    def factory():
        rng = _seeded(seed, 6)
        t = 0
        while True:
            rate = mean * (1.0 + amplitude * np.sin(2.0 * np.pi * t / period))
            k = int(rng.poisson(max(rate, 0.0)))
            srcs, dsts = _uniform_pairs(rng, m, k)
            yield (srcs, dsts, np.ones(k, dtype=np.int64))
            t += 1

    return ArrivalStream(switch, factory, horizon, "diurnal")


@register_scenario(
    "heavy-tailed",
    defaults={"mean": 12.0, "alpha": 1.6},
    num_ports=24, capacity=8, horizon=32,
)
def heavy_tailed(spec, switch, params, horizon, seed) -> ArrivalStream:
    """Heavy-tailed demands: Zipf(alpha) flow sizes capped at port capacity.

    Most flows are mice (demand 1) with occasional elephants up to the
    capacity ``kappa`` bound — the pFabric-style size mix that separates
    size-aware from size-oblivious policies.  Runs on a capacity-8
    switch by default so demands can actually spread.
    """
    m = switch.num_inputs
    mean = float(params["mean"])
    alpha = float(params["alpha"])
    if mean <= 0:
        raise ValueError(f"mean must be > 0, got {mean}")
    if alpha <= 1:
        raise ValueError(f"alpha must be > 1 (Zipf exponent), got {alpha}")
    cap = int(min(switch.input_capacities.min(),
                  switch.output_capacities.min()))

    def factory():
        rng = _seeded(seed, 7)
        while True:
            k = int(rng.poisson(mean))
            srcs, dsts = _uniform_pairs(rng, m, k)
            demands = np.minimum(rng.zipf(alpha, size=k), cap).astype(np.int64)
            yield (srcs, dsts, demands)

    return ArrivalStream(switch, factory, horizon, "heavy-tailed")


@register_scenario(
    "trace-replay",
    defaults={
        "path": None,
        "round_length": 1.0,
        "bytes_per_unit": None,
    },
    num_ports=None, capacity=None, horizon=None,
)
def trace_replay(spec, switch, params, horizon, seed) -> ArrivalStream:
    """Replay an external CSV coflow trace (built-in sample when no path).

    ``path`` points at an ``arrival_time,src,dst,bytes`` CSV (see
    :mod:`repro.scenarios.ingest` for the format and quantization);
    without one, a small deterministic built-in sample trace is
    replayed, so the scenario is runnable out of the box.  This is a
    *shape-deriving* scenario (``switch`` arrives as ``None``): the
    switch comes from the trace itself — ports = max id + 1, capacity =
    max quantized demand — unless the spec pins ``ports``/``capacity``,
    which are then enforced (out-of-range ids or over-capacity demands
    raise ``TraceFormatError``).
    """
    from repro.scenarios.ingest import (
        example_trace_rows,
        load_csv_trace,
        rows_to_stream,
    )

    path = params["path"]
    round_length = float(params["round_length"])
    bpu = params["bytes_per_unit"]
    bpu = None if bpu is None else float(bpu)
    if path is None:
        ports = spec.num_ports if spec.num_ports is not None else 8
        stream = rows_to_stream(
            example_trace_rows(num_ports=ports, seed=2020),
            round_length=round_length,
            bytes_per_unit=bpu,
            num_ports=ports,
            capacity=spec.capacity,
            origin="<builtin-sample>",
        )
    else:
        stream = load_csv_trace(
            str(path),
            round_length=round_length,
            bytes_per_unit=bpu,
            num_ports=spec.num_ports,
            capacity=spec.capacity,
        )
    return stream


def _registered() -> Optional[bool]:  # pragma: no cover - import marker
    """Marker so linters keep this module's import side effects."""
    return True
