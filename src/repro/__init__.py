"""repro — Scheduling Flows on a Switch to Optimize Response Times.

A from-scratch Python reproduction of Jahanjou, Rajaraman & Stalfa
(SPAA 2020, arXiv:2005.09724): offline approximation algorithms for
average (FS-ART, Theorem 1) and maximum (FS-MRT, Theorem 3) response
time of flows on a capacitated non-blocking switch, the Restricted
Timetable hardness reduction (Theorem 2), the online AMRT algorithm
(Lemma 5.3), the MaxCard/MinRTime/MaxWeight online heuristics, and the
full Figure 6/7 experiment harness — plus every substrate they need
(LP solving, bipartite matching/edge-coloring, a switch simulator, and
workload generators).

Every algorithm is also reachable through the unified solver API
(:mod:`repro.api`): ``get_solver(name).solve(instance)`` returns a
common :class:`~repro.api.report.SolveReport`, and
:class:`~repro.api.runner.Runner` executes sweeps serially or across
processes with byte-identical results.

Quick start
-----------
>>> from repro import Runner, get_solver, poisson_uniform_workload
>>> inst = poisson_uniform_workload(num_ports=16, mean_arrivals=8,
...                                 num_rounds=10, seed=0)
>>> report = get_solver("MaxWeight").solve(inst)
>>> report.kind
'online'
>>> report.metrics.average_response  # doctest: +SKIP
"""

from repro.core import (
    Flow,
    Instance,
    Schedule,
    ScheduleError,
    ScheduleMetrics,
    Switch,
    average_response_time,
    max_response_time,
    total_response_time,
    validate_schedule,
)
from repro.core.greedy import greedy_earliest_fit
from repro.art import solve_art, ARTResult
from repro.mrt import (
    MRTResult,
    TimeConstrainedInstance,
    from_deadlines,
    from_response_bound,
    schedule_time_constrained,
    solve_mrt,
)
from repro.online import (
    AMRTResult,
    make_policy,
    run_amrt,
    simulate,
    simulate_stream,
)
from repro.scenarios import (
    ArrivalStream,
    ScenarioSpec,
    build_instance,
    build_stream,
    list_scenarios,
    parse_scenario,
    register_scenario,
)
from repro.verify import (
    VerificationError,
    VerificationReport,
    Violation,
    certify,
    check_lp_certificate,
    check_online_run,
    check_schedule,
    cross_check,
    metamorphic_check,
)
from repro.workloads import (
    hotspot_workload,
    incast_workload,
    permutation_workload,
    poisson_uniform_workload,
)
from repro.api import (
    Runner,
    SolveReport,
    Solver,
    get_solver,
    list_solvers,
    register_solver,
)

__version__ = "1.1.0"

__all__ = [
    "Flow",
    "Switch",
    "Instance",
    "Schedule",
    "ScheduleError",
    "ScheduleMetrics",
    "validate_schedule",
    "average_response_time",
    "max_response_time",
    "total_response_time",
    "greedy_earliest_fit",
    "solve_art",
    "ARTResult",
    "solve_mrt",
    "MRTResult",
    "TimeConstrainedInstance",
    "from_response_bound",
    "from_deadlines",
    "schedule_time_constrained",
    "simulate",
    "simulate_stream",
    "make_policy",
    "run_amrt",
    "AMRTResult",
    "ScenarioSpec",
    "parse_scenario",
    "ArrivalStream",
    "register_scenario",
    "list_scenarios",
    "build_stream",
    "build_instance",
    "poisson_uniform_workload",
    "hotspot_workload",
    "permutation_workload",
    "incast_workload",
    "Solver",
    "SolveReport",
    "register_solver",
    "get_solver",
    "list_solvers",
    "Runner",
    "Violation",
    "VerificationReport",
    "VerificationError",
    "certify",
    "check_schedule",
    "check_lp_certificate",
    "check_online_run",
    "cross_check",
    "metamorphic_check",
    "__version__",
]
