"""The FS-ART linear programs: LP (1)–(4) and LP (5)–(8).

**LP (1)–(4)** (after Garg–Kumar) lower-bounds the total response time of
any schedule (Lemma 3.1):

    min  sum_e sum_{t >= r_e} ((t - r_e)/d_e + 1/(2 kappa_e)) b_{e,t}
    s.t. sum_{t >= r_e} b_{e,t} >= d_e                    (flows complete)
         sum_{e in F_p} b_{e,t} <= c_p    for all p, t    (port capacity)
         b >= 0

Its optimum is the "LP" series of Figure 6.

**LP (5)–(8)** (after Bansal–Kulkarni) replaces per-round capacity with
per-4-round *blocks* of capacity ``4 c_p`` and uses the coefficient
``(t - r_e)/d_e + 1/2``; it is a relaxation of LP (1)–(4) for unit
``kappa`` and is the starting point LP(0) of iterative rounding.
"""

from __future__ import annotations

from typing import Optional

from repro.core.instance import Instance
from repro.lp.model import LinearProgram, Sense
from repro.lp.solver import solve_lp

#: Block length of the initial interval LP (the paper uses 4).
BLOCK = 4


def _horizon(instance: Instance, horizon: Optional[int]) -> int:
    H = instance.horizon_bound() if horizon is None else horizon
    if H <= instance.max_release:
        raise ValueError(
            f"horizon {H} does not cover max release {instance.max_release}"
        )
    return H


def build_fractional_art_lp(
    instance: Instance, horizon: Optional[int] = None
) -> LinearProgram:
    """Construct LP (1)–(4) with rounds ``r_e <= t < horizon``."""
    H = _horizon(instance, horizon)
    lp = LinearProgram()
    sw = instance.switch
    for flow in instance.flows:
        kappa = sw.kappa(flow.src, flow.dst)
        coeffs = {}
        for t in range(flow.release, H):
            name = ("b", flow.fid, t)
            cost = (t - flow.release) / flow.demand + 1.0 / (2.0 * kappa)
            lp.add_variable(name, objective=cost)
            coeffs[name] = 1.0
        lp.add_constraint(("flow", flow.fid), coeffs, Sense.GE, float(flow.demand))

    # Port-capacity rows, only for (port, round) pairs that are touched.
    in_rows: dict[tuple[int, int], dict] = {}
    out_rows: dict[tuple[int, int], dict] = {}
    for flow in instance.flows:
        for t in range(flow.release, H):
            name = ("b", flow.fid, t)
            in_rows.setdefault((flow.src, t), {})[name] = 1.0
            out_rows.setdefault((flow.dst, t), {})[name] = 1.0
    for (p, t), coeffs in sorted(in_rows.items()):
        lp.add_constraint(
            ("cap", "in", p, t), coeffs, Sense.LE, float(sw.input_capacity(p))
        )
    for (q, t), coeffs in sorted(out_rows.items()):
        lp.add_constraint(
            ("cap", "out", q, t), coeffs, Sense.LE, float(sw.output_capacity(q))
        )
    return lp


def art_lp_lower_bound(
    instance: Instance,
    horizon: Optional[int] = None,
    backend: str = "auto",
    timer=None,
) -> float:
    """Optimal value of LP (1)–(4): a lower bound on total response time.

    Lemma 3.1: for any schedule σ, ``sum_e Delta_e* <= sum_e rho_e``.
    This is the baseline the paper's Figure 6 plots against the
    heuristics ("the optimal value of the linear program (1)-(4)").

    ``timer`` (an optional :class:`repro.utils.timing.Timer`) receives
    one ``lp_bound_build`` and one ``lp_bound_solve`` measurement — the
    cold-work counters of the :mod:`repro.lp.bounds` subsystem.
    """
    from contextlib import nullcontext

    if instance.num_flows == 0:
        return 0.0
    with timer.measure("lp_bound_build") if timer else nullcontext():
        lp = build_fractional_art_lp(instance, horizon)
    with timer.measure("lp_bound_solve") if timer else nullcontext():
        result = solve_lp(lp, backend=backend)
    if not result.is_optimal:  # pragma: no cover - LP is always feasible
        raise RuntimeError(f"ART lower-bound LP failed: {result.status}")
    return float(result.objective)


def build_interval_lp0(
    instance: Instance, horizon: Optional[int] = None
) -> LinearProgram:
    """Construct LP (5)–(8), the initial LP(0) of iterative rounding.

    Constraint (7) groups rounds into fixed blocks
    ``(BLOCK*(a-1), BLOCK*a]`` with capacity ``BLOCK * c_p``; here with
    0-indexed rounds the blocks are ``[BLOCK*a, BLOCK*(a+1))``.
    """
    H = _horizon(instance, horizon)
    lp = LinearProgram()
    sw = instance.switch
    for flow in instance.flows:
        coeffs = {}
        for t in range(flow.release, H):
            name = ("b", flow.fid, t)
            cost = (t - flow.release) / flow.demand + 0.5
            lp.add_variable(name, objective=cost)
            coeffs[name] = 1.0
        lp.add_constraint(("flow", flow.fid), coeffs, Sense.GE, float(flow.demand))

    in_rows: dict[tuple[int, int], dict] = {}
    out_rows: dict[tuple[int, int], dict] = {}
    for flow in instance.flows:
        for t in range(flow.release, H):
            name = ("b", flow.fid, t)
            a = t // BLOCK
            in_rows.setdefault((flow.src, a), {})[name] = 1.0
            out_rows.setdefault((flow.dst, a), {})[name] = 1.0
    for (p, a), coeffs in sorted(in_rows.items()):
        lp.add_constraint(
            ("blk", "in", p, a),
            coeffs,
            Sense.LE,
            float(BLOCK * sw.input_capacity(p)),
        )
    for (q, a), coeffs in sorted(out_rows.items()):
        lp.add_constraint(
            ("blk", "out", q, a),
            coeffs,
            Sense.LE,
            float(BLOCK * sw.output_capacity(q)),
        )
    return lp
