"""Theorem 1: converting a pseudo-schedule into a valid schedule.

The pseudo-schedule may overload ports transiently; Theorem 1 repairs it
with windowed Birkhoff–von-Neumann decomposition:

1. divide the timeline into consecutive windows of length ``h``
   (the paper uses ``h = ceil(c' log n / c)``);
2. for each window, take the flows the pseudo-schedule assigned inside
   it and form the bipartite multigraph of their port pairs;
3. replicate every port ``p`` into ``c_p`` copies with round-robin edge
   placement (the b-matching → matching transformation), so the replica
   graph has max degree ``Δ_j``;
4. König-edge-color the replica graph into ``Δ_j`` matchings and emit
   them into the ``h`` rounds of the **next** window, ``ceil(Δ_j / h)``
   classes per round.

Each emitted round carries at most ``ceil(Δ_j / h)`` edges per port
replica, i.e. per-port load ``<= ceil(Δ_j / h) * c_p`` — a capacity
blowup factor of ``1 + c`` whenever ``Δ_j <= (1 + c) h``, which Lemma 3.3
guarantees for ``h = Θ(log n / c)``.  Every flow is delayed by less than
``2 h`` rounds past its pseudo-round, giving the
``(1 + O(log n)/c)``-approximation of Theorem 1.  Release times are
respected automatically: emission happens strictly after the
pseudo-round, which is itself ``>= r_e``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.art.pseudo_schedule import PseudoSchedule
from repro.core.schedule import Schedule
from repro.matching.b_matching import project_coloring, replicate_ports
from repro.matching.bipartite import BipartiteMultigraph
from repro.matching.bvn import decompose_into_matchings


@dataclass(frozen=True)
class ConversionResult:
    """Output of :func:`pseudo_to_schedule`.

    Attributes
    ----------
    schedule:
        The valid (augmented-capacity) schedule.
    window:
        The window length ``h`` used.
    capacity_factor:
        The smallest integer ``k`` such that the schedule fits in
        capacities ``k * c_p`` — the achieved blowup (Theorem 1 predicts
        ``1 + c``).
    max_delta:
        Largest replica-graph degree over all windows.
    extra_delay:
        Max increase in any flow's completion round vs the
        pseudo-schedule (bounded by ``2 h - 1`` plus queueing within the
        window emission).
    """

    schedule: Schedule
    window: int
    capacity_factor: int
    max_delta: int
    extra_delay: int


def default_window(num_flows: int, c: int) -> int:
    """The ``h = ceil(log2(n) / c)`` default window (c' ≈ 1)."""
    if c < 1:
        raise ValueError(f"c must be a positive integer, got {c}")
    if num_flows <= 1:
        return 1
    return max(1, math.ceil(math.log2(num_flows) / c))


def pseudo_to_schedule(
    pseudo: PseudoSchedule,
    c: int = 1,
    window: Optional[int] = None,
    timer=None,
) -> ConversionResult:
    """Apply the Theorem 1 conversion with augmentation parameter ``c``.

    Parameters
    ----------
    pseudo:
        Pseudo-schedule from :func:`repro.art.iterative_rounding`.
    c:
        The capacity-augmentation integer of Theorem 1 (target blowup
        ``1 + c``); used only to derive the default window length.
    window:
        Override the window length ``h``.
    timer:
        Optional :class:`repro.utils.timing.Timer`; each window's König
        decomposition is recorded as a ``coloring`` event.

    Returns
    -------
    ConversionResult
    """
    inst = pseudo.instance
    n = inst.num_flows
    if n == 0:
        return ConversionResult(
            Schedule(inst, np.zeros(0, dtype=np.int64)), 1, 1, 0, 0
        )
    h = default_window(n, c) if window is None else int(window)
    if h < 1:
        raise ValueError(f"window must be >= 1, got {window}")

    # Bucket flows by pseudo-window (vectorized: one stable sort, split at
    # window boundaries; fids stay ascending within a window).
    pseudo_assignment = np.asarray(pseudo.assignment, dtype=np.int64)
    window_of = pseudo_assignment // h
    order = np.argsort(window_of, kind="stable")
    uniq_windows, starts = np.unique(window_of[order], return_index=True)
    ends = np.append(starts[1:], n)

    switch = inst.switch
    srcs, dsts = inst.srcs(), inst.dsts()
    assignment = np.full(n, -1, dtype=np.int64)
    max_delta = 0
    for w_idx, s, e in zip(
        uniq_windows.tolist(), starts.tolist(), ends.tolist()
    ):
        fids = order[s:e]
        graph = BipartiteMultigraph(switch.num_inputs, switch.num_outputs)
        graph.add_edges(srcs[fids], dsts[fids], fids)
        replicated, edge_map = replicate_ports(
            graph, switch.input_capacities, switch.output_capacities
        )
        if timer is not None:
            with timer.measure("coloring"):
                replica_classes = decompose_into_matchings(replicated)
        else:
            replica_classes = decompose_into_matchings(replicated)
        classes = project_coloring(edge_map, replica_classes)
        delta = len(classes)
        max_delta = max(max_delta, delta)
        # Emit ceil(delta / h) classes into each round of window w_idx+1.
        per_round = math.ceil(delta / h) if delta else 0
        base = (w_idx + 1) * h
        for k, cls in enumerate(classes):
            assignment[fids[np.asarray(cls, dtype=np.int64)]] = base + (
                k // per_round
            )

    schedule = Schedule(inst, assignment)
    capacity_factor = _achieved_factor(schedule)
    extra_delay = int((assignment - pseudo_assignment).max())
    return ConversionResult(schedule, h, capacity_factor, max_delta, extra_delay)


def _achieved_factor(schedule: Schedule) -> int:
    """Smallest integer k with all loads <= k * c_p."""
    in_loads, out_loads = schedule.port_round_loads()
    switch = schedule.instance.switch
    k_in = np.ceil(
        in_loads / switch.input_capacities[:, None]
    ).max(initial=1.0)
    k_out = np.ceil(
        out_loads / switch.output_capacities[:, None]
    ).max(initial=1.0)
    return int(max(k_in, k_out, 1.0))
