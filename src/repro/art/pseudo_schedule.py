"""Pseudo-schedules (Remark 3.4 / Lemma 3.3).

The iterative-rounding phase produces an integral assignment of flows to
rounds that may transiently *overload* ports: over any time window
``[t1, t2]`` the volume assigned to port ``p`` is at most
``c_p (t2 - t1) + O(c_p log n)``.  This module holds the result type and
the overload diagnostics the tests and benches use to verify that bound.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

import numpy as np

from repro.core.instance import Instance


@dataclass(frozen=True)
class PseudoSchedule:
    """Integral round assignment with possible transient port overload.

    Attributes
    ----------
    instance:
        The underlying instance.
    assignment:
        ``assignment[fid] = t`` — the round each flow is assigned to.
    lp_cost:
        Objective value of the *final* rounded solution under the LP(0)
        cost (Lemma 3.3 property 2: at most the LP(0) optimum).
    lp0_optimum:
        Optimal objective of LP(0) (a lower bound on any schedule's
        total response time).
    iterations:
        Number of LP solves in the rounding loop.
    fallback_fixes:
        Times the defensive force-assign fallback fired (expected 0).
    """

    instance: Instance
    assignment: np.ndarray = field(repr=False)
    lp_cost: float = 0.0
    lp0_optimum: float = 0.0
    iterations: int = 0
    fallback_fixes: int = 0

    def __post_init__(self) -> None:
        arr = np.asarray(self.assignment, dtype=np.int64)
        if arr.shape != (self.instance.num_flows,):
            raise ValueError(
                f"assignment shape {arr.shape} != ({self.instance.num_flows},)"
            )
        object.__setattr__(self, "assignment", arr)
        arr.setflags(write=False)

    def respects_releases(self) -> bool:
        """No flow assigned before its release round."""
        return bool((self.assignment >= self.instance.releases()).all())

    def total_response(self) -> int:
        """Total response time of the pseudo-schedule (``C_e = t + 1``)."""
        return int(
            (self.assignment + 1 - self.instance.releases()).sum()
        ) if self.instance.num_flows else 0

    def port_loads(self) -> Dict[tuple[str, int], np.ndarray]:
        """Per-round demand profile of every port: ``{(side, port): loads}``."""
        inst = self.instance
        H = int(self.assignment.max()) + 1 if inst.num_flows else 1
        loads: Dict[tuple[str, int], np.ndarray] = {}
        in_loads = np.zeros((inst.switch.num_inputs, H), dtype=np.int64)
        out_loads = np.zeros((inst.switch.num_outputs, H), dtype=np.int64)
        if inst.num_flows:
            np.add.at(in_loads, (inst.srcs(), self.assignment), inst.demands())
            np.add.at(out_loads, (inst.dsts(), self.assignment), inst.demands())
        for p in range(inst.switch.num_inputs):
            loads[("in", p)] = in_loads[p]
        for q in range(inst.switch.num_outputs):
            loads[("out", q)] = out_loads[q]
        return loads

    def max_window_overload(self) -> float:
        """``max over ports p, windows [t1,t2] of (vol_p - c_p (t2-t1)) / c_p``.

        Lemma 3.3 property 3 asserts this is ``O(log n)``.  Computed per
        port with Kadane's algorithm on ``load_t - c_p``: the maximum over
        windows of ``sum_{t1..t2} load_t - c_p (t2 - t1)`` equals
        ``max-subarray-sum(load - c_p) + c_p``.
        """
        inst = self.instance
        if inst.num_flows == 0:
            return 0.0
        worst = 0.0
        for (side, port), loads in self.port_loads().items():
            cap = (
                inst.switch.input_capacity(port)
                if side == "in"
                else inst.switch.output_capacity(port)
            )
            excess = loads.astype(np.float64) - cap
            best = _max_subarray(excess) + cap
            worst = max(worst, best / cap)
        return worst


def _max_subarray(values: np.ndarray) -> float:
    """Kadane's maximum (non-empty) subarray sum."""
    best = -np.inf
    running = 0.0
    for v in values:
        running = max(v, running + v)
        best = max(best, running)
    return float(best)
