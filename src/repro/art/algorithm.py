"""End-to-end FS-ART solver (Theorem 1).

``solve_art`` chains the Section 3 pipeline: LP (5)–(8) → iterative
rounding (Lemma 3.3) → windowed BvN conversion (Theorem 1), and returns
the schedule together with the LP (1)–(4) lower bound so callers can
report the achieved approximation ratio.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.art.conversion import ConversionResult, pseudo_to_schedule
from repro.art.iterative_rounding import iterative_rounding
from repro.art.lp_relaxation import art_lp_lower_bound
from repro.art.pseudo_schedule import PseudoSchedule
from repro.core.instance import Instance
from repro.core.metrics import total_response_time
from repro.core.schedule import Schedule
from repro.utils.validation import check_positive_int


@dataclass(frozen=True)
class ARTResult:
    """Result of :func:`solve_art`.

    Attributes
    ----------
    schedule:
        Valid schedule under capacities ``capacity_factor * c_p``.
    total_response:
        Its FS-ART objective value.
    lower_bound:
        Optimal value of LP (1)–(4) (lower bound on any schedule's total
        response; ``None`` if skipped).
    pseudo:
        The intermediate pseudo-schedule (diagnostics: iterations,
        overload).
    conversion:
        The Theorem 1 conversion diagnostics (window, achieved capacity
        factor, delays).
    """

    schedule: Schedule
    total_response: int
    lower_bound: Optional[float]
    pseudo: PseudoSchedule
    conversion: ConversionResult

    @property
    def approximation_ratio(self) -> Optional[float]:
        """``total_response / lower_bound`` when the bound was computed."""
        if self.lower_bound is None or self.lower_bound <= 0:
            return None
        return self.total_response / self.lower_bound


def solve_art(
    instance: Instance,
    c: int = 1,
    window: Optional[int] = None,
    horizon: Optional[int] = None,
    backend: str = "auto",
    compute_lower_bound: bool = True,
    timer=None,
) -> ARTResult:
    """Solve FS-ART per Theorem 1 (unit demands).

    Parameters
    ----------
    instance:
        Unit-demand instance.
    c:
        Capacity-augmentation integer (target blowup ``1 + c``,
        approximation ``1 + O(log n)/c``).
    window:
        Override the conversion window ``h``.
    horizon:
        LP horizon override.
    backend:
        LP backend.
    compute_lower_bound:
        Also solve LP (1)–(4) for the certified lower bound (extra LP
        solve; disable for benchmarks that only need the schedule).
    timer:
        Optional :class:`repro.utils.timing.Timer`; the Theorem 1 window
        decompositions are recorded as ``coloring`` events.

    Returns
    -------
    ARTResult
    """
    check_positive_int(c, "c")
    pseudo = iterative_rounding(instance, horizon=horizon, backend=backend)
    conversion = pseudo_to_schedule(pseudo, c=c, window=window, timer=timer)
    lower = (
        art_lp_lower_bound(instance, horizon=horizon, backend=backend)
        if compute_lower_bound
        else None
    )
    return ARTResult(
        schedule=conversion.schedule,
        total_response=total_response_time(conversion.schedule),
        lower_bound=lower,
        pseudo=pseudo,
        conversion=conversion,
    )
