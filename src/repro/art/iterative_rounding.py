"""Iterative rounding for FS-ART (Section 3.1, Lemma 3.3).

Following Bansal–Kulkarni (as adapted by the paper), a sequence of linear
programs LP(0), LP(1), ... is solved, where LP(0) is the interval LP
(5)–(8) and each LP(ℓ) relaxes LP(ℓ−1):

* flows whose variables became integral in LP(ℓ−1) are **permanently
  fixed** to their round and leave the program;
* zero variables are deleted;
* per-port capacity blocks are **regrouped**: the surviving variables of
  port ``p`` are sorted by round and greedily grouped until each group's
  fractional mass first reaches ``4 c_p`` (sizes land in
  ``[4 c_p, 5 c_p)``; a trailing partial group keeps its own mass as its
  capacity); the new constraint gives each group capacity equal to its
  mass, so the previous solution stays feasible and the LP value never
  increases (Lemma 3.3 property 2).

Lemma 3.5 shows at least half the flows become integral per iteration,
so there are ``O(log n)`` iterations, and Lemmas 3.6–3.7 bound the
accumulated window overload by ``O(c_p log n)``.

This implementation requires **unit demands** (the setting of Theorem 1;
the paper's rounding also analyzes only the unit-flow case end-to-end).
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.art.lp_relaxation import BLOCK, build_interval_lp0
from repro.art.pseudo_schedule import PseudoSchedule
from repro.core.instance import Instance
from repro.lp.model import LinearProgram, Sense
from repro.lp.solver import solve_lp

_TOL = 1e-7

Var = Tuple[int, int]  # (fid, t)
PortKey = Tuple[str, int]  # (side, port)


def iterative_rounding(
    instance: Instance,
    horizon: Optional[int] = None,
    backend: str = "auto",
    max_iterations: Optional[int] = None,
) -> PseudoSchedule:
    """Round LP (5)–(8) into a pseudo-schedule (Lemma 3.3).

    Parameters
    ----------
    instance:
        Unit-demand instance (raises ``ValueError`` otherwise).
    horizon:
        LP time horizon; defaults to ``instance.horizon_bound()``.
    backend:
        LP backend (must produce vertex solutions; ``auto`` → highs-ds).
    max_iterations:
        Defensive cap; defaults to ``2 log2(n) + 20``.

    Returns
    -------
    PseudoSchedule
    """
    if not instance.is_unit_demand:
        raise ValueError(
            "iterative rounding implements the unit-demand case "
            "(Theorem 1); got non-unit demands"
        )
    n = instance.num_flows
    if n == 0:
        return PseudoSchedule(instance, np.zeros(0, dtype=np.int64))
    if max_iterations is None:
        max_iterations = 2 * int(math.log2(n) + 1) + 20

    # --- LP(0) -----------------------------------------------------------
    lp0 = build_interval_lp0(instance, horizon)
    res = solve_lp(lp0, backend=backend, need_vertex=True)
    if not res.is_optimal:  # pragma: no cover - LP(0) is always feasible
        raise RuntimeError(f"LP(0) failed: {res.status}")
    lp0_optimum = float(res.objective)
    values = lp0.solution_by_name(res.x)
    # Surviving fractional support: {fid: {t: value}}.
    support: Dict[int, Dict[int, float]] = {}
    for (_, fid, t), v in values.items():
        if v > _TOL:
            support.setdefault(fid, {})[t] = v

    assignment = np.full(n, -1, dtype=np.int64)
    iterations = 1
    fallback_fixes = 0

    def fix_integral_flows() -> None:
        """Permanently assign flows with a variable at value 1."""
        for fid in list(support):
            entries = support[fid]
            one_t = next(
                (t for t, v in entries.items() if v >= 1 - _TOL), None
            )
            if one_t is not None:
                assignment[fid] = one_t
                del support[fid]

    fix_integral_flows()

    while support and iterations < max_iterations:
        prev_unfixed = len(support)
        lp = _build_lp_ell(instance, support)
        res = solve_lp(lp, backend=backend, need_vertex=True)
        iterations += 1
        if not res.is_optimal:  # pragma: no cover - relaxation invariant
            raise RuntimeError(f"LP(ell) failed: {res.status}")
        values = lp.solution_by_name(res.x)
        support = {}
        for (_, fid, t), v in values.items():
            if v > _TOL:
                support.setdefault(fid, {})[t] = v
        fix_integral_flows()
        if len(support) >= prev_unfixed:
            # Defensive fallback (Lemma 3.5 precludes this with exact
            # vertices): force the most-committed flow to its best round.
            fid = max(support, key=lambda f: max(support[f].values()))
            t_best = max(support[fid], key=support[fid].get)
            assignment[fid] = t_best
            del support[fid]
            fallback_fixes += 1

    # Horizon exhausted: force-assign any stragglers (max_iterations hit).
    for fid in list(support):
        t_best = max(support[fid], key=support[fid].get)
        assignment[fid] = t_best
        del support[fid]
        fallback_fixes += 1

    releases = instance.releases()
    lp_cost = float(((assignment - releases) + 0.5).sum())
    return PseudoSchedule(
        instance,
        assignment,
        lp_cost=lp_cost,
        lp0_optimum=lp0_optimum,
        iterations=iterations,
        fallback_fixes=fallback_fixes,
    )


def _build_lp_ell(
    instance: Instance, support: Dict[int, Dict[int, float]]
) -> LinearProgram:
    """Construct LP(ℓ) (equations (9)–(12)) from the surviving support."""
    lp = LinearProgram()
    # Variables + flow-completion constraints (10).
    for fid, entries in sorted(support.items()):
        flow = instance.flows[fid]
        coeffs = {}
        for t in sorted(entries):
            name = ("b", fid, t)
            cost = (t - flow.release) / flow.demand + 0.5
            lp.add_variable(name, objective=cost)
            coeffs[name] = 1.0
        lp.add_constraint(("flow", fid), coeffs, Sense.GE, float(flow.demand))

    # Interval constraints (11): per port, regroup surviving variables.
    for side, port, groups in _port_groups(instance, support):
        for a, (group_vars, size) in enumerate(groups):
            coeffs = {("b", fid, t): 1.0 for fid, t in group_vars}
            lp.add_constraint((("ivl", side, port, a)), coeffs, Sense.LE, size)
    return lp


def _port_groups(
    instance: Instance, support: Dict[int, Dict[int, float]]
) -> List[Tuple[str, int, List[Tuple[List[Var], float]]]]:
    """Greedy interval construction per port (the I(p, a, ℓ) of §3.1).

    For each port: sort the surviving variables of incident flows by
    round (ties by fid), then cut groups as soon as the accumulated mass
    first reaches ``BLOCK * c_p``.  Returns
    ``[(side, port, [(vars, size), ...]), ...]``.
    """
    per_port: Dict[PortKey, List[Tuple[int, int, float]]] = {}
    for fid, entries in support.items():
        flow = instance.flows[fid]
        for t, v in entries.items():
            per_port.setdefault(("in", flow.src), []).append((t, fid, v))
            per_port.setdefault(("out", flow.dst), []).append((t, fid, v))

    out: List[Tuple[str, int, List[Tuple[List[Var], float]]]] = []
    for (side, port), triples in sorted(per_port.items()):
        cap = (
            instance.switch.input_capacity(port)
            if side == "in"
            else instance.switch.output_capacity(port)
        )
        threshold = BLOCK * cap
        triples.sort()
        groups: List[Tuple[List[Var], float]] = []
        current: List[Var] = []
        mass = 0.0
        for t, fid, v in triples:
            current.append((fid, t))
            mass += v
            if mass >= threshold:
                groups.append((current, mass))
                current, mass = [], 0.0
        if current:
            groups.append((current, mass))
        out.append((side, port, groups))
    return out
