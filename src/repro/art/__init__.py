"""Average response time (FS-ART) — Section 3 of the paper.

* :mod:`repro.art.lp_relaxation` — LP (1)–(4) (the Garg–Kumar-style
  fractional lower bound used as the Figure 6 baseline) and LP (5)–(8)
  (the interval LP that seeds iterative rounding);
* :mod:`repro.art.iterative_rounding` — the LP(ℓ) sequence of Lemma 3.3
  producing a *pseudo-schedule* with bounded interval overload;
* :mod:`repro.art.pseudo_schedule` — pseudo-schedule type and overload
  diagnostics;
* :mod:`repro.art.conversion` — Theorem 1: windowed Birkhoff–von Neumann
  conversion of a pseudo-schedule into a valid schedule with a ``(1+c)``
  capacity blowup;
* :mod:`repro.art.algorithm` — the end-to-end FS-ART solver.
"""

from repro.art.lp_relaxation import (
    art_lp_lower_bound,
    build_fractional_art_lp,
    build_interval_lp0,
)
from repro.art.pseudo_schedule import PseudoSchedule
from repro.art.iterative_rounding import iterative_rounding
from repro.art.conversion import ConversionResult, pseudo_to_schedule
from repro.art.algorithm import ARTResult, solve_art

__all__ = [
    "build_fractional_art_lp",
    "build_interval_lp0",
    "art_lp_lower_bound",
    "PseudoSchedule",
    "iterative_rounding",
    "pseudo_to_schedule",
    "ConversionResult",
    "solve_art",
    "ARTResult",
]
