"""Adversarial lower-bound constructions for online scheduling (Figure 4).

* **Figure 4(a)** / Lemma 5.1 (due to Kulkarni): no online algorithm has
  a bounded competitive ratio for *average* response time.  Two solid
  flows ``(1→2)`` and ``(1→3)`` arrive every round ``0..T-1``; input
  port 1 can serve only one per round, so ``T`` solid flows remain at
  time ``T``, at least ``T/2`` of them sharing one output port.  The
  adversary then floods that output with dashed flows from a fresh input
  for rounds ``T..M-1``, forcing ``Ω(MT)`` total response, while OPT
  pays ``O(T^2 + M)``.

* **Figure 4(b)** / Lemma 5.2: no online algorithm beats 3/2 for
  *maximum* response time.  Four solid flows arrive in round 0 on two
  input ports; any algorithm leaves two unscheduled; two dashed flows
  from input 7 arrive in round 1 and collide with one of the leftovers.
  OPT finishes everything with max response 2; the online algorithm is
  forced to 3.

The port numbering below follows the paper's figure (1-indexed labels
mapped onto 0-indexed ports).
"""

from __future__ import annotations

from typing import Tuple

from repro.core.flow import Flow
from repro.core.instance import Instance
from repro.core.metrics import average_response_time, max_response_time
from repro.core.switch import Switch
from repro.online.policies import OnlinePolicy
from repro.online.simulator import simulate
from repro.utils.validation import check_positive_int

# Figure 4(a) port roles (inputs: 1, 4 → indices 0, 1; outputs: 2, 3 →
# indices 0, 1).
_A_IN_MAIN, _A_IN_FRESH = 0, 1
_A_OUT_LIGHT, _A_OUT_HEAVY = 0, 1


def figure4a_instance(T: int, M: int, congested_output: int = _A_OUT_HEAVY) -> Instance:
    """The Figure 4(a) instance with the dashed flows aimed at one output.

    Parameters
    ----------
    T:
        Solid-arrival phase length (two solid flows per round ``0..T-1``).
    M:
        Last dashed round (dashed flows arrive in rounds ``T..M-1``);
        must satisfy ``M > T``.
    congested_output:
        Which output (0 or 1) the dashed flows target — the adaptive
        adversary picks the one with the longer queue.
    """
    check_positive_int(T, "T")
    if M <= T:
        raise ValueError(f"need M > T, got T={T}, M={M}")
    if congested_output not in (0, 1):
        raise ValueError("congested_output must be 0 or 1")
    switch = Switch.create(2, 2, 1, 1)
    flows = []
    for t in range(T):
        flows.append(Flow(_A_IN_MAIN, _A_OUT_LIGHT, 1, t))
        flows.append(Flow(_A_IN_MAIN, _A_OUT_HEAVY, 1, t))
    for t in range(T, M):
        flows.append(Flow(_A_IN_FRESH, congested_output, 1, t))
    return Instance.create(switch, flows)


def adaptive_figure4a_ratio(
    policy: OnlinePolicy, T: int, M: int
) -> Tuple[float, float, float]:
    """Run the *adaptive* Lemma 5.1 adversary against ``policy``.

    Phase 1 simulates only the solid flows for ``T`` rounds to observe
    which output port the policy left more congested; the dashed flows
    are then aimed there and the full instance is re-simulated (valid
    because the policy is deterministic and the prefix workload is
    identical, so its phase-1 behaviour replays).

    Returns
    -------
    (policy_avg, opt_avg_upper_bound, ratio)
        The policy's average response time, an upper bound on the
        optimal average (the paper's explicit ``<= 2T``-total argument,
        normalized), and their ratio.
    """
    # Phase 1: solid flows only.
    probe = figure4a_instance(T, T + 1, _A_OUT_HEAVY)
    solid_only = Instance.create(
        probe.switch, [f for f in probe.flows if f.release < T]
    )
    result = simulate(solid_only, policy)
    # Count solid flows finished after their release round per output.
    late = [0, 0]
    for flow in solid_only.flows:
        if result.schedule.round_of(flow.fid) >= T:
            late[flow.dst] += 1
    target = _A_OUT_HEAVY if late[_A_OUT_HEAVY] >= late[_A_OUT_LIGHT] else _A_OUT_LIGHT

    # Phase 2: full adaptive instance.
    full = figure4a_instance(T, M, target)
    full_result = simulate(full, policy)
    policy_avg = average_response_time(full_result.schedule)

    # OPT upper bound (paper): serve all (1→target) solids in rounds
    # 0..T-1, then the other solids in parallel with the dashed stream —
    # total response <= 2T * T + (M - T) * 1, normalized by flow count.
    n = full.num_flows
    opt_total_upper = 2.0 * T * T + (M - T)
    opt_avg_upper = opt_total_upper / n
    return policy_avg, opt_avg_upper, policy_avg / opt_avg_upper


# Figure 4(b): inputs 1, 4, 7 → indices 0, 1, 2; outputs 2, 3, 5, 6 →
# indices 0, 1, 2, 3.
_B_SOLID = [(0, 1), (1, 2), (0, 0), (1, 3)]  # (1,3) (4,5) (1,2) (4,6)
_B_DASHED = [(2, 1), (2, 2)]  # (7,3) (7,5)


def figure4b_instance() -> Instance:
    """The fixed 7-port instance of Figure 4(b) / Lemma 5.2."""
    switch = Switch.create(3, 4, 1, 1)
    flows = [Flow(u, v, 1, 0) for u, v in _B_SOLID]
    flows += [Flow(u, v, 1, 1) for u, v in _B_DASHED]
    return Instance.create(switch, flows)


def figure4b_optimal_max_response() -> int:
    """OPT for Figure 4(b) is 2 (the paper exhibits the schedule)."""
    return 2


def figure4b_policy_max_response(policy: OnlinePolicy) -> int:
    """Max response time of ``policy`` on the *fixed* Figure 4(b) instance.

    Lemma 5.2's bound of 3 holds against an adaptive adversary (see
    :func:`adaptive_figure4b_max_response`); a fixed instance cannot
    force *every* policy to 3.
    """
    result = simulate(figure4b_instance(), policy)
    return max_response_time(result.schedule)


def adaptive_figure4b_max_response(policy: OnlinePolicy) -> int:
    """Run the adaptive Lemma 5.2 adversary against ``policy``.

    Round 0 is probed with the four solid flows alone; each input port
    leaves at least one of its two solids unscheduled.  The adversary
    aims the two dashed flows (from fresh input 7) at the outputs of one
    leftover solid per input, guaranteeing a three-way collision.  For
    any deterministic policy the returned value is >= 3 while OPT = 2
    (Lemma 5.2's 3/2 gap).
    """
    switch = Switch.create(3, 4, 1, 1)
    solid_inst = Instance.create(switch, [Flow(u, v, 1, 0) for u, v in _B_SOLID])
    probe = simulate(solid_inst, policy)
    leftover_dst = {}
    for flow in solid_inst.flows:
        if probe.schedule.round_of(flow.fid) > 0 and flow.src not in leftover_dst:
            leftover_dst[flow.src] = flow.dst
    # Each input has at least one leftover; default defensively if the
    # policy somehow scheduled everything (impossible with capacity 1).
    targets = [leftover_dst.get(0, 1), leftover_dst.get(1, 2)]
    flows = [Flow(u, v, 1, 0) for u, v in _B_SOLID]
    flows += [Flow(2, targets[0], 1, 1), Flow(2, targets[1], 1, 1)]
    full = Instance.create(switch, flows)
    result = simulate(full, policy)
    return max_response_time(result.schedule)
