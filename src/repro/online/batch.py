"""Trial-batched online simulation (structure-of-arrays sweeps).

A Figure-6/7 cell averages N trials of the *same* (M, T) configuration;
running them one :func:`~repro.online.simulator.simulate` call at a time
pays the per-round python/numpy dispatch overhead N times.  This module
executes a cell as **one** merged simulation via virtual-port stacking:

* trial ``i``'s port ``p`` becomes virtual port ``i * m + p`` and its
  flow ``f`` becomes global fid ``offset_i + f``, so the N disjoint
  instances concatenate into a single instance-shaped view over a tiled
  switch (``N*m`` ports, per-trial capacities repeated);
* the existing :class:`~repro.online.simulator.FlowQueue` machinery and
  policy fast paths then run unchanged on the merged arrays — one
  ``argsort`` / ``bincount`` / matching solve per round covers every
  trial at once;
* because the virtual port sets are disjoint and every kernel breaks
  ties by (stable) fid order, each trial's selections are **byte
  identical** to its solo run: same assignments, same queue history,
  same aggregate metrics.

Batched fast paths exist for FIFO, Random, MaxCard (cold start) and the
co-flow SEBF/CoflowFIFO orderings; every other policy — and any
subclass, mixed-policy batch, or mismatched-switch cell — falls back to
per-trial :func:`simulate` calls with identical results.

Known, documented divergence: a batched **MaxCard** run reports exact
per-trial ``sim_rounds`` / ``compactions`` / ``matching_solves`` but
omits the pooled Hopcroft–Karp ``bfs_phases`` / ``augmentations``
diagnostics (the stacked solve cannot attribute them per trial).
Schedules and metrics remain byte-identical.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.coflow.policies import CoflowFifoPolicy, CoflowSebfPolicy
from repro.core.instance import Instance
from repro.core.metrics import ScheduleMetrics
from repro.core.schedule import Schedule
from repro.core.switch import Switch
from repro.online.policies import (
    FifoPolicy,
    MaxCardPolicy,
    OnlinePolicy,
    RandomPolicy,
)
from repro.online.simulator import (
    FlowQueue,
    SimulationResult,
    _check_feasible,
    simulate,
)


class _BatchView:
    """Instance-shaped view over N stacked trials.

    Duck-types the :class:`~repro.core.instance.Instance` surface the
    simulator and the policy fast paths consume (``num_flows``, the four
    attribute vectors, ``.switch``): srcs/dsts are lifted to virtual
    ports, the switch is the per-trial switch tiled N times.
    """

    __slots__ = (
        "switch",
        "num_flows",
        "offsets",
        "trial_of",
        "m_in",
        "m_out",
        "n_trials",
        "_srcs",
        "_dsts",
        "_demands",
        "_releases",
    )

    def __init__(self, instances: Sequence[Instance]):
        base = instances[0].switch
        n = len(instances)
        self.n_trials = n
        self.m_in = base.num_inputs
        self.m_out = base.num_outputs
        self.switch = Switch(
            base.num_inputs * n,
            base.num_outputs * n,
            np.tile(base.input_capacities, n),
            np.tile(base.output_capacities, n),
        )
        counts = np.asarray([inst.num_flows for inst in instances], dtype=np.int64)
        self.offsets = np.concatenate(
            ([0], np.cumsum(counts))
        ).astype(np.int64)
        self.num_flows = int(self.offsets[-1])
        self.trial_of = np.repeat(np.arange(n, dtype=np.int64), counts)
        self._srcs = np.concatenate(
            [inst.srcs() + i * self.m_in for i, inst in enumerate(instances)]
        )
        self._dsts = np.concatenate(
            [inst.dsts() + i * self.m_out for i, inst in enumerate(instances)]
        )
        self._demands = np.concatenate([inst.demands() for inst in instances])
        self._releases = np.concatenate([inst.releases() for inst in instances])

    def srcs(self) -> np.ndarray:
        return self._srcs

    def dsts(self) -> np.ndarray:
        return self._dsts

    def demands(self) -> np.ndarray:
        return self._demands

    def releases(self) -> np.ndarray:
        return self._releases


class BatchFlowQueue(FlowQueue):
    """:class:`FlowQueue` over a :class:`_BatchView`.

    Only the pair-view *keying* changes: keyed naively by virtual ports
    the heads array would be ``(N*m) x (N*m')`` — quadratic in the trial
    count — but cross-trial pairs cannot exist, so keys are remapped to
    the compact ``trial * m * m' + lsrc * m' + ldst`` space (linear in
    N).  Adjacency rows stay indexed by virtual src port, exactly what
    the stacked Hopcroft–Karp solve consumes.
    """

    __slots__ = ("_m_out",)

    def __init__(self, view: _BatchView):
        super().__init__(view)
        self._m_out = view.m_out

    def _pair_keys(self, n: int) -> List[int]:
        # vsrc * m' + ldst == trial * m * m' + lsrc * m' + ldst: unique
        # per (trial, lsrc, ldst), i.e. per realizable (vsrc, vdst) pair.
        return (
            self.srcs[:n] * self._m_out + self.dsts[:n] % self._m_out
        ).tolist()

    def _pair_key_count(self) -> int:
        return self.n_inputs * self._m_out


def _same_switch(a: Switch, b: Switch) -> bool:
    return (
        a.num_inputs == b.num_inputs
        and a.num_outputs == b.num_outputs
        and np.array_equal(a.input_capacities, b.input_capacities)
        and np.array_equal(a.output_capacities, b.output_capacities)
    )


def batch_kernel_name(
    instances: Sequence[Instance], policies: Sequence[OnlinePolicy]
) -> Optional[str]:
    """Which merged kernel (if any) a batch would run.

    ``None`` means :func:`simulate_batch` will fall back to per-trial
    :func:`simulate` calls: unbatchable policy (no kernel, subclass,
    warm-started MaxCard), mixed policy types, mismatched switches, or a
    batch too small to merge.  Exposed so tests and benchmarks can
    assert which path a configuration takes.
    """
    if len(instances) < 2 or len(instances) != len(policies):
        return None
    cls = type(policies[0])
    if any(type(p) is not cls for p in policies):
        return None
    switch = instances[0].switch
    if any(not _same_switch(inst.switch, switch) for inst in instances[1:]):
        return None
    if cls is FifoPolicy:
        return "fifo"
    if cls is MaxCardPolicy:
        if any(p.warm_start for p in policies):
            return None
        return "maxcard"
    if cls is RandomPolicy:
        return "random"
    if cls in (CoflowSebfPolicy, CoflowFifoPolicy):
        for policy, inst in zip(policies, instances):
            cf = policy._cf
            if cf.instance is not inst and cf.instance.digest() != inst.digest():
                return None
        return "coflow"
    return None


def _empty_result(instance: Instance) -> SimulationResult:
    empty = Schedule(instance, np.zeros(0, dtype=np.int64))
    return SimulationResult(
        empty, ScheduleMetrics.of(empty), 0, np.zeros(0, dtype=np.int64)
    )


def _greedy_pack(
    fids: np.ndarray,
    order: np.ndarray,
    queue: FlowQueue,
    switch: Switch,
    weights: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Greedy capacity packing in a precomputed order.

    Mirrors ``OnlinePolicy._select_packing_fast`` (``weights`` given:
    non-positive entries are skipped) and the co-flow ordered packing
    (``weights=None``: every flow is a candidate).
    """
    srcs = queue.srcs[fids].tolist()
    dsts = queue.dsts[fids].tolist()
    demands = queue.demands[fids].tolist()
    fid_list = fids.tolist()
    w = weights.tolist() if weights is not None else None
    in_res = switch.input_capacities.tolist()
    out_res = switch.output_capacities.tolist()
    chosen: List[int] = []
    for idx in order.tolist():
        if w is not None and w[idx] <= 0:
            continue
        s, d, dem = srcs[idx], dsts[idx], demands[idx]
        if in_res[s] >= dem and out_res[d] >= dem:
            in_res[s] -= dem
            out_res[d] -= dem
            chosen.append(fid_list[idx])
    return np.asarray(chosen, dtype=np.int64)


def _first_occurrence_mask(keys: np.ndarray, slot: np.ndarray) -> np.ndarray:
    """Boolean mask selecting the first occurrence of each key, in order.

    Sort-free: a *reversed* fancy assignment leaves each key's first
    position in ``slot`` (duplicate scatter indices keep the last write,
    and reversing makes the first occurrence the last write).  Only the
    positions just written are read back, so the scratch buffer never
    needs clearing between calls.
    """
    idx = np.arange(keys.size, dtype=np.int64)
    slot[keys[::-1]] = idx[::-1]
    return slot[keys] == idx


def _vectorized_unit_pack(
    cand: np.ndarray,
    srcs: np.ndarray,
    dsts: np.ndarray,
    slot_in: np.ndarray,
    slot_out: np.ndarray,
) -> np.ndarray:
    """Greedy unit-capacity packing of ``cand`` (in greedy order),
    vectorized as parallel rounds.

    Sequential greedy takes a flow iff no earlier-*taken* flow used one
    of its ports — the greedy independent set of the port-conflict
    graph.  Each round here takes every candidate that precedes all its
    remaining conflicts (first in order on both its src and dst, via the
    reversed-scatter trick of :func:`_first_occurrence_mask`), then
    drops candidates whose ports the taken set consumed; by the standard
    parallel-greedy-MIS argument the union over rounds equals the
    sequential walk exactly.  Random instances converge in a handful of
    rounds, so the per-flow python loop disappears.

    ``slot_in``/``slot_out`` are reusable int64 scratch buffers of size
    ``n_in``/``n_out``; stale contents are fine (see above).
    """
    parts: List[np.ndarray] = []
    while cand.size:
        s = srcs[cand]
        d = dsts[cand]
        idx = np.arange(cand.size, dtype=np.int64)
        rev = idx[::-1]
        slot_in[s[::-1]] = rev
        slot_out[d[::-1]] = rev
        take = (slot_in[s] == idx) & (slot_out[d] == idx)
        parts.append(cand[take])
        # Consume the taken ports in place; a candidate survives iff
        # both its slots still hold a non-negative first-position.
        slot_in[s[take]] = -1
        slot_out[d[take]] = -1
        cand = cand[(slot_in[s] >= 0) & (slot_out[d] >= 0)]
    if not parts:
        return np.empty(0, dtype=np.int64)
    return np.concatenate(parts)


def simulate_batch(
    instances: Sequence[Instance],
    policies: Sequence[OnlinePolicy],
    max_rounds: Optional[int] = None,
    timer=None,
    verify: bool = False,
) -> List[SimulationResult]:
    """Run ``policies[i]`` over ``instances[i]`` for every trial.

    The trial-axis sibling of :func:`~repro.online.simulator.simulate`:
    when every trial runs the same batchable policy on the same switch,
    the whole batch executes as one merged simulation (see the module
    docstring); otherwise each trial falls back to a solo ``simulate``
    call.  Either way the returned list is positionally aligned with
    ``instances`` and each element is byte-identical (schedule, queue
    history, metrics) to the corresponding solo run.

    ``max_rounds``/``timer``/``verify`` behave as in :func:`simulate`;
    timer events are per *merged* round, so timing totals differ from N
    solo runs (timings are excluded from the equivalence contract).
    """
    if len(instances) != len(policies):
        raise ValueError(
            f"got {len(instances)} instances but {len(policies)} policies"
        )
    if not instances:
        return []
    kernel = batch_kernel_name(instances, policies)
    live = [i for i in range(len(instances)) if instances[i].num_flows > 0]
    if kernel is None or len(live) < 2:
        return [
            simulate(
                inst, pol, max_rounds=max_rounds, timer=timer, verify=verify
            )
            for inst, pol in zip(instances, policies)
        ]
    results: List[Optional[SimulationResult]] = [None] * len(instances)
    for i in range(len(instances)):
        if instances[i].num_flows == 0:
            results[i] = _empty_result(instances[i])
    merged = _simulate_merged(
        [instances[i] for i in live],
        [policies[i] for i in live],
        kernel,
        max_rounds,
        timer,
    )
    for i, result in zip(live, merged):
        results[i] = result
    if verify:
        from repro.verify import check_online_run

        for result in results:
            if result.schedule.instance.num_flows:
                check_online_run(result).raise_if_failed()
    return results


def _make_select(kernel, queue, view, instances, policies, timer, scratch):
    """Build the per-round merged selection callable for ``kernel``."""
    n_in = view.switch.num_inputs
    n_out = view.switch.num_outputs
    m_out = view.m_out
    unit = queue.unit_capacity
    slot_in = np.empty(n_in, dtype=np.int64)
    slot_out = np.empty(n_out, dtype=np.int64)
    slot_key = np.empty(n_in * m_out, dtype=np.int64)

    if kernel == "fifo" and unit:
        # FIFO's greedy order (descending age, stable) over the alive
        # list *is* the alive list itself: it is kept sorted by
        # (release, insertion).  Pair-dedup: only a pair's first copy
        # can ever be taken (later copies share both ports with an
        # earlier, still-waiting one), so keep exactly the first
        # occurrence per pair key — no per-flow python at all.
        def select_fifo(t: int) -> np.ndarray:
            fids = queue.alive_fids()
            keys = queue.srcs[fids] * m_out + queue.dsts[fids] % m_out
            cand = fids[_first_occurrence_mask(keys, slot_key)]
            return _vectorized_unit_pack(
                cand, queue.srcs, queue.dsts, slot_in, slot_out
            )

        return select_fifo

    if kernel in ("fifo", "maxcard"):
        # These policies' fast paths are already pure functions of the
        # queue arrays: run them directly on the merged queue.
        driver = policies[0]
        driver.bind_runtime(timer, scratch)
        driver.reset(view)
        return lambda t: driver.select_fast(t, queue, view)

    trial_of = view.trial_of
    if kernel == "random":
        for policy, inst in zip(policies, instances):
            policy.reset(inst)
        rngs = [policy._rng for policy in policies]

        def select_random(t: int) -> np.ndarray:
            fids = queue.alive_fids()
            trials = trial_of[fids]
            w = np.empty(fids.size, dtype=np.float64)
            order = np.argsort(trials, kind="stable")
            uniq, starts = np.unique(trials[order], return_index=True)
            ends = np.append(starts[1:], trials.size)
            # One draw vector per trial with waiting flows, in that
            # trial's arrival order — the exact shape and sequence its
            # solo run consumes from the same seeded generator.
            for u, s, e in zip(uniq.tolist(), starts.tolist(), ends.tolist()):
                w[order[s:e]] = rngs[u].random(e - s) + 1e-9
            pack_order = np.argsort(-w, kind="stable")
            if not unit:
                return _greedy_pack(fids, pack_order, queue, view.switch, w)
            # Pair-dedup by weight: only the heaviest copy of a pair can
            # be taken (earlier copies in weight order share its ports).
            ordered = fids[pack_order]
            keys = (
                queue.srcs[ordered] * m_out + queue.dsts[ordered] % m_out
            )
            cand = ordered[_first_occurrence_mask(keys, slot_key)]
            return _vectorized_unit_pack(
                cand, queue.srcs, queue.dsts, slot_in, slot_out
            )

        return select_random

    # kernel == "coflow"
    cfs = [policy._cf for policy in policies]
    ncf_off = np.concatenate(
        ([0], np.cumsum([cf.num_coflows for cf in cfs]))
    ).astype(np.int64)
    ncf_total = int(ncf_off[-1])
    vcid_of = np.concatenate(
        [cf.coflow_of + off for cf, off in zip(cfs, ncf_off[:-1].tolist())]
    )
    m_in, m_out = view.m_in, view.m_out
    in_caps = instances[0].switch.input_capacities
    out_caps = instances[0].switch.output_capacities
    sebf = type(policies[0]) is CoflowSebfPolicy
    if not sebf:
        static_prio = np.concatenate(
            [cf.releases().astype(np.float64) for cf in cfs]
        )

    def select_coflow(t: int) -> np.ndarray:
        fids = queue.alive_fids()
        cids = vcid_of[fids]
        if sebf:
            demands = queue.demands[fids]
            in_load = np.bincount(
                cids * m_in + queue.srcs[fids] % m_in,
                weights=demands,
                minlength=ncf_total * m_in,
            ).reshape(ncf_total, m_in)
            out_load = np.bincount(
                cids * m_out + queue.dsts[fids] % m_out,
                weights=demands,
                minlength=ncf_total * m_out,
            ).reshape(ncf_total, m_out)
            prio = np.maximum(
                (in_load / in_caps).max(axis=1),
                (out_load / out_caps).max(axis=1),
            )
        else:
            prio = static_prio
        order = np.lexsort((fids, cids, prio[cids]))
        return _greedy_pack(fids, order, queue, view.switch)

    return select_coflow


def _simulate_merged(
    instances: Sequence[Instance],
    policies: Sequence[OnlinePolicy],
    kernel: str,
    max_rounds: Optional[int],
    timer,
) -> List[SimulationResult]:
    """The merged lockstep engine (all trials non-empty, same switch)."""
    n_trials = len(instances)
    counts = np.asarray([inst.num_flows for inst in instances], dtype=np.int64)
    total = int(counts.sum())
    view = _BatchView(instances)
    if max_rounds is None:
        # Vectorized ``2 * horizon_bound() + 1`` per trial: every merged
        # trial is non-empty, so reduceat segments are never empty and
        # max_release is just the segment max of the stacked releases.
        rel_max = np.maximum.reduceat(view.releases(), view.offsets[:-1])
        caps = 2 * (rel_max + counts + 1) + 1
    else:
        caps = np.full(n_trials, max_rounds, dtype=np.int64)

    queue = BatchFlowQueue(view)
    trial_of = view.trial_of
    scratch: Dict[str, int] = {}
    select = _make_select(
        kernel, queue, view, instances, policies, timer, scratch
    )
    track_solves = kernel == "maxcard" and queue.unit_capacity
    policy_name = policies[0].name

    releases = view.releases()
    arrival_order = np.argsort(releases, kind="stable")
    uniq_rounds, starts = np.unique(
        releases[arrival_order], return_index=True
    )
    ends = np.append(starts[1:], total)
    arrivals_at = {
        int(r): arrival_order[s:e]
        for r, s, e in zip(
            uniq_rounds.tolist(), starts.tolist(), ends.tolist()
        )
    }

    assignment = np.full(total, -1, dtype=np.int64)
    # Shadow counters: exact per-trial mirrors of each solo FlowQueue's
    # bookkeeping, maintained vectorized over the trial axis.
    sh_pos = np.zeros(n_trials, dtype=np.int64)  # solo _n_pos
    sh_alive = np.zeros(n_trials, dtype=np.int64)  # solo _n_alive
    sh_comp = np.zeros(n_trials, dtype=np.int64)  # solo compactions
    solves = np.zeros(n_trials, dtype=np.int64)
    sched_per = np.zeros(n_trials, dtype=np.int64)
    rounds_of = np.full(n_trials, -1, dtype=np.int64)
    history_rows: List[np.ndarray] = []
    scheduled_total = 0
    t = 0
    while scheduled_total < total:
        overdue = (sched_per < counts) & (t >= caps)
        if overdue.any():
            i = int(np.flatnonzero(overdue)[0])
            raise RuntimeError(
                f"policy {policy_name} exceeded {int(caps[i])} rounds with "
                f"{int(counts[i] - sched_per[i])} flows unscheduled"
            )
        round_start = time.perf_counter() if timer is not None else 0.0
        arriving = arrivals_at.get(t)
        if arriving is not None:
            queue.arrive(arriving)
            cnt = np.bincount(trial_of[arriving], minlength=n_trials)
            sh_pos += cnt
            sh_alive += cnt
        history_rows.append(sh_alive.copy())
        if track_solves:
            # One cold Hopcroft–Karp solve per solo round with a
            # non-empty queue.
            solves += sh_alive > 0
        if queue.n_alive:
            chosen = select(t)
            _check_feasible(chosen, queue, view.switch, policy_name, t)
            if chosen.size:
                assignment[chosen] = t
                queue.remove(chosen)
                scheduled_total += chosen.size
                rcnt = np.bincount(trial_of[chosen], minlength=n_trials)
                sched_per += rcnt
                sh_alive -= rcnt
                # Solo compaction trigger, checked only on rounds where
                # that trial's remove() ran (rcnt > 0).
                dead = sh_pos - sh_alive
                compacted = (rcnt > 0) & (dead > 32) & (dead > sh_alive)
                sh_comp += compacted
                sh_pos[compacted] = sh_alive[compacted]
                done = (sched_per == counts) & (rounds_of < 0)
                if done.any():
                    rounds_of[done] = t + 1
        if timer is not None:
            timer.add("sim_round", time.perf_counter() - round_start)
        t += 1

    history = np.stack(history_rows) if history_rows else np.zeros(
        (0, n_trials), dtype=np.int64
    )
    offsets = view.offsets
    results: List[SimulationResult] = []
    for i in range(n_trials):
        rounds_i = int(rounds_of[i])
        sub = assignment[offsets[i] : offsets[i + 1]].copy()
        schedule = Schedule(instances[i], sub)
        stats: Dict[str, int] = {
            "sim_rounds": rounds_i,
            "compactions": int(sh_comp[i]),
        }
        if track_solves:
            stats["matching_solves"] = int(solves[i])
        results.append(
            SimulationResult(
                schedule,
                ScheduleMetrics.of(schedule),
                rounds=rounds_i,
                queue_history=history[:rounds_i, i].copy(),
                stats=stats,
            )
        )
    return results
