"""Trial-batched online simulation (structure-of-arrays sweeps).

A Figure-6/7 cell averages N trials of the *same* (M, T) configuration;
running them one :func:`~repro.online.simulator.simulate` call at a time
pays the per-round python/numpy dispatch overhead N times.  This module
executes a cell as **one** merged simulation via virtual-port stacking:

* trial ``i``'s port ``p`` becomes virtual port ``i * m + p`` and its
  flow ``f`` becomes global fid ``offset_i + f``, so the N disjoint
  instances concatenate into a single instance-shaped view over a tiled
  switch (``N*m`` ports, per-trial capacities repeated);
* every per-round kernel — pair dedup, greedy packing, and the
  Hopcroft–Karp matching itself (:func:`~repro.matching.batch_hk.
  max_cardinality_matching_batch`, which exploits the block-diagonal
  structure with per-trial frontier masks) — runs vectorized over the
  merged arrays, one pass per round covering every trial at once;
* because the virtual port sets are disjoint and every kernel breaks
  ties by (stable) fid order, each trial's selections are **byte
  identical** to its solo run: same assignments, same queue history,
  same aggregate metrics, same per-trial stats counters (including the
  Hopcroft–Karp ``bfs_phases`` / ``augmentations`` / ``matching_solves``
  diagnostics, which the stacked solve attributes per trial).

Batched fast paths exist for FIFO, Random, MaxCard (cold or warm start,
uniform across the batch) and the co-flow SEBF/CoflowFIFO orderings on
any switch, plus MinRTime/MaxWeight on non-unit switches (their unit
path is a per-trial Hungarian solve whose merged tie-breaking is not
guaranteed to project per trial, so it stays on the fallback).  Every
other policy — and any subclass, mixed-policy batch, or
mismatched-switch cell — falls back to per-trial :func:`simulate` calls
with identical results.

When capacities bind (load >= 1, non-unit demands), selection goes
through :func:`_vectorized_capacitated_pack`: greedy residual-capacity
packing reformulated as parallel rounds of segmented prefix sums over
the candidate order, so high-load cells stay off per-flow python loops.

When a :class:`~repro.utils.timing.Timer` is passed, the engine emits
per-phase events alongside ``sim_round``: ``batch_select`` (whole-round
selection), ``batch_match`` (the stacked Hopcroft–Karp solve) and
``batch_pack`` (vectorized packing kernels); batched *generation* is
timed by the runner as ``batch_generate``.  Timings are excluded from
the equivalence contract.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.coflow.policies import CoflowFifoPolicy, CoflowSebfPolicy
from repro.obs.spans import span as obs_span
from repro.core.instance import Instance
from repro.core.metrics import ScheduleMetrics
from repro.core.schedule import Schedule
from repro.core.switch import Switch
from repro.matching.batch_hk import max_cardinality_matching_batch
from repro.online.policies import (
    FifoPolicy,
    MaxCardPolicy,
    MaxWeightPolicy,
    MinRTimePolicy,
    OnlinePolicy,
    RandomPolicy,
)
from repro.online.simulator import (
    FlowQueue,
    SimulationResult,
    _check_feasible,
    simulate,
)


class _BatchView:
    """Instance-shaped view over N stacked trials.

    Duck-types the :class:`~repro.core.instance.Instance` surface the
    simulator and the policy fast paths consume (``num_flows``, the four
    attribute vectors, ``.switch``): srcs/dsts are lifted to virtual
    ports, the switch is the per-trial switch tiled N times.
    """

    __slots__ = (
        "switch",
        "num_flows",
        "offsets",
        "trial_of",
        "m_in",
        "m_out",
        "n_trials",
        "_srcs",
        "_dsts",
        "_demands",
        "_releases",
    )

    def __init__(self, instances: Sequence[Instance]):
        base = instances[0].switch
        n = len(instances)
        self.n_trials = n
        self.m_in = base.num_inputs
        self.m_out = base.num_outputs
        self.switch = Switch(
            base.num_inputs * n,
            base.num_outputs * n,
            np.tile(base.input_capacities, n),
            np.tile(base.output_capacities, n),
        )
        counts = np.asarray([inst.num_flows for inst in instances], dtype=np.int64)
        self.offsets = np.concatenate(
            ([0], np.cumsum(counts))
        ).astype(np.int64)
        self.num_flows = int(self.offsets[-1])
        self.trial_of = np.repeat(np.arange(n, dtype=np.int64), counts)
        self._srcs = np.concatenate(
            [inst.srcs() + i * self.m_in for i, inst in enumerate(instances)]
        )
        self._dsts = np.concatenate(
            [inst.dsts() + i * self.m_out for i, inst in enumerate(instances)]
        )
        self._demands = np.concatenate([inst.demands() for inst in instances])
        self._releases = np.concatenate([inst.releases() for inst in instances])

    def srcs(self) -> np.ndarray:
        return self._srcs

    def dsts(self) -> np.ndarray:
        return self._dsts

    def demands(self) -> np.ndarray:
        return self._demands

    def releases(self) -> np.ndarray:
        return self._releases


class BatchFlowQueue(FlowQueue):
    """:class:`FlowQueue` over a :class:`_BatchView`.

    Only the pair-view *keying* changes: keyed naively by virtual ports
    the heads array would be ``(N*m) x (N*m')`` — quadratic in the trial
    count — but cross-trial pairs cannot exist, so keys are remapped to
    the compact ``trial * m * m' + lsrc * m' + ldst`` space (linear in
    N).  The batched kernels never *initialize* the pair view (they
    derive heads per round from the alive list), so ``arrive``/
    ``remove`` stay pure array operations; the keying matters only if a
    caller asks for the incremental view explicitly.
    """

    __slots__ = ("_m_out",)

    def __init__(self, view: _BatchView):
        super().__init__(view)
        self._m_out = view.m_out

    def _pair_keys(self, n: int) -> List[int]:
        # vsrc * m' + ldst == trial * m * m' + lsrc * m' + ldst: unique
        # per (trial, lsrc, ldst), i.e. per realizable (vsrc, vdst) pair.
        return (
            self.srcs[:n] * self._m_out + self.dsts[:n] % self._m_out
        ).tolist()

    def _pair_key_count(self) -> int:
        return self.n_inputs * self._m_out


def _same_switch(a: Switch, b: Switch) -> bool:
    if a is b:
        # Cells generated through the amortized batch path share one
        # switch object, skipping the per-trial capacity comparisons.
        return True
    return (
        a.num_inputs == b.num_inputs
        and a.num_outputs == b.num_outputs
        and np.array_equal(a.input_capacities, b.input_capacities)
        and np.array_equal(a.output_capacities, b.output_capacities)
    )


def batch_kernel_name(
    instances: Sequence[Instance], policies: Sequence[OnlinePolicy]
) -> Optional[str]:
    """Which merged kernel (if any) a batch would run.

    ``None`` means :func:`simulate_batch` will fall back to per-trial
    :func:`simulate` calls: unbatchable policy (no kernel, subclass,
    MaxCard with *mixed* warm-start flags, unit-capacity MinRTime/
    MaxWeight), mixed policy types, mismatched switches, or a batch too
    small to merge.  Exposed so tests and benchmarks can assert which
    path a configuration takes.
    """
    if len(instances) < 2 or len(instances) != len(policies):
        return None
    cls = type(policies[0])
    if any(type(p) is not cls for p in policies):
        return None
    switch = instances[0].switch
    if any(not _same_switch(inst.switch, switch) for inst in instances[1:]):
        return None
    if cls is FifoPolicy:
        return "fifo"
    if cls is MaxCardPolicy:
        # Warm starts batch fine (the stacked solve seeds per trial),
        # but only when the whole batch agrees on the mode.
        warm = policies[0].warm_start
        if any(p.warm_start != warm for p in policies[1:]):
            return None
        return "maxcard"
    if cls is MinRTimePolicy:
        # Unit capacity runs a per-trial Hungarian solve whose merged
        # tie-breaking is not guaranteed to project per trial.
        return None if switch.is_unit_capacity else "minrtime"
    if cls is MaxWeightPolicy:
        return None if switch.is_unit_capacity else "maxweight"
    if cls is RandomPolicy:
        return "random"
    if cls in (CoflowSebfPolicy, CoflowFifoPolicy):
        for policy, inst in zip(policies, instances):
            cf = policy._cf
            if cf.instance is not inst and cf.instance.digest() != inst.digest():
                return None
        return "coflow"
    return None


def _empty_result(instance: Instance) -> SimulationResult:
    empty = Schedule(instance, np.zeros(0, dtype=np.int64))
    return SimulationResult(
        empty, ScheduleMetrics.of(empty), 0, np.zeros(0, dtype=np.int64)
    )


def _measure(timer, name: str):
    # With a timer the span opens through Timer.measure's obs bridge;
    # without one an ambient span still records the phase when tracing.
    return timer.measure(name) if timer is not None else obs_span(name)


def _first_occurrence_mask(keys: np.ndarray, slot: np.ndarray) -> np.ndarray:
    """Boolean mask selecting the first occurrence of each key, in order.

    Sort-free: a *reversed* fancy assignment leaves each key's first
    position in ``slot`` (duplicate scatter indices keep the last write,
    and reversing makes the first occurrence the last write).  Only the
    positions just written are read back, so the scratch buffer never
    needs clearing between calls.
    """
    idx = np.arange(keys.size, dtype=np.int64)
    slot[keys[::-1]] = idx[::-1]
    return slot[keys] == idx


def _vectorized_unit_pack(
    cand: np.ndarray,
    srcs: np.ndarray,
    dsts: np.ndarray,
    slot_in: np.ndarray,
    slot_out: np.ndarray,
) -> np.ndarray:
    """Greedy unit-capacity packing of ``cand`` (in greedy order),
    vectorized as parallel rounds.

    Sequential greedy takes a flow iff no earlier-*taken* flow used one
    of its ports — the greedy independent set of the port-conflict
    graph.  Each round here takes every candidate that precedes all its
    remaining conflicts (first in order on both its src and dst, via the
    reversed-scatter trick of :func:`_first_occurrence_mask`), then
    drops candidates whose ports the taken set consumed; by the standard
    parallel-greedy-MIS argument the union over rounds equals the
    sequential walk exactly.  Random instances converge in a handful of
    rounds, so the per-flow python loop disappears.

    ``slot_in``/``slot_out`` are reusable int64 scratch buffers of size
    ``n_in``/``n_out``; stale contents are fine (see above).
    """
    parts: List[np.ndarray] = []
    while cand.size:
        s = srcs[cand]
        d = dsts[cand]
        idx = np.arange(cand.size, dtype=np.int64)
        rev = idx[::-1]
        slot_in[s[::-1]] = rev
        slot_out[d[::-1]] = rev
        take = (slot_in[s] == idx) & (slot_out[d] == idx)
        parts.append(cand[take])
        # Consume the taken ports in place; a candidate survives iff
        # both its slots still hold a non-negative first-position.
        slot_in[s[take]] = -1
        slot_out[d[take]] = -1
        cand = cand[(slot_in[s] >= 0) & (slot_out[d] >= 0)]
    if not parts:
        return np.empty(0, dtype=np.int64)
    return np.concatenate(parts)


def _check_feasible_fast(
    chosen: np.ndarray,
    queue: "BatchFlowQueue",
    switch: Switch,
    policy_name: str,
    t: int,
    slot_in: np.ndarray,
    slot_out: np.ndarray,
) -> None:
    """Happy-path feasibility check for the merged engine.

    A unit-capacity selection is feasible iff every chosen flow is
    waiting and no two share a port — verified with two scratch
    scatters over the selection instead of the solo checker's
    full-switch-width bincounts (the merged switch has ``T * m``
    virtual ports, so those dominate small rounds).  Any failure
    re-runs the exact solo checker, so violation reports stay
    byte-identical.
    """
    k = chosen.size
    if k == 0:
        return
    if not queue.unit_capacity:
        _check_feasible(chosen, queue, switch, policy_name, t)
        return
    ok = int(chosen.min()) >= 0 and int(chosen.max()) < queue.srcs.shape[0]
    if ok:
        s = queue.srcs[chosen]
        d = queue.dsts[chosen]
        idx = np.arange(k, dtype=np.int64)
        slot_in[s] = idx
        slot_out[d] = idx
        # Each position reads back its own index iff its port was not
        # claimed twice (duplicate scatters keep only the last write).
        ok = (
            bool((slot_in[s] == idx).all())
            and bool((slot_out[d] == idx).all())
            and bool(queue.waiting_mask(chosen).all())
        )
    if not ok:
        _check_feasible(chosen, queue, switch, policy_name, t)


def _pack_side(
    ports: np.ndarray,
    dem: np.ndarray,
    taken: np.ndarray,
    caps: np.ndarray,
):
    """Per-candidate take/eliminate predicates for one port side.

    Over the still-live candidates (``taken`` or undecided, in greedy
    order) compute, per candidate ``c`` on port ``p``, via one stable
    sort by port and segmented cumulative sums:

    * ``P_all(c)``  — inclusive prefix demand of *all* live candidates
      on ``p`` up to and including ``c``;
    * ``P_tk(c)``   — exclusive prefix demand of *confirmed-taken*
      candidates on ``p`` before ``c``.

    ``ok = P_all(c) <= cap_p`` certifies the sequential greedy takes
    ``c`` on this side (even if every live predecessor is eventually
    taken, capacity suffices); ``bad = dem_c > cap_p - P_tk(c)``
    certifies it skips ``c`` (already-confirmed predecessors alone
    exhaust the residual).  The two can never both hold.
    """
    order = np.argsort(ports, kind="stable")
    p = ports[order]
    dd = dem[order]
    tk_dd = np.where(taken[order], dd, 0)
    cum_all = np.cumsum(dd)
    cum_tk = np.cumsum(tk_dd)
    seg = np.flatnonzero(np.r_[True, p[1:] != p[:-1]])
    lens = np.diff(np.r_[seg, p.size])
    base_all = np.repeat(np.r_[0, cum_all[seg[1:] - 1]], lens)
    base_tk = np.repeat(np.r_[0, cum_tk[seg[1:] - 1]], lens)
    cap = caps[p]
    ok = cum_all - base_all <= cap
    bad = dd > cap - (cum_tk - base_tk - tk_dd)
    ok_out = np.empty(p.size, dtype=bool)
    bad_out = np.empty(p.size, dtype=bool)
    ok_out[order] = ok
    bad_out[order] = bad
    return ok_out, bad_out


def _vectorized_capacitated_pack(
    cand: np.ndarray,
    queue: FlowQueue,
    switch: Switch,
) -> np.ndarray:
    """Greedy residual-capacity packing of ``cand`` (in greedy order),
    vectorized as parallel rounds of segmented prefix sums.

    Byte-identical to the sequential walk of
    ``OnlinePolicy._select_packing_fast`` / the co-flow ordered packing:
    take a candidate iff both its ports still hold its demand at its
    turn.  Each round classifies every undecided candidate through
    :func:`_pack_side`: *taken* when even the most pessimistic prefix
    fits on both sides, *eliminated* when confirmed takes alone already
    overflow either side.  The first undecided candidate always
    satisfies one of the two (its live predecessors are all confirmed),
    so every round makes progress and the loop terminates; because
    takes/eliminations are exactly sequential-greedy takes/skips, the
    fixed point equals the sequential result.

    High-load cells (capacities binding every round) converge in a few
    rounds, replacing the per-flow python loop that previously made
    capacitated batches fall back to serial-speed selection.
    """
    s = queue.srcs[cand]
    d = queue.dsts[cand]
    dem = queue.demands[cand]
    in_caps = switch.input_capacities
    out_caps = switch.output_capacities
    n = cand.size
    taken = np.zeros(n, dtype=bool)
    undecided = np.ones(n, dtype=bool)
    while undecided.any():
        act = np.flatnonzero(taken | undecided)
        ok_in, bad_in = _pack_side(s[act], dem[act], taken[act], in_caps)
        ok_out, bad_out = _pack_side(d[act], dem[act], taken[act], out_caps)
        und = undecided[act]
        take = und & ok_in & ok_out
        drop = und & (bad_in | bad_out)
        taken[act[take]] = True
        undecided[act[take | drop]] = False
    return cand[taken]


def simulate_batch(
    instances: Sequence[Instance],
    policies: Sequence[OnlinePolicy],
    max_rounds: Optional[int] = None,
    timer=None,
    verify: bool = False,
) -> List[SimulationResult]:
    """Run ``policies[i]`` over ``instances[i]`` for every trial.

    The trial-axis sibling of :func:`~repro.online.simulator.simulate`:
    when every trial runs the same batchable policy on the same switch,
    the whole batch executes as one merged simulation (see the module
    docstring); otherwise each trial falls back to a solo ``simulate``
    call.  Either way the returned list is positionally aligned with
    ``instances`` and each element is byte-identical (schedule, queue
    history, metrics, stats) to the corresponding solo run.

    ``max_rounds``/``timer``/``verify`` behave as in :func:`simulate`;
    timer events are per *merged* round, so timing totals differ from N
    solo runs (timings are excluded from the equivalence contract).
    """
    if len(instances) != len(policies):
        raise ValueError(
            f"got {len(instances)} instances but {len(policies)} policies"
        )
    if not instances:
        return []
    kernel = batch_kernel_name(instances, policies)
    live = [i for i in range(len(instances)) if instances[i].num_flows > 0]
    if kernel is None or len(live) < 2:
        return [
            simulate(
                inst, pol, max_rounds=max_rounds, timer=timer, verify=verify
            )
            for inst, pol in zip(instances, policies)
        ]
    results: List[Optional[SimulationResult]] = [None] * len(instances)
    for i in range(len(instances)):
        if instances[i].num_flows == 0:
            results[i] = _empty_result(instances[i])
    merged = _simulate_merged(
        [instances[i] for i in live],
        [policies[i] for i in live],
        kernel,
        max_rounds,
        timer,
    )
    for i, result in zip(live, merged):
        results[i] = result
    if verify:
        from repro.verify import check_online_run

        for result in results:
            if result.schedule.instance.num_flows:
                check_online_run(result).raise_if_failed()
    return results


def _make_select(kernel, queue, view, instances, policies, timer, hk_stats):
    """Build the per-round merged selection callable for ``kernel``."""
    n_in = view.switch.num_inputs
    n_out = view.switch.num_outputs
    m_in, m_out = view.m_in, view.m_out
    n_trials = view.n_trials
    unit = queue.unit_capacity
    trial_of = view.trial_of
    slot_in = np.empty(n_in, dtype=np.int64)
    slot_out = np.empty(n_out, dtype=np.int64)
    slot_key = np.empty(n_in * m_out, dtype=np.int64)

    if kernel == "fifo" and unit:
        # FIFO's greedy order (descending age, stable) over the alive
        # list *is* the alive list itself: it is kept sorted by
        # (release, insertion).  Pair-dedup: only a pair's first copy
        # can ever be taken (later copies share both ports with an
        # earlier, still-waiting one), so keep exactly the first
        # occurrence per pair key — no per-flow python at all.
        def select_fifo(t: int) -> np.ndarray:
            fids = queue.alive_fids()
            keys = queue.srcs[fids] * m_out + queue.dsts[fids] % m_out
            cand = fids[_first_occurrence_mask(keys, slot_key)]
            with _measure(timer, "batch_pack"):
                return _vectorized_unit_pack(
                    cand, queue.srcs, queue.dsts, slot_in, slot_out
                )

        return select_fifo

    if kernel == "maxcard" and unit:
        # Stacked Hopcroft–Karp over the per-pair head graph.  Heads are
        # rebuilt per round from the alive list (first waiting copy per
        # pair, in arrival order) instead of initializing the queue's
        # incremental pair view: the views agree — adjacency rows are
        # kept sorted by the *current* head's (release, fid), which is
        # exactly the alive-order first occurrence — and skipping the
        # view keeps ``arrive``/``remove`` pure array operations.
        warm_mode = bool(policies[0].warm_start)
        prev_pairs: List[Dict[int, int]] = [{} for _ in range(n_trials)]
        trial_of_left = np.repeat(
            np.arange(n_trials, dtype=np.int64), m_in
        )
        trial_of_right = np.repeat(
            np.arange(n_trials, dtype=np.int64), m_out
        )
        bfs_arr = hk_stats["bfs_phases"]
        aug_arr = hk_stats["augmentations"]
        seed_arr = hk_stats["warm_start_seeds"]

        def select_maxcard(t: int) -> np.ndarray:
            fids = queue.alive_fids()
            keys = queue.srcs[fids] * m_out + queue.dsts[fids] % m_out
            heads = fids[_first_occurrence_mask(keys, slot_key)]
            warm = None
            part: List[int] = []
            if warm_mode:
                part = np.unique(trial_of[heads]).tolist()
                warm = {}
                for i in part:
                    pp = prev_pairs[i]
                    if pp:
                        seed_arr[i] += len(pp)
                        warm.update(pp)
                if not warm:
                    warm = None
            with _measure(timer, "batch_match"):
                edge_left = max_cardinality_matching_batch(
                    n_in,
                    n_out,
                    queue.srcs[heads],
                    queue.dsts[heads],
                    trial_of_left,
                    trial_of_right,
                    n_trials,
                    warm_start=warm,
                    bfs_phases=bfs_arr,
                    augmentations=aug_arr,
                )
            matched_us = np.flatnonzero(edge_left >= 0)
            chosen = heads[edge_left[matched_us]]
            if warm_mode:
                # Mirror the solo policy: every trial that solved this
                # round replaces its carried pairs with this round's
                # matching; idle trials keep theirs.
                for i in part:
                    prev_pairs[i] = {}
                for u, v in zip(
                    matched_us.tolist(), queue.dsts[chosen].tolist()
                ):
                    prev_pairs[u // m_in][u] = v
            return chosen

        return select_maxcard

    if kernel in ("fifo", "minrtime", "maxcard"):
        # Non-unit capacities: greedy packing in the policy's weight
        # order.  FIFO and MinRTime share the age weight ``t - r + 1``
        # and MaxCard packs with unit weights — in all three cases the
        # stable descending-weight order *is* the alive list (kept
        # sorted by (release, insertion)), so no argsort is needed.
        def select_aged_pack(t: int) -> np.ndarray:
            with _measure(timer, "batch_pack"):
                return _vectorized_capacitated_pack(
                    queue.alive_fids(), queue, view.switch
                )

        return select_aged_pack

    if kernel == "maxweight":
        # Non-unit capacities: queue-length weights.  Virtual ports are
        # per trial, so the merged bincounts equal each trial's own, and
        # the merged stable argsort projects to each trial's order.
        def select_maxweight(t: int) -> np.ndarray:
            fids = queue.alive_fids()
            us = queue.srcs[fids]
            vs = queue.dsts[fids]
            w = (np.bincount(us)[us] + np.bincount(vs)[vs]).astype(
                np.float64
            )
            order = np.argsort(-w, kind="stable")
            with _measure(timer, "batch_pack"):
                return _vectorized_capacitated_pack(
                    fids[order], queue, view.switch
                )

        return select_maxweight

    if kernel == "random":
        for policy, inst in zip(policies, instances):
            policy.reset(inst)
        rngs = [policy._rng for policy in policies]

        def select_random(t: int) -> np.ndarray:
            fids = queue.alive_fids()
            trials = trial_of[fids]
            w = np.empty(fids.size, dtype=np.float64)
            order = np.argsort(trials, kind="stable")
            uniq, starts = np.unique(trials[order], return_index=True)
            ends = np.append(starts[1:], trials.size)
            # One draw vector per trial with waiting flows, in that
            # trial's arrival order — the exact shape and sequence its
            # solo run consumes from the same seeded generator.
            for u, s, e in zip(uniq.tolist(), starts.tolist(), ends.tolist()):
                w[order[s:e]] = rngs[u].random(e - s) + 1e-9
            pack_order = np.argsort(-w, kind="stable")
            ordered = fids[pack_order]
            if not unit:
                with _measure(timer, "batch_pack"):
                    return _vectorized_capacitated_pack(
                        ordered, queue, view.switch
                    )
            # Pair-dedup by weight: only the heaviest copy of a pair can
            # be taken (earlier copies in weight order share its ports).
            keys = (
                queue.srcs[ordered] * m_out + queue.dsts[ordered] % m_out
            )
            cand = ordered[_first_occurrence_mask(keys, slot_key)]
            with _measure(timer, "batch_pack"):
                return _vectorized_unit_pack(
                    cand, queue.srcs, queue.dsts, slot_in, slot_out
                )

        return select_random

    # kernel == "coflow"
    cfs = [policy._cf for policy in policies]
    ncf_off = np.concatenate(
        ([0], np.cumsum([cf.num_coflows for cf in cfs]))
    ).astype(np.int64)
    ncf_total = int(ncf_off[-1])
    vcid_of = np.concatenate(
        [cf.coflow_of + off for cf, off in zip(cfs, ncf_off[:-1].tolist())]
    )
    in_caps = instances[0].switch.input_capacities
    out_caps = instances[0].switch.output_capacities
    sebf = type(policies[0]) is CoflowSebfPolicy
    if not sebf:
        static_prio = np.concatenate(
            [cf.releases().astype(np.float64) for cf in cfs]
        )

    def select_coflow(t: int) -> np.ndarray:
        fids = queue.alive_fids()
        cids = vcid_of[fids]
        if sebf:
            demands = queue.demands[fids]
            in_load = np.bincount(
                cids * m_in + queue.srcs[fids] % m_in,
                weights=demands,
                minlength=ncf_total * m_in,
            ).reshape(ncf_total, m_in)
            out_load = np.bincount(
                cids * m_out + queue.dsts[fids] % m_out,
                weights=demands,
                minlength=ncf_total * m_out,
            ).reshape(ncf_total, m_out)
            prio = np.maximum(
                (in_load / in_caps).max(axis=1),
                (out_load / out_caps).max(axis=1),
            )
        else:
            prio = static_prio
        order = np.lexsort((fids, cids, prio[cids]))
        with _measure(timer, "batch_pack"):
            return _vectorized_capacitated_pack(
                fids[order], queue, view.switch
            )

    return select_coflow


def _simulate_merged(
    instances: Sequence[Instance],
    policies: Sequence[OnlinePolicy],
    kernel: str,
    max_rounds: Optional[int],
    timer,
) -> List[SimulationResult]:
    """The merged lockstep engine (all trials non-empty, same switch)."""
    n_trials = len(instances)
    counts = np.asarray([inst.num_flows for inst in instances], dtype=np.int64)
    total = int(counts.sum())
    view = _BatchView(instances)
    if max_rounds is None:
        # Vectorized ``2 * horizon_bound() + 1`` per trial: every merged
        # trial is non-empty, so reduceat segments are never empty and
        # max_release is just the segment max of the stacked releases.
        rel_max = np.maximum.reduceat(view.releases(), view.offsets[:-1])
        caps = 2 * (rel_max + counts + 1) + 1
    else:
        caps = np.full(n_trials, max_rounds, dtype=np.int64)

    queue = BatchFlowQueue(view)
    trial_of = view.trial_of
    track_solves = kernel == "maxcard" and queue.unit_capacity
    hk_stats: Optional[Dict[str, np.ndarray]] = None
    if track_solves:
        hk_stats = {
            "bfs_phases": np.zeros(n_trials, dtype=np.int64),
            "augmentations": np.zeros(n_trials, dtype=np.int64),
            "warm_start_seeds": np.zeros(n_trials, dtype=np.int64),
        }
    select = _make_select(
        kernel, queue, view, instances, policies, timer, hk_stats
    )
    policy_name = policies[0].name

    releases = view.releases()
    arrival_order = np.argsort(releases, kind="stable")
    uniq_rounds, starts = np.unique(
        releases[arrival_order], return_index=True
    )
    ends = np.append(starts[1:], total)
    arrivals_at = {
        int(r): arrival_order[s:e]
        for r, s, e in zip(
            uniq_rounds.tolist(), starts.tolist(), ends.tolist()
        )
    }

    feas_in = np.empty(view.switch.num_inputs, dtype=np.int64)
    feas_out = np.empty(view.switch.num_outputs, dtype=np.int64)
    assignment = np.full(total, -1, dtype=np.int64)
    # Shadow counters: exact per-trial mirrors of each solo FlowQueue's
    # bookkeeping, maintained vectorized over the trial axis.
    sh_pos = np.zeros(n_trials, dtype=np.int64)  # solo _n_pos
    sh_alive = np.zeros(n_trials, dtype=np.int64)  # solo _n_alive
    sh_comp = np.zeros(n_trials, dtype=np.int64)  # solo compactions
    solves = np.zeros(n_trials, dtype=np.int64)
    sched_per = np.zeros(n_trials, dtype=np.int64)
    rounds_of = np.full(n_trials, -1, dtype=np.int64)
    history_rows: List[np.ndarray] = []
    scheduled_total = 0
    t = 0
    while scheduled_total < total:
        overdue = (sched_per < counts) & (t >= caps)
        if overdue.any():
            i = int(np.flatnonzero(overdue)[0])
            raise RuntimeError(
                f"policy {policy_name} exceeded {int(caps[i])} rounds with "
                f"{int(counts[i] - sched_per[i])} flows unscheduled"
            )
        round_start = time.perf_counter() if timer is not None else 0.0
        arriving = arrivals_at.get(t)
        if arriving is not None:
            queue.arrive(arriving)
            cnt = np.bincount(trial_of[arriving], minlength=n_trials)
            sh_pos += cnt
            sh_alive += cnt
        history_rows.append(sh_alive.copy())
        if track_solves:
            # One Hopcroft–Karp solve per solo round with a non-empty
            # queue.
            solves += sh_alive > 0
        if queue.n_alive:
            if timer is not None:
                sel_start = time.perf_counter()
                chosen = select(t)
                timer.add("batch_select", time.perf_counter() - sel_start)
            else:
                chosen = select(t)
            _check_feasible_fast(
                chosen, queue, view.switch, policy_name, t, feas_in, feas_out
            )
            if chosen.size:
                assignment[chosen] = t
                queue.remove(chosen)
                scheduled_total += chosen.size
                rcnt = np.bincount(trial_of[chosen], minlength=n_trials)
                sched_per += rcnt
                sh_alive -= rcnt
                # Solo compaction trigger, checked only on rounds where
                # that trial's remove() ran (rcnt > 0).
                dead = sh_pos - sh_alive
                compacted = (rcnt > 0) & (dead > 32) & (dead > sh_alive)
                sh_comp += compacted
                sh_pos[compacted] = sh_alive[compacted]
                done = (sched_per == counts) & (rounds_of < 0)
                if done.any():
                    rounds_of[done] = t + 1
        if timer is not None:
            timer.add("sim_round", time.perf_counter() - round_start)
        t += 1

    history = np.stack(history_rows) if history_rows else np.zeros(
        (0, n_trials), dtype=np.int64
    )
    offsets = view.offsets

    # ------------------------------------------------------------------
    # Vectorized cross-trial finalization.  Every ScheduleMetrics field
    # is integer-exact, so computing them over the stacked arrays (flows
    # are contiguous per trial — reduceat segments) reproduces the
    # per-trial ``ScheduleMetrics.of`` values bit for bit; float64
    # bincount sums stay exact far below 2**53.
    # ------------------------------------------------------------------
    comp = assignment + 1
    rho = comp - releases
    seg = offsets[:-1]
    tot_resp = np.add.reduceat(rho, seg)
    max_resp = np.maximum.reduceat(rho, seg)
    makespans = np.maximum.reduceat(comp, seg)
    H = int(comp.max())
    in_peak = (
        np.bincount(
            view.srcs() * H + assignment,
            weights=view.demands(),
            minlength=view.switch.num_inputs * H,
        )
        .reshape(view.switch.num_inputs, H)
        .max(axis=1)
    )
    out_peak = (
        np.bincount(
            view.dsts() * H + assignment,
            weights=view.demands(),
            minlength=view.switch.num_outputs * H,
        )
        .reshape(view.switch.num_outputs, H)
        .max(axis=1)
    )
    in_exc = (
        (in_peak - view.switch.input_capacities)
        .reshape(n_trials, view.m_in)
        .max(axis=1)
    )
    out_exc = (
        (out_peak - view.switch.output_capacities)
        .reshape(n_trials, view.m_out)
        .max(axis=1)
    )
    max_aug = np.maximum(np.maximum(in_exc, out_exc), 0).astype(np.int64)

    results: List[SimulationResult] = []
    for i in range(n_trials):
        rounds_i = int(rounds_of[i])
        n_i = int(counts[i])
        sub = assignment[offsets[i] : offsets[i + 1]].copy()
        schedule = Schedule(instances[i], sub)
        metrics = ScheduleMetrics(
            num_flows=n_i,
            total_response=int(tot_resp[i]),
            average_response=int(tot_resp[i]) / n_i,
            max_response=int(max_resp[i]),
            makespan=int(makespans[i]),
            max_augmentation=int(max_aug[i]),
        )
        stats: Dict[str, int] = {
            "sim_rounds": rounds_i,
            "compactions": int(sh_comp[i]),
        }
        if track_solves:
            # Reproduce the solo stats dict: counter keys appear only
            # once their first bump happens.
            if hk_stats["bfs_phases"][i]:
                stats["bfs_phases"] = int(hk_stats["bfs_phases"][i])
            stats["matching_solves"] = int(solves[i])
            if hk_stats["augmentations"][i]:
                stats["augmentations"] = int(hk_stats["augmentations"][i])
            if hk_stats["warm_start_seeds"][i]:
                stats["warm_start_seeds"] = int(
                    hk_stats["warm_start_seeds"][i]
                )
        results.append(
            SimulationResult(
                schedule,
                metrics,
                rounds=rounds_i,
                queue_history=history[:rounds_i, i].copy(),
                stats=stats,
            )
        )
    return results
