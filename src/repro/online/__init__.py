"""Online flow scheduling (Section 5 of the paper).

* :mod:`repro.online.simulator` — the round-based online simulator
  (reimplementation of the paper's in-house C++ simulator, §5.2.1);
* :mod:`repro.online.policies` — the MaxCard / MinRTime / MaxWeight
  heuristics plus a FIFO baseline and greedy packing for general
  capacities;
* :mod:`repro.online.batch` — trial-batched simulation: a cell of N
  trials executes as one structure-of-arrays merged run, byte-identical
  to N solo runs;
* :mod:`repro.online.amrt` — the batching online algorithm of Lemma 5.3
  (2-competitive for max response with doubled, augmented capacity);
* :mod:`repro.online.lower_bounds` — the adversarial constructions of
  Figure 4 (Lemmas 5.1 and 5.2).
"""

from repro.online.batch import (
    BatchFlowQueue,
    batch_kernel_name,
    simulate_batch,
)
from repro.online.simulator import (
    FlowQueue,
    SimulationResult,
    StreamFlowQueue,
    StreamSimulationResult,
    simulate,
    simulate_stream,
)
from repro.online.policies import (
    FifoPolicy,
    MaxCardPolicy,
    MaxWeightPolicy,
    MinRTimePolicy,
    OnlinePolicy,
    POLICY_REGISTRY,
    make_policy,
)
from repro.online.amrt import (
    AMRTResult,
    AMRTStreamResult,
    run_amrt,
    run_amrt_stream,
)
from repro.online.lower_bounds import (
    adaptive_figure4a_ratio,
    adaptive_figure4b_max_response,
    figure4a_instance,
    figure4b_instance,
    figure4b_optimal_max_response,
)

__all__ = [
    "simulate",
    "simulate_batch",
    "simulate_stream",
    "batch_kernel_name",
    "BatchFlowQueue",
    "SimulationResult",
    "StreamSimulationResult",
    "FlowQueue",
    "StreamFlowQueue",
    "OnlinePolicy",
    "MaxCardPolicy",
    "MinRTimePolicy",
    "MaxWeightPolicy",
    "FifoPolicy",
    "POLICY_REGISTRY",
    "make_policy",
    "run_amrt",
    "run_amrt_stream",
    "AMRTResult",
    "AMRTStreamResult",
    "figure4a_instance",
    "figure4b_instance",
    "adaptive_figure4a_ratio",
    "adaptive_figure4b_max_response",
    "figure4b_optimal_max_response",
]
